"""Setuptools shim.

The offline environment ships setuptools 65 without the ``wheel`` package,
so PEP 517 builds (which require ``bdist_wheel``) are unavailable.  This
shim lets ``pip install -e .`` fall back to the legacy editable path; all
project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
