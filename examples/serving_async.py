#!/usr/bin/env python
"""Async serving: concurrent submits, deadline flushing, graceful shutdown.

Builds a small LC-Rec model, starts the background flush loop, and fires
recommendation requests at it from several producer threads — the way a
request handler would in a real deployment. Demonstrates:

1. ``start()`` / context-manager lifecycle of :class:`RecommendationService`;
2. deadline-based batching — a trickle of requests is flushed when the
   oldest exceeds the latency budget, a burst is flushed as soon as a
   full micro-batch is waiting;
3. the cross-request prefix KV cache warming up as session traffic repeats
   template heads and grows histories;
4. ``stop()`` draining in-flight work so no submitted request is lost.

Run:  python examples/serving_async.py
"""

import threading
import time

from repro.core import LCRec, LCRecConfig
from repro.core.tasks import AlignmentTaskConfig
from repro.data import build_dataset, preset_config
from repro.llm import PretrainConfig, TuningConfig
from repro.serving import LCRecEngine, MicroBatcherConfig, RecommendationService


def build_model() -> LCRec:
    dataset = build_dataset(preset_config("instruments", scale=0.2))
    config = LCRecConfig(
        pretrain=PretrainConfig(steps=150, batch_size=16),
        tasks=AlignmentTaskConfig(tasks=("seq",), max_history=8, seq_per_user=2),
        tuning=TuningConfig(epochs=1, batch_size=16, lr=3e-3),
        beam_size=20,
    )
    return LCRec(dataset, config).build()


def producer(service: RecommendationService, name: str, histories, results):
    """One request-handler thread: submit, then block on the result."""
    for index, history in enumerate(histories):
        pending = service.submit(history, top_k=5)
        ranked = pending.result(timeout=30.0)  # deadline/size trigger decodes it
        results[f"{name}/{index}"] = ranked
        time.sleep(0.002)  # a trickle, so the deadline trigger gets to fire


def main() -> None:
    model = build_model()
    histories = [list(h) for h in model.dataset.split.test_histories[:24]]

    # The engine adapter is the serving stack's view of the model: the
    # same RecommendationService machinery serves TIGER and P5-CID through
    # their own adapters (TIGEREngine, P5CIDEngine).
    service = RecommendationService(
        LCRecEngine(model),  # prefix KV cache on by default
        batcher=MicroBatcherConfig(max_batch_size=8),
        deadline_ms=25.0,  # no request waits longer than this in the queue
    )

    with service:  # __enter__ -> start(): background flush thread running
        results: dict[str, list[int]] = {}
        threads = [
            threading.Thread(
                target=producer,
                args=(service, f"user-thread-{t}", histories[t::3], results),
            )
            for t in range(3)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        # A burst bigger than one micro-batch: flushed by the size trigger.
        burst = [service.submit(h, top_k=5) for h in histories]
        burst_rankings = [p.result(timeout=30.0) for p in burst]
    # __exit__ -> stop(): drains anything still queued, joins the thread

    print(f"served {len(results) + len(burst_rankings)} requests")
    print(
        f"flushes: {service.stats.deadline_flushes} by deadline, "
        f"{service.stats.size_flushes} by full batch; "
        f"mean batch size {service.stats.mean_batch_size:.1f}"
    )
    cache = service.prefix_cache
    print(
        f"prefix cache: token hit rate {cache.stats.token_hit_rate:.1%} "
        f"({cache.stats.reused_tokens}/{cache.stats.prompt_tokens} prompt "
        f"tokens skipped), {len(cache)} entries"
    )

    # Parity: async, batched, cached serving returns exactly what the
    # synchronous per-request path returns.
    sample = histories[0]
    assert results["user-thread-0/0"] == model.recommend(sample, top_k=5)
    print("parity with LCRec.recommend: ok")


if __name__ == "__main__":
    main()
