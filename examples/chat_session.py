#!/usr/bin/env python
"""Multi-turn recommendation session (the paper's future-work extension).

Simulates a short dialogue: the user starts from their history, rejects a
recommendation, asks an intention query, and accepts an item — the session
keeps state so rejected/consumed items never reappear.

Run:  python examples/chat_session.py
"""

import numpy as np

from repro.core import ChatSession, LCRec, LCRecConfig
from repro.core.indexer import SemanticIndexerConfig
from repro.core.tasks import AlignmentTaskConfig
from repro.data import IntentionGenerator, build_dataset, preset_config
from repro.llm import PretrainConfig, TuningConfig
from repro.quantization import RQVAEConfig, RQVAETrainerConfig


def main() -> None:
    dataset = build_dataset(preset_config("instruments", scale=0.25))
    config = LCRecConfig(
        pretrain=PretrainConfig(steps=200, batch_size=16),
        indexer=SemanticIndexerConfig(
            rqvae=RQVAEConfig(latent_dim=32, hidden_dims=(96, 48), num_levels=4, codebook_size=16),
            trainer=RQVAETrainerConfig(epochs=100, batch_size=512),
        ),
        tasks=AlignmentTaskConfig(
            max_history=8, seq_per_user=2, tasks=("seq", "mut", "asy", "ite", "per")
        ),
        tuning=TuningConfig(epochs=3, batch_size=16, lr=3e-3),
    )
    model = LCRec(dataset, config).build()

    history = list(dataset.split.test_histories[0])
    session = ChatSession(model, history=history)
    print("session history:")
    for item_id in history[-4:]:
        print("  *", dataset.catalog[item_id].title)

    print("\n> user: what should I get next?")
    items = session.recommend(top_k=3)
    for item_id in items:
        print("  bot:", session.describe(item_id)[:80])

    print(f"\n> user: not {dataset.catalog[items[0]].title!r} (reject)")
    session.reject(items[0])
    items = session.recommend(top_k=3)
    print("  bot suggests instead:")
    for item_id in items:
        print("   -", dataset.catalog[item_id].title)
    assert all(i not in session.rejected for i in items)

    generator = IntentionGenerator(dataset.catalog, np.random.default_rng(3))
    intention = generator.intention_for_item(dataset.catalog[items[0]]).text
    print(f"\n> user asks: {intention!r}")
    answers = session.ask(intention, top_k=3)
    for item_id in answers:
        print("  bot:", dataset.catalog[item_id].title)

    session.accept(answers[0])
    print(f"\n> user accepts {dataset.catalog[answers[0]].title!r}")
    print(
        f"session: {session.num_turns} turns, "
        f"history now {len(session.history)} items, "
        f"{len(session.rejected)} rejected"
    )


if __name__ == "__main__":
    main()
