#!/usr/bin/env python
"""Intention-based item retrieval (the paper's Sec. III-C3b / Fig. 3 task).

LC-Rec is prompted like a search engine with a natural-language intention
("looking for <category> with <features>") and must *generate* the index of
a matching catalog item.  The example also trains a DSSM two-tower
retriever on the same data as a text-similarity baseline.

Run:  python examples/intention_search.py
"""

import numpy as np

from repro.baselines import DSSM, DSSMConfig
from repro.core import LCRec, LCRecConfig
from repro.core.indexer import SemanticIndexerConfig
from repro.core.tasks import AlignmentTaskConfig
from repro.data import IntentionGenerator, build_dataset, preset_config
from repro.eval import evaluate_intention_retrieval
from repro.llm import PretrainConfig, TuningConfig
from repro.quantization import RQVAEConfig, RQVAETrainerConfig


def main() -> None:
    dataset = build_dataset(preset_config("games", scale=0.25))
    print(f"dataset: {dataset.num_users} users, {dataset.num_items} items")

    config = LCRecConfig(
        pretrain=PretrainConfig(steps=250, batch_size=16),
        indexer=SemanticIndexerConfig(
            rqvae=RQVAEConfig(latent_dim=32, hidden_dims=(96, 48), num_levels=4, codebook_size=16),
            trainer=RQVAETrainerConfig(epochs=120, batch_size=512),
        ),
        tasks=AlignmentTaskConfig(max_history=8, seq_per_user=2, ite_per_user=2),
        tuning=TuningConfig(epochs=2, batch_size=16, lr=3e-3),
        beam_size=20,
    )
    model = LCRec(dataset, config).build()

    # Evaluation queries: simulated GPT-3.5 intentions for held-out items.
    generator = IntentionGenerator(dataset.catalog, np.random.default_rng(7))
    test_examples = generator.test_intentions(dataset)[:80]

    # One concrete query, end to end.
    example = test_examples[0]
    print("\nquery:", example.text)
    ranked = model.recommend_for_intention(example.text, top_k=5)
    print("LC-Rec retrieves:")
    for rank, item_id in enumerate(ranked, 1):
        marker = "  <-- target" if item_id == example.item_id else ""
        print(f"  {rank}. {dataset.catalog[item_id].title}{marker}")

    # DSSM baseline trained on intentions for *training* interactions.
    train_intents = generator.training_intentions(dataset, per_user=2)
    dssm = DSSM(
        [item.title for item in dataset.catalog],
        DSSMConfig(epochs=25),
        extra_texts=[e.text for e in train_intents],
    )
    dssm.fit(train_intents)

    lcrec_report = evaluate_intention_retrieval(
        lambda query: model.recommend_for_intention(query, top_k=10), test_examples
    )
    dssm_report = evaluate_intention_retrieval(
        lambda query: dssm.retrieve(query, top_k=10), test_examples
    )

    print("\nintention retrieval (Fig. 3 protocol):")
    header = ("model", "HR@5", "HR@10", "NDCG@5", "NDCG@10")
    print(f"{header[0]:<8} " + " ".join(f"{h:>7}" for h in header[1:]))
    for label, rep in (("DSSM", dssm_report), ("LC-Rec", lcrec_report)):
        cells = " ".join(f"{rep[m]:7.4f}" for m in ("HR@5", "HR@10", "NDCG@5", "NDCG@10"))
        print(f"{label:<8} {cells}")


if __name__ == "__main__":
    main()
