#!/usr/bin/env python
"""Using the library on a custom dataset configuration.

Shows the lower-level APIs: configuring the catalog/behaviour simulators
directly, inspecting 5-core preprocessing, training the RQ-VAE on your own
embedding matrix, and comparing indexing strategies (USM vs extra-level).

Run:  python examples/custom_dataset.py
"""

import numpy as np

from repro.core.indexer import SemanticIndexerConfig, build_semantic_index_set
from repro.data import (
    BehaviorConfig,
    CatalogConfig,
    DatasetConfig,
    build_dataset,
    dataset_statistics,
    format_table2_row,
)
from repro.quantization import RQVAEConfig, RQVAETrainerConfig, count_conflicts


def main() -> None:
    # A bespoke dataset: denser than the presets, stronger complements.
    config = DatasetConfig(
        name="my-shop",
        catalog=CatalogConfig(num_items=150, num_categories=5, subcategories_per_category=3),
        behavior=BehaviorConfig(num_users=400, mean_length=10.0, complement_prob=0.25),
        max_seq_len=20,
        seed=777,
    )
    dataset = build_dataset(config)
    print(format_table2_row(dataset_statistics(dataset)))
    print(f"kept {dataset.num_items}/{config.catalog.num_items} items after 5-core filtering")

    # Any (num_items, dim) embedding matrix works as RQ-VAE input; here we
    # use a bag-of-keywords embedding instead of LLM states to show the API.
    lexicon_words = dataset.catalog.lexicon.all_words()
    word_to_col = {w: i for i, w in enumerate(lexicon_words)}
    embeddings = np.zeros((dataset.num_items, len(lexicon_words)), dtype=np.float32)
    for item in dataset.catalog:
        for word in item.description.split():
            column = word_to_col.get(word)
            if column is not None:
                embeddings[item.item_id, column] += 1.0
    embeddings /= np.maximum(np.linalg.norm(embeddings, axis=1, keepdims=True), 1e-9)

    indexer = SemanticIndexerConfig(
        rqvae=RQVAEConfig(
            input_dim=embeddings.shape[1],
            latent_dim=24,
            hidden_dims=(64,),
            num_levels=4,
            codebook_size=16,
        ),
        trainer=RQVAETrainerConfig(epochs=100, batch_size=256),
    )

    for strategy in ("usm", "extra_level"):
        indexer.strategy = strategy
        index_set, rqvae, _ = build_semantic_index_set(embeddings, indexer)
        raw_conflicts = count_conflicts(rqvae.quantize(embeddings).codes)
        print(
            f"\nstrategy={strategy}: levels={index_set.num_levels}, "
            f"unique={index_set.is_unique()}, "
            f"raw greedy conflicts resolved={raw_conflicts}"
        )
        print("  sample indices:", ", ".join(index_set.index_text(i) for i in range(3)))

    # Same-subcategory items should share index prefixes (semantics!).
    indexer.strategy = "usm"
    index_set, _, _ = build_semantic_index_set(embeddings, indexer)
    subs = dataset.catalog.subcategories()
    same_sub = prefix_match = 0
    for a in range(dataset.num_items):
        for b in range(a + 1, dataset.num_items):
            if subs[a] == subs[b]:
                same_sub += 1
                if index_set.codes[a, 0] == index_set.codes[b, 0]:
                    prefix_match += 1
    print(
        f"\nsame-subcategory pairs sharing the level-1 code: "
        f"{prefix_match / max(same_sub, 1):.1%}"
    )


if __name__ == "__main__":
    main()
