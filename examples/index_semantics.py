#!/usr/bin/env python
"""Case study: what do the learned item indices mean?  (Figs. 5 and 6.)

* Generates item titles from progressively longer index prefixes and shows
  how the text converges coarse-to-fine toward the true title.
* Counts how often adding each index level changes the generated content.
* Compares index-based related-item generation with raw text-embedding
  cosine recall (Fig. 5b): the former reflects collaborative semantics,
  the latter only language similarity.

Run:  python examples/index_semantics.py
"""

import numpy as np

from repro.analysis import count_level_changes, generate_from_prefixes
from repro.core import LCRec, LCRecConfig
from repro.core.indexer import SemanticIndexerConfig
from repro.core.tasks import AlignmentTaskConfig
from repro.data import build_dataset, preset_config
from repro.llm import PretrainConfig, TuningConfig
from repro.quantization import RQVAEConfig, RQVAETrainerConfig


def main() -> None:
    dataset = build_dataset(preset_config("games", scale=0.25))
    config = LCRecConfig(
        pretrain=PretrainConfig(steps=250, batch_size=16),
        indexer=SemanticIndexerConfig(
            rqvae=RQVAEConfig(latent_dim=32, hidden_dims=(96, 48), num_levels=4, codebook_size=16),
            trainer=RQVAETrainerConfig(epochs=120, batch_size=512),
        ),
        tasks=AlignmentTaskConfig(max_history=8, seq_per_user=2),
        tuning=TuningConfig(epochs=3, batch_size=16, lr=3e-3),
    )
    model = LCRec(dataset, config).build()

    # Fig. 5(a): title generation from index prefixes, two showcase items.
    rng = np.random.default_rng(0)
    for item_id in rng.choice(dataset.num_items, size=2, replace=False):
        study = generate_from_prefixes(model, int(item_id))
        print(f"\nitem {item_id}: true title = {study.true_title!r}")
        for depth, text in enumerate(study.generations, 1):
            prefix = "".join(model.index_set.token_strings(int(item_id))[:depth])
            print(f"  {prefix:<28} -> {text[:70]}")

    # Fig. 6: proportion of generation changes per added level.
    sample = rng.choice(dataset.num_items, size=min(60, dataset.num_items), replace=False)
    studies = [generate_from_prefixes(model, int(i)) for i in sample]
    changes = count_level_changes(studies)
    print("\ncontent changes caused by each index level (Fig. 6):")
    for transition, proportion in zip(changes.transitions, changes.change_proportions):
        bar = "#" * int(proportion * 40)
        print(f"  level {transition}: {proportion:6.1%} {bar}")

    # Fig. 5(b): related items — index neighbourhood vs text-cosine recall.
    anchor = int(sample[0])
    prefix = model.index_set.codes[anchor][:2]
    index_related = [
        i
        for i in range(dataset.num_items)
        if i != anchor and (model.index_set.codes[i][:2] == prefix).all()
    ][:3]
    emb = model.item_embeddings
    normed = emb / np.linalg.norm(emb, axis=1, keepdims=True)
    cosine = normed @ normed[anchor]
    cosine[anchor] = -np.inf
    text_related = np.argsort(-cosine)[:3]
    print(f"\nanchor item: {dataset.catalog[anchor].title}")
    print("  related by shared index prefix (language + collaborative):")
    for item_id in index_related:
        print("   -", dataset.catalog[item_id].title)
    print("  related by text-embedding cosine (language only):")
    for item_id in text_related:
        print("   -", dataset.catalog[int(item_id)].title)


if __name__ == "__main__":
    main()
