#!/usr/bin/env python
"""Quickstart: build LC-Rec on a small synthetic dataset and recommend.

Walks the full paper pipeline end to end:

1. generate an Amazon-like dataset (5-core filtered, leave-one-out split);
2. pretrain the tiny LLaMA on the item-text corpus;
3. learn 4-level semantic item indices (RQ-VAE + uniform semantic mapping);
4. instruction-tune on the five alignment task families;
5. recommend over the *entire* item set with constrained beam search.

Run:  python examples/quickstart.py
"""

from repro.core import LCRec, LCRecConfig
from repro.core.indexer import SemanticIndexerConfig
from repro.core.tasks import AlignmentTaskConfig
from repro.data import build_dataset, dataset_statistics, format_table2_row, preset_config
from repro.eval import evaluate_generative_model
from repro.llm import PretrainConfig, TuningConfig
from repro.quantization import RQVAEConfig, RQVAETrainerConfig


def main() -> None:
    # 1. Data: a scaled-down "Musical Instruments" analogue.
    dataset = build_dataset(preset_config("instruments", scale=0.3))
    print("dataset:", format_table2_row(dataset_statistics(dataset)))

    # 2-4. One config drives the whole build.
    config = LCRecConfig(
        pretrain=PretrainConfig(steps=250, batch_size=16),
        indexer=SemanticIndexerConfig(
            rqvae=RQVAEConfig(latent_dim=32, hidden_dims=(96, 48), num_levels=4, codebook_size=16),
            trainer=RQVAETrainerConfig(epochs=120, batch_size=512),
        ),
        tasks=AlignmentTaskConfig(max_history=8, seq_per_user=2),
        tuning=TuningConfig(epochs=2, batch_size=16, lr=3e-3),
        beam_size=20,
    )
    model = LCRec(dataset, config).build()
    print(f"LM parameters: {model.lm.num_parameters():,}")
    print("example item index:", model.index_set.index_text(0), "->", dataset.catalog[0].title)

    # 5. Recommend for one user...
    history = dataset.split.test_histories[0]
    target = dataset.split.test_targets[0]
    ranked = model.recommend(history, top_k=10)
    print("\nuser 0 history (titles):")
    for item_id in history[-5:]:
        print("  -", dataset.catalog[item_id].title)
    print("target:", dataset.catalog[target].title)
    print("top-10 recommendations:")
    for rank, item_id in enumerate(ranked, 1):
        marker = "  <-- target" if item_id == target else ""
        print(f"  {rank:2d}. {dataset.catalog[item_id].title}{marker}")

    # ...and evaluate full-ranking metrics on a slice of test users.
    report = evaluate_generative_model(
        lambda h: model.recommend(h, top_k=10),
        dataset.split.test_histories[:100],
        dataset.split.test_targets[:100],
    )
    print("\nfull-ranking metrics on 100 test users:")
    print(report.row("LC-Rec"))


if __name__ == "__main__":
    main()
