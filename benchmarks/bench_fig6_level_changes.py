"""Figure 6: generated-content changes caused by each index level (Games).

For a sample of items, generates text from index prefixes of growing
length and counts how often adding level ``h+1`` changes the output.
Paper-shape expectation: the proportion of changes *decreases* with depth
(coarse-to-fine quantisation; the paper reports 96.1% -> 40.5% -> 13.4%).
"""

import numpy as np

from repro.analysis import count_level_changes, generate_from_prefixes
from repro.bench import bench_scale, report


def run_figure(games_dataset, games_lcrec):
    scale = bench_scale()
    sample_size = min(scale.max_eval_users, games_dataset.num_items, 80)
    rng = np.random.default_rng(17)
    sample = rng.choice(games_dataset.num_items, size=sample_size,
                        replace=False)
    studies = [generate_from_prefixes(games_lcrec, int(item),
                                      max_new_tokens=12)
               for item in sample]
    changes = count_level_changes(studies)
    rows = [f"items sampled: {changes.total_items}"]
    for transition, count, proportion in zip(changes.transitions,
                                             changes.change_counts,
                                             changes.change_proportions):
        bar = "#" * int(proportion * 50)
        rows.append(f"level {transition}: changes={count:4d} "
                    f"({proportion:6.1%}) {bar}")
    report("fig6_level_changes", "\n".join(rows))
    return changes


def test_fig6(benchmark, games_dataset, games_lcrec):
    changes = benchmark.pedantic(run_figure,
                                 args=(games_dataset, games_lcrec),
                                 rounds=1, iterations=1)
    proportions = changes.change_proportions
    # Shape: earlier levels cause at least as many changes as the last.
    assert proportions[0] >= proportions[-1]
