"""Serving throughput: batched engine vs the single-request decode loop.

Measures requests/sec and per-request latency of the micro-batched
:class:`RecommendationService` at batch sizes B ∈ {1, 4, 16, 64} against
the pre-batching per-request beam-search loop on the same prompts.  The
batched engine amortizes every decode step across the whole ``B*K``
hypothesis axis, so requests/sec should rise with B while per-request
rankings stay identical.
"""

from __future__ import annotations

import time

from repro.bench import bench_scale, report, report_json, scaled_dataset
from repro.bench.runners import build_lcrec_model
from repro.llm import beam_search_items_single, ranked_item_ids
from repro.serving import LCRecEngine, MicroBatcherConfig, RecommendationService

BATCH_SIZES = (1, 4, 16, 64)
NUM_REQUESTS = 64
TOP_K = 10


def _histories(dataset, count):
    pool = dataset.split.test_histories
    return [list(pool[i % len(pool)]) for i in range(count)]


def _single_loop_throughput(model, histories):
    """The old serving path: one full beam search per request."""
    beam = max(model.config.beam_size, TOP_K)
    start = time.perf_counter()
    rankings = []
    for history in histories:
        prompt = model.encode_instruction(model.seq_instruction(history))
        hypotheses = beam_search_items_single(model.lm, prompt, model.trie,
                                              beam_size=beam)
        rankings.append(ranked_item_ids(hypotheses, TOP_K))
    elapsed = time.perf_counter() - start
    return rankings, elapsed


def _batched_throughput(model, histories, batch_size):
    service = RecommendationService(
        LCRecEngine(model), batcher=MicroBatcherConfig(max_batch_size=batch_size))
    start = time.perf_counter()
    rankings = service.recommend_many(histories, top_k=TOP_K)
    elapsed = time.perf_counter() - start
    return rankings, elapsed


def run_throughput_table():
    dataset = scaled_dataset("instruments")
    model = build_lcrec_model(dataset, tasks=("seq",))
    histories = _histories(dataset, NUM_REQUESTS)

    single_rankings, single_elapsed = _single_loop_throughput(model,
                                                              histories)
    rows = [f"{'config':<16} {'req/s':>8} {'ms/req':>9} {'speedup':>8}"]
    single_rps = NUM_REQUESTS / single_elapsed
    rows.append(f"{'single-loop':<16} {single_rps:>8.2f} "
                f"{1000 * single_elapsed / NUM_REQUESTS:>9.1f} "
                f"{1.0:>8.2f}")

    results = {}
    for batch_size in BATCH_SIZES:
        rankings, elapsed = _batched_throughput(model, histories, batch_size)
        assert rankings == single_rankings, (
            f"batched rankings diverged at B={batch_size}")
        rps = NUM_REQUESTS / elapsed
        results[batch_size] = rps
        rows.append(f"{f'batched B={batch_size}':<16} {rps:>8.2f} "
                    f"{1000 * elapsed / NUM_REQUESTS:>9.1f} "
                    f"{rps / single_rps:>8.2f}")

    report("serving_throughput", "\n".join(rows))
    records = [{"name": "single-loop", "requests_per_second": single_rps}]
    records += [
        {"name": f"batched B={batch_size}", "requests_per_second": rps,
         "speedup_vs_single": rps / single_rps}
        for batch_size, rps in results.items()
    ]
    report_json(
        "serving_throughput",
        config={"batch_sizes": list(BATCH_SIZES), "num_requests": NUM_REQUESTS,
                "top_k": TOP_K, "scale": bench_scale().name},
        results=records,
    )
    return single_rps, results


def test_serving_throughput(benchmark):
    single_rps, results = benchmark.pedantic(run_throughput_table, rounds=1,
                                             iterations=1)
    # The headline acceptance criterion: batching B=16 beats the old loop.
    assert results[16] > single_rps
    assert results[64] > single_rps
