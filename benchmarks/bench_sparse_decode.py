"""Trie-aware sparse decode: candidate-only head vs the dense baseline.

The trie-constrained decode only ever *uses* the logits of the tokens the
current trie level allows — at most one codebook of candidates out of a
vocabulary one to two orders of magnitude larger — yet the dense decode
step pays a full-vocabulary output-head GEMM plus a full-vocabulary
log-softmax for every one of the ``B*K`` beam rows.  This benchmark
measures what the sparse decode stack (candidate-only ``lm_head_gather``,
constrained log-softmax over the candidate union, the forced-token fast
path, and step-workspace reuse) buys on the same hardware and weights:

* **LCRec, continuous serving** — a burst of requests replayed through
  ``RecommendationService(mode="continuous")`` at widths B ∈ {1, 8, 16},
  sparse head vs dense head;
* **P5CID and TIGER, closed batches** — the same engine sweep through the
  other two backends at B=16.

Correctness is asserted, not assumed: the sparse and dense heads must
return *identical* rankings for every request of every backend (the
sparse head computes the same candidate logits and the same constrained
renormalisation; only the amount of arithmetic differs).  Results are
persisted to ``benchmark_results/sparse_decode.json`` with per-stage
timing from :class:`repro.serving.ServingStats`.
"""

from __future__ import annotations

import time

import numpy as np

from repro.bench import bench_scale, report, report_json, scaled_dataset
from repro.bench.runners import build_lcrec_model
from repro.baselines import P5CID, P5CIDConfig, TIGER, TIGERConfig
from repro.core.indexer import build_random_index_set
from repro.serving import (
    LCRecEngine,
    MicroBatcherConfig,
    P5CIDEngine,
    RecommendationService,
    TIGEREngine,
)

LCREC_WIDTHS = (1, 8, 16)
CLOSED_BATCH = 16
NUM_REQUESTS = 32
TOP_K = 10
SEED = 23
# The tier-1-scale tokenizer vocabulary is two orders of magnitude smaller
# than the 32k-token LLaMA vocabulary the paper serves, which hides the
# output head's true share of a decode step.  The head is padded to a
# serving-realistic vocabulary (still 4x smaller than LLaMA's); under the
# constrained log-softmax the extra rows never enter any allowed set, so
# rankings are provably identical — only the dense head's cost is honest.
SERVING_VOCAB = 8192
TIGER_CODEBOOK = 256  # the TIGER paper's per-level codebook size


def _histories(dataset, count):
    pool = dataset.split.test_histories
    return [list(pool[i % len(pool)]) for i in range(count)]


def _percentiles(latencies):
    arr = np.asarray(latencies)
    return float(np.percentile(arr, 50)), float(np.percentile(arr, 95))


def run_lcrec_continuous(model, histories, width, sparse):
    """Burst workload through the continuous scheduler at one width."""
    service = RecommendationService(
        LCRecEngine(model, prefix_cache=False, sparse_head=sparse),
        batcher=MicroBatcherConfig(max_batch_size=width),
        mode="continuous",
    )
    with service:
        start = time.perf_counter()
        pending = [(service.submit(h, top_k=TOP_K), time.perf_counter()) for h in histories]
        rankings, latencies = [], []
        for handle, submitted in pending:
            rankings.append(handle.result(timeout=300.0))
            latencies.append(time.perf_counter() - submitted)
        elapsed = time.perf_counter() - start
    return rankings, latencies, len(histories) / elapsed, service.stats


def run_closed_batches(engine, histories):
    """Closed micro-batches of CLOSED_BATCH through one engine adapter."""
    rankings, latencies = [], []
    start = time.perf_counter()
    for lo in range(0, len(histories), CLOSED_BATCH):
        chunk = histories[lo : lo + CLOSED_BATCH]
        tick = time.perf_counter()
        rankings.extend(engine.recommend_many(chunk, top_k=TOP_K))
        latencies.extend([time.perf_counter() - tick] * len(chunk))
    elapsed = time.perf_counter() - start
    return rankings, latencies, len(histories) / elapsed


def run_sparse_decode_table():
    scale = bench_scale()
    dataset = scaled_dataset("instruments")
    histories = _histories(dataset, NUM_REQUESTS)
    records, rows = [], []
    rows.append(f"{'backend / config':<28} {'req/s':>8} {'p50 ms':>9} {'p95 ms':>9} {'speedup':>8}")

    # LCRec through the continuous scheduler, sparse vs dense per width.
    lcrec = build_lcrec_model(dataset, tasks=("seq",))
    if lcrec.lm.vocab_size < SERVING_VOCAB:
        lcrec.lm.extend_vocab(SERVING_VOCAB - lcrec.lm.vocab_size)
    run_lcrec_continuous(lcrec, histories[:8], 8, sparse=True)  # warm numpy/BLAS
    lcrec_speedups = {}
    for width in LCREC_WIDTHS:
        measured = {}
        for sparse in (False, True):
            rankings, latencies, rps, stats = run_lcrec_continuous(
                lcrec, histories, width, sparse
            )
            measured[sparse] = (rankings, latencies, rps, stats)
        dense_rank = measured[False][0]
        sparse_rank = measured[True][0]
        assert sparse_rank == dense_rank, (
            f"sparse head changed LCRec rankings at B={width}"
        )
        speedup = measured[True][2] / measured[False][2]
        lcrec_speedups[width] = speedup
        for sparse in (False, True):
            _, latencies, rps, stats = measured[sparse]
            p50, p95 = _percentiles(latencies)
            head = "sparse" if sparse else "dense"
            name = f"lcrec/continuous B={width} {head}"
            rows.append(
                f"{name:<28} {rps:>8.2f} {1000 * p50:>9.1f} {1000 * p95:>9.1f} "
                f"{(speedup if sparse else 1.0):>8.2f}"
            )
            records.append(
                {
                    "name": name,
                    "backend": "lcrec",
                    "width": width,
                    "head": head,
                    "requests_per_second": rps,
                    "p50_ms": 1000 * p50,
                    "p95_ms": 1000 * p95,
                    "stage_seconds": stats.stage_seconds(),
                }
            )

    # P5CID and TIGER: the same sweep through closed engine batches.
    p5cid = P5CID(dataset, P5CIDConfig(epochs=scale.epochs(6), seed=SEED))
    p5cid.fit(dataset)
    index_set = build_random_index_set(
        dataset.num_items, 3, TIGER_CODEBOOK, np.random.default_rng(SEED)
    )
    tiger = TIGER(index_set, TIGERConfig(epochs=scale.epochs(6), seed=SEED))
    tiger.fit(dataset)
    backends = {
        "p5cid": lambda sparse: P5CIDEngine(p5cid, sparse_head=sparse),
        "tiger": lambda sparse: TIGEREngine(tiger, sparse_head=sparse),
    }
    for backend, make_engine in backends.items():
        run_closed_batches(make_engine(True), histories[:CLOSED_BATCH])  # warm
        measured = {}
        for sparse in (False, True):
            measured[sparse] = run_closed_batches(make_engine(sparse), histories)
        assert measured[True][0] == measured[False][0], (
            f"sparse head changed {backend} rankings"
        )
        speedup = measured[True][2] / measured[False][2]
        for sparse in (False, True):
            _, latencies, rps = measured[sparse]
            p50, p95 = _percentiles(latencies)
            head = "sparse" if sparse else "dense"
            name = f"{backend}/batched B={CLOSED_BATCH} {head}"
            rows.append(
                f"{name:<28} {rps:>8.2f} {1000 * p50:>9.1f} {1000 * p95:>9.1f} "
                f"{(speedup if sparse else 1.0):>8.2f}"
            )
            records.append(
                {
                    "name": name,
                    "backend": backend,
                    "width": CLOSED_BATCH,
                    "head": head,
                    "requests_per_second": rps,
                    "p50_ms": 1000 * p50,
                    "p95_ms": 1000 * p95,
                }
            )

    rows += [
        "",
        f"workload: {NUM_REQUESTS} requests, top_k={TOP_K}, scale {scale.name}; "
        f"LCRec burst through the continuous scheduler, P5CID/TIGER closed "
        f"batches of {CLOSED_BATCH}",
        "sparse rankings asserted identical to the dense head for every "
        "backend and width",
    ]
    report("sparse_decode", "\n".join(rows))
    report_json(
        "sparse_decode",
        config={"lcrec_widths": list(LCREC_WIDTHS), "closed_batch": CLOSED_BATCH,
                "num_requests": NUM_REQUESTS, "top_k": TOP_K, "scale": scale.name,
                "seed": SEED},
        results=records,
    )
    return lcrec_speedups, records


def test_sparse_decode(benchmark):
    lcrec_speedups, records = benchmark.pedantic(
        run_sparse_decode_table, rounds=1, iterations=1
    )
    # Headline acceptance: the sparse head delivers >= 1.3x req/s for LCRec
    # continuous serving at B=16 on the same hardware and weights.  At tiny
    # scale Python dispatch dominates the arithmetic and the ratio of two
    # single wall-clock measurements is noisy, so the CI smoke only guards
    # against a real regression (with a margin for scheduler jitter).
    floor = 1.3 if bench_scale().name != "tiny" else 0.85
    assert lcrec_speedups[16] >= floor, (
        f"sparse decode speedup {lcrec_speedups[16]:.2f}x < {floor}x at B=16"
    )
