"""Shared benchmark fixtures: datasets and expensive model builds.

Every table/figure bench runs at the scale selected by ``REPRO_SCALE``
(tiny / small / full, see ``repro.bench.config``).  Expensive LC-Rec
builds are cached per session so figures that share a model (Figs. 3-6,
Table V) do not retrain it.
"""

from __future__ import annotations

import functools

import pytest

from repro.bench import bench_scale, build_lcrec_model, scaled_dataset
from repro.core import LCRec


@pytest.fixture(scope="session")
def scale():
    return bench_scale()


@functools.lru_cache(maxsize=None)
def _dataset(name: str):
    return scaled_dataset(name)


@functools.lru_cache(maxsize=None)
def _lcrec_full(dataset_name: str) -> LCRec:
    return build_lcrec_model(_dataset(dataset_name))


@functools.lru_cache(maxsize=None)
def _lcrec_seq_only(dataset_name: str) -> LCRec:
    return build_lcrec_model(_dataset(dataset_name), tasks=("seq",))


@pytest.fixture(scope="session")
def dataset_factory():
    return _dataset


@pytest.fixture(scope="session")
def lcrec_full_factory():
    return _lcrec_full


@pytest.fixture(scope="session")
def lcrec_seq_only_factory():
    return _lcrec_seq_only


@pytest.fixture(scope="session")
def games_dataset():
    return _dataset("games")


@pytest.fixture(scope="session")
def games_lcrec(games_dataset):
    return _lcrec_full("games")
