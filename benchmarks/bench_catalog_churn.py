"""Live-catalog churn: serving latency under sustained online ingestion.

The live catalog (``repro.core.LiveCatalog``) promises that item
ingestion is a *non-event* for the serving path: each ``ingest`` builds a
copy-on-write trie snapshot off the hot path and publishes it with one
atomic version swap, so decodes never wait on a catalog rebuild and
in-flight work finishes against its pinned version.  This benchmark holds
the tentpole to that promise:

1. **No p95 cliff.**  The same request stream is served twice — once
   against a frozen catalog, once with items ingested between requests at
   a sustained rate of at least 5% of the catalog per minute.  Above tiny
   scale, the churn p95 must stay within 1.25x of the frozen baseline.
2. **Pinned decodes are bit-identical.**  A decode is prefilled, a swap
   lands mid-decode, and the finished hypotheses (items, token paths,
   *and scores*) must equal a from-scratch decode against the pinned
   version — asserted at every possible swap step, at every scale.
3. **New items are recommendable within one swap.**  The very next
   exhaustive ranking after ``ingest`` returns must be able to surface
   the new item id, at every scale.
"""

from __future__ import annotations

import time

import numpy as np

from repro.bench import bench_scale, report, report_json, scaled_dataset
from repro.bench.runners import build_lcrec_model
from repro.llm import PrefixKVCache
from repro.serving import LCRecEngine, RecommendationService, RecommendRequest

REQUESTS = 24  # requests per serving phase
INGEST_EVERY = 3  # churn phase: one ingest between every N requests
TOP_K = 10
BEAM_SIZE = 10
PIN_PROBES = 4  # histories checked for mid-decode bit-identity
P95_BUDGET = 1.25  # churn p95 / frozen p95, asserted above tiny scale
MIN_CHURN_RATE = 0.05  # catalog fraction ingested per minute, ditto
SEED = 31


def _request_stream(dataset):
    pool = [list(h) for h in dataset.split.test_histories if len(h) > 0]
    return [pool[i % len(pool)] for i in range(REQUESTS)]


def _serve(service, histories, ingest=None):
    """Per-request submit+flush wall times; ``ingest()`` runs between
    requests so swap publication overlaps the serving stream the way a
    live deployment interleaves them."""
    samples = []
    inserted = 0
    start = time.perf_counter()
    for i, history in enumerate(histories):
        if ingest is not None and i % INGEST_EVERY == 0:
            ingest()
            inserted += 1
        tick = time.perf_counter()
        handle = service.submit(history, top_k=TOP_K)
        service.flush()
        ranking = handle.result()
        samples.append(time.perf_counter() - tick)
        assert len(ranking) == TOP_K
    elapsed = time.perf_counter() - start
    return {
        "requests": len(histories),
        "inserted": inserted,
        "elapsed_s": elapsed,
        "p50_ms": 1000 * float(np.percentile(samples, 50)),
        "p95_ms": 1000 * float(np.percentile(samples, 95)),
    }


def _decode_pinned(engine, prompt, swap_after=None, ingest=None):
    """Run one decode to completion, optionally firing ``ingest`` after
    ``swap_after`` steps, and return the full scored hypothesis list."""
    request = RecommendRequest(prompt_ids=list(prompt), top_k=TOP_K, beam_size=BEAM_SIZE)
    state = engine.prefill([request])
    steps = 0
    while not state.finished_rows():
        if swap_after is not None and steps == swap_after:
            ingest()
        engine.step(state)
        steps += 1
    hypotheses = engine.retire(state, [0])[0]
    return [(h.item_id, h.token_ids, h.score) for h in hypotheses], steps


def run_pinned_identity(model, catalog, histories, rng):
    """Swap at every decode step of every probe history: finished
    hypotheses must be bit-identical to a decode against the pinned trie."""
    dim = model.item_embeddings.shape[1]
    compared = 0
    for history in histories[:PIN_PROBES]:
        prompt = model.engine(prefix_cache=None).encode_history(history)
        probe_engine = model.engine(prefix_cache=None)
        probe_engine.attach_catalog(catalog)
        _, num_steps = _decode_pinned(probe_engine, prompt)
        for swap_after in range(num_steps):
            pinned_trie = catalog.trie
            engine = model.engine(prefix_cache=None)
            engine.attach_catalog(catalog)
            got, _ = _decode_pinned(
                engine,
                prompt,
                swap_after=swap_after,
                ingest=lambda: catalog.ingest(embedding=rng.normal(size=dim)),
            )
            oracle = model.engine(prefix_cache=None)
            oracle.trie = pinned_trie
            want, _ = _decode_pinned(oracle, prompt)
            assert got == want, (
                f"swap after step {swap_after} changed an in-flight decode: "
                f"{got[:3]} vs {want[:3]}"
            )
            compared += 1
    return {"decodes": compared, "histories": min(PIN_PROBES, len(histories))}


def run_ingest_visibility(model, catalog, history, rng):
    """The next ranking after ``ingest`` returns can surface the new item."""
    dim = model.item_embeddings.shape[1]
    engine = model.engine(prefix_cache=None)
    engine.attach_catalog(catalog)
    result = catalog.ingest(embedding=rng.normal(size=dim))
    assert catalog.version.version == result.version.version
    prompt = engine.encode_history(history)
    ranking = engine.rank_prompts([prompt], top_k=catalog.num_items)[0]
    assert result.item_id in ranking, (
        f"item {result.item_id} ingested at version {result.version.version} "
        "missing from the next exhaustive ranking"
    )
    return {"item_id": result.item_id, "version": result.version.version}


def run_catalog_churn_table():
    scale = bench_scale()
    dataset = scaled_dataset("instruments")
    model = build_lcrec_model(dataset, tasks=("seq",))
    rng = np.random.default_rng(SEED)
    histories = _request_stream(dataset)
    dim = model.item_embeddings.shape[1]

    # Frozen baseline: same engine shape, no catalog attached.
    frozen_engine = LCRecEngine(model, prefix_cache=PrefixKVCache(max_entries=64))
    frozen = _serve(RecommendationService(frozen_engine), histories)

    # Churn phase: live catalog attached, one ingest every INGEST_EVERY
    # requests — version swaps interleave with decodes.
    catalog = model.live_catalog(retrieval=False)
    initial_items = catalog.num_items
    churn_engine = LCRecEngine(model, prefix_cache=PrefixKVCache(max_entries=64))
    churn_engine.attach_catalog(catalog)
    service = RecommendationService(churn_engine)
    churn = _serve(
        service,
        histories,
        ingest=lambda: service.ingest_item(embedding=rng.normal(size=dim)),
    )
    churn["rate_per_min"] = churn["inserted"] / initial_items / (churn["elapsed_s"] / 60)
    churn["p95_ratio"] = churn["p95_ms"] / frozen["p95_ms"]
    assert catalog.num_items == initial_items + churn["inserted"]
    assert catalog.index_set.is_unique()

    pinned = run_pinned_identity(model, catalog, histories, rng)
    visibility = run_ingest_visibility(model, catalog, histories[0], rng)

    rows = [
        f"frozen catalog: p50 {frozen['p50_ms']:.1f} ms, "
        f"p95 {frozen['p95_ms']:.1f} ms over {frozen['requests']} requests "
        f"({initial_items} items)",
        f"under churn: p50 {churn['p50_ms']:.1f} ms, p95 {churn['p95_ms']:.1f} ms "
        f"({churn['p95_ratio']:.2f}x frozen) with {churn['inserted']} ingests "
        f"interleaved ({100 * churn['rate_per_min']:.0f}% of catalog/min)",
        f"pinned decodes: {pinned['decodes']} mid-decode swaps across "
        f"{pinned['histories']} histories, all bit-identical to the pinned "
        "version",
        f"visibility: item {visibility['item_id']} recommendable at version "
        f"{visibility['version']}, one swap after ingest",
    ]
    report("catalog_churn", "\n".join(rows))
    report_json(
        "catalog_churn",
        config={
            "requests": REQUESTS, "ingest_every": INGEST_EVERY,
            "top_k": TOP_K, "beam_size": BEAM_SIZE,
            "initial_items": initial_items, "p95_budget": P95_BUDGET,
            "min_churn_rate_per_min": MIN_CHURN_RATE, "scale": scale.name,
        },
        results=[
            {"name": "frozen", **frozen},
            {"name": "churn", **churn},
            {"name": "pinned_identity", **pinned},
            {"name": "ingest_visibility", **visibility},
        ],
    )
    return {"frozen": frozen, "churn": churn, "pinned": pinned}


def test_catalog_churn(benchmark):
    results = benchmark.pedantic(run_catalog_churn_table, rounds=1, iterations=1)
    frozen, churn, pinned = results["frozen"], results["churn"], results["pinned"]
    strict = bench_scale().name != "tiny"

    # Correctness gates hold at every scale: the run itself asserted
    # bit-identity for every mid-decode swap and one-swap visibility.
    assert pinned["decodes"] > 0
    assert churn["inserted"] > 0

    # Latency gates above tiny scale: the churn stream must sustain at
    # least MIN_CHURN_RATE of the catalog per minute (otherwise the p95
    # comparison is vacuous) and stay inside the P95_BUDGET cliff bound.
    if strict:
        assert churn["rate_per_min"] >= MIN_CHURN_RATE, (
            f"churn phase only sustained {100 * churn['rate_per_min']:.1f}% "
            "of the catalog per minute"
        )
        assert churn["p95_ms"] <= P95_BUDGET * frozen["p95_ms"], (
            f"p95 cliff under churn: {churn['p95_ms']:.1f} ms vs frozen "
            f"{frozen['p95_ms']:.1f} ms"
        )
