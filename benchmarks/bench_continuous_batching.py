"""Continuous batching vs deadline-flush serving under Poisson arrivals.

The deadline-batched loop (PR 2) decodes in closed batches: a request
arriving one tick after a flush waits for the whole in-flight batch to
finish every trie level — up to a full latency budget of queueing plus a
whole batch decode — before its own decode starts.  Continuous batching
admits it at the next *trie-level boundary* instead (milliseconds away)
and delivers every request the moment its own rows finish.

This benchmark replays one interactive open-loop workload — requests
arriving at Poisson times, each submitter blocking only on its own result
— through the same model and micro-batch width in both modes, and
measures what the ROADMAP north-star actually cares about: requests/sec
and p50/p95 end-to-end latency (submit → ranked list in hand).

Correctness is asserted, not assumed: both modes must return identical
rankings, spot-checked against the single-request reference loop
(``beam_search_items_single``) — continuous admission is a scheduling
change, never an approximation.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.bench import bench_scale, report, report_json, scaled_dataset
from repro.bench.runners import build_lcrec_model
from repro.llm import beam_search_items_single, ranked_item_ids
from repro.serving import LCRecEngine, MicroBatcherConfig, RecommendationService

BATCH_WIDTH = 8  # max_batch_size / joined-width cap, both modes
NUM_REQUESTS = 48
MEAN_GAP_MS = 12.0  # Poisson arrivals: ~83 req/s offered load
DEADLINE_MS = 60.0  # deadline-flush latency budget
TOP_K = 10
SEED = 7


def _histories(dataset, count):
    pool = dataset.split.test_histories
    return [list(pool[i % len(pool)]) for i in range(count)]


def run_mode(model, histories, gaps, mode):
    """Open-loop replay: Poisson submits, per-request completion latency."""
    service = RecommendationService(
        LCRecEngine(model),
        batcher=MicroBatcherConfig(max_batch_size=BATCH_WIDTH),
        deadline_ms=DEADLINE_MS,
        mode=mode,
    )
    latencies = [0.0] * len(histories)
    completed = [0.0] * len(histories)
    rankings: list[list[int] | None] = [None] * len(histories)

    def waiter(index, handle, submitted_at):
        rankings[index] = handle.result(timeout=120.0)
        completed[index] = time.perf_counter()
        latencies[index] = completed[index] - submitted_at

    threads = []
    with service:
        start = time.perf_counter()
        for index, (history, gap) in enumerate(zip(histories, gaps)):
            time.sleep(gap)
            submitted_at = time.perf_counter()
            handle = service.submit(history, top_k=TOP_K)
            thread = threading.Thread(
                target=waiter, args=(index, handle, submitted_at)
            )
            thread.start()
            threads.append(thread)
        for thread in threads:
            thread.join(timeout=180)
    assert all(r is not None for r in rankings), f"{mode}: requests lost"
    # Serving span: first submit until the last ranked list was in hand.
    elapsed = max(completed) - start
    return rankings, np.asarray(latencies), elapsed, service


def run_continuous_batching_table():
    dataset = scaled_dataset("instruments")
    model = build_lcrec_model(dataset, tasks=("seq",))
    histories = _histories(dataset, NUM_REQUESTS)
    gaps = np.random.default_rng(SEED).exponential(
        MEAN_GAP_MS / 1000.0, NUM_REQUESTS
    )

    run_mode(model, histories[:BATCH_WIDTH], gaps[:BATCH_WIDTH], "deadline")  # warm
    results = {}
    for mode in ("deadline", "continuous"):
        rankings, latencies, elapsed, service = run_mode(
            model, histories, gaps, mode
        )
        results[mode] = {
            "rankings": rankings,
            "p50": float(np.percentile(latencies, 50)),
            "p95": float(np.percentile(latencies, 95)),
            "rps": NUM_REQUESTS / elapsed,
            "stats": service.stats,
        }

    # Scheduling must never change the math: identical rankings across
    # modes, spot-checked against the single-request reference loop.
    assert results["continuous"]["rankings"] == results["deadline"]["rankings"], (
        "continuous admission changed rankings"
    )
    beam = max(model.config.beam_size, TOP_K)
    for history, ranked in list(zip(histories, results["continuous"]["rankings"]))[:3]:
        prompt = model.encode_instruction(model.seq_instruction(history))
        reference = beam_search_items_single(model.lm, prompt, model.trie, beam_size=beam)
        assert ranked == ranked_item_ids(reference, TOP_K), "parity with reference broke"

    deadline, continuous = results["deadline"], results["continuous"]
    stats = continuous["stats"]
    rows = [
        f"{'config':<22} {'req/s':>8} {'p50 ms':>9} {'p95 ms':>9}",
        f"{'deadline-flush (PR 2)':<22} {deadline['rps']:>8.2f} "
        f"{1000 * deadline['p50']:>9.1f} {1000 * deadline['p95']:>9.1f}",
        f"{'continuous':<22} {continuous['rps']:>8.2f} "
        f"{1000 * continuous['p50']:>9.1f} {1000 * continuous['p95']:>9.1f}",
        "",
        f"workload: {NUM_REQUESTS} requests, Poisson arrivals "
        f"(mean gap {MEAN_GAP_MS:.0f} ms), width cap {BATCH_WIDTH}, "
        f"deadline {DEADLINE_MS:.0f} ms",
        f"continuous: {stats.admissions} admissions "
        f"({stats.joins} joined a live decode), "
        f"p95 {deadline['p95'] / max(continuous['p95'], 1e-9):.2f}x better, "
        f"p50 {deadline['p50'] / max(continuous['p50'], 1e-9):.2f}x better",
    ]
    report("continuous_batching", "\n".join(rows))
    report_json(
        "continuous_batching",
        config={"num_requests": NUM_REQUESTS, "mean_gap_ms": MEAN_GAP_MS,
                "width_cap": BATCH_WIDTH, "deadline_ms": DEADLINE_MS,
                "top_k": TOP_K, "scale": bench_scale().name},
        results=[
            {"name": mode, "requests_per_second": entry["rps"],
             "p50_ms": 1000 * entry["p50"], "p95_ms": 1000 * entry["p95"],
             "stage_seconds": entry["stats"].stage_seconds()}
            for mode, entry in results.items()
        ],
    )
    return results


def test_continuous_batching_latency(benchmark):
    results = benchmark.pedantic(run_continuous_batching_table, rounds=1,
                                 iterations=1)
    deadline, continuous = results["deadline"], results["continuous"]
    # Headline acceptance: continuous admission beats deadline flushing on
    # p95 latency at equal or better throughput under Poisson arrivals.
    assert continuous["p95"] < deadline["p95"], (
        f"continuous p95 {1000 * continuous['p95']:.1f} ms not better than "
        f"deadline p95 {1000 * deadline['p95']:.1f} ms"
    )
    assert continuous["rps"] >= 0.95 * deadline["rps"], (
        f"continuous req/s {continuous['rps']:.2f} fell behind "
        f"deadline req/s {deadline['rps']:.2f}"
    )
