"""Prefix KV cache: hit rate and req/s against the PR 1 batched baseline.

LC-Rec serving traffic is template-heavy by construction: every
recommendation instruction renders from a handful of templates, a
returning user's next prompt extends their previous one (the history grew
by the items they just interacted with), and hot queries repeat verbatim
(feed refreshes).  This benchmark replays exactly that workload — per-user
*sessions* arriving in waves (one wave per session turn, then refresh
waves re-issuing the last query) — through the micro-batched service at
B=16, with and without the cross-request
:class:`repro.llm.PrefixKVCache`.

The model is built at *serving scale* (dim 256, 4 layers — the repo-scale
stand-in for the paper's LLaMA backbone) rather than the dim-64 tier-1
toy: a prompt-prefill optimization can only be measured where prefill is
compute-bound, and at tiny dims the decode is pure Python/numpy dispatch
overhead.  Training is kept minimal — throughput does not care about model
quality, and every parity assertion compares engines on the *same*
weights.

The no-cache baseline already includes this PR's engine speedups (folded
GEMM decode, last-position-only prompt head), so the reported speedup
*understates* the gap to the actual PR 1 code.

Measured: requests/sec, per-request latency, the cache's token hit rate
(fraction of prompt tokens whose transformer forward was skipped), and a
hard parity assertion that cached rankings equal both the uncached
batched path and the single-request reference loop.
"""

from __future__ import annotations

import time

from repro.bench import bench_scale, report, report_json, scaled_dataset
from repro.core import LCRec, LCRecConfig
from repro.core import templates as T
from repro.core.indexer import SemanticIndexerConfig
from repro.core.tasks import AlignmentTaskConfig
from repro.llm import (
    LMConfig,
    PrefixKVCache,
    PretrainConfig,
    TuningConfig,
    beam_search_items_single,
    ranked_item_ids,
)
from repro.quantization import RQVAEConfig, RQVAETrainerConfig
from repro.serving import LCRecEngine, MicroBatcherConfig, RecommendationService

BATCH_SIZE = 16
NUM_USERS = 24
GROWTH_TURNS = 4
REFRESH_WAVES = 3
TOP_K = 10


def build_serving_scale_model(dataset) -> LCRec:
    """An LC-Rec with a serving-scale LM (see module docstring)."""
    config = LCRecConfig(
        lm=LMConfig(dim=256, num_layers=4, num_heads=8, ffn_hidden=704, max_seq_len=256),
        pretrain=PretrainConfig(steps=30, batch_size=16, seq_len=64),
        indexer=SemanticIndexerConfig(
            rqvae=RQVAEConfig(latent_dim=32, hidden_dims=(96, 48), num_levels=4, codebook_size=24),
            trainer=RQVAETrainerConfig(epochs=30, batch_size=512),
        ),
        tasks=AlignmentTaskConfig(tasks=("seq",), max_history=10, seq_per_user=2),
        tuning=TuningConfig(epochs=1, batch_size=16, lr=3e-3, max_len=220),
        beam_size=20,
    )
    return LCRec(dataset, config).build()


def personalized_instruction(model, history, intention):
    """Render the paper's personalized-intention task (Sec. III-C3b).

    The longest serving template: a fixed ~35-token preamble/connective
    frame around the user's history and free-text intention — the shape
    where cross-request prefix collisions are largest.
    """
    history = history[-model.config.tasks.max_history :]
    history_text = " , ".join(model.index_set.index_text(i) for i in history)
    return T.ITE_PERSONALIZED_TEMPLATES[0].format(history=history_text, intention=intention)


def session_waves(model, dataset):
    """Instruction waves: growth turns, then refresh (hot-query) waves.

    A user's turn-``t`` history is their full history truncated
    ``GROWTH_TURNS - 1 - t`` items short, so consecutive turns extend the
    same prompt the way a live session does; the refresh waves re-issue
    every user's final query verbatim.
    """
    pool = dataset.split.test_histories
    catalog = dataset.catalog
    histories = [list(pool[i % len(pool)]) for i in range(NUM_USERS)]
    waves, last = [], {}
    for turn in range(GROWTH_TURNS):
        wave = []
        for user, history in enumerate(histories):
            cut = max(len(history) - (GROWTH_TURNS - 1 - turn), 1)
            intention = f"something like {catalog[history[-1]].title}"
            instruction = personalized_instruction(model, history[:cut], intention)
            last[user] = instruction
            wave.append(instruction)
        waves.append(wave)
    for _ in range(REFRESH_WAVES):
        waves.append([last[user] for user in range(NUM_USERS)])
    return waves


def run_service(model, waves, prefix_cache):
    service = RecommendationService(
        LCRecEngine(model, prefix_cache=prefix_cache),
        batcher=MicroBatcherConfig(max_batch_size=BATCH_SIZE),
    )
    rankings = []
    start = time.perf_counter()
    for wave in waves:
        pending = [service.submit_instruction(i, top_k=TOP_K) for i in wave]
        service.flush()
        rankings.append([p.result() for p in pending])
    elapsed = time.perf_counter() - start
    return rankings, elapsed, service


def run_prefix_cache_table():
    dataset = scaled_dataset("instruments")
    model = build_serving_scale_model(dataset)
    waves = session_waves(model, dataset)
    num_requests = sum(len(w) for w in waves)

    run_service(model, waves[:1], prefix_cache=False)  # warm numpy/BLAS
    baseline_rankings, baseline_s, _ = run_service(model, waves, prefix_cache=False)
    cache = PrefixKVCache(max_entries=8 * NUM_USERS)
    cached_rankings, cached_s, service = run_service(model, waves, prefix_cache=cache)

    assert cached_rankings == baseline_rankings, "prefix cache changed rankings"
    # Spot-check the first wave against the single-request reference loop.
    beam = max(model.config.beam_size, TOP_K)
    for instruction, ranked in list(zip(waves[0], cached_rankings[0]))[:3]:
        prompt = model.encode_instruction(instruction)
        reference = beam_search_items_single(model.lm, prompt, model.trie, beam_size=beam)
        assert ranked == ranked_item_ids(reference, TOP_K), "parity with reference broke"

    baseline_rps = num_requests / baseline_s
    cached_rps = num_requests / cached_s
    stats = cache.stats
    rows = [
        f"{'config':<24} {'req/s':>8} {'ms/req':>9} {'speedup':>8}",
        f"{'batched B=16 (PR 1)':<24} {baseline_rps:>8.2f} "
        f"{1000 * baseline_s / num_requests:>9.1f} {1.0:>8.2f}",
        f"{'batched B=16 + prefix':<24} {cached_rps:>8.2f} "
        f"{1000 * cached_s / num_requests:>9.1f} {cached_rps / baseline_rps:>8.2f}",
        "",
        f"requests: {num_requests} ({NUM_USERS} users x {GROWTH_TURNS} session turns "
        f"+ {REFRESH_WAVES} refresh waves)",
        f"prefix cache: {stats.hits}/{stats.lookups} request hits, "
        f"token hit rate {stats.token_hit_rate:.1%} "
        f"({stats.reused_tokens}/{stats.prompt_tokens} prompt tokens skipped), "
        f"{len(cache)} entries, {stats.evictions} evictions",
        f"service: mean batch {service.stats.mean_batch_size:.1f}, "
        f"mean padding {service.stats.mean_padding_fraction:.1%}",
    ]
    report("prefix_cache", "\n".join(rows))
    report_json(
        "prefix_cache",
        config={"batch_size": BATCH_SIZE, "num_users": NUM_USERS,
                "growth_turns": GROWTH_TURNS, "refresh_waves": REFRESH_WAVES,
                "num_requests": num_requests, "top_k": TOP_K,
                "scale": bench_scale().name},
        results=[
            {"name": "batched B=16", "requests_per_second": baseline_rps},
            {"name": "batched B=16 + prefix", "requests_per_second": cached_rps,
             "speedup": cached_rps / baseline_rps,
             "token_hit_rate": stats.token_hit_rate,
             "stage_seconds": service.stats.stage_seconds()},
        ],
    )
    return baseline_rps, cached_rps, stats


def test_prefix_cache_throughput(benchmark):
    baseline_rps, cached_rps, stats = benchmark.pedantic(
        run_prefix_cache_table, rounds=1, iterations=1
    )
    # Headline acceptance: >= 1.3x req/s over the PR 1 batched path at B=16
    # on this template-heavy workload, with most prompt tokens served from
    # the cache once sessions are warm.
    assert cached_rps >= 1.3 * baseline_rps, (
        f"prefix cache speedup {cached_rps / baseline_rps:.2f}x < 1.3x"
    )
    assert stats.token_hit_rate > 0.5
