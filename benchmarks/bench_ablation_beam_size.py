"""Extension ablation: beam width vs full-ranking quality (Games).

The paper fixes beam size 20 for all generative models (Sec. IV-A3); this
ablation sweeps the beam width to show the quality/compute trade-off of
trie-constrained generation.  Expectation: HR@10 grows with beam width
and saturates near the paper's setting.
"""

from repro.bench import bench_scale, report
from repro.eval import evaluate_generative_model

BEAMS = (5, 10, 20, 40)


def run_sweep(games_dataset, games_lcrec):
    scale = bench_scale()
    limit = min(scale.max_eval_users, 80)
    histories = games_dataset.split.test_histories[:limit]
    targets = games_dataset.split.test_targets[:limit]
    rows = [f"{'beam':>5} {'HR@5':>8} {'HR@10':>8} {'NDCG@10':>8}"]
    by_beam = {}
    for beam in BEAMS:
        games_lcrec.config.beam_size = beam
        metric_report = evaluate_generative_model(
            lambda history: games_lcrec.recommend(history, top_k=10),
            histories, targets)
        by_beam[beam] = metric_report
        rows.append(f"{beam:>5} {metric_report['HR@5']:8.4f} "
                    f"{metric_report['HR@10']:8.4f} "
                    f"{metric_report['NDCG@10']:8.4f}")
    games_lcrec.config.beam_size = 20  # restore the paper's setting
    report("ablation_beam_size", "\n".join(rows))
    return by_beam


def test_beam_size(benchmark, games_dataset, games_lcrec):
    by_beam = benchmark.pedantic(run_sweep,
                                 args=(games_dataset, games_lcrec),
                                 rounds=1, iterations=1)
    # Wider beams can only add candidates: HR@10 must not degrade much.
    assert by_beam[40]["HR@10"] >= by_beam[5]["HR@10"] - 1e-9
