"""Hybrid retrieval tier: fast-lane latency, narrowed decode, degraded burst.

The retrieval tier (``repro.retrieval``) makes three promises on top of
the LLM serving stack; this benchmark measures all three and asserts the
correctness contract that makes the hybrid lane trustworthy:

1. **The fast lane is fast.**  ``RetrievalRecommender.recommend`` is a
   numpy-only clustered-KNN probe — no model forward — so its per-call
   p95 must stay sub-millisecond.  That budget is what makes it cheap
   enough to answer *every* shed request.
2. **Narrowing changes the work, never the ranking.**  The
   ``HybridRecommender`` decodes over a candidate-narrowed trie
   (smaller sparse-head unions per step) while the constrained
   log-softmax keeps renormalising over the full trie — so the narrowed
   decode must rank the candidate set bit-identically to a full decode
   restricted to the same candidates post hoc.  Asserted here request
   for request, not just in the unit tests.
3. **Overload degrades to retrieval, not to rejections.**  A burst past
   the cluster's admission bound is served by the fallback lane on
   handles flagged ``degraded`` (typed, never masquerading as
   LLM-quality), with the fast-lane answer arriving in sub-millisecond
   p95 — while without a fallback the same burst sheds outright.

A recall@k gate closes the loop on quality: retrieval candidates must
beat the popularity baseline on held-out next-item prediction (paired
bootstrap over the same users), otherwise the "graceful" degradation is
just a fancy way to serve noise.
"""

from __future__ import annotations

import time

import numpy as np

from repro.bench import bench_scale, report, report_json, scaled_dataset
from repro.bench.runners import build_lcrec_model
from repro.eval.metrics import hit_ratio_at_k
from repro.eval.significance import paired_bootstrap
from repro.llm import PrefixKVCache
from repro.retrieval import ClusteredKNNConfig, HybridRecommender, RetrievalRecommender
from repro.serving import LCRecEngine, MicroBatcherConfig, Overloaded, ServingCluster

SESSIONS = 16
REFRESH = 4  # burst segment: each session re-sends its prompt this many times
BATCH_WIDTH = 4
FLUSH_MS = 10.0  # worker deadline-flush cadence
MAX_BACKLOG = 2  # per-worker admission bound (small: the burst must overflow)
BURST_WORKERS = 2
LATENCY_CALLS = 256  # retrieval fast-lane timing sample
DECODE_ROWS = 12  # histories through the narrowed-vs-full decode comparison
NUM_CANDIDATES = 16  # retrieval candidates handed to the narrowed decode
TOP_K = 10
RECALL_K = 10
SEED = 23


def _knn_config(num_items: int) -> ClusteredKNNConfig:
    """Cluster count scaled to the catalog, probe width a quarter of it."""
    n_clusters = max(2, min(16, num_items // 8))
    return ClusteredKNNConfig(
        n_clusters=n_clusters, n_probe=max(1, n_clusters // 4), seed=SEED
    )


def run_retrieval_latency(retriever, histories):
    """Per-call wall time of the numpy fast lane, p50/p95 in milliseconds."""
    retriever.recommend(histories[0], TOP_K)  # warm
    samples = []
    for call in range(LATENCY_CALLS):
        history = histories[call % len(histories)]
        start = time.perf_counter()
        retriever.recommend(history, TOP_K)
        samples.append(time.perf_counter() - start)
    return {
        "calls": LATENCY_CALLS,
        "p50_ms": 1000 * float(np.percentile(samples, 50)),
        "p95_ms": 1000 * float(np.percentile(samples, 95)),
    }


def _assert_narrowed_parity(engine, hybrid, histories):
    """Narrowed decode == full decode restricted to the candidates, per row.

    The full-decode oracle is an exhaustive ranking (``top_k=num_items``;
    LCRec's token vocabulary is larger than its catalog, so the beam is
    not clamped) filtered to each row's candidate set post hoc.
    """
    exhaustive = engine.recommend_many(histories, top_k=engine.trie.num_items)
    compared = 0
    for history, full_ranking in zip(histories, exhaustive):
        candidates = hybrid.candidates(history, TOP_K)
        if not candidates:
            continue
        width = min(TOP_K, len(candidates))
        narrowed = engine.narrowed(candidates).recommend_many([history], top_k=width)[0]
        candidate_set = set(candidates)
        restricted = [item for item in full_ranking if item in candidate_set][:width]
        assert narrowed == restricted, (
            f"narrowed decode diverged from restricted full decode: "
            f"{narrowed} vs {restricted}"
        )
        compared += 1
    assert compared > 0, "no history produced candidates to compare"
    return compared


def run_decode_comparison(engine, hybrid, histories):
    """Narrowed-vs-full decode throughput, request for request.

    Both lanes are timed per request (batch of one) because that is the
    shape the hybrid lane serves: each history gets its own candidate
    set, so narrowed decodes cannot share a batch the way an unnarrowed
    full decode over the same rows could.  The narrowed timing includes
    the retrieval probe and the sub-trie build — the whole lane, not
    just the smaller GEMM.
    """
    parity_rows = _assert_narrowed_parity(engine, hybrid, histories)
    engine.recommend_many(histories[:1], top_k=TOP_K)  # warm
    hybrid.recommend(histories[0], top_k=TOP_K)

    start = time.perf_counter()
    full = [engine.recommend_many([h], top_k=TOP_K)[0] for h in histories]
    full_elapsed = time.perf_counter() - start

    start = time.perf_counter()
    narrowed = [hybrid.recommend(h, top_k=TOP_K) for h in histories]
    narrowed_elapsed = time.perf_counter() - start

    assert all(len(ranking) == TOP_K for ranking in narrowed)
    return {
        "rows": len(histories),
        "parity_rows": parity_rows,
        "full_rps": len(full) / full_elapsed,
        "narrowed_rps": len(narrowed) / narrowed_elapsed,
        "speedup": full_elapsed / narrowed_elapsed,
    }


def _burst_traffic(dataset):
    pool = dataset.split.test_histories
    per_session = [list(pool[s % len(pool)]) for s in range(SESSIONS)]
    return [
        (f"user:{s}", per_session[s])
        for _ in range(REFRESH)
        for s in range(SESSIONS)
    ]


def run_degraded_burst(engine_for, retriever, traffic):
    """Back-to-back burst through a fallback-configured cluster.

    Every request resolves to a ranking: admitted ones through the LLM
    lane, overflow through the retrieval fast lane on ``degraded``
    handles.  Nothing raises ``Overloaded`` and nothing hangs — and the
    degraded answers arrive in sub-millisecond admission latency.
    """
    cluster = ServingCluster(
        engine_for,
        num_workers=BURST_WORKERS,
        batcher=MicroBatcherConfig(max_batch_size=BATCH_WIDTH),
        deadline_ms=FLUSH_MS,
        max_backlog=MAX_BACKLOG,
        fallback=retriever,
    )
    fast_lane_ms = []
    pending = []
    shed = 0
    with cluster:
        # Cold start rides the same front door: an empty history answers
        # from the popularity lane without touching a worker.
        cold = cluster.submit([], top_k=TOP_K)
        assert cold.degraded and cold.reason == "cold_start"
        assert len(cold.result()) == TOP_K
        for session_key, history in traffic:
            start = time.perf_counter()
            handle = cluster.submit(history, top_k=TOP_K, session_key=session_key)
            elapsed = time.perf_counter() - start
            if handle.degraded:  # born served by the fast lane
                fast_lane_ms.append(1000 * elapsed)
                assert len(handle.result()) == TOP_K
            else:
                pending.append(handle)
        for handle in pending:
            try:
                ranking = handle.result(timeout=180.0)
                assert len(ranking) == TOP_K
            except Overloaded:
                shed += 1
    degraded = len(fast_lane_ms)
    assert cluster.degraded_requests == degraded + 1, "degraded counters diverged"
    assert cluster.stats.cold_start == 1
    return {
        "requests": len(traffic),
        "degraded": degraded,
        "full_served": len(pending) - shed,
        "shed": shed,
        "fallback_rate": degraded / len(traffic),
        "fast_lane_p95_ms": (
            float(np.percentile(fast_lane_ms, 95)) if fast_lane_ms else float("nan")
        ),
    }


def run_shed_baseline(engine_for, traffic):
    """The same burst with no fallback: typed rejections, for contrast."""
    cluster = ServingCluster(
        engine_for,
        num_workers=BURST_WORKERS,
        batcher=MicroBatcherConfig(max_batch_size=BATCH_WIDTH),
        deadline_ms=FLUSH_MS,
        max_backlog=MAX_BACKLOG,
    )
    handles = []
    shed = 0
    with cluster:
        for session_key, history in traffic:
            handles.append(
                cluster.submit(history, top_k=TOP_K, session_key=session_key)
            )
        for handle in handles:
            try:
                handle.result(timeout=180.0)
            except Overloaded:
                shed += 1
    return {"requests": len(traffic), "shed": shed}


def run_recall_gate(retriever, dataset, max_users):
    """Retrieval vs the popularity baseline on held-out next items."""
    histories = dataset.split.test_histories[:max_users]
    targets = dataset.split.test_targets[:max_users]
    retrieval_ranked = retriever.recommend_many(histories, top_k=RECALL_K)
    popularity_prefix = [int(item) for item in retriever.popularity_order[:RECALL_K]]
    popularity_ranked = [popularity_prefix] * len(histories)
    boot = paired_bootstrap(
        retrieval_ranked, popularity_ranked, targets, metric="hr", k=RECALL_K
    )
    return {
        "users": len(targets),
        "hr_retrieval": hit_ratio_at_k(retrieval_ranked, targets, RECALL_K),
        "hr_popularity": hit_ratio_at_k(popularity_ranked, targets, RECALL_K),
        "win_rate": boot.win_rate,
        "significant": boot.significant,
    }


def run_hybrid_retrieval_table():
    scale = bench_scale()
    dataset = scaled_dataset("instruments")
    model = build_lcrec_model(dataset, tasks=("seq",))
    retriever = RetrievalRecommender.from_lcrec(model, _knn_config(dataset.num_items))
    engine = LCRecEngine(model, prefix_cache=False)
    hybrid = HybridRecommender(engine, retriever, num_candidates=NUM_CANDIDATES)
    histories = [list(h) for h in dataset.split.test_histories]

    latency = run_retrieval_latency(retriever, histories)
    decode = run_decode_comparison(engine, hybrid, histories[:DECODE_ROWS])

    traffic = _burst_traffic(dataset)
    engine_for = lambda: LCRecEngine(  # noqa: E731 - worker engine factory
        model, prefix_cache=PrefixKVCache(max_entries=32)
    )
    burst = run_degraded_burst(engine_for, retriever, traffic)
    baseline = run_shed_baseline(engine_for, traffic)
    recall = run_recall_gate(retriever, dataset, scale.max_eval_users)

    rows = [
        f"retrieval fast lane: p50 {latency['p50_ms']:.3f} ms, "
        f"p95 {latency['p95_ms']:.3f} ms over {latency['calls']} calls "
        f"({retriever.index.num_clusters} clusters, "
        f"{retriever.index.num_items} items)",
        f"narrowed decode: {decode['narrowed_rps']:.1f} req/s vs full "
        f"{decode['full_rps']:.1f} req/s ({decode['speedup']:.2f}x), "
        f"ranking parity asserted on {decode['parity_rows']} histories "
        f"({NUM_CANDIDATES} candidates)",
        f"burst x{BURST_WORKERS} workers (backlog {MAX_BACKLOG}): "
        f"{burst['degraded']}/{burst['requests']} served degraded "
        f"(fallback rate {burst['fallback_rate']:.2f}, fast-lane p95 "
        f"{burst['fast_lane_p95_ms']:.3f} ms), {burst['full_served']} via the "
        f"LLM lane, {burst['shed']} shed",
        f"no-fallback baseline: {baseline['shed']}/{baseline['requests']} "
        f"shed outright on the same burst",
        f"recall gate: HR@{RECALL_K} retrieval {recall['hr_retrieval']:.3f} vs "
        f"popularity {recall['hr_popularity']:.3f} over {recall['users']} users "
        f"(bootstrap win rate {recall['win_rate']:.2f}, "
        f"significant={recall['significant']})",
    ]
    report("hybrid_retrieval", "\n".join(rows))
    report_json(
        "hybrid_retrieval",
        config={
            "sessions": SESSIONS, "refresh": REFRESH, "batch_width": BATCH_WIDTH,
            "max_backlog": MAX_BACKLOG, "burst_workers": BURST_WORKERS,
            "num_candidates": NUM_CANDIDATES, "top_k": TOP_K,
            "recall_k": RECALL_K, "n_clusters": retriever.index.num_clusters,
            "scale": scale.name,
        },
        results=[
            {"name": "retrieval_latency", **latency},
            {"name": "narrowed_vs_full_decode", **decode},
            {"name": "degraded_burst", **burst},
            {"name": "shed_baseline", **baseline},
            {"name": "recall_gate", **recall},
        ],
    )
    return {
        "latency": latency,
        "decode": decode,
        "burst": burst,
        "baseline": baseline,
        "recall": recall,
    }


def test_hybrid_retrieval(benchmark):
    results = benchmark.pedantic(run_hybrid_retrieval_table, rounds=1, iterations=1)
    latency, decode = results["latency"], results["decode"]
    burst, baseline, recall = results["burst"], results["baseline"], results["recall"]
    strict = bench_scale().name != "tiny"

    # The fast lane earns its name: sub-millisecond p95, always — it is a
    # handful of numpy gathers, and the whole degradation story rests on
    # it being too cheap to meter.
    assert latency["p95_ms"] < 1.0, (
        f"retrieval fast-lane p95 {latency['p95_ms']:.3f} ms is not "
        "sub-millisecond"
    )

    # Parity was asserted request-for-request inside the run; here only
    # guard that the narrowed decode is not a throughput regression.
    assert decode["parity_rows"] > 0
    if strict:
        assert decode["narrowed_rps"] >= 0.8 * decode["full_rps"], (
            f"narrowed decode {decode['narrowed_rps']:.1f} req/s fell behind "
            f"full decode {decode['full_rps']:.1f} req/s"
        )

    # The burst must actually overflow admission, every overflow must be
    # served degraded (nothing shed), and the degraded answers must come
    # from the sub-millisecond lane.  The no-fallback baseline proves the
    # same burst sheds without the retrieval tier.
    assert burst["degraded"] > 0, "burst never hit the fallback lane"
    assert burst["shed"] == 0, "requests shed despite a configured fallback"
    assert burst["full_served"] > 0, "burst starved the LLM lane entirely"
    assert baseline["shed"] > 0, "no-fallback baseline shed nothing"
    assert burst["fast_lane_p95_ms"] < 1.0, (
        f"degraded fast-lane p95 {burst['fast_lane_p95_ms']:.3f} ms is not "
        "sub-millisecond"
    )

    # Quality gate: retrieval candidates must not lose to the popularity
    # baseline on held-out next items (at tiny scale the catalogs are too
    # small for the gap to be stable, so the gate applies above it).
    if strict:
        assert recall["hr_retrieval"] >= recall["hr_popularity"], (
            f"retrieval HR@{RECALL_K} {recall['hr_retrieval']:.3f} lost to "
            f"popularity {recall['hr_popularity']:.3f}"
        )
