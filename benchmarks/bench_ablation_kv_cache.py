"""Extension ablation: KV-cache speedup of autoregressive decoding.

Paper Sec. III-D2 analyses inference cost: naive autoregressive decoding
is O(H * N^2 * d * L); caching attention keys/values reduces it to
O(N^2 d L + H N d L).  This benchmark measures the wall-clock effect on
our TinyLlama by greedy-decoding with the cache versus recomputing the
full prefix each step.
"""

import time

import numpy as np

from repro.bench import report
from repro.llm import greedy_generate
from repro.tensor import no_grad


def _generate_without_cache(model, prompt_ids, max_new_tokens):
    """Reference decoder that re-encodes the whole prefix every step."""
    tokens = list(prompt_ids)
    generated = []
    with no_grad():
        for _ in range(max_new_tokens):
            logits = model.forward(
                np.asarray(tokens, dtype=np.int64)[None, :]).data[0, -1]
            next_id = int(logits.argmax())
            generated.append(next_id)
            tokens.append(next_id)
    return generated


def run_comparison(games_lcrec):
    model = games_lcrec.lm
    tokenizer = games_lcrec.tokenizer
    history = games_lcrec.dataset.split.test_histories[0]
    instruction = games_lcrec.seq_instruction(history)
    from repro.llm.instruction import prompt_ids as encode_prompt

    prompt = encode_prompt(tokenizer, instruction)
    new_tokens = 24

    start = time.perf_counter()
    cached = greedy_generate(model, prompt, new_tokens,
                             eos_id=tokenizer.vocab.eos_id)
    cached_seconds = time.perf_counter() - start

    start = time.perf_counter()
    uncached = _generate_without_cache(model, prompt, new_tokens)
    uncached_seconds = time.perf_counter() - start

    speedup = uncached_seconds / max(cached_seconds, 1e-9)
    rows = [
        f"prompt length: {len(prompt)} tokens, generating {new_tokens}",
        f"with KV cache   : {cached_seconds * 1000:8.1f} ms",
        f"without KV cache: {uncached_seconds * 1000:8.1f} ms",
        f"speedup: {speedup:.2f}x",
    ]
    report("ablation_kv_cache", "\n".join(rows))
    return cached, uncached[:len(cached)], speedup


def test_kv_cache(benchmark, games_lcrec):
    cached, uncached, speedup = benchmark.pedantic(
        run_comparison, args=(games_lcrec,), rounds=1, iterations=1)
    # Correctness: both decoders produce the same greedy continuation.
    assert cached == uncached[:len(cached)]
    # Efficiency: caching must not be slower.
    assert speedup > 1.0
