"""Figure 5 case study: hierarchical semantics of item indices (Games).

(a) Generate an item's title from 1, 2, 3 and 4 index tokens — output
should converge toward the true title as the prefix grows.
(b) Compare related-item retrieval by shared index prefix (language +
collaborative semantics) against raw text-embedding cosine (language
only).
"""

import numpy as np

from repro.analysis import generate_from_prefixes
from repro.bench import report


def run_case_study(games_dataset, games_lcrec):
    rng = np.random.default_rng(9)
    rows = []

    # (a) Prefix-conditioned title generation for two showcase items.
    showcase = rng.choice(games_dataset.num_items, size=2, replace=False)
    convergence_hits = 0
    for item_id in showcase:
        study = generate_from_prefixes(games_lcrec, int(item_id))
        rows.append(f"item {item_id}: true title = {study.true_title!r}")
        tokens = games_lcrec.index_set.token_strings(int(item_id))
        for depth, text in enumerate(study.generations, 1):
            rows.append(f"  {''.join(tokens[:depth]):<30} -> {text[:64]}")
        true_words = set(study.true_title.lower().split())
        last_words = set(study.generations[-1].split())
        first_words = set(study.generations[0].split())
        if len(true_words & last_words) >= len(true_words & first_words):
            convergence_hits += 1
        rows.append("")

    # (b) Related items: index-prefix neighbourhood vs text cosine.
    anchor = int(rng.choice(games_dataset.num_items))
    prefix = games_lcrec.index_set.codes[anchor][:2]
    index_related = [
        i for i in range(games_dataset.num_items)
        if i != anchor
        and (games_lcrec.index_set.codes[i][:2] == prefix).all()
    ][:3]
    embeddings = games_lcrec.item_embeddings
    normalised = embeddings / np.linalg.norm(embeddings, axis=1,
                                             keepdims=True)
    cosine = normalised @ normalised[anchor]
    cosine[anchor] = -np.inf
    text_related = np.argsort(-cosine)[:3].tolist()
    rows.append(f"anchor: {games_dataset.catalog[anchor].title}")
    rows.append("related via shared index prefix (language+collaborative):")
    for item_id in index_related:
        rows.append(f"  - {games_dataset.catalog[item_id].title}")
    rows.append("related via text-embedding cosine (language only):")
    for item_id in text_related:
        rows.append(f"  - {games_dataset.catalog[int(item_id)].title}")
    report("fig5_case_study", "\n".join(rows))
    return convergence_hits, index_related


def test_fig5(benchmark, games_dataset, games_lcrec):
    convergence_hits, index_related = benchmark.pedantic(
        run_case_study, args=(games_dataset, games_lcrec), rounds=1,
        iterations=1,
    )
    # Shape: full-prefix generations are at least as close to the truth as
    # one-token generations for the showcase items.
    assert convergence_hits >= 1
