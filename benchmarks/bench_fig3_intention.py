"""Figure 3: item prediction based on user intention (Games).

Queries are simulated GPT-3.5 intention texts for each test user's
held-out item.  Compares:

* **DSSM** — two-tower text retrieval trained on training intentions;
* **LC-Rec** — full model (its mixture includes the ITE task);
* **LC-Rec (Zero-Shot)** — tuned *without* the intention task, probing
  whether index-language alignment alone links intentions to items.

Paper-shape expectations: LC-Rec > DSSM; the zero-shot variant is well
above chance but below the trained model.
"""

import numpy as np

from repro.baselines import DSSM, DSSMConfig
from repro.bench import bench_scale, build_lcrec_model, report
from repro.data import IntentionGenerator
from repro.eval import evaluate_intention_retrieval

METRICS = ("HR@5", "HR@10", "NDCG@5", "NDCG@10")


def run_figure(games_dataset, games_lcrec):
    scale = bench_scale()
    generator = IntentionGenerator(games_dataset.catalog,
                                   np.random.default_rng(42))
    test_examples = generator.test_intentions(games_dataset)
    test_examples = test_examples[:scale.max_eval_users]

    # DSSM baseline.
    train_intents = generator.training_intentions(games_dataset, per_user=2)
    dssm = DSSM([item.title for item in games_dataset.catalog],
                DSSMConfig(epochs=scale.epochs(30)),
                extra_texts=[e.text for e in train_intents])
    dssm.fit(train_intents)
    dssm_report = evaluate_intention_retrieval(
        lambda query: dssm.retrieve(query, top_k=10), test_examples)

    # LC-Rec zero-shot: tuned without the ITE task.
    zero_shot = build_lcrec_model(
        games_dataset, tasks=("seq", "mut", "asy", "per"))
    zero_report = evaluate_intention_retrieval(
        lambda query: zero_shot.recommend_for_intention(query, top_k=10),
        test_examples)

    lcrec_report = evaluate_intention_retrieval(
        lambda query: games_lcrec.recommend_for_intention(query, top_k=10),
        test_examples)

    rows = [f"{'model':<20} " + " ".join(f"{m:>8}" for m in METRICS)]
    for label, rep in (("LC-Rec (Zero-Shot)", zero_report),
                       ("DSSM", dssm_report),
                       ("LC-Rec", lcrec_report)):
        rows.append(f"{label:<20} "
                    + " ".join(f"{rep[m]:8.4f}" for m in METRICS))
    report("fig3_intention", "\n".join(rows))
    return dssm_report, zero_report, lcrec_report


def test_fig3(benchmark, games_dataset, games_lcrec):
    dssm_report, zero_report, lcrec_report = benchmark.pedantic(
        run_figure, args=(games_dataset, games_lcrec), rounds=1,
        iterations=1,
    )
    num_items = games_dataset.num_items
    chance_hr10 = 10 / num_items
    # Shape: trained LC-Rec well above chance and above its zero-shot
    # variant on the headline metric.
    assert lcrec_report["HR@10"] > 2 * chance_hr10
    assert lcrec_report["HR@10"] >= zero_report["HR@10"]
