"""Table IV: ablation of the semantic alignment tasks (Arts and Games).

Cumulatively adds task families to the tuning mixture — SEQ, +MUT, +ASY,
+ITE, +PER — and evaluates each variant with full ranking.  Paper-shape
expectation: performance improves (noisily but overall) as alignment
tasks are added; the full mixture beats SEQ-only.
"""

import pytest

from repro.bench import build_lcrec_model, evaluate_recommender, report
from repro.eval import MetricReport

CUMULATIVE = [
    ("SEQ", ("seq",)),
    ("+ MUT", ("seq", "mut")),
    ("+ ASY", ("seq", "mut", "asy")),
    ("+ ITE", ("seq", "mut", "asy", "ite")),
    ("+ PER", ("seq", "mut", "asy", "ite", "per")),
]

DATASETS = ("arts", "games")


def run_ablation(dataset_name, dataset_factory, lcrec_full_factory,
                 lcrec_seq_only_factory):
    dataset = dataset_factory(dataset_name)
    rows = [f"--- {dataset_name} ---", MetricReport.header()]
    reports = {}
    for label, tasks in CUMULATIVE:
        if tasks == ("seq",):
            model = lcrec_seq_only_factory(dataset_name)
        elif len(tasks) == 5:
            model = lcrec_full_factory(dataset_name)
        else:
            model = build_lcrec_model(dataset, tasks=tasks)
        reports[label] = evaluate_recommender(model, dataset)
        rows.append(reports[label].row(label))
    report(f"table4_task_ablation_{dataset_name}", "\n".join(rows))
    return reports


@pytest.mark.parametrize("dataset_name", DATASETS)
def test_table4(benchmark, dataset_name, dataset_factory,
                lcrec_full_factory, lcrec_seq_only_factory):
    reports = benchmark.pedantic(
        run_ablation,
        args=(dataset_name, dataset_factory, lcrec_full_factory,
              lcrec_seq_only_factory),
        rounds=1, iterations=1,
    )
    # Shape: the full mixture should not be worse than SEQ-only.
    assert reports["+ PER"]["HR@10"] >= 0.9 * reports["SEQ"]["HR@10"]
