"""Multi-worker cluster serving under session/refresh traffic and overload.

The :class:`repro.serving.ServingCluster` claims three things on top of a
single ``RecommendationService``; this benchmark measures all three on one
open-loop Poisson workload (``SESSIONS`` users, each refreshing the same
prompt ``REFRESH`` times — the traffic shape the affinity router exists
for):

1. **Routing matters.**  At equal fleet size, rendezvous affinity beats
   random placement: refresh traffic lands on the worker whose prefix
   K/V cache already holds that session's prompt, so the cache reuses
   *long per-session* prefixes instead of just the short template head
   shared by everyone.  The aggregate ``token_hit_rate`` and the served
   req/s gap quantify it.
2. **Scale-out, where the hardware allows it.**  Workers are decode
   threads; numpy's BLAS kernels drop the GIL, so on a multicore host
   the fleet's aggregate req/s scales with workers.  On a single-core
   host (CI smoke) the sweep still runs — the scaling bar is asserted
   only where parallel speedup is physically possible, and the skip is
   logged loudly rather than silently passed.
3. **Graceful degradation.**  Past the saturation knee the cluster sheds
   (typed ``Overloaded``: backlog bounds at the front door, deadline
   expiry at the workers) instead of queueing unboundedly — so the p95
   of *served* requests stays bounded while the shed rate, not the
   latency, absorbs the overload.

Correctness is asserted, not assumed: a 1-worker cluster must return
rankings bit-identical to a plain ``RecommendationService`` over the same
engine (for both the LCRec and TIGER fleets), and every submitted handle
must resolve — delivered or typed-shed, never lost.
"""

from __future__ import annotations

import os
import threading
import time

import numpy as np

from repro.bench import bench_scale, report, report_json, scaled_dataset
from repro.bench.runners import build_lcrec_model
from repro.baselines import TIGER, TIGERConfig
from repro.core.indexer import build_random_index_set
from repro.llm import PrefixKVCache
from repro.serving import (
    LCRecEngine,
    MicroBatcherConfig,
    Overloaded,
    RecommendationService,
    ServingCluster,
    TIGEREngine,
)

SESSIONS = 16
REFRESH = 5  # each session re-sends its prompt this many times
BATCH_WIDTH = 4
MEAN_GAP_MS = 6.0  # moderate Poisson load (~167 req/s offered)
FLUSH_MS = 10.0  # worker deadline-flush cadence
DEADLINE_MS = 150.0  # per-request shed budget in the overload segment
MAX_BACKLOG = 12  # per-worker admission bound in the overload segment
CACHE_ENTRIES = 32  # per-worker prefix K/V capacity
TOP_K = 10
SEED = 11


def _session_traffic(dataset, sessions, refresh):
    """(session_key, history) pairs: ``refresh`` interleaved rounds."""
    pool = dataset.split.test_histories
    per_session = [list(pool[s % len(pool)]) for s in range(sessions)]
    return [
        (f"user:{s}", per_session[s])
        for _ in range(refresh)
        for s in range(sessions)
    ]


def run_fleet(
    engine_for,
    traffic,
    gaps,
    num_workers,
    routing="affinity",
    deadline_ms=None,
    max_backlog=None,
    burst=False,
):
    """Open-loop Poisson replay through a fleet; per-request latencies.

    Returns served/shed splits: under admission control some handles
    legitimately resolve to ``Overloaded``, and the point of the bench is
    that those are the *only* two outcomes — nothing hangs or is lost.

    ``burst=True`` models the past-the-knee overload segment: the whole
    workload is submitted back-to-back (no arrival gaps, no per-request
    waiter thread competing with the decode threads for the GIL), so the
    instantaneous backlog deterministically exceeds the fleet's admission
    slots whatever the host's speed.  Waiters then attach after the
    burst; a request that completed mid-burst is timestamped at
    observation, which can only *overstate* the served latencies the
    bounded-p95 assertion is about.
    """
    cluster = ServingCluster(
        engine_for,
        num_workers=num_workers,
        batcher=MicroBatcherConfig(max_batch_size=BATCH_WIDTH),
        deadline_ms=FLUSH_MS,
        routing=routing,
        max_backlog=max_backlog,
    )
    outcomes = [None] * len(traffic)  # "shed" | ranking
    latencies = [0.0] * len(traffic)
    completed = [0.0] * len(traffic)

    def waiter(index, handle, submitted_at):
        try:
            outcomes[index] = handle.result(timeout=180.0)
        except Overloaded:
            outcomes[index] = "shed"
        completed[index] = time.perf_counter()
        latencies[index] = completed[index] - submitted_at

    threads = []
    with cluster:
        start = time.perf_counter()
        pending = []
        for index, ((session_key, history), gap) in enumerate(zip(traffic, gaps)):
            if not burst:
                time.sleep(gap)
            submitted_at = time.perf_counter()
            handle = cluster.submit(
                history, top_k=TOP_K, session_key=session_key, deadline_ms=deadline_ms
            )
            if burst:
                pending.append((index, handle, submitted_at))
            else:
                thread = threading.Thread(
                    target=waiter, args=(index, handle, submitted_at)
                )
                thread.start()
                threads.append(thread)
        for index, handle, submitted_at in pending:
            thread = threading.Thread(target=waiter, args=(index, handle, submitted_at))
            thread.start()
            threads.append(thread)
        for thread in threads:
            thread.join(timeout=240.0)
    assert all(outcome is not None for outcome in outcomes), "requests lost"
    served = [
        latency for outcome, latency in zip(outcomes, latencies) if outcome != "shed"
    ]
    elapsed = max(completed) - start
    caches = [w.prefix_cache for w in cluster.workers if w.prefix_cache is not None]
    prompt_tokens = sum(cache.stats.prompt_tokens for cache in caches)
    reused_tokens = sum(cache.stats.reused_tokens for cache in caches)
    return {
        "workers": num_workers,
        "routing": routing,
        "rankings": outcomes,
        "served": len(served),
        "shed": len(traffic) - len(served),
        "requests_per_second": len(served) / elapsed,
        "p50_ms": 1000 * float(np.percentile(served, 50)) if served else float("nan"),
        "p95_ms": 1000 * float(np.percentile(served, 95)) if served else float("nan"),
        "affinity_hit_rate": cluster.stats.affinity_hit_rate,
        "token_hit_rate": reused_tokens / prompt_tokens if prompt_tokens else 0.0,
        "shed_requests": cluster.shed_requests,
    }


def _lcrec_engine_factory(model):
    """Fresh engine per worker: a bounded private prefix K/V cache each."""
    return lambda: LCRecEngine(
        model, prefix_cache=PrefixKVCache(max_entries=CACHE_ENTRIES)
    )


def _assert_parity(engine_for, traffic, reference):
    """1-worker cluster == plain service, ranking for ranking."""
    gaps = [0.0] * len(traffic)
    result = run_fleet(engine_for, traffic, gaps, num_workers=1)
    assert result["shed"] == 0
    assert result["rankings"] == reference, "1-worker cluster diverged from service"


def _build_tiger(dataset, scale):
    index_set = build_random_index_set(
        dataset.num_items, 3, 8, np.random.default_rng(SEED)
    )
    model = TIGER(
        index_set, TIGERConfig(dim=48, epochs=scale.epochs(6, minimum=2), seed=SEED)
    )
    model.fit(dataset)
    return model


def run_cluster_serving_table():
    scale = bench_scale()
    cores = os.cpu_count() or 1
    dataset = scaled_dataset("instruments")
    model = build_lcrec_model(dataset, tasks=("seq",))
    traffic = _session_traffic(dataset, SESSIONS, REFRESH)
    rng = np.random.default_rng(SEED)
    gaps = rng.exponential(MEAN_GAP_MS / 1000.0, len(traffic))
    engine_for = _lcrec_engine_factory(model)

    # Parity first: placement must never change the math.
    reference = RecommendationService(
        LCRecEngine(model, prefix_cache=False),
        batcher=MicroBatcherConfig(max_batch_size=BATCH_WIDTH),
    ).recommend_many([history for _, history in traffic], top_k=TOP_K)
    _assert_parity(engine_for, traffic, reference)

    run_fleet(engine_for, traffic[:BATCH_WIDTH], gaps[:BATCH_WIDTH], 1)  # warm
    sweep = [run_fleet(engine_for, traffic, gaps, workers) for workers in (1, 2, 4)]
    random_fleet = run_fleet(engine_for, traffic, gaps, 4, routing="random")
    for result in sweep:
        assert result["rankings"] == reference, "fleet size changed rankings"
    assert random_fleet["rankings"] == reference, "random routing changed rankings"

    # Overload segment: ~10x arrival rate, bounded backlogs, shed budgets.
    overload = run_fleet(
        engine_for,
        traffic,
        gaps,
        4,
        deadline_ms=DEADLINE_MS,
        max_backlog=MAX_BACKLOG,
        burst=True,
    )

    # TIGER fleet: same client surface, second engine family.
    tiger = _build_tiger(dataset, scale)
    tiger_reference = RecommendationService(
        TIGEREngine(tiger), batcher=MicroBatcherConfig(max_batch_size=BATCH_WIDTH)
    ).recommend_many([history for _, history in traffic], top_k=TOP_K)
    _assert_parity(TIGEREngine(tiger), traffic, tiger_reference)
    tiger_fleet = run_fleet(TIGEREngine(tiger), traffic, gaps, 4)
    assert tiger_fleet["rankings"] == tiger_reference, "TIGER fleet changed rankings"

    one, four = sweep[0], sweep[-1]
    scaling = four["requests_per_second"] / one["requests_per_second"]
    routing_gain = four["requests_per_second"] / random_fleet["requests_per_second"]
    rows = [
        f"{'config':<26} {'req/s':>8} {'p50 ms':>8} {'p95 ms':>8} "
        f"{'tok hit':>8} {'shed':>6}",
    ]
    named = [
        (f"affinity x{r['workers']}", r) for r in sweep
    ] + [("random x4", random_fleet), ("overload x4", overload), ("TIGER x4", tiger_fleet)]
    for name, r in named:
        rows.append(
            f"{name:<26} {r['requests_per_second']:>8.1f} {r['p50_ms']:>8.1f} "
            f"{r['p95_ms']:>8.1f} {r['token_hit_rate']:>8.2f} {r['shed']:>6d}"
        )
    rows += [
        "",
        f"workload: {SESSIONS} sessions x {REFRESH} refreshes, Poisson mean gap "
        f"{MEAN_GAP_MS:.1f} ms (overload: back-to-back burst), "
        f"width {BATCH_WIDTH}, {CACHE_ENTRIES}-entry K/V per worker, {cores} cores",
        f"4-vs-1 worker scaling {scaling:.2f}x; affinity-vs-random routing "
        f"{routing_gain:.2f}x req/s at 4 workers "
        f"(affinity hit rate {four['affinity_hit_rate']:.2f} vs random placement)",
        f"overload: {overload['shed']}/{len(traffic)} shed "
        f"(front door + deadline), served p95 {overload['p95_ms']:.1f} ms vs "
        f"{four['p95_ms']:.1f} ms at moderate load",
    ]
    if cores < 4:
        rows.append(
            f"NOTE: {cores}-core host — the >=1.5x 4-worker scaling bar needs "
            "parallel decode and is not asserted here"
        )
    report("cluster_serving", "\n".join(rows))
    report_json(
        "cluster_serving",
        config={
            "sessions": SESSIONS, "refresh": REFRESH, "batch_width": BATCH_WIDTH,
            "mean_gap_ms": MEAN_GAP_MS, "overload": "burst",
            "deadline_ms": DEADLINE_MS, "max_backlog": MAX_BACKLOG,
            "cache_entries": CACHE_ENTRIES, "top_k": TOP_K, "cores": cores,
            "scale": scale.name,
        },
        results=[
            {
                "name": name,
                "requests_per_second": r["requests_per_second"],
                "p50_ms": r["p50_ms"],
                "p95_ms": r["p95_ms"],
                "served": r["served"],
                "shed": r["shed"],
                "affinity_hit_rate": r["affinity_hit_rate"],
                "token_hit_rate": r["token_hit_rate"],
            }
            for name, r in named
        ],
    )
    return {
        "sweep": sweep,
        "random": random_fleet,
        "overload": overload,
        "tiger": tiger_fleet,
        "cores": cores,
    }


def test_cluster_serving(benchmark):
    results = benchmark.pedantic(run_cluster_serving_table, rounds=1, iterations=1)
    sweep, random_fleet = results["sweep"], results["random"]
    overload, cores = results["overload"], results["cores"]
    four = sweep[-1]
    strict = bench_scale().name != "tiny"

    # Affinity keeps keyed traffic on its rendezvous worker; random
    # placement cannot (its per-session cache reuse collapses to the
    # shared template head).
    assert four["affinity_hit_rate"] > 1.0 / four["workers"], (
        f"affinity hit rate {four['affinity_hit_rate']:.2f} no better than "
        "random placement"
    )
    if strict:
        assert four["token_hit_rate"] > random_fleet["token_hit_rate"], (
            "affinity routing did not improve prefix K/V token reuse: "
            f"{four['token_hit_rate']:.2f} vs {random_fleet['token_hit_rate']:.2f}"
        )
        # req/s at moderate load is arrival-limited (open loop), so the
        # routing win shows up in token reuse and tail latency; the
        # throughput bar only guards against a real regression.
        assert four["requests_per_second"] >= 0.9 * random_fleet["requests_per_second"], (
            f"affinity req/s {four['requests_per_second']:.1f} fell behind "
            f"random routing {random_fleet['requests_per_second']:.1f}"
        )

    # Overload degrades by shedding, never by an unbounded latency cliff:
    # at ~10x the moderate arrival rate, load must actually shed and the
    # p95 of *served* requests must stay within a small factor of the
    # moderate-load p95.
    assert overload["shed"] > 0, "overload segment shed nothing"
    assert overload["served"] > 0, "overload segment served nothing"
    if strict:
        assert overload["p95_ms"] <= 5.0 * four["p95_ms"] + DEADLINE_MS, (
            f"served p95 {overload['p95_ms']:.1f} ms cliffed past the knee "
            f"(moderate-load p95 {four['p95_ms']:.1f} ms)"
        )

    # Fleet scaling needs real parallelism: decode threads only overlap
    # where BLAS drops the GIL across multiple cores.
    if strict and cores >= 4:
        scaling = four["requests_per_second"] / sweep[0]["requests_per_second"]
        assert scaling >= 1.5, (
            f"4-worker fleet only {scaling:.2f}x a single worker on "
            f"{cores} cores"
        )
