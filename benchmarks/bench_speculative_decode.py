"""Two-level speculative trie decode vs the sequential sparse stepper.

The sequential stepper (the PR-5 sparse baseline this benchmark is
anchored to) pays one transformer forward per trie level.  When the
product of allowed fan-outs across the next *two* levels fits the
speculative budget, the stepper scores both levels in a single forward —
one gathered-head GEMM over the pair union with the constrained
log-softmax factored per level — so a three-level index decodes in two
forwards instead of three and rankings are provably identical.  This
benchmark measures what that buys on the same hardware and weights:

* **forwards per request** — the architecture-independent win, counted
  from ``DecodeState.forwards`` for every backend at B=16;
* **LCRec, continuous serving** — req/s through
  ``RecommendationService(mode="continuous")`` at widths B ∈ {1, 8, 16},
  speculative vs sequential;
* **quantized heads** — the same closed batches at fp16/int8, with the
  top-k-overlap tolerance gate from ``docs/performance.md`` asserted.

Correctness is asserted, not assumed: speculative rankings must be
identical to sequential for every request of every backend, and every
quantized request must keep >= 4 of its fp32 top 5.  Results are
persisted to ``benchmark_results/speculative_decode.json``.
"""

from __future__ import annotations

import time

import numpy as np

from repro.bench import bench_scale, report, report_json, scaled_dataset
from repro.bench.runners import build_lcrec_model
from repro.baselines import P5CID, P5CIDConfig, TIGER, TIGERConfig
from repro.core.indexer import build_random_index_set
from repro.llm import DEFAULT_SPEC_BUDGET
from repro.serving import (
    LCRecEngine,
    MicroBatcherConfig,
    P5CIDEngine,
    RecommendRequest,
    RecommendationService,
    TIGEREngine,
)

LCREC_WIDTHS = (1, 8, 16)
CLOSED_BATCH = 16
NUM_REQUESTS = 32
TOP_K = 10
BEAM_SIZE = 10
SEED = 29
# The budget bounds the speculative GEMM's width: the gate multiplies the
# *flat batch's* candidate count by the next level's union, so it scales
# with B*K.  The conservative serving default (DEFAULT_SPEC_BUDGET) is
# sized for a handful of rows; this bench drives closed batches of 16
# requests x 10 beams, so it sizes the budget to the workload.
SPEC_BUDGET = 4096
# Same serving-realistic head padding as bench_sparse_decode.py: the
# speculative step's gathered GEMM only ever touches the pair union, so
# the padded rows change nothing but the honest cost of a forward.
SERVING_VOCAB = 8192
TIGER_CODEBOOK = 256
OVERLAP_FLOOR = 4  # of top 5 — the docs/performance.md tolerance gate


def _histories(dataset, count):
    pool = dataset.split.test_histories
    return [list(pool[i % len(pool)]) for i in range(count)]


def _percentiles(latencies):
    arr = np.asarray(latencies)
    return float(np.percentile(arr, 50)), float(np.percentile(arr, 95))


def run_counted_batches(engine, histories):
    """Closed batches through the stepper, counting transformer forwards."""
    rankings, latencies, forwards = [], [], 0
    start = time.perf_counter()
    for lo in range(0, len(histories), CLOSED_BATCH):
        chunk = histories[lo : lo + CLOSED_BATCH]
        tick = time.perf_counter()
        requests = [
            RecommendRequest(
                prompt_ids=engine.encode_history(h), top_k=TOP_K, beam_size=BEAM_SIZE
            )
            for h in chunk
        ]
        state = engine.prefill(requests)
        while not state.done:
            engine.step(state)
        forwards += state.forwards
        rankings.extend(engine.finalize(requests, engine.finish(state)))
        latencies.extend([time.perf_counter() - tick] * len(chunk))
    elapsed = time.perf_counter() - start
    return rankings, latencies, len(histories) / elapsed, forwards


def run_lcrec_continuous(model, histories, width, spec_budget):
    """Burst workload through the continuous scheduler at one width."""
    service = RecommendationService(
        LCRecEngine(model, prefix_cache=False, spec_budget=spec_budget),
        batcher=MicroBatcherConfig(max_batch_size=width),
        mode="continuous",
    )
    with service:
        start = time.perf_counter()
        pending = [(service.submit(h, top_k=TOP_K), time.perf_counter()) for h in histories]
        rankings, latencies = [], []
        for handle, submitted in pending:
            rankings.append(handle.result(timeout=300.0))
            latencies.append(time.perf_counter() - submitted)
        elapsed = time.perf_counter() - start
    return rankings, latencies, len(histories) / elapsed


def run_speculative_decode_table():
    scale = bench_scale()
    dataset = scaled_dataset("instruments")
    histories = _histories(dataset, NUM_REQUESTS)
    records, rows = [], []
    rows.append(
        f"{'backend / config':<34} {'req/s':>8} {'p50 ms':>9} {'fwd/req':>8} {'speedup':>8}"
    )

    lcrec = build_lcrec_model(dataset, tasks=("seq",))
    if lcrec.lm.vocab_size < SERVING_VOCAB:
        lcrec.lm.extend_vocab(SERVING_VOCAB - lcrec.lm.vocab_size)
    p5cid = P5CID(dataset, P5CIDConfig(epochs=scale.epochs(6), seed=SEED))
    p5cid.fit(dataset)
    index_set = build_random_index_set(
        dataset.num_items, 3, TIGER_CODEBOOK, np.random.default_rng(SEED)
    )
    tiger = TIGER(index_set, TIGERConfig(epochs=scale.epochs(6), seed=SEED))
    tiger.fit(dataset)
    backends = {
        "lcrec": lambda **kw: LCRecEngine(lcrec, prefix_cache=False, **kw),
        "p5cid": lambda **kw: P5CIDEngine(p5cid, **kw),
        "tiger": lambda **kw: TIGEREngine(tiger, **kw),
    }

    # Forwards accounting: speculative vs the sequential sparse baseline,
    # counted at the stepper for every backend.  TIGER at a small catalog
    # is the interesting null: with 256-entry codebooks nearly every
    # level-2 prefix is unique, so the forced fast path already makes the
    # last level free and speculation ties instead of winning — exactly
    # the forced/speculative interaction the gate is built around.
    forwards_saved = {}
    for backend, make_engine in backends.items():
        run_counted_batches(make_engine(), histories[:CLOSED_BATCH])  # warm
        measured = {}
        for label, budget in (("seq", 0), ("spec", SPEC_BUDGET)):
            measured[label] = run_counted_batches(
                make_engine(spec_budget=budget), histories
            )
        assert measured["spec"][0] == measured["seq"][0], (
            f"speculation changed {backend} rankings"
        )
        assert measured["spec"][3] <= measured["seq"][3], (
            f"speculation added forwards for {backend}"
        )
        speedup = measured["spec"][2] / measured["seq"][2]
        forwards_saved[backend] = 1 - measured["spec"][3] / measured["seq"][3]
        for label in ("seq", "spec"):
            _, latencies, rps, forwards = measured[label]
            p50, _ = _percentiles(latencies)
            name = f"{backend}/batched B={CLOSED_BATCH} {label}"
            rows.append(
                f"{name:<34} {rps:>8.2f} {1000 * p50:>9.1f} "
                f"{forwards / NUM_REQUESTS:>8.2f} "
                f"{(speedup if label == 'spec' else 1.0):>8.2f}"
            )
            records.append(
                {
                    "name": name,
                    "backend": backend,
                    "width": CLOSED_BATCH,
                    "stepper": label,
                    "spec_budget": SPEC_BUDGET if label == "spec" else 0,
                    "requests_per_second": rps,
                    "p50_ms": 1000 * p50,
                    "forwards_per_request": forwards / NUM_REQUESTS,
                }
            )

    # LCRec through the continuous scheduler: joins, retirement and the
    # speculative window interacting under one roof.
    lcrec_speedups = {}
    for width in LCREC_WIDTHS:
        measured = {}
        for label, budget in (("seq", 0), ("spec", SPEC_BUDGET)):
            measured[label] = run_lcrec_continuous(lcrec, histories, width, budget)
        assert measured["spec"][0] == measured["seq"][0], (
            f"speculation changed LCRec rankings at B={width}"
        )
        speedup = measured["spec"][2] / measured["seq"][2]
        lcrec_speedups[width] = speedup
        for label in ("seq", "spec"):
            _, latencies, rps = measured[label]
            p50, p95 = _percentiles(latencies)
            name = f"lcrec/continuous B={width} {label}"
            rows.append(
                f"{name:<34} {rps:>8.2f} {1000 * p50:>9.1f} {'-':>8} "
                f"{(speedup if label == 'spec' else 1.0):>8.2f}"
            )
            records.append(
                {
                    "name": name,
                    "backend": "lcrec",
                    "width": width,
                    "stepper": label,
                    "spec_budget": SPEC_BUDGET if label == "spec" else 0,
                    "requests_per_second": rps,
                    "p50_ms": 1000 * p50,
                    "p95_ms": 1000 * p95,
                }
            )

    # Quantized heads: closed speculative batches at every precision, with
    # the top-k-overlap tolerance gate asserted per request.
    for backend, make_engine in backends.items():
        base, _, _, _ = run_counted_batches(make_engine(spec_budget=SPEC_BUDGET), histories)
        for precision in ("fp16", "int8"):
            rankings, latencies, rps, forwards = run_counted_batches(
                make_engine(spec_budget=SPEC_BUDGET, precision=precision), histories
            )
            overlaps = [
                len(set(a[:5]) & set(b[:5])) for a, b in zip(rankings, base)
            ]
            assert min(overlaps) >= OVERLAP_FLOOR, (
                f"{backend} {precision} top-5 overlap {min(overlaps)} < {OVERLAP_FLOOR}"
            )
            p50, _ = _percentiles(latencies)
            name = f"{backend}/batched B={CLOSED_BATCH} {precision}"
            rows.append(
                f"{name:<34} {rps:>8.2f} {1000 * p50:>9.1f} "
                f"{forwards / NUM_REQUESTS:>8.2f} {'-':>8}"
            )
            records.append(
                {
                    "name": name,
                    "backend": backend,
                    "width": CLOSED_BATCH,
                    "stepper": "spec",
                    "precision": precision,
                    "requests_per_second": rps,
                    "p50_ms": 1000 * p50,
                    "forwards_per_request": forwards / NUM_REQUESTS,
                    "min_top5_overlap": min(overlaps),
                    "mean_top5_overlap": float(np.mean(overlaps)),
                }
            )

    rows += [
        "",
        f"workload: {NUM_REQUESTS} requests, top_k={TOP_K}, beam={BEAM_SIZE}, "
        f"scale {scale.name}; spec budget {SPEC_BUDGET} (serving default {DEFAULT_SPEC_BUDGET})",
        "speculative rankings asserted identical to sequential for every "
        "backend and width; quantized top-5 overlap asserted >= "
        f"{OVERLAP_FLOOR}/5 per request",
    ]
    report("speculative_decode", "\n".join(rows))
    report_json(
        "speculative_decode",
        config={
            "lcrec_widths": list(LCREC_WIDTHS),
            "closed_batch": CLOSED_BATCH,
            "num_requests": NUM_REQUESTS,
            "top_k": TOP_K,
            "beam_size": BEAM_SIZE,
            "spec_budget": SPEC_BUDGET,
            "default_spec_budget": DEFAULT_SPEC_BUDGET,
            "scale": scale.name,
            "seed": SEED,
        },
        results=records,
    )
    return lcrec_speedups, forwards_saved, records


def test_speculative_decode(benchmark):
    lcrec_speedups, forwards_saved, records = benchmark.pedantic(
        run_speculative_decode_table, rounds=1, iterations=1
    )
    # The forwards saving is deterministic arithmetic, not a timing: a
    # 3-level index decodes in 2 forwards instead of 3 whenever a
    # non-forced window fires.  LCRec and P5CID have real two-level
    # fan-out and must save >= 20% of their forwards; TIGER's unique
    # deep prefixes let the forced fast path tie (asserted <=, above).
    assert forwards_saved["lcrec"] >= 0.2, forwards_saved
    assert forwards_saved["p5cid"] >= 0.2, forwards_saved
    assert all(saved >= 0.0 for saved in forwards_saved.values()), forwards_saved
    # Headline acceptance: speculative decode delivers >= 1.15x req/s for
    # LCRec continuous serving at B=16 over the PR-5 sparse baseline.
    # Speculation trades extra head/attention arithmetic over candidate
    # columns for fewer forwards, so it wins where a forward's fixed cost
    # (layer dispatch, weight traffic) dominates — real-scale models.  At
    # tiny scale (dim 16–64) the forward is nearly free and the extra
    # columns make speculation a measured slowdown; the tiny CI smoke
    # therefore gates on the deterministic forwards metric above and only
    # bounds the wall-clock ratio loosely against gross regressions.
    floor = 1.15 if bench_scale().name != "tiny" else 0.4
    assert lcrec_speedups[16] >= floor, (
        f"speculative decode speedup {lcrec_speedups[16]:.2f}x < {floor}x at B=16"
    )
