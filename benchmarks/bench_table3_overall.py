"""Table III: overall performance comparison on the three datasets.

For each dataset, trains all eight traditional baselines, both generative
baselines (P5-CID, TIGER) and LC-Rec, then evaluates full-ranking
HR@{1,5,10} / NDCG@{5,10} with the leave-one-out protocol (beam size 20
for the generative models — the paper's setting).

Paper-shape expectation (not absolute numbers): LC-Rec is the best model
on every dataset; content-aware baselines (FDSA, S3-Rec) beat pure-ID
ones on average; P5-CID/TIGER are competitive with the strongest
traditional models.
"""

import pytest

from repro.bench import report
from repro.bench.runners import (
    GENERATIVE_BASELINES,
    TRADITIONAL_BASELINES,
    evaluate_recommender,
    run_generative_baseline,
    run_traditional_baseline,
)
from repro.eval import MetricReport

DATASETS = ("instruments", "arts", "games")
METRICS = MetricReport.METRIC_ORDER


def run_dataset(name, dataset_factory, lcrec_full_factory):
    dataset = dataset_factory(name)
    rows = [f"--- {name}: {dataset.num_users} users, "
            f"{dataset.num_items} items ---", MetricReport.header()]
    reports: dict[str, MetricReport] = {}
    for baseline in TRADITIONAL_BASELINES:
        reports[baseline] = run_traditional_baseline(baseline, dataset)
        rows.append(reports[baseline].row(baseline))
    for baseline in GENERATIVE_BASELINES:
        reports[baseline] = run_generative_baseline(baseline, dataset)
        rows.append(reports[baseline].row(baseline))
    model = lcrec_full_factory(name)
    reports["LC-Rec"] = evaluate_recommender(model, dataset)
    rows.append(reports["LC-Rec"].row("LC-Rec"))

    best_baseline = {
        metric: max(r[metric] for label, r in reports.items()
                    if label != "LC-Rec")
        for metric in METRICS
    }
    improvements = []
    for metric in METRICS:
        base = best_baseline[metric]
        ours = reports["LC-Rec"][metric]
        improvements.append(
            f"{metric}: {100 * (ours - base) / max(base, 1e-9):+.1f}%")
    rows.append("LC-Rec vs best baseline: " + ", ".join(improvements))
    report(f"table3_{name}", "\n".join(rows))
    return reports


@pytest.mark.parametrize("dataset_name", DATASETS)
def test_table3(benchmark, dataset_name, dataset_factory,
                lcrec_full_factory):
    reports = benchmark.pedantic(
        run_dataset, args=(dataset_name, dataset_factory,
                           lcrec_full_factory),
        rounds=1, iterations=1,
    )
    # Shape assertions.  At reproduction scale the gold-feature baselines
    # (FDSA/S3-Rec receive the generator's true category labels) can edge
    # LC-Rec on the smallest dataset, so the hard requirement is
    # "competitive with the best baseline and clearly above the median".
    lcrec = reports["LC-Rec"]
    others = [r["HR@10"] for label, r in reports.items() if label != "LC-Rec"]
    best_other = max(others)
    median_other = sorted(others)[len(others) // 2]
    floor = min(median_other, 0.7 * best_other)
    assert lcrec["HR@10"] >= floor, (
        f"LC-Rec HR@10 {lcrec['HR@10']:.4f} below competitiveness floor "
        f"{floor:.4f}"
    )
