"""One serving stack, every backend: throughput/latency across engines.

The :class:`repro.serving.GenerativeEngine` redesign promises that the
queue → micro-batcher → scheduler machinery is shared infrastructure for
*every* generative recommender.  This benchmark sweeps the adapters
through the same harness and records requests/sec plus p50/p95 latency:

* **LCRec, deadline vs continuous** — the same Poisson open-loop workload
  (each submitter blocks only on its own result) replayed through
  ``LCRecEngine`` in both background-loop disciplines;
* **TIGER, single loop vs batched engine** — the pre-engine per-request
  ``TIGER.recommend`` Python loop against ``TIGEREngine`` decoding the
  same requests in closed micro-batches (encode once per batch, ``B×K``
  decoder beams per forward).

Correctness is asserted, not assumed: every path must return rankings
identical to its per-request oracle — the engine boundary is a scheduling
and batching seam, never an approximation.  Results are persisted to both
``benchmarks/results/`` (the harness convention) and the repo-root
``benchmark_results/`` directory.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.bench import bench_scale, report, report_json, scaled_dataset
from repro.bench.runners import build_lcrec_model
from repro.baselines import TIGER, TIGERConfig
from repro.core.indexer import build_random_index_set
from repro.serving import LCRecEngine, MicroBatcherConfig, RecommendationService, TIGEREngine

BATCH_WIDTH = 8  # max_batch_size / joined-width cap for LCRec serving
TIGER_BATCH = 16  # micro-batch size for the TIGER engine sweep
NUM_REQUESTS = 32
MEAN_GAP_MS = 12.0  # Poisson arrivals for the LCRec open-loop replay
DEADLINE_MS = 60.0
TOP_K = 10
SEED = 11


def _histories(dataset, count):
    pool = dataset.split.test_histories
    return [list(pool[i % len(pool)]) for i in range(count)]


def _percentiles(latencies):
    arr = np.asarray(latencies)
    return float(np.percentile(arr, 50)), float(np.percentile(arr, 95))


# ----------------------------------------------------------------------
# LCRec: deadline-batched vs continuous through the same engine
# ----------------------------------------------------------------------
def run_lcrec_mode(model, histories, gaps, mode):
    """Open-loop replay: Poisson submits, per-request completion latency."""
    service = RecommendationService(
        LCRecEngine(model),
        batcher=MicroBatcherConfig(max_batch_size=BATCH_WIDTH),
        deadline_ms=DEADLINE_MS,
        mode=mode,
    )
    latencies = [0.0] * len(histories)
    completed = [0.0] * len(histories)
    rankings: list[list[int] | None] = [None] * len(histories)

    def waiter(index, handle, submitted_at):
        rankings[index] = handle.result(timeout=120.0)
        completed[index] = time.perf_counter()
        latencies[index] = completed[index] - submitted_at

    threads = []
    with service:
        start = time.perf_counter()
        for index, (history, gap) in enumerate(zip(histories, gaps)):
            time.sleep(gap)
            submitted_at = time.perf_counter()
            handle = service.submit(history, top_k=TOP_K)
            thread = threading.Thread(target=waiter, args=(index, handle, submitted_at))
            thread.start()
            threads.append(thread)
        for thread in threads:
            thread.join(timeout=180)
    assert all(r is not None for r in rankings), f"lcrec/{mode}: requests lost"
    elapsed = max(completed) - start
    return rankings, latencies, len(histories) / elapsed


# ----------------------------------------------------------------------
# TIGER: per-request loop vs the batched engine
# ----------------------------------------------------------------------
def run_tiger_single(model, histories):
    rankings, latencies = [], []
    start = time.perf_counter()
    for history in histories:
        tick = time.perf_counter()
        rankings.append(model.recommend(history, top_k=TOP_K))
        latencies.append(time.perf_counter() - tick)
    elapsed = time.perf_counter() - start
    return rankings, latencies, len(histories) / elapsed


def run_tiger_batched(engine, histories):
    """Closed micro-batches: each request's latency is its batch's decode."""
    rankings, latencies = [], []
    start = time.perf_counter()
    for lo in range(0, len(histories), TIGER_BATCH):
        chunk = histories[lo : lo + TIGER_BATCH]
        tick = time.perf_counter()
        rankings.extend(engine.recommend_many(chunk, top_k=TOP_K))
        latencies.extend([time.perf_counter() - tick] * len(chunk))
    elapsed = time.perf_counter() - start
    return rankings, latencies, len(histories) / elapsed


def run_engine_backend_table():
    scale = bench_scale()
    dataset = scaled_dataset("instruments")
    histories = _histories(dataset, NUM_REQUESTS)
    gaps = np.random.default_rng(SEED).exponential(MEAN_GAP_MS / 1000.0, NUM_REQUESTS)
    results = {}

    # LCRec through both scheduling disciplines of the shared stack.
    lcrec = build_lcrec_model(dataset, tasks=("seq",))
    run_lcrec_mode(lcrec, histories[:BATCH_WIDTH], gaps[:BATCH_WIDTH], "deadline")  # warm
    for mode in ("deadline", "continuous"):
        rankings, latencies, rps = run_lcrec_mode(lcrec, histories, gaps, mode)
        p50, p95 = _percentiles(latencies)
        results[f"lcrec/{mode}"] = {"rankings": rankings, "rps": rps, "p50": p50, "p95": p95}
    assert results["lcrec/deadline"]["rankings"] == results["lcrec/continuous"]["rankings"], (
        "continuous admission changed LCRec rankings"
    )
    oracle = [lcrec.recommend(h, top_k=TOP_K) for h in histories[:3]]
    assert results["lcrec/continuous"]["rankings"][:3] == oracle, "LCRec engine parity broke"

    # TIGER through the per-request oracle loop and the batched engine.
    index_set = build_random_index_set(
        dataset.num_items, 3, 8, np.random.default_rng(SEED)
    )
    tiger = TIGER(index_set, TIGERConfig(epochs=scale.epochs(6), seed=SEED))
    tiger.fit(dataset)
    engine = TIGEREngine(tiger)
    run_tiger_batched(engine, histories[:TIGER_BATCH])  # warm
    single_rankings, single_lat, single_rps = run_tiger_single(tiger, histories)
    batched_rankings, batched_lat, batched_rps = run_tiger_batched(engine, histories)
    assert batched_rankings == single_rankings, "TIGER engine parity broke"
    for name, (lat, rps) in (
        ("tiger/single-loop", (single_lat, single_rps)),
        (f"tiger/batched B={TIGER_BATCH}", (batched_lat, batched_rps)),
    ):
        p50, p95 = _percentiles(lat)
        results[name] = {"rps": rps, "p50": p50, "p95": p95}

    rows = [f"{'backend / path':<22} {'req/s':>8} {'p50 ms':>9} {'p95 ms':>9}"]
    for name in (
        "lcrec/deadline",
        "lcrec/continuous",
        "tiger/single-loop",
        f"tiger/batched B={TIGER_BATCH}",
    ):
        r = results[name]
        rows.append(
            f"{name:<22} {r['rps']:>8.2f} {1000 * r['p50']:>9.1f} {1000 * r['p95']:>9.1f}"
        )
    rows += [
        "",
        f"workload: {NUM_REQUESTS} requests, top_k={TOP_K}; LCRec open-loop "
        f"Poisson (mean gap {MEAN_GAP_MS:.0f} ms, width {BATCH_WIDTH}, "
        f"deadline {DEADLINE_MS:.0f} ms); TIGER closed-loop (scale {scale.name})",
        "rankings asserted identical to each backend's per-request oracle",
    ]
    table = "\n".join(rows)
    destination = report("engine_backends", table)
    # The repo-root results directory mirrors the harness copy.
    mirror = destination.parents[2] / "benchmark_results"
    mirror.mkdir(parents=True, exist_ok=True)
    (mirror / "engine_backends.txt").write_text(table + "\n")
    report_json(
        "engine_backends",
        config={"lcrec_width": BATCH_WIDTH, "tiger_batch": TIGER_BATCH,
                "num_requests": NUM_REQUESTS, "mean_gap_ms": MEAN_GAP_MS,
                "deadline_ms": DEADLINE_MS, "top_k": TOP_K,
                "scale": scale.name},
        results=[
            {"name": name, "requests_per_second": entry["rps"],
             "p50_ms": 1000 * entry["p50"], "p95_ms": 1000 * entry["p95"]}
            for name, entry in results.items()
        ],
    )
    return results


def test_engine_backends(benchmark):
    results = benchmark.pedantic(run_engine_backend_table, rounds=1, iterations=1)
    # Shared-stack acceptance: continuous admission must not lose throughput
    # on the same engine, and the batched TIGER engine must at least keep up
    # with the per-request loop (it amortizes every forward over the batch).
    assert results["lcrec/continuous"]["rps"] >= 0.9 * results["lcrec/deadline"]["rps"]
    assert results[f"tiger/batched B={TIGER_BATCH}"]["rps"] >= 0.9 * results["tiger/single-loop"]["rps"]

