"""Extension ablation: head-vs-tail robustness of semantic indices (Games).

The paper motivates learned semantic indices with cold-start/OOV
robustness (Sec. III-B1): tail items should borrow statistics from
similar popular items through shared codewords, while pure-ID models
starve.  This bench buckets test users by the *target item's* training
popularity and compares LC-Rec with SASRec per bucket.
"""

from repro.baselines import BaselineTrainer, BaselineTrainerConfig, SASRec
from repro.bench import bench_scale, report
from repro.eval import evaluate_by_popularity, item_popularity
from repro.eval.ranking import rankings_from_scores


def run_buckets(games_dataset, games_lcrec):
    scale = bench_scale()
    limit = min(scale.max_eval_users, games_dataset.num_users)
    histories = games_dataset.split.test_histories[:limit]
    targets = games_dataset.split.test_targets[:limit]
    popularity = item_popularity(games_dataset.split.train_sequences,
                                 games_dataset.num_items)

    sasrec = SASRec(games_dataset.num_items, dim=48,
                    max_len=games_dataset.config.max_seq_len)
    BaselineTrainer(BaselineTrainerConfig(
        epochs=scale.epochs(30))).fit(sasrec, games_dataset)
    sasrec_ranked = rankings_from_scores(sasrec.score_all(histories), 10)
    lcrec_ranked = [games_lcrec.recommend(h, top_k=10) for h in histories]

    rows = []
    reports = {}
    for label, ranked in (("SASRec", sasrec_ranked),
                          ("LC-Rec", lcrec_ranked)):
        bucket_report = evaluate_by_popularity(ranked, targets, popularity,
                                               num_buckets=3, k=10)
        reports[label] = bucket_report
        rows.append(f"--- {label} ---")
        rows.extend(bucket_report.rows())
    report("ablation_popularity_buckets", "\n".join(rows))
    return reports


def test_popularity_buckets(benchmark, games_dataset, games_lcrec):
    reports = benchmark.pedantic(run_buckets,
                                 args=(games_dataset, games_lcrec),
                                 rounds=1, iterations=1)
    # Both models see per-bucket HR in [0, 1]; the tail bucket exists.
    for bucket_report in reports.values():
        assert bucket_report.bucket_sizes[0] > 0
