"""Table II: statistics of the preprocessed datasets.

Regenerates the #Users / #Items / #Interactions / Sparsity / Avg-length
table for the three dataset presets at the active benchmark scale.  The
paper-shape expectations: sparsity > 95%, average length ~8-9, games the
largest and densest in complements.
"""

from repro.bench import report, scaled_dataset
from repro.data import dataset_statistics, format_table2_row

PRESETS = ("instruments", "arts", "games")


def build_all_stats():
    rows = [f"{'dataset':<12} {'#users':>8} {'#items':>8} "
            f"{'#interactions':>13} {'sparsity':>8} {'avg.len':>8}"]
    stats = []
    for preset in PRESETS:
        dataset = scaled_dataset(preset)
        stat = dataset_statistics(dataset)
        stats.append(stat)
        rows.append(format_table2_row(stat))
    report("table2_dataset_stats", "\n".join(rows))
    return stats


def test_table2(benchmark):
    stats = benchmark.pedantic(build_all_stats, rounds=1, iterations=1)
    # Shape assertions mirroring the paper's Table II.
    for stat in stats:
        assert stat.sparsity > 0.90
        assert 5.0 <= stat.avg_length <= 15.0
    by_name = {s.name: s for s in stats}
    assert by_name["games"].num_users >= by_name["instruments"].num_users
