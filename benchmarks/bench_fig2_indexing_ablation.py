"""Figure 2: item indexing ablation on Games (HR@5 / NDCG@5).

Compares three base indexing methods — Vanilla ID, Random Indices and
LC-Rec w/o USM (extra-level dedup) — each fine-tuned (a) with only the
sequential item prediction task ("SEQ") and (b) with the full alignment
mixture ("w/ ALIGN"), against full LC-Rec.

Paper-shape expectations: LC-Rec beats all three base indexings; adding
the alignment tasks boosts every indexing method, most strongly the
multi-level ones.
"""

from repro.bench import build_lcrec_model, evaluate_recommender, report

VARIANTS = [
    ("Vanilla ID", dict(index_source="vanilla")),
    ("Random Indices", dict(index_source="random")),
    ("LC-Rec w/o USM", dict(index_source="semantic",
                            indexing_strategy="extra_level")),
]


def run_figure(games_dataset, games_lcrec):
    lcrec_report = evaluate_recommender(games_lcrec, games_dataset)
    rows = [f"{'indexing':<16} {'mixture':<9} {'HR@5':>7} {'NDCG@5':>7}"]
    results = {}
    for label, kwargs in VARIANTS:
        for mixture_label, tasks in (("SEQ", ("seq",)),
                                     ("w/ ALIGN", None)):
            model = build_lcrec_model(
                games_dataset,
                tasks=tasks if tasks else
                ("seq", "mut", "asy", "ite", "per"),
                **kwargs,
            )
            metric_report = evaluate_recommender(model, games_dataset)
            results[(label, mixture_label)] = metric_report
            rows.append(f"{label:<16} {mixture_label:<9} "
                        f"{metric_report['HR@5']:7.4f} "
                        f"{metric_report['NDCG@5']:7.4f}")
    rows.append(f"{'LC-Rec':<16} {'w/ ALIGN':<9} "
                f"{lcrec_report['HR@5']:7.4f} "
                f"{lcrec_report['NDCG@5']:7.4f}  (red dotted line)")
    report("fig2_indexing_ablation", "\n".join(rows))
    return results, lcrec_report


def test_fig2(benchmark, games_dataset, games_lcrec):
    results, lcrec_report = benchmark.pedantic(
        run_figure, args=(games_dataset, games_lcrec), rounds=1,
        iterations=1,
    )
    # Shape: alignment tasks help each indexing on average (Fig. 2 claim:
    # "their performance can be boosted by a large margin").
    gains = [
        results[(label, "w/ ALIGN")]["HR@5"]
        - results[(label, "SEQ")]["HR@5"]
        for label, _ in VARIANTS
    ]
    assert sum(gains) > 0, f"alignment should help on average: {gains}"
