"""Figure 4: PCA visualisation of LLM token embeddings (Games).

Projects the item-index token embeddings and the item-text token
embeddings to 2-D with PCA, for (a) a model tuned only on sequential item
prediction and (b) full LC-Rec.  Paper-shape expectation: without the
alignment tasks the index tokens form their own cluster (high separation
score); LC-Rec's alignment mixes them into the language space (markedly
lower separation).
"""

from repro.analysis import ascii_scatter, embedding_separation, fit_pca
from repro.bench import report


def run_figure(games_lcrec, seq_only):
    rows = []
    separations = {}
    for label, model in (("SEQ only", seq_only), ("LC-Rec", games_lcrec)):
        groups = model.token_embedding_groups()
        separation = embedding_separation(groups["item_indices"],
                                          groups["item_texts"])
        separations[label] = separation.separation
        pca = fit_pca(
            __import__("numpy").concatenate(
                [groups["item_indices"], groups["item_texts"]], axis=0),
            n_components=2,
        )
        projected = {
            "indices": pca.transform(groups["item_indices"]),
            "texts": pca.transform(groups["item_texts"]),
        }
        rows.append(f"--- {label}: separation score "
                    f"{separation.separation:.3f} (centroid distance "
                    f"{separation.centroid_distance:.3f}, spread "
                    f"{separation.within_spread:.3f}) ---")
        rows.append(ascii_scatter(projected, width=64, height=16))
    rows.append(
        "interpretation: lower separation = index tokens integrated into "
        "the language embedding space (the paper's Fig. 4b vs 4a)."
    )
    report("fig4_embedding_pca", "\n".join(rows))
    return separations


def test_fig4(benchmark, games_lcrec, games_dataset, lcrec_seq_only_factory):
    seq_only = lcrec_seq_only_factory("games")
    separations = benchmark.pedantic(run_figure,
                                     args=(games_lcrec, seq_only),
                                     rounds=1, iterations=1)
    # Shape: full LC-Rec integrates index tokens at least as well as the
    # SEQ-only variant (strictly better in the paper).
    assert separations["LC-Rec"] <= separations["SEQ only"] * 1.1
