"""Table V: discrimination of semantically similar negative items (Games).

For each test user the model must choose between the ground-truth next
item and a hard negative that is (a) language-similar — nearest neighbour
in item *text embedding* space, (b) collaboratively similar — nearest
neighbour in a trained *SASRec* item-embedding space, or (c) random.

Rows: SASRec, LLaMA (pretrained-only LM, title prompting), ChatGPT
(a larger/longer-pretrained language-only LM), LC-Rec (Title), LC-Rec.

Paper-shape expectations: LC-Rec best on all three columns; collaborative
negatives hardest for everyone; the non-fine-tuned LMs are weakest.
"""

import numpy as np

from repro.baselines import BaselineTrainer, BaselineTrainerConfig, SASRec
from repro.bench import bench_scale, report
from repro.bench.table5 import (
    lcrec_index_chooser,
    lcrec_title_chooser,
    pretrained_lm_chooser,
    score_model_chooser,
)
from repro.eval import (
    mine_random_negatives,
    mine_similar_negatives,
    pairwise_choice_accuracy,
)
from repro.llm import LMConfig, PretrainConfig, TinyLlama, pretrain_lm

COLUMNS = ("Language Neg.", "Collaborative Neg.", "Random Neg.")


def build_chatgpt_analogue(games_lcrec, games_dataset):
    """A stronger language-only LM (bigger, longer pretraining, no tuning)."""
    scale = bench_scale()
    tokenizer = games_lcrec.tokenizer
    config = LMConfig(vocab_size=len(tokenizer.vocab), dim=96, num_layers=3,
                      num_heads=4, ffn_hidden=256, max_seq_len=256, seed=11)
    model = TinyLlama(config)
    pretrain_lm(model, tokenizer, games_dataset.catalog.texts(),
                PretrainConfig(steps=scale.epochs(600, minimum=150),
                               batch_size=16, seq_len=64, seed=11))
    model.eval()
    return model


def run_table(games_dataset, games_lcrec):
    scale = bench_scale()
    limit = min(scale.max_eval_users, games_dataset.num_users)
    histories = games_dataset.split.test_histories[:limit]
    targets = games_dataset.split.test_targets[:limit]

    # Negative sets.
    sasrec = SASRec(games_dataset.num_items, dim=48,
                    max_len=games_dataset.config.max_seq_len)
    BaselineTrainer(BaselineTrainerConfig(
        epochs=scale.epochs(30))).fit(sasrec, games_dataset)
    rng = np.random.default_rng(5)
    negative_sets = {
        "Language Neg.": mine_similar_negatives(
            games_lcrec.item_embeddings, targets),
        "Collaborative Neg.": mine_similar_negatives(
            sasrec.item_embedding_matrix(), targets),
        "Random Neg.": mine_random_negatives(
            games_dataset.num_items, targets, rng),
    }

    # Choosers.
    pretrained = games_lcrec.pretrained_lm()
    chatgpt = build_chatgpt_analogue(games_lcrec, games_dataset)
    choosers = {
        "SASRec": score_model_chooser(sasrec),
        "LLaMA": pretrained_lm_chooser(pretrained, games_lcrec.tokenizer,
                                       games_dataset.catalog),
        "ChatGPT": pretrained_lm_chooser(chatgpt, games_lcrec.tokenizer,
                                         games_dataset.catalog),
        "LC-Rec (Title)": lcrec_title_chooser(games_lcrec),
        "LC-Rec": lcrec_index_chooser(games_lcrec),
    }

    rows = [f"{'model':<16} " + " ".join(f"{c:>18}" for c in COLUMNS)]
    accuracies: dict[str, dict[str, float]] = {}
    for label, chooser in choosers.items():
        accuracies[label] = {}
        cells = []
        for column in COLUMNS:
            accuracy = pairwise_choice_accuracy(
                negative_sets[column], histories, chooser)
            accuracies[label][column] = accuracy
            cells.append(f"{100 * accuracy:18.2f}")
        rows.append(f"{label:<16} " + " ".join(cells))
    report("table5_similar_negatives", "\n".join(rows))
    return accuracies


def test_table5(benchmark, games_dataset, games_lcrec):
    accuracies = benchmark.pedantic(run_table,
                                    args=(games_dataset, games_lcrec),
                                    rounds=1, iterations=1)
    # Shape assertions from the paper's Table V discussion.  Individual
    # cells move by ~±5% between runs at 100 evaluation pairs, so the
    # comparisons use the better LC-Rec variant (the paper reports both
    # index- and title-scoring as "our approach") and a noise tolerance.
    tolerance = 0.05
    assert accuracies["LC-Rec"]["Random Neg."] > 0.6
    for column in ("Collaborative Neg.", "Language Neg."):
        ours = max(accuracies["LC-Rec"][column],
                   accuracies["LC-Rec (Title)"][column])
        theirs = accuracies["LLaMA"][column]
        assert ours >= theirs - tolerance, (
            f"{column}: ours {ours:.2f} vs LLaMA {theirs:.2f}"
        )
