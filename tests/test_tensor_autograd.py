"""Gradient checks and graph-mechanics tests for the autodiff engine."""

import numpy as np
import pytest

from repro.tensor import Tensor, concat, no_grad, stack, where
from repro.tensor import functional as F

from helpers import check_gradient

RNG = np.random.default_rng(7)


def rand(*shape):
    return RNG.standard_normal(shape).astype(np.float32)


class TestElementwiseGradients:
    def test_add(self):
        check_gradient(lambda x: x + 3.0, rand(4, 5))

    def test_mul_broadcast(self):
        other = Tensor(rand(5))
        check_gradient(lambda x: x * other, rand(4, 5))

    def test_div(self):
        denom = Tensor(np.abs(rand(4, 5)) + 1.0)
        check_gradient(lambda x: x / denom, rand(4, 5))

    def test_rsub(self):
        check_gradient(lambda x: 2.0 - x, rand(3, 3))

    def test_pow(self):
        check_gradient(lambda x: x**3, rand(3, 4))

    def test_exp(self):
        check_gradient(lambda x: x.exp(), rand(3, 4) * 0.5)

    def test_log(self):
        check_gradient(lambda x: x.log(), np.abs(rand(3, 4)) + 1.0)

    def test_sqrt(self):
        check_gradient(lambda x: x.sqrt(), np.abs(rand(3, 4)) + 1.0)

    def test_tanh(self):
        check_gradient(lambda x: x.tanh(), rand(3, 4))

    def test_sigmoid(self):
        check_gradient(lambda x: x.sigmoid(), rand(3, 4))

    def test_relu(self):
        x = rand(4, 4)
        x[np.abs(x) < 0.1] = 0.5  # avoid kinks near zero
        check_gradient(lambda t: t.relu(), x)

    def test_silu(self):
        check_gradient(lambda x: x.silu(), rand(3, 4))

    def test_gelu(self):
        check_gradient(lambda x: x.gelu(), rand(3, 4))

    def test_abs(self):
        x = rand(3, 4)
        x[np.abs(x) < 0.1] = 0.7
        check_gradient(lambda t: t.abs(), x)

    def test_neg(self):
        check_gradient(lambda x: -x, rand(2, 3))


class TestMatmulGradients:
    def test_matmul_2d(self):
        other = Tensor(rand(5, 3))
        check_gradient(lambda x: x @ other, rand(4, 5))

    def test_matmul_right_operand(self):
        left = Tensor(rand(4, 5))
        check_gradient(lambda x: left @ x, rand(5, 3))

    def test_matmul_batched(self):
        other = Tensor(rand(2, 5, 3))
        check_gradient(lambda x: x @ other, rand(2, 4, 5))

    def test_matmul_broadcast_batch(self):
        other = Tensor(rand(5, 3))
        check_gradient(lambda x: x @ other, rand(2, 4, 5))

    def test_matmul_vector_right(self):
        vec = Tensor(rand(5))
        check_gradient(lambda x: x @ vec, rand(4, 5))

    def test_matmul_vector_left(self):
        mat = Tensor(rand(5, 3))
        check_gradient(lambda x: x @ mat, rand(5))


class TestShapeOps:
    def test_reshape(self):
        check_gradient(lambda x: (x.reshape(2, 6) * 2.0), rand(3, 4))

    def test_transpose(self):
        other = Tensor(rand(3, 2))
        check_gradient(lambda x: x.transpose(1, 0) @ other, rand(3, 4))

    def test_swapaxes(self):
        check_gradient(lambda x: x.swapaxes(0, 1) * 1.5, rand(3, 4))

    def test_getitem_slice(self):
        check_gradient(lambda x: x[1:, :2] * 2.0, rand(4, 4))

    def test_getitem_int_array(self):
        idx = np.array([0, 2, 2, 1])
        check_gradient(lambda x: x[idx] * 3.0, rand(3, 4))

    def test_concat(self):
        other = Tensor(rand(2, 4))
        check_gradient(lambda x: concat([x, other], axis=0) * 2.0, rand(3, 4))

    def test_stack(self):
        other = Tensor(rand(3, 4))
        check_gradient(lambda x: stack([x, other], axis=1).tanh(), rand(3, 4))

    def test_where(self):
        cond = RNG.random((3, 4)) > 0.5
        other = Tensor(rand(3, 4))
        check_gradient(lambda x: where(cond, x, other), rand(3, 4))


class TestReductions:
    def test_sum_all(self):
        check_gradient(lambda x: (x * x).sum(), rand(3, 4))

    def test_sum_axis(self):
        check_gradient(lambda x: x.sum(axis=1).tanh(), rand(3, 4))

    def test_sum_keepdims(self):
        check_gradient(lambda x: x.sum(axis=0, keepdims=True) * 2.0, rand(3, 4))

    def test_mean(self):
        check_gradient(lambda x: x.mean(axis=1), rand(3, 4))

    def test_max(self):
        x = rand(4, 5)
        # Separate values to avoid tie ambiguity in numeric differencing.
        x += np.arange(20).reshape(4, 5) * 0.1
        check_gradient(lambda t: t.max(axis=1), x)


class TestFusedOps:
    def test_softmax(self):
        check_gradient(lambda x: F.softmax(x, axis=-1).log(), rand(3, 5) * 0.5)

    def test_log_softmax(self):
        check_gradient(lambda x: F.log_softmax(x, axis=-1), rand(3, 5))

    def test_logsumexp(self):
        check_gradient(lambda x: F.logsumexp(x, axis=-1), rand(3, 5))

    def test_logsumexp_keepdims(self):
        check_gradient(lambda x: F.logsumexp(x, axis=1, keepdims=True), rand(3, 5))

    def test_cross_entropy(self):
        targets = np.array([0, 2, 1])
        check_gradient(lambda x: F.cross_entropy(x, targets), rand(3, 4))

    def test_cross_entropy_ignore_index(self):
        targets = np.array([0, -100, 3])
        check_gradient(
            lambda x: F.cross_entropy(x, targets, ignore_index=-100), rand(3, 4)
        )

    def test_cross_entropy_value(self):
        logits = Tensor(np.zeros((2, 4), dtype=np.float32), requires_grad=True)
        loss = F.cross_entropy(logits, np.array([1, 2]))
        assert loss.item() == pytest.approx(np.log(4.0), rel=1e-5)

    def test_layer_norm(self):
        weight = Tensor(rand(6), requires_grad=False)
        bias = Tensor(rand(6), requires_grad=False)
        check_gradient(lambda x: F.layer_norm(x, weight, bias), rand(4, 6))

    def test_layer_norm_param_grads(self):
        x = Tensor(rand(4, 6))
        weight = Tensor(np.ones(6, dtype=np.float32), requires_grad=True)
        bias = Tensor(np.zeros(6, dtype=np.float32), requires_grad=True)
        out = F.layer_norm(x, weight, bias)
        out.sum().backward()
        np.testing.assert_allclose(bias.grad, np.full(6, 4.0), atol=1e-5)

    def test_rms_norm(self):
        weight = Tensor(rand(6) + 2.0, requires_grad=False)
        check_gradient(lambda x: F.rms_norm(x, weight), rand(4, 6) + 0.5)

    def test_embedding(self):
        idx = np.array([[0, 1], [2, 0]])
        check_gradient(lambda w: F.embedding(w, idx) * 2.0, rand(4, 3))

    def test_masked_fill(self):
        mask = RNG.random((3, 4)) > 0.5
        check_gradient(lambda x: F.masked_fill(x, mask, -1e9).tanh(), rand(3, 4))

    def test_dropout_eval_is_identity(self):
        x = Tensor(rand(5, 5))
        out = F.dropout(x, 0.5, np.random.default_rng(0), training=False)
        np.testing.assert_array_equal(out.data, x.data)

    def test_dropout_scales(self):
        x = Tensor(np.ones((1000,), dtype=np.float32))
        out = F.dropout(x, 0.5, np.random.default_rng(0), training=True)
        # Inverted dropout keeps the expectation approximately constant.
        assert abs(out.data.mean() - 1.0) < 0.1


class TestGraphMechanics:
    def test_grad_accumulates_over_reuse(self):
        x = Tensor(np.array([2.0], dtype=np.float32), requires_grad=True)
        y = x * x + x * 3.0
        y.backward()
        np.testing.assert_allclose(x.grad, [7.0])

    def test_no_grad_blocks_taping(self):
        x = Tensor(rand(2, 2), requires_grad=True)
        with no_grad():
            y = x * 2.0
        assert y._backward is None
        assert not y.requires_grad

    def test_backward_requires_scalar(self):
        x = Tensor(rand(2, 2), requires_grad=True)
        with pytest.raises(RuntimeError):
            (x * 2.0).backward()

    def test_backward_on_leafless_raises(self):
        x = Tensor(rand(2, 2))
        with pytest.raises(RuntimeError):
            x.sum().backward()

    def test_detach_cuts_graph(self):
        x = Tensor(rand(2, 2), requires_grad=True)
        y = (x * 2.0).detach() * 3.0
        assert not y.requires_grad

    def test_diamond_graph(self):
        x = Tensor(np.array([3.0], dtype=np.float32), requires_grad=True)
        a = x * 2.0
        b = x * 4.0
        (a * b).backward()  # d/dx 8x^2 = 16x = 48
        np.testing.assert_allclose(x.grad, [48.0])

    def test_float64_input_downcast(self):
        x = Tensor(np.ones((2, 2), dtype=np.float64))
        assert x.dtype == np.float32

    def test_second_backward_possible_after_rebuild(self):
        x = Tensor(np.array([2.0], dtype=np.float32), requires_grad=True)
        (x * x).backward()
        first = x.grad.copy()
        (x * x).backward()
        np.testing.assert_allclose(x.grad, first * 2)
