"""Analysis functions that require a built LC-Rec model."""

from repro.analysis import count_level_changes, generate_from_prefixes


class TestPrefixGeneration:
    def test_one_generation_per_level(self, tiny_lcrec, tiny_dataset):
        study = generate_from_prefixes(tiny_lcrec, 0, max_new_tokens=8)
        assert len(study.generations) == tiny_lcrec.index_set.num_levels
        assert study.true_title == tiny_dataset.catalog[0].title
        assert all(isinstance(text, str) for text in study.generations)

    def test_level_change_report_over_items(self, tiny_lcrec):
        studies = [generate_from_prefixes(tiny_lcrec, item, max_new_tokens=6)
                   for item in range(4)]
        report = count_level_changes(studies)
        assert report.total_items == 4
        assert len(report.transitions) == tiny_lcrec.index_set.num_levels - 1
        assert all(0 <= c <= 4 for c in report.change_counts)
