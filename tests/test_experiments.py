"""The experiment harness: config validation, scenario shapes, matrix
runs, record determinism, and the ingestion-triggered retrieval refresh.

The expensive piece — a 2-backend × 3-scenario matrix over the session
fixtures — runs once (module scope) and every record-shape assertion
reads from it.
"""

import json

import numpy as np
import pytest

from repro.baselines.tiger import TIGER, TIGERConfig
from repro.bench import bench_scale
from repro.core import build_random_index_set
from repro.experiments import (
    BarrierEvent,
    Expectation,
    ExperimentConfig,
    ExperimentConfigError,
    ExperimentError,
    ExperimentRunner,
    IngestEvent,
    PopularityFallback,
    SubmitEvent,
    apply_sweep,
    build_plan,
    known_backends,
    known_scenarios,
    run_experiment,
    strip_timing,
    sweep_combinations,
    sweep_suffix,
)
from repro.retrieval import RetrievalRecommender
from repro.serving import (
    LCRecEngine,
    RecommendationService,
    ServingCluster,
    refresh_retrieval_tier,
)


def minimal_config(**overrides):
    raw = {
        "name": "unit",
        "scale": "tiny",
        "backends": ["lcrec"],
        "scenarios": ["steady_state"],
        **overrides,
    }
    return ExperimentConfig.from_dict(raw)


@pytest.fixture(scope="module")
def tiny_tiger(tiny_dataset):
    index_set = build_random_index_set(
        tiny_dataset.num_items, 3, 8, np.random.default_rng(0)
    )
    model = TIGER(index_set, TIGERConfig(dim=32, epochs=2, seed=0))
    model.fit(tiny_dataset)
    return model


MATRIX_RAW = {
    "name": "matrix",
    "scale": "tiny",
    "seed": 7,
    "num_workers": 2,
    "backends": ["lcrec", "tiger"],
    "scenarios": [
        {"kind": "steady_state", "requests": 6},
        {
            "kind": "burst_overload",
            "requests": 10,
            "max_backlog": 1,
            "expect": [{"metric": "degraded", "op": "eq", "value": 8}],
        },
        {
            "kind": "catalog_churn",
            "requests": 6,
            "ingest_every": 3,
            "expect": [
                {"metric": "extra.new_item_in_tier_rate", "op": "eq", "value": 1.0}
            ],
        },
    ],
}


@pytest.fixture(scope="module")
def matrix_result(tiny_dataset, tiny_lcrec, tiny_tiger):
    return run_experiment(
        MATRIX_RAW,
        dataset=tiny_dataset,
        models={"lcrec": tiny_lcrec, "tiger": tiny_tiger},
        write=False,
    )


# ----------------------------------------------------------------------
# Config loading and validation
# ----------------------------------------------------------------------
class TestConfigValidation:
    def test_minimal_roundtrip(self):
        config = minimal_config()
        again = ExperimentConfig.from_dict(config.to_dict())
        assert again == config

    def test_string_and_dict_scenarios_equivalent(self):
        a = minimal_config(scenarios=["cold_start"])
        b = minimal_config(scenarios=[{"kind": "cold_start"}])
        assert a.scenarios == b.scenarios

    @pytest.mark.parametrize(
        "raw, fragment",
        [
            ({"backends": ["lcrec"]}, "missing required key"),
            ({"name": "x", "backends": [], "scenarios": ["steady_state"]}, "at least one"),
            ({"name": "x", "backends": ["nope"], "scenarios": ["steady_state"]}, "unknown backend"),
            ({"name": "x", "backends": ["lcrec"], "scenarios": ["nope"]}, "unknown scenario"),
            (
                {
                    "name": "x",
                    "backends": ["lcrec"],
                    "scenarios": [{"kind": "steady_state", "bogus": 1}],
                },
                "unknown parameters",
            ),
            (
                {
                    "name": "x",
                    "backends": ["lcrec"],
                    "scenarios": ["steady_state"],
                    "metrics": ["mrr"],
                },
                "unknown metric",
            ),
            (
                {"name": "x", "backends": ["lcrec"], "scenarios": ["steady_state", "steady_state"]},
                "labels must be unique",
            ),
            (
                {"name": "x", "backends": ["lcrec", "lcrec"], "scenarios": ["steady_state"]},
                "must be unique",
            ),
            (
                {"name": "x", "backends": ["lcrec"], "scenarios": ["steady_state"], "typo_key": 1},
                "unknown config keys",
            ),
            (
                {"name": "x", "backends": ["lcrec"], "scenarios": ["steady_state"], "cutoffs": [0]},
                "positive",
            ),
            (
                {"name": "x", "backends": ["lcrec"], "scenarios": ["steady_state"], "mode": "warp"},
                "mode",
            ),
            (
                {
                    "name": "x",
                    "backends": ["lcrec"],
                    "scenarios": [
                        {
                            "kind": "steady_state",
                            "expect": [{"metric": "shed", "op": "~", "value": 0}],
                        }
                    ],
                },
                "op",
            ),
            (
                {
                    "name": "x",
                    "backends": ["lcrec"],
                    "scenarios": [{"kind": "steady_state", "expect": [{"metric": "shed"}]}],
                },
                "missing",
            ),
        ],
    )
    def test_invalid_configs_rejected(self, raw, fragment):
        with pytest.raises(ExperimentConfigError, match=fragment):
            ExperimentConfig.from_dict(raw)

    def test_unknown_scale_rejected(self):
        with pytest.raises(KeyError, match="scale name"):
            minimal_config(scale="huge")

    def test_from_file_json(self, tmp_path):
        path = tmp_path / "config.json"
        path.write_text(json.dumps(MATRIX_RAW))
        config = ExperimentConfig.from_file(path)
        assert config.name == "matrix"
        assert [spec.name for spec in config.backends] == ["lcrec", "tiger"]

    def test_from_file_missing_and_bad_suffix(self, tmp_path):
        with pytest.raises(ExperimentConfigError, match="not found"):
            ExperimentConfig.from_file(tmp_path / "nope.json")
        bad = tmp_path / "config.txt"
        bad.write_text("{}")
        with pytest.raises(ExperimentConfigError, match="json or"):
            ExperimentConfig.from_file(bad)

    def test_from_file_yaml(self, tmp_path):
        yaml = pytest.importorskip("yaml")
        path = tmp_path / "config.yaml"
        path.write_text(yaml.safe_dump(MATRIX_RAW))
        assert ExperimentConfig.from_file(path) == ExperimentConfig.from_dict(MATRIX_RAW)

    def test_example_configs_parse(self):
        config = ExperimentConfig.from_file("examples/experiments/smoke.json")
        assert len(config.backends) >= 2 and len(config.scenarios) >= 3
        pytest.importorskip("yaml")
        ported = ExperimentConfig.from_file("examples/experiments/cluster_serving.yaml")
        # The port keeps the bench's assertions as expectations.
        assert any(spec.expect for spec in ported.scenarios)
        labels = [spec.label for spec in ported.scenarios]
        assert "burst_degraded" in labels and "burst_shed" in labels

    def test_metric_keys_skip_degenerate_ndcg(self):
        config = minimal_config(metrics=["hr", "ndcg"], cutoffs=[1, 5])
        assert config.metric_keys() == ["HR@1", "HR@5", "NDCG@5"]

    def test_registries(self):
        assert set(known_backends()) == {"lcrec", "tiger", "p5cid"}
        assert "catalog_churn" in known_scenarios()
        assert known_scenarios()["burst_overload"]["max_backlog"] == 2


class TestExpectation:
    def test_dotted_path_and_ops(self):
        record = {"served": 5, "quality": {"HR@5": 0.25}}
        assert Expectation("served", "ge", 5).check(record) == (True, 5)
        assert Expectation("quality.HR@5", "gt", 0.3).check(record) == (False, 0.25)

    def test_missing_path_fails(self):
        holds, observed = Expectation("extra.nope", "eq", 1).check({"extra": {}})
        assert not holds and observed is None


# ----------------------------------------------------------------------
# BenchScale programmatic selection (no more env monkeypatching)
# ----------------------------------------------------------------------
class TestBenchScale:
    def test_programmatic_name_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "small")
        assert bench_scale("tiny").name == "tiny"

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "tiny")
        assert bench_scale().name == "tiny"
        monkeypatch.delenv("REPRO_SCALE")
        assert bench_scale().name == "small"

    def test_error_names_the_source(self, monkeypatch):
        with pytest.raises(KeyError, match="scale name"):
            bench_scale("galactic")
        monkeypatch.setenv("REPRO_SCALE", "galactic")
        with pytest.raises(KeyError, match="REPRO_SCALE"):
            bench_scale()

    def test_config_scale_reaches_runner(self, tiny_dataset, tiny_lcrec):
        config = minimal_config(scale="tiny")
        runner = ExperimentRunner(
            config, dataset=tiny_dataset, models={"lcrec": tiny_lcrec}, write=False
        )
        assert runner.scale.name == "tiny"


# ----------------------------------------------------------------------
# Scenario generators produce the claimed traffic shapes
# ----------------------------------------------------------------------
class TestScenarioShapes:
    def plan(self, dataset, kind, **params):
        config = ExperimentConfig.from_dict(
            {
                "name": "shapes",
                "scale": "tiny",
                "num_workers": 2,
                "backends": ["lcrec", "tiger"],
                "scenarios": [{"kind": kind, **params}],
            }
        )
        return build_plan(dataset, bench_scale("tiny"), config, config.scenarios[0])

    def test_plans_are_deterministic(self, tiny_dataset):
        for kind in known_scenarios():
            config = ExperimentConfig.from_dict(
                {
                    "name": "d",
                    "scale": "tiny",
                    "backends": ["lcrec"],
                    "scenarios": [kind],
                }
            )
            spec = config.scenarios[0]
            scale = bench_scale("tiny")
            assert (
                build_plan(tiny_dataset, scale, config, spec).events
                == build_plan(tiny_dataset, scale, config, spec).events
            )

    def test_steady_state(self, tiny_dataset):
        plan = self.plan(tiny_dataset, "steady_state", requests=7)
        assert plan.num_submits == 7 and not plan.closed_loop
        assert all(isinstance(e, SubmitEvent) and e.target is not None for e in plan.events)

    def test_cold_start_truncates_and_empties(self, tiny_dataset):
        plan = self.plan(
            tiny_dataset, "cold_start", requests=8, prefix_len=2, empty_fraction=0.25
        )
        submits = [e for e in plan.events if isinstance(e, SubmitEvent)]
        empty = [e for e in submits if not e.history]
        assert len(empty) == 2  # every 4th request
        assert all(len(e.history) <= 2 for e in submits)
        assert plan.use_fallback

    def test_long_history_longest_first(self, tiny_dataset):
        plan = self.plan(tiny_dataset, "long_history", requests=5)
        lengths = [len(e.history) for e in plan.events]
        assert lengths == sorted(lengths, reverse=True)
        full = max(len(h) for h in tiny_dataset.split.test_histories)
        assert lengths[0] == full

    def test_session_refresh_repeats_sessions(self, tiny_dataset):
        plan = self.plan(tiny_dataset, "session_refresh", sessions=3, refresh=4)
        submits = [e for e in plan.events if isinstance(e, SubmitEvent)]
        assert len(submits) == 12 and plan.prefix_cache
        by_session = {}
        for event in submits:
            by_session.setdefault(event.session, []).append(event.history)
        assert len(by_session) == 3
        assert all(len(set(histories)) == 1 for histories in by_session.values())

    def test_burst_overload_closed_loop(self, tiny_dataset):
        plan = self.plan(tiny_dataset, "burst_overload", requests=9, max_backlog=1)
        assert plan.closed_loop and plan.max_backlog == 1
        assert isinstance(plan.events[-1], BarrierEvent)
        assert plan.num_submits == 9
        assert plan.extra["backlog_capacity"] == 2  # 2 workers x backlog 1

    def test_catalog_churn_plans_dense_ids(self, tiny_dataset):
        plan = self.plan(tiny_dataset, "catalog_churn", requests=9, ingest_every=3)
        ingests = [e for e in plan.events if isinstance(e, IngestEvent)]
        assert [e.item_id for e in ingests] == [
            tiny_dataset.num_items,
            tiny_dataset.num_items + 1,
        ]
        assert plan.closed_loop and plan.client == "service"
        assert plan.requires == ("rqvae",)
        # Every ingest rides between flush barriers.
        for index, event in enumerate(plan.events):
            if isinstance(event, IngestEvent):
                assert isinstance(plan.events[index - 1], BarrierEvent)

    def test_mixed_fleet_sizes_to_backends(self, tiny_dataset):
        plan = self.plan(tiny_dataset, "mixed_fleet", requests=4)
        assert plan.num_workers == 2 and plan.extra["fleet_size"] == 2

    def test_intention_traffic_interleaves_language_requests(self, tiny_dataset):
        plan = self.plan(tiny_dataset, "intention_traffic", requests=8, intention_every=2)
        assert plan.requires == ("language",)
        submits = [e for e in plan.events if isinstance(e, SubmitEvent)]
        intentions = [e for e in submits if e.kind == "intention"]
        assert len(submits) == 8
        assert len(intentions) == plan.extra["intention_requests"] == 4
        for event in intentions:
            assert event.text and "pairs well with" in event.text
            assert event.history == () and event.target is None
        for event in submits:
            if event.kind == "seq":
                assert event.text is None and event.target is not None

    def test_instruction_traffic_paraphrases_histories(self, tiny_dataset):
        plan = self.plan(tiny_dataset, "instruction_traffic", requests=6, history_tail=3)
        assert plan.requires == ("language",)
        submits = [e for e in plan.events if isinstance(e, SubmitEvent)]
        assert len(submits) == 6 and plan.extra["history_tail"] == 3
        for event in submits:
            assert event.kind == "instruction"
            assert event.target is not None  # quality stays measurable
            assert "Predict the next item" in event.text
            # The prompt names exactly the items the plan keeps.
            recent = event.history[-3:]
            assert all(str(item) in event.text for item in recent)

    def test_submit_events_default_to_sequential_kind(self, tiny_dataset):
        plan = self.plan(tiny_dataset, "steady_state", requests=3)
        assert all(e.kind == "seq" and e.text is None for e in plan.events)


# ----------------------------------------------------------------------
# Sweep axes: validation, expansion, and swept runs
# ----------------------------------------------------------------------
class TestSweep:
    def test_sweep_roundtrip(self):
        config = minimal_config(sweep={"precision": ["fp32", "int8"], "batch_width": [4, 8]})
        assert ExperimentConfig.from_dict(config.to_dict()) == config

    def test_combinations_row_major(self):
        config = minimal_config(sweep={"precision": ["fp32", "int8"], "batch_width": [4, 8]})
        assert sweep_combinations(config) == [
            {"precision": "fp32", "batch_width": 4},
            {"precision": "fp32", "batch_width": 8},
            {"precision": "int8", "batch_width": 4},
            {"precision": "int8", "batch_width": 8},
        ]
        assert sweep_combinations(minimal_config()) == [{}]

    def test_suffix_format(self):
        assert sweep_suffix({}) == ""
        assert sweep_suffix({"precision": "int8", "batch_width": 4}) == (
            "@precision=int8,batch_width=4"
        )

    def test_apply_sweep_routes_keys(self):
        config = minimal_config(sweep={"batch_width": [4], "spec_budget": [0]})
        combo = sweep_combinations(config)[0]
        concrete = apply_sweep(config, combo)
        assert concrete.sweep == ()
        assert concrete.batch_width == 4  # top-level field
        assert all(spec.params["spec_budget"] == 0 for spec in concrete.backends)

    @pytest.mark.parametrize(
        "sweep, fragment",
        [
            ({"precision": []}, "at least one value"),
            ({"precision": ["int8", "int8"]}, "duplicate"),
            ({"mode": ["warp"]}, "mode"),
            ({"batch_width": [0]}, "positive"),
            ({"bogus_knob": [1]}, "unknown parameters"),
            ({"precision": ["fp8"]}, "unknown precision"),
            ({"spec_budget": [-1]}, "spec_budget"),
        ],
    )
    def test_invalid_sweeps_rejected(self, sweep, fragment):
        with pytest.raises(ExperimentConfigError, match=fragment):
            minimal_config(sweep=sweep)

    def test_backend_param_sweep_checked_against_every_backend(self):
        # epochs is a tiger knob the lcrec backend does not accept, so a
        # config listing both backends cannot sweep it.
        with pytest.raises(ExperimentConfigError, match="epochs"):
            minimal_config(backends=["lcrec", "tiger"], sweep={"epochs": [1, 2]})

    def test_swept_run_suffixes_cells_and_keeps_parity(
        self, tiny_dataset, tiny_lcrec
    ):
        result = run_experiment(
            {
                "name": "sweep",
                "scale": "tiny",
                "backends": ["lcrec"],
                "scenarios": [{"kind": "steady_state", "requests": 4}],
                "sweep": {"spec_budget": [64, 0]},
            },
            dataset=tiny_dataset,
            models={"lcrec": tiny_lcrec},
            write=False,
        )
        records = result["records"]
        assert [r["name"] for r in records] == [
            "steady_statexlcrec@spec_budget=64",
            "steady_statexlcrec@spec_budget=0",
        ]
        assert [r["sweep"] for r in records] == [
            {"spec_budget": 64},
            {"spec_budget": 0},
        ]
        # Traffic is combo-independent and speculative decode is exact,
        # so the sweep points differ only in name/sweep/timing.
        stripped = [strip_timing(r) for r in records]
        for record in stripped:
            record.pop("name"), record.pop("sweep")
        assert stripped[0] == stripped[1]


# ----------------------------------------------------------------------
# The matrix run: records, schema, determinism
# ----------------------------------------------------------------------
class TestMatrixRun:
    def test_one_record_per_cell(self, matrix_result):
        records = matrix_result["records"]
        assert [r["name"] for r in records] == [
            "steady_statexlcrec",
            "steady_statextiger",
            "burst_overloadxlcrec",
            "burst_overloadxtiger",
            "catalog_churnxlcrec",
            "catalog_churnxtiger",
        ]

    def test_supported_record_schema(self, matrix_result):
        for record in matrix_result["records"]:
            if not record["supported"]:
                continue
            for key in (
                "scenario",
                "backend",
                "seed",
                "client",
                "mode",
                "requests",
                "served",
                "shed",
                "degraded",
                "cold_start",
                "quality",
                "extra",
                "expectations",
                "timing",
            ):
                assert key in record, f"{record['name']} missing {key}"
            assert set(record["timing"]) == {
                "wall_s",
                "requests_per_second",
                "p50_ms",
                "p95_ms",
            }
            quality = record["quality"]
            assert quality["evaluated"] == record["served"]
            for key in ("HR@5", "HR@10", "NDCG@5", "NDCG@10"):
                assert 0.0 <= quality[key] <= 1.0

    def test_unsupported_cell_is_still_a_record(self, matrix_result):
        record = next(
            r for r in matrix_result["records"] if r["name"] == "catalog_churnxtiger"
        )
        assert record["supported"] is False
        assert "RQ-VAE" in record["reason"]

    def test_burst_admission_is_exact(self, matrix_result):
        record = next(
            r for r in matrix_result["records"] if r["scenario"] == "burst_overload"
        )
        # capacity = 2 workers x backlog 1; the other 8 degrade to retrieval.
        assert record["served"] == 10
        assert record["degraded"] == 8
        assert record["shed"] == 0

    def test_churn_refresh_reached_the_fallback(self, matrix_result, tiny_dataset):
        record = next(
            r for r in matrix_result["records"] if r["name"] == "catalog_churnxlcrec"
        )
        assert record["extra"]["ingested"] == 1
        assert record["extra"]["new_item_in_tier_rate"] == 1.0
        assert (
            record["extra"]["catalog_items"]
            == tiny_dataset.num_items + record["extra"]["ingested"]
        )

    def test_expectation_outcomes_recorded(self, matrix_result):
        record = next(
            r for r in matrix_result["records"] if r["scenario"] == "burst_overload"
        )
        checked = record["expectations"]["checked"]
        assert checked and all(entry["holds"] for entry in checked)
        assert matrix_result["failed"] == []

    def test_seed_determinism_modulo_timing(
        self, tiny_dataset, tiny_lcrec, tiny_tiger, matrix_result
    ):
        again = run_experiment(
            MATRIX_RAW,
            dataset=tiny_dataset,
            models={"lcrec": tiny_lcrec, "tiger": tiny_tiger},
            write=False,
        )
        first = [strip_timing(r) for r in matrix_result["records"]]
        second = [strip_timing(r) for r in again["records"]]
        assert first == second
        # ... and the timing block really is the only varying part.
        assert all("timing" in r for r in matrix_result["records"] if r["supported"])

    def test_failed_expectation_raises_but_writes(
        self, tiny_dataset, tiny_lcrec, monkeypatch, tmp_path
    ):
        from repro.bench import reporting

        monkeypatch.setattr(reporting, "benchmark_results_dir", lambda: tmp_path)
        raw = {
            "name": "red",
            "scale": "tiny",
            "backends": ["lcrec"],
            "scenarios": [
                {
                    "kind": "steady_state",
                    "requests": 2,
                    "expect": [{"metric": "served", "op": "eq", "value": -1}],
                }
            ],
        }
        with pytest.raises(ExperimentError, match="served eq -1"):
            run_experiment(raw, dataset=tiny_dataset, models={"lcrec": tiny_lcrec})
        payload = json.loads((tmp_path / "experiment_red.json").read_text())
        assert payload["bench"] == "experiment_red"
        assert not payload["results"][0]["expectations"]["checked"][0]["holds"]

    def test_written_record_matches_ci_schema(
        self, tiny_dataset, tiny_lcrec, monkeypatch, tmp_path
    ):
        from repro.bench import reporting

        monkeypatch.setattr(reporting, "benchmark_results_dir", lambda: tmp_path)
        result = run_experiment(
            {
                "name": "schema",
                "scale": "tiny",
                "backends": ["lcrec"],
                "scenarios": [{"kind": "steady_state", "requests": 2}],
            },
            dataset=tiny_dataset,
            models={"lcrec": tiny_lcrec},
        )
        payload = json.loads(result["path"].read_text())
        # The exact keys the CI validation step asserts on every record.
        for key in ("bench", "git_sha", "config", "results"):
            assert key in payload
        assert payload["results"]
        assert payload["config"]["scenarios"][0]["kind"] == "steady_state"


# ----------------------------------------------------------------------
# Language traffic end to end: lcrec serves, token-only backends gate
# ----------------------------------------------------------------------
class TestLanguageTraffic:
    @pytest.fixture(scope="class")
    def language_result(self, tiny_dataset, tiny_lcrec, tiny_tiger):
        return run_experiment(
            {
                "name": "language",
                "scale": "tiny",
                "backends": ["lcrec", "tiger"],
                "scenarios": [
                    {"kind": "intention_traffic", "requests": 6},
                    {"kind": "instruction_traffic", "requests": 4},
                ],
            },
            dataset=tiny_dataset,
            models={"lcrec": tiny_lcrec, "tiger": tiny_tiger},
            write=False,
        )

    def test_lcrec_serves_language_cells(self, language_result):
        for record in language_result["records"]:
            if record["backend"] != "lcrec":
                continue
            assert record["supported"] and record["served"] == record["requests"]

    def test_intention_requests_skip_quality(self, language_result):
        record = next(
            r
            for r in language_result["records"]
            if r["name"] == "intention_trafficxlcrec"
        )
        # Intention submits carry no target, so only the sequential half
        # of the traffic is evaluated for quality.
        assert record["quality"]["evaluated"] == record["served"] - 3
        assert record["extra"]["intention_requests"] == 3

    def test_instruction_requests_keep_quality(self, language_result):
        record = next(
            r
            for r in language_result["records"]
            if r["name"] == "instruction_trafficxlcrec"
        )
        assert record["quality"]["evaluated"] == record["served"] == 4

    def test_token_only_backends_record_unsupported(self, language_result):
        for record in language_result["records"]:
            if record["backend"] != "tiger":
                continue
            assert record["supported"] is False
            assert "intention/instruction" in record["reason"]


# ----------------------------------------------------------------------
# The fallback used by embedding-free backends
# ----------------------------------------------------------------------
class TestPopularityFallback:
    def test_deterministic_and_excludes_history(self, tiny_dataset):
        fallback = PopularityFallback(tiny_dataset)
        first = fallback.recommend([], top_k=10)
        assert fallback.recommend([], top_k=10) == first
        assert len(first) == 10 and len(set(first)) == 10
        skipped = fallback.recommend(first[:3], top_k=10)
        assert not set(skipped) & set(first[:3])


# ----------------------------------------------------------------------
# Ingestion-triggered retrieval refresh (service + cluster)
# ----------------------------------------------------------------------
class TestRetrievalRefresh:
    def test_service_ingest_refreshes_static_fallback(self, tiny_lcrec, rng):
        catalog = tiny_lcrec.live_catalog(retrieval=True)
        engine = LCRecEngine(tiny_lcrec, prefix_cache=False)
        engine.attach_catalog(catalog)
        stale = catalog.version.retrieval
        service = RecommendationService(engine, fallback=stale)
        dim = tiny_lcrec.item_embeddings.shape[1]
        ingested = service.ingest_item(embedding=rng.normal(size=dim))
        assert service.fallback is not stale
        assert service.fallback is ingested.version.retrieval
        assert service.fallback.num_items == stale.num_items + 1
        # A session that interacted with the new item now has a profile.
        assert service.fallback.profile([ingested.item_id]) is not None
        assert stale.profile([ingested.item_id]) is None

    def test_cluster_ingest_refreshes_every_worker(self, tiny_lcrec, rng):
        catalog = tiny_lcrec.live_catalog(retrieval=True)
        stale = catalog.version.retrieval

        def engine_factory():
            engine = LCRecEngine(tiny_lcrec, prefix_cache=False)
            engine.attach_catalog(catalog)
            return engine

        cluster = ServingCluster(engine_factory, num_workers=2, fallback=stale)
        for worker in cluster._workers:
            worker.service.fallback = stale
        dim = tiny_lcrec.item_embeddings.shape[1]
        ingested = cluster.ingest_item(embedding=rng.normal(size=dim))
        assert cluster.fallback is ingested.version.retrieval
        for worker in cluster._workers:
            assert worker.service.fallback is ingested.version.retrieval

    def test_refresh_leaves_custom_fallbacks_alone(self, tiny_lcrec, tiny_dataset, rng):
        catalog = tiny_lcrec.live_catalog(retrieval=True)
        engine = LCRecEngine(tiny_lcrec, prefix_cache=False)
        engine.attach_catalog(catalog)
        custom = PopularityFallback(tiny_dataset)
        service = RecommendationService(engine, fallback=custom)
        dim = tiny_lcrec.item_embeddings.shape[1]
        service.ingest_item(embedding=rng.normal(size=dim))
        assert service.fallback is custom

    def test_refresh_helper_reports_whether_it_swapped(self, tiny_lcrec, rng):
        catalog = tiny_lcrec.live_catalog(retrieval=True)
        stale = catalog.version.retrieval

        class Client:
            fallback = stale

        ingested = catalog.ingest(
            embedding=rng.normal(size=tiny_lcrec.item_embeddings.shape[1])
        )
        client = Client()
        assert refresh_retrieval_tier(client, ingested.version) is True
        assert client.fallback is ingested.version.retrieval
        # Idempotent: already current → nothing to do.
        assert refresh_retrieval_tier(client, ingested.version) is False

    def test_static_tier_is_a_retrieval_recommender(self, tiny_lcrec):
        tier = RetrievalRecommender.from_lcrec(tiny_lcrec)
        assert tier.recommend([], top_k=5) == tier.recommend([], top_k=5)


# ----------------------------------------------------------------------
# CLI wiring
# ----------------------------------------------------------------------
class TestCLI:
    def test_experiment_scenarios_lists_registry(self, capsys):
        from repro.__main__ import main

        assert main(["experiment", "scenarios"]) == 0
        out = capsys.readouterr().out
        assert "catalog_churn" in out and "burst_overload" in out
        assert "lcrec" in out and "tiger" in out

    def test_experiment_run_rejects_missing_config(self, capsys):
        from repro.__main__ import main

        assert main(["experiment", "run", "does_not_exist.json"]) == 2
        assert "not found" in capsys.readouterr().out
