"""Tests for the indexing pipelines (semantic / vanilla / random)."""

import numpy as np
import pytest

from repro.core.indexer import (
    SemanticIndexerConfig,
    build_random_index_set,
    build_semantic_index_set,
    build_vanilla_index_set,
)
from repro.quantization import RQVAEConfig, RQVAETrainerConfig


def clustered_embeddings(n=60, dim=16, clusters=5, seed=0):
    rng = np.random.default_rng(seed)
    centers = rng.standard_normal((clusters, dim)) * 3
    labels = rng.integers(clusters, size=n)
    return (centers[labels] + rng.standard_normal((n, dim)) * 0.2).astype(
        np.float32), labels


class TestVanilla:
    def test_one_token_per_item(self):
        index_set = build_vanilla_index_set(7)
        assert index_set.num_levels == 1
        assert index_set.level_sizes == [7]
        assert index_set.is_unique()
        assert index_set.index_text(3) == "<a_3>"

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            build_vanilla_index_set(0)


class TestRandom:
    def test_unique_indices(self, rng):
        index_set = build_random_index_set(100, 4, 6, rng)
        assert index_set.is_unique()
        assert index_set.codes.shape == (100, 4)

    def test_space_too_small_rejected(self, rng):
        with pytest.raises(ValueError):
            build_random_index_set(100, 2, 3, rng)  # 9 < 100

    def test_handles_tight_space(self, rng):
        index_set = build_random_index_set(60, 3, 4, rng)  # 64 slots
        assert index_set.is_unique()

    def test_deterministic_given_rng(self):
        a = build_random_index_set(30, 3, 8, np.random.default_rng(7))
        b = build_random_index_set(30, 3, 8, np.random.default_rng(7))
        np.testing.assert_array_equal(a.codes, b.codes)


class TestSemantic:
    def make_config(self, strategy="usm"):
        return SemanticIndexerConfig(
            rqvae=RQVAEConfig(input_dim=16, latent_dim=8, hidden_dims=(24,),
                              num_levels=3, codebook_size=8),
            trainer=RQVAETrainerConfig(epochs=60, batch_size=64),
            strategy=strategy,
        )

    def test_usm_unique_and_level_count(self):
        embeddings, _ = clustered_embeddings()
        index_set, model, history = build_semantic_index_set(
            embeddings, self.make_config())
        assert index_set.is_unique()
        assert index_set.num_levels == 3
        assert len(history) == 60

    def test_extra_level_strategy_appends_level(self):
        embeddings, _ = clustered_embeddings()
        index_set, _, _ = build_semantic_index_set(
            embeddings, self.make_config("extra_level"))
        assert index_set.num_levels == 4
        assert index_set.is_unique()

    def test_semantic_similarity_in_prefixes(self):
        """Same-cluster items share the first-level code more than chance."""
        embeddings, labels = clustered_embeddings(n=80, clusters=4)
        index_set, _, _ = build_semantic_index_set(embeddings,
                                                   self.make_config())
        agree = total = 0
        for cluster in range(4):
            members = index_set.codes[labels == cluster, 0]
            values, counts = np.unique(members, return_counts=True)
            agree += counts.max()
            total += counts.sum()
        assert agree / total > 0.6

    def test_dim_mismatch_rejected(self):
        embeddings, _ = clustered_embeddings(dim=12)
        with pytest.raises(ValueError):
            build_semantic_index_set(embeddings, self.make_config())
