"""Continuous batching: stepper parity, level-boundary admission, scheduler.

The load-bearing invariant: a request's rankings are identical to decoding
it alone *no matter when it is admitted* into an in-flight decode — that
is what makes continuous batching a scheduling change, not an
approximation.  The parity suite pins that down for every admission level,
the scheduler tests cover admission policy (width cap, beam
compatibility, FIFO), and the service tests drive the whole background
loop under concurrent submitters.
"""

import threading

import numpy as np
import pytest

from repro.llm import (
    LMConfig,
    PrefixKVCache,
    TinyLlama,
    beam_search_items_batched,
    decode_finish,
    decode_join,
    decode_prefill,
    decode_retire,
    decode_step,
)
from repro.quantization import IndexTrie
from repro.serving import (
    ContinuousScheduler,
    LCRecEngine,
    MicroBatcherConfig,
    RecommendationService,
    RecommendRequest,
    RequestQueue,
    TrieDecoderEngine,
)


def make_model(vocab=30, num_layers=2):
    model = TinyLlama(LMConfig(vocab_size=vocab, dim=16, num_layers=num_layers,
                               num_heads=2, ffn_hidden=24, max_seq_len=64,
                               seed=7))
    model.eval()
    return model


def make_scheduler(model, trie, max_width=8):
    # spec_budget=0: these tests assert admission *pacing* (which step a
    # join lands on), which assumes one trie level per scheduler step; the
    # speculative fast path can finish a 3-level decode in a single step.
    # Speculative/continuous interplay is covered in
    # test_speculative_decode.py.
    return ContinuousScheduler(TrieDecoderEngine(model, trie, spec_budget=0),
                               max_width=max_width)


def make_trie():
    return IndexTrie({
        0: (10, 12, 14),
        1: (10, 12, 15),
        2: (10, 13, 14),
        3: (11, 12, 14),
        4: (11, 13, 15),
    })


LIVE_PROMPTS = [[1, 2, 3], [4, 5]]
LATE_PROMPTS = [[2, 2, 6, 7], [3, 3, 3], [1]]


def run_to_completion(state):
    """Drive a joined state to the end, collecting results by tag.

    Returns ``(results, delivery_order)``: rows are retired the moment they
    reach the final level, so rows admitted earlier are delivered earlier.
    """
    results, order = {}, []
    while state.num_rows:
        rows = state.finished_rows()
        if rows:
            tags = [state.tags[row] for row in rows]
            for tag, hyps in zip(tags, decode_retire(state, rows)):
                results[tag] = hyps
                order.append(tag)
        if state.num_rows:
            decode_step(state)
    return results, order


class TestStepperParity:
    """prefill/step/finish must reproduce the one-shot engine exactly."""

    def test_stepper_matches_one_shot(self):
        model, trie = make_model(), make_trie()
        one_shot = beam_search_items_batched(model, LIVE_PROMPTS + LATE_PROMPTS,
                                             trie, beam_size=5)
        state = decode_prefill(model, LIVE_PROMPTS + LATE_PROMPTS, trie,
                               beam_size=5)
        for _ in range(1, trie.num_levels):
            decode_step(state)
        stepped = decode_finish(state)
        for a, b in zip(stepped, one_shot):
            assert [h.token_ids for h in a] == [h.token_ids for h in b]
            assert [h.score for h in a] == [h.score for h in b]

    @pytest.mark.parametrize("level", [0, 1, 2])
    def test_admission_at_any_level_preserves_rankings(self, level):
        """Join at level L: every request matches decode-alone, for all L."""
        model, trie = make_model(), make_trie()
        reference = {
            tuple(p): beam_search_items_batched(model, [p], trie, beam_size=5)[0]
            for p in LIVE_PROMPTS + LATE_PROMPTS
        }
        state = decode_prefill(model, LIVE_PROMPTS, trie, beam_size=5,
                               tags=[("live", i) for i in range(len(LIVE_PROMPTS))])
        for _ in range(level):
            decode_step(state)
        incoming = decode_prefill(model, LATE_PROMPTS, trie, beam_size=5,
                                  tags=[("late", i) for i in range(len(LATE_PROMPTS))])
        decode_join(state, incoming)
        results, _ = run_to_completion(state)
        prompts = {("live", i): p for i, p in enumerate(LIVE_PROMPTS)}
        prompts |= {("late", i): p for i, p in enumerate(LATE_PROMPTS)}
        assert set(results) == set(prompts)
        for tag, hyps in results.items():
            expected = reference[tuple(prompts[tag])]
            assert [h.item_id for h in hyps] == [h.item_id for h in expected]
            assert [h.token_ids for h in hyps] == [h.token_ids for h in expected]
            np.testing.assert_allclose([h.score for h in hyps],
                                       [h.score for h in expected],
                                       rtol=1e-5, atol=1e-6)

    @pytest.mark.parametrize("level", [1, 2])
    def test_admission_with_prefix_cache(self, level):
        """Cache-seeded rows (mid-sequence pads) join without changing ranks."""
        model, trie = make_model(), make_trie()
        live = [[1, 2, 3, 4, 5, 6], [4, 5, 2]]
        late = [[1, 2, 3, 4, 5, 6, 7, 8], [1, 2, 3, 4]]  # hit live's prompts
        reference = {
            tuple(p): beam_search_items_batched(model, [p], trie, beam_size=5)[0]
            for p in live + late
        }
        cache = PrefixKVCache(min_prefix_len=2)
        beam_search_items_batched(model, live, trie, beam_size=5,
                                  prefix_cache=cache)
        state = decode_prefill(model, live, trie, beam_size=5,
                               prefix_cache=cache, tags=["a", "b"])
        for _ in range(level):
            decode_step(state)
        incoming = decode_prefill(model, late, trie, beam_size=5,
                                  prefix_cache=cache, tags=["c", "d"])
        assert cache.stats.hits > 0
        decode_join(state, incoming)
        results, _ = run_to_completion(state)
        prompts = dict(zip("abcd", live + late))
        for tag, hyps in results.items():
            expected = reference[tuple(prompts[tag])]
            assert [h.item_id for h in hyps] == [h.item_id for h in expected]
            np.testing.assert_allclose([h.score for h in hyps],
                                       [h.score for h in expected],
                                       rtol=1e-5, atol=1e-6)

    def test_early_rows_retire_before_late_rows(self):
        """Delivery order follows admission order, not batch completion."""
        model, trie = make_model(), make_trie()
        state = decode_prefill(model, LIVE_PROMPTS, trie, beam_size=5,
                               tags=["early0", "early1"])
        decode_step(state)
        incoming = decode_prefill(model, LATE_PROMPTS, trie, beam_size=5,
                                  tags=["late0", "late1", "late2"])
        decode_join(state, incoming)
        _, order = run_to_completion(state)
        assert order == ["early0", "early1", "late0", "late1", "late2"]
        # The early rows retired while the late rows were still in flight:
        # both groups were delivered in different retirement rounds.
        assert order.index("late0") > order.index("early1")

    def test_chained_joins(self):
        """Several staggered admissions accumulate into one live decode."""
        model, trie = make_model(), make_trie()
        reference = {
            tuple(p): beam_search_items_batched(model, [p], trie, beam_size=4)[0]
            for p in LIVE_PROMPTS + LATE_PROMPTS
        }
        state = decode_prefill(model, [LIVE_PROMPTS[0]], trie, beam_size=4,
                               tags=[0])
        decode_join(state, decode_prefill(model, [LIVE_PROMPTS[1]], trie,
                                          beam_size=4, tags=[1]))
        decode_step(state)
        results = {}
        for i, prompt in enumerate(LATE_PROMPTS):
            rows = state.finished_rows()
            if rows:
                tags = [state.tags[row] for row in rows]
                results |= dict(zip(tags, decode_retire(state, rows)))
            decode_join(state, decode_prefill(model, [prompt], trie,
                                              beam_size=4, tags=[2 + i]))
            decode_step(state)
        rest, _ = run_to_completion(state)
        results |= rest
        prompts = LIVE_PROMPTS + LATE_PROMPTS
        for tag, hyps in results.items():
            expected = reference[tuple(prompts[tag])]
            assert [h.item_id for h in hyps] == [h.item_id for h in expected]


class TestRetirementTrimming:
    def test_retirement_trims_all_pad_prompt_columns(self):
        """Retiring the only long-prompt row shrinks the KV/attention width.

        After the long row leaves, the columns that were real tokens only
        for it are all-pad for every survivor — decode_retire trims them,
        so later forwards pay attention width for live prompts only, and
        the survivor's rankings stay identical to decoding it alone.
        """
        model, trie = make_model(), make_trie()
        long_p, short_p = [1, 2, 3, 4, 5, 6, 7, 8], [9, 9]
        reference = beam_search_items_batched(model, [short_p], trie,
                                              beam_size=5)[0]
        state = decode_prefill(model, [long_p], trie, beam_size=5,
                               tags=["long"])
        decode_step(state)
        decode_join(state, decode_prefill(model, [short_p], trie, beam_size=5,
                                          tags=["short"]))
        assert state.caches[0].prompt.length == len(long_p)
        decode_step(state)  # the long row reaches the final level
        assert state.finished_rows() == [0]
        decode_retire(state, [0])
        # The 6 columns only the retired row used are gone on every layer.
        assert all(c.prompt.length == len(short_p) for c in state.caches)
        assert state.prompt_pads.shape[1] == len(short_p)
        assert not state.prompt_pads.any()
        results, _ = run_to_completion(state)
        hyps = results["short"]
        assert [h.item_id for h in hyps] == [h.item_id for h in reference]
        assert [h.token_ids for h in hyps] == [h.token_ids for h in reference]
        np.testing.assert_allclose([h.score for h in hyps],
                                   [h.score for h in reference],
                                   rtol=1e-5, atol=1e-6)

    def test_scheduler_parity_survives_trimming(self):
        """Staggered mixed-length admissions still match decode-alone."""
        model, trie = make_model(), make_trie()
        prompts = [[1, 2, 3, 4, 5, 6, 7], [2, 4], [5, 5, 5, 5, 5], [6]]
        reference = {
            tuple(p): beam_search_items_batched(model, [p], trie, beam_size=5)[0]
            for p in prompts
        }
        scheduler = make_scheduler(model, trie, max_width=4)
        delivered = []
        for prompt in prompts:
            scheduler.admit([request(prompt)])
            delivered.extend(scheduler.step())
        while not scheduler.idle:
            delivered.extend(scheduler.step())
        assert len(delivered) == len(prompts)
        for req, hyps in delivered:
            expected = reference[tuple(req.prompt_ids)]
            assert [h.item_id for h in hyps] == [h.item_id for h in expected]


class TestJoinValidation:
    def test_beam_width_mismatch_rejected(self):
        model, trie = make_model(), make_trie()
        state = decode_prefill(model, LIVE_PROMPTS, trie, beam_size=5)
        incoming = decode_prefill(model, LATE_PROMPTS, trie, beam_size=3)
        with pytest.raises(ValueError, match="beam width"):
            decode_join(state, incoming)

    def test_width_one_join_rejected_with_clear_error(self):
        """Width-1 decodes never fan out, so join must refuse them cleanly."""
        model = make_model()
        trie = IndexTrie({0: (10, 12, 14)})  # single item -> effective width 1
        state = decode_prefill(model, [[1, 2]], trie, beam_size=5)
        incoming = decode_prefill(model, [[3]], trie, beam_size=5)
        with pytest.raises(ValueError, match="width-1"):
            decode_join(state, incoming)

    def test_stepped_incoming_rejected(self):
        model, trie = make_model(), make_trie()
        state = decode_prefill(model, LIVE_PROMPTS, trie, beam_size=5)
        incoming = decode_prefill(model, LATE_PROMPTS, trie, beam_size=5)
        decode_step(incoming)
        with pytest.raises(ValueError, match="freshly prefilled"):
            decode_join(state, incoming)

    def test_join_consumes_incoming(self):
        model, trie = make_model(), make_trie()
        state = decode_prefill(model, LIVE_PROMPTS, trie, beam_size=5)
        incoming = decode_prefill(model, LATE_PROMPTS, trie, beam_size=5)
        decode_join(state, incoming)
        assert incoming.num_rows == 0
        with pytest.raises(RuntimeError):
            decode_step(incoming)

    def test_step_requires_retirement_first(self):
        model, trie = make_model(), make_trie()
        state = decode_prefill(model, LIVE_PROMPTS, trie, beam_size=5)
        for _ in range(1, trie.num_levels):
            decode_step(state)
        with pytest.raises(RuntimeError, match="retire"):
            decode_step(state)

    def test_retire_unfinished_row_rejected(self):
        model, trie = make_model(), make_trie()
        state = decode_prefill(model, LIVE_PROMPTS, trie, beam_size=5)
        with pytest.raises(ValueError, match="final trie level"):
            decode_retire(state, [0])


def request(prompt, beam_size=5, top_k=3):
    return RecommendRequest(prompt_ids=list(prompt), top_k=top_k,
                            beam_size=beam_size)


class TestContinuousScheduler:
    def test_admit_step_parity(self):
        model, trie = make_model(), make_trie()
        reference = {
            tuple(p): beam_search_items_batched(model, [p], trie, beam_size=5)[0]
            for p in LIVE_PROMPTS + LATE_PROMPTS
        }
        scheduler = make_scheduler(model, trie, max_width=8)
        early = [request(p) for p in LIVE_PROMPTS]
        late = [request(p) for p in LATE_PROMPTS]
        scheduler.admit(early)
        delivered = scheduler.step()
        scheduler.admit(late)
        while not scheduler.idle:
            delivered.extend(scheduler.step())
        assert [req.request_id for req, _ in delivered] == [
            r.request_id for r in early + late
        ]
        for req, hyps in delivered:
            expected = reference[tuple(req.prompt_ids)]
            assert [h.item_id for h in hyps] == [h.item_id for h in expected]
        assert scheduler.admissions == 2
        assert scheduler.joins == 1

    def test_width_cap_enforced(self):
        model, trie = make_model(), make_trie()
        scheduler = make_scheduler(model, trie, max_width=2)
        scheduler.admit([request(p) for p in LIVE_PROMPTS])
        assert scheduler.free_width == 0
        with pytest.raises(ValueError, match="free width"):
            scheduler.admit([request([9, 9])])

    def test_beam_compatibility_gate(self):
        model, trie = make_model(), make_trie()
        scheduler = make_scheduler(model, trie, max_width=8)
        scheduler.admit([request([1, 2], beam_size=5)])
        assert not scheduler.compatible(request([3], beam_size=2))
        # Same *effective* width is compatible even if raw sizes differ:
        # the 5-item trie clamps any beam >= 5 to 5 hypotheses.
        assert scheduler.compatible(request([3], beam_size=50))
        while not scheduler.idle:
            scheduler.step()
        assert scheduler.compatible(request([3], beam_size=2))

    def test_width_one_requests_wait_instead_of_joining(self):
        """A width-1 in-flight decode rejects joiners; they drain-then-run."""
        model = make_model()
        trie = IndexTrie({0: (10, 12, 14)})
        scheduler = make_scheduler(model, trie, max_width=8)
        first, second = request([1, 2], beam_size=5), request([3], beam_size=5)
        scheduler.admit([first])
        assert not scheduler.compatible(second)
        delivered = []
        while not scheduler.idle:
            delivered.extend(scheduler.step())
        assert scheduler.compatible(second)
        scheduler.admit([second])
        while not scheduler.idle:
            delivered.extend(scheduler.step())
        assert [req.request_id for req, _ in delivered] == [
            first.request_id, second.request_id
        ]
        for _, hyps in delivered:
            assert [h.item_id for h in hyps] == [0]

    def test_abort_reports_in_flight_requests(self):
        model, trie = make_model(), make_trie()
        scheduler = make_scheduler(model, trie, max_width=8)
        reqs = [request(p) for p in LIVE_PROMPTS]
        scheduler.admit(reqs)
        aborted = scheduler.abort()
        assert [r.request_id for r in aborted] == [r.request_id for r in reqs]
        assert scheduler.idle


class TestQueueAdmissionPrimitives:
    def test_pop_front_respects_fifo_and_predicate(self):
        queue = RequestQueue()
        first = request([1, 2], beam_size=5)
        blocker = request([3], beam_size=2)
        behind = request([4], beam_size=5)
        for r in (first, blocker, behind):
            queue.push(r)
        popped = queue.pop_front(10, lambda r: r.beam_size == 5)
        # FIFO is never bypassed: the incompatible head blocks what follows.
        assert [r.request_id for r in popped] == [first.request_id]
        assert len(queue) == 2

    def test_pop_front_limit(self):
        queue = RequestQueue()
        reqs = [request([i + 1]) for i in range(5)]
        for r in reqs:
            queue.push(r)
        popped = queue.pop_front(3)
        assert [r.request_id for r in popped] == [r.request_id for r in reqs[:3]]

    def test_await_request_wakes_on_push(self):
        queue = RequestQueue()
        out = {}

        def waiter():
            out["ready"] = queue.await_request(lambda: False)

        thread = threading.Thread(target=waiter)
        thread.start()
        queue.push(request([1]))
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert out["ready"] is True

    def test_await_request_stop(self):
        queue = RequestQueue()
        stop = threading.Event()
        out = {}

        def waiter():
            out["ready"] = queue.await_request(stop.is_set)

        thread = threading.Thread(target=waiter)
        thread.start()
        stop.set()
        queue.kick()
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert out["ready"] is False


class TestContinuousService:
    @pytest.fixture()
    def service(self, tiny_lcrec):
        service = RecommendationService(
            LCRecEngine(tiny_lcrec),
            batcher=MicroBatcherConfig(max_batch_size=4),
            mode="continuous",
        )
        yield service
        service.stop()

    def test_mode_validated(self, tiny_lcrec):
        with pytest.raises(ValueError, match="mode"):
            RecommendationService(LCRecEngine(tiny_lcrec), mode="sometimes")

    def test_results_match_sync_recommend(self, service, tiny_lcrec,
                                          tiny_dataset):
        histories = tiny_dataset.split.test_histories[:6]
        service.start()
        pending = [service.submit(h, top_k=5) for h in histories]
        for history, p in zip(histories, pending):
            assert p.result(timeout=20.0) == tiny_lcrec.recommend(
                list(history), top_k=5)
        assert service.stats.requests == len(histories)
        assert service.stats.admissions >= 1

    def test_concurrent_submitters_stress(self, service, tiny_lcrec,
                                          tiny_dataset):
        """Many threads submitting against a live decode stay bit-identical."""
        histories = tiny_dataset.split.test_histories[:10]
        expected = [tiny_lcrec.recommend(list(h), top_k=4) for h in histories]
        service.start()
        results: dict[int, list[int]] = {}

        def submit_and_wait(index, history):
            results[index] = service.submit(history, top_k=4).result(timeout=20.0)

        threads = [
            threading.Thread(target=submit_and_wait, args=(i, h))
            for i, h in enumerate(histories)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert len(results) == len(histories)
        for index in range(len(histories)):
            assert results[index] == expected[index]

    def test_stop_drains_queued_and_in_flight(self, service, tiny_dataset):
        service.start()
        pending = [service.submit(h, top_k=3)
                   for h in tiny_dataset.split.test_histories[:6]]
        service.stop()
        assert all(p.done for p in pending)
        assert all(len(p.result()) == 3 for p in pending)
        assert not service.is_running

    def test_stop_without_drain_leaves_queue_served_synchronously(
            self, tiny_lcrec, tiny_dataset):
        service = RecommendationService(
            LCRecEngine(tiny_lcrec),
            batcher=MicroBatcherConfig(max_batch_size=4), mode="continuous")
        # Not started: nothing consumes the queue until stop/flush.
        pending = service.submit(tiny_dataset.split.test_histories[0], top_k=3)
        service.start()
        service.stop(drain=False)
        # Whether the loop admitted it before stop or left it queued, the
        # handle must still resolve via the synchronous fallback.
        assert len(pending.result(timeout=20.0)) == 3

    def test_sync_flush_coexists_with_continuous_loop(self, service,
                                                      tiny_dataset):
        service.start()
        pending = [service.submit(h, top_k=3)
                   for h in tiny_dataset.split.test_histories[:3]]
        service.flush()  # may race the loop; each request delivered once
        assert all(len(p.result(timeout=20.0)) == 3 for p in pending)

    def test_failing_decode_fails_handles_but_not_loop(self, tiny_lcrec,
                                                       tiny_dataset,
                                                       monkeypatch):
        service = RecommendationService(
            LCRecEngine(tiny_lcrec, prefix_cache=False),
            batcher=MicroBatcherConfig(max_batch_size=4), mode="continuous")
        calls = {"count": 0}
        real_prefill = service.engine.prefill

        def flaky(*args, **kwargs):
            calls["count"] += 1
            if calls["count"] == 1:
                raise RuntimeError("decode blew up")
            return real_prefill(*args, **kwargs)

        monkeypatch.setattr(service.engine, "prefill", flaky)
        service.start()
        first = service.submit(tiny_dataset.split.test_histories[0], top_k=3)
        with pytest.raises(RuntimeError, match="decode blew up"):
            first.result(timeout=20.0)
        # The loop survives: later submissions are served normally.
        second = service.submit(tiny_dataset.split.test_histories[1], top_k=3)
        assert len(second.result(timeout=20.0)) == 3
        service.stop()

    def test_failing_admission_spares_in_flight_requests(self, tiny_lcrec,
                                                         tiny_dataset,
                                                         monkeypatch):
        """A prefill failure fails only the incoming requests: the live
        decode's K/V is untouched and its requests still deliver."""
        service = RecommendationService(
            LCRecEngine(tiny_lcrec, prefix_cache=False),
            batcher=MicroBatcherConfig(max_batch_size=4), mode="continuous")
        calls = {"count": 0}
        real_prefill = service.engine.prefill

        def flaky(*args, **kwargs):
            calls["count"] += 1
            if calls["count"] == 2:
                raise RuntimeError("admission blew up")
            return real_prefill(*args, **kwargs)

        monkeypatch.setattr(service.engine, "prefill", flaky)
        service.start()
        first = service.submit(tiny_dataset.split.test_histories[0], top_k=3)
        while calls["count"] == 0:  # first request is admitted and live
            threading.Event().wait(0.002)
        second = service.submit(tiny_dataset.split.test_histories[1], top_k=3)
        with pytest.raises(RuntimeError, match="admission blew up"):
            second.result(timeout=20.0)
        assert len(first.result(timeout=20.0)) == 3  # in-flight unharmed
        service.stop()
