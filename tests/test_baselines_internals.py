"""Focused tests for generative-baseline internals."""

import numpy as np
import pytest

from repro.baselines.generative import BOS_ID, PAD_ID, SEP_ID
from repro.baselines.p5cid import IGNORE, P5CID, P5CIDConfig
from repro.baselines.tiger import TIGER, TIGERConfig
from repro.core.indexer import build_random_index_set


class TestP5CIDEncoding:
    @pytest.fixture()
    def model(self, tiny_dataset):
        return P5CID(tiny_dataset, P5CIDConfig(epochs=1, dim=16,
                                               cluster_levels=2, branch=4))

    def test_example_structure(self, model):
        input_ids, labels = model._example([0, 1], target=2)
        assert input_ids[0] == BOS_ID
        assert SEP_ID in input_ids
        sep_position = input_ids.index(SEP_ID)
        # Everything before (and including) the separator is masked out.
        assert all(label == IGNORE for label in labels[:sep_position + 1])
        target_tokens = list(model.space.item_tokens(2))
        assert input_ids[sep_position + 1:] == target_tokens
        assert labels[sep_position + 1:] == target_tokens

    def test_prompt_without_target(self, model):
        prompt, labels = model._example([3, 4], target=None)
        assert labels == []
        assert prompt[-1] == SEP_ID

    def test_history_truncated(self, model):
        long_history = list(range(20)) * 2
        prompt, _ = model._example(long_history, target=None)
        max_tokens = (model.config.max_history * model.num_levels) + 2
        assert len(prompt) <= max_tokens


class TestTIGERPadding:
    @pytest.fixture()
    def model(self, tiny_dataset, rng):
        index_set = build_random_index_set(tiny_dataset.num_items, 3, 8, rng)
        return TIGER(index_set, TIGERConfig(epochs=1, dim=16))

    def test_histories_padded_to_common_width(self, model):
        batch = model._pad_histories([[0], [1, 2, 3]])
        assert batch.shape[0] == 2
        assert (batch[0] == PAD_ID).sum() > 0

    def test_history_window_respected(self, model):
        long = list(range(30))
        batch = model._pad_histories([long])
        assert batch.shape[1] <= model.config.max_history * model.num_levels

    def test_encode_shapes(self, model):
        source = model._pad_histories([[0, 1], [2]])
        memory, mask = model.encode(source)
        assert memory.shape[0] == 2
        assert mask.shape == (2, 1, 1, source.shape[1])


class TestTIGERvsP5IndexContrast:
    def test_tiger_uses_semantic_p5_uses_cooccurrence(self, tiny_dataset,
                                                      rng):
        """The two generative baselines must index items differently."""
        from repro.baselines import collaborative_index_set

        cid = collaborative_index_set(tiny_dataset, num_levels=2, branch=4)
        random_ids = build_random_index_set(tiny_dataset.num_items, 3, 8, rng)
        assert cid.codes.shape[1] != random_ids.codes.shape[1] or not (
            np.array_equal(cid.codes[:, :2], random_ids.codes[:, :2])
        )
