"""Serving subsystem: queue, micro-batcher, and the service facade."""

import numpy as np
import pytest

from repro.serving import (
    LCRecEngine,
    MicroBatcherConfig,
    RecommendationService,
    RecommendRequest,
    RequestQueue,
    padding_fraction,
    plan_batches,
)


def request(length, top_k=10, beam_size=10):
    return RecommendRequest(prompt_ids=list(range(1, length + 1)),
                            top_k=top_k, beam_size=beam_size)


class TestRequestQueue:
    def test_fifo_order(self):
        queue = RequestQueue()
        submitted = [request(3), request(5), request(2)]
        for r in submitted:
            queue.push(r)
        assert len(queue) == 3
        drained = queue.drain()
        assert [r.request_id for r in drained] \
            == [r.request_id for r in submitted]
        assert len(queue) == 0
        assert not queue

    def test_drain_limit(self):
        queue = RequestQueue()
        for _ in range(5):
            queue.push(request(4))
        first = queue.drain(limit=2)
        assert len(first) == 2
        assert len(queue) == 3
        assert len(queue.drain()) == 3

    def test_request_ids_unique(self):
        ids = {request(2).request_id for _ in range(50)}
        assert len(ids) == 50


class TestMicroBatcher:
    def test_respects_max_batch_size(self):
        config = MicroBatcherConfig(max_batch_size=4, bucket_width=100)
        batches = plan_batches([request(5) for _ in range(10)], config)
        assert [len(b) for b in batches] == [4, 4, 2]

    def test_buckets_by_length(self):
        config = MicroBatcherConfig(max_batch_size=64, bucket_width=2)
        requests = [request(n) for n in (3, 10, 4, 11, 5, 30)]
        batches = plan_batches(requests, config)
        assert [sorted(r.prompt_len for r in b) for b in batches] \
            == [[3, 4, 5], [10, 11], [30]]

    def test_nothing_dropped_or_duplicated(self):
        config = MicroBatcherConfig(max_batch_size=3, bucket_width=4)
        requests = [request(n) for n in (9, 1, 5, 5, 2, 8, 7, 3)]
        batches = plan_batches(requests, config)
        flat = [r.request_id for b in batches for r in b]
        assert sorted(flat) == sorted(r.request_id for r in requests)

    def test_never_mixes_beam_widths(self):
        """Beam width changes rankings, so co-batching must not mix it."""
        config = MicroBatcherConfig(max_batch_size=64, bucket_width=100)
        requests = [request(5, beam_size=b) for b in (10, 50, 10, 50, 10)]
        batches = plan_batches(requests, config)
        assert sorted(len(b) for b in batches) == [2, 3]
        for batch in batches:
            assert len({r.beam_size for r in batch}) == 1

    def test_width_bounds_padding_within_batch(self):
        config = MicroBatcherConfig(max_batch_size=64, bucket_width=2)
        requests = [request(n) for n in (3, 9, 4, 8, 5, 10)]
        for batch in plan_batches(requests, config):
            lengths = [r.prompt_len for r in batch]
            assert max(lengths) - min(lengths) <= 2

    def test_empty_plan(self):
        assert plan_batches([], MicroBatcherConfig()) == []

    def test_config_validated(self):
        with pytest.raises(ValueError):
            plan_batches([request(2)], MicroBatcherConfig(max_batch_size=0))
        with pytest.raises(ValueError):
            plan_batches([request(2)], MicroBatcherConfig(bucket_width=-1))

    def test_padding_fraction(self):
        batch = [request(2), request(4)]
        assert padding_fraction(batch) == pytest.approx(2 / 8)
        assert padding_fraction([request(6)]) == 0.0

    def test_padding_fraction_uses_effective_lengths(self):
        """With a prefix cache, rows forward only their unseen suffix: the
        padding stat must reflect those effective widths, not raw prompts."""
        batch = [request(10), request(12)]
        effective = {batch[0].request_id: 1, batch[1].request_id: 4}
        fraction = padding_fraction(
            batch, lambda r: effective[r.request_id])
        assert fraction == pytest.approx((2 * 4 - 5) / (2 * 4))
        assert fraction != padding_fraction(batch)


class TestRecommendationService:
    """End-to-end: batched serving returns exactly what per-request does."""

    @pytest.fixture()
    def service(self, tiny_lcrec):
        return RecommendationService(
            LCRecEngine(tiny_lcrec), batcher=MicroBatcherConfig(max_batch_size=4))

    def test_recommend_many_matches_per_request(self, service, tiny_lcrec,
                                                tiny_dataset):
        histories = tiny_dataset.split.test_histories[:6]
        batched = service.recommend_many(histories, top_k=5)
        for history, ranked in zip(histories, batched):
            assert ranked == tiny_lcrec.recommend(list(history), top_k=5)

    def test_submit_flush_result(self, service, tiny_dataset):
        pending = [service.submit(h, top_k=3)
                   for h in tiny_dataset.split.test_histories[:5]]
        assert not any(p.done for p in pending)
        served = service.flush()
        assert served == 5
        for p in pending:
            assert p.done
            assert len(p.result()) == 3

    def test_result_triggers_flush(self, service, tiny_dataset):
        pending = service.submit(tiny_dataset.split.test_histories[0])
        ranked = pending.result()  # implicit flush
        assert len(ranked) == 10
        assert pending.done

    def test_intention_submission(self, service, tiny_lcrec):
        pending = service.submit_intention("looking for something nice",
                                           top_k=5)
        assert pending.result() == tiny_lcrec.recommend_for_intention(
            "looking for something nice", top_k=5)

    def test_stats_track_batches(self, service, tiny_dataset):
        service.recommend_many(tiny_dataset.split.test_histories[:6],
                               top_k=2)
        assert service.stats.requests == 6
        assert service.stats.batches >= 2  # max_batch_size=4
        assert 0.0 < service.stats.mean_batch_size <= 4.0
        assert 0.0 <= service.stats.mean_padding_fraction < 1.0

    def test_mixed_top_k_does_not_change_rankings(self, service, tiny_lcrec,
                                                  tiny_dataset):
        """A co-batched wide-beam request must not perturb its neighbors."""
        histories = tiny_dataset.split.test_histories[:3]
        pending = [service.submit(h, top_k=3) for h in histories]
        wide = service.submit(histories[0], top_k=30)  # wider beam
        service.flush()
        for history, p in zip(histories, pending):
            assert p.result() == tiny_lcrec.recommend(list(history), top_k=3)
        assert len(wide.result()) <= 30

    def test_padding_stats_use_post_cache_lengths(self, tiny_lcrec,
                                                  tiny_dataset):
        """A cached row forwards only its unseen suffix; the padding stat
        must be computed over those effective widths, not raw prompts."""
        service = RecommendationService(
            LCRecEngine(tiny_lcrec),
            batcher=MicroBatcherConfig(max_batch_size=4, bucket_width=10_000))
        history = list(tiny_dataset.split.test_histories[0])
        grown = history + [tiny_dataset.split.test_targets[0]]
        base_instr = tiny_lcrec.seq_instruction(history)
        grown_instr = tiny_lcrec.seq_instruction(grown)
        service.submit_instruction(base_instr, top_k=3)
        service.flush()  # warms the prefix cache with the base prompt
        before = service.stats.padding_fraction_sum

        # Probe *before* the decode inserts these prompts, exactly as the
        # batch planner does.
        effective = {}
        for instruction in (base_instr, grown_instr):
            ids = tiny_lcrec.encode_instruction(instruction)
            cached = service.prefix_cache.probe(ids, max_len=len(ids) - 1)
            effective[instruction] = len(ids) - cached
        assert effective[base_instr] == 1  # exact repeat: 1-token suffix

        pending = [service.submit_instruction(i, top_k=3)
                   for i in (base_instr, grown_instr)]
        service.flush()
        for p in pending:
            assert len(p.result()) == 3
        assert service.stats.batches == 2  # the pair co-batched
        widths = list(effective.values())
        expected = (2 * max(widths) - sum(widths)) / (2 * max(widths))
        assert (service.stats.padding_fraction_sum - before
                == pytest.approx(expected))

    def test_requires_built_model(self, tiny_dataset):
        from helpers import small_lcrec_config

        from repro.core import LCRec

        with pytest.raises(RuntimeError):
            LCRecEngine(LCRec(tiny_dataset, small_lcrec_config()))


class TestLCRecBatchedPaths:
    def test_recommend_many_matches_recommend(self, tiny_lcrec,
                                              tiny_dataset):
        histories = tiny_dataset.split.test_histories[:4]
        batched = tiny_lcrec.recommend_many(histories, top_k=7)
        for history, ranked in zip(histories, batched):
            assert ranked == tiny_lcrec.recommend(list(history), top_k=7)

    def test_recommend_for_intentions_batched(self, tiny_lcrec):
        texts = ["something nice", "a gift for a friend"]
        batched = tiny_lcrec.recommend_for_intentions(texts, top_k=4)
        for text, ranked in zip(texts, batched):
            assert ranked == tiny_lcrec.recommend_for_intention(text,
                                                                top_k=4)

    def test_batched_matches_reference_loop(self, tiny_lcrec, tiny_dataset):
        """Parity against the pre-batching single-request implementation."""
        from repro.llm import beam_search_items_single, ranked_item_ids

        histories = tiny_dataset.split.test_histories[:3]
        batched = tiny_lcrec.recommend_many(histories, top_k=5)
        beam = max(tiny_lcrec.config.beam_size, 5)
        for history, ranked in zip(histories, batched):
            prompt = tiny_lcrec.encode_instruction(
                tiny_lcrec.seq_instruction(list(history)))
            reference = beam_search_items_single(tiny_lcrec.lm, prompt,
                                                 tiny_lcrec.trie,
                                                 beam_size=beam)
            assert ranked == ranked_item_ids(reference, 5)

    def test_service_factory(self, tiny_lcrec):
        service = tiny_lcrec.service()
        assert isinstance(service, RecommendationService)

    def test_chat_ask_many(self, tiny_lcrec, tiny_dataset):
        from repro.core.chat import ChatSession

        session = ChatSession(tiny_lcrec,
                              history=list(tiny_dataset.split
                                           .test_histories[0]))
        results = session.ask_many(["something nice", "a fun game"],
                                   top_k=3)
        assert len(results) == 2
        assert session.num_turns == 2
        assert session.turns[0].query == "something nice"


class TestKVCacheBeamAxis:
    def test_flattened_reorder_grows_and_shuffles(self):
        from repro.tensor import KVCache

        cache = KVCache()
        keys = np.arange(3 * 2 * 4 * 2, dtype=np.float32).reshape(3, 2, 4, 2)
        cache.append(keys, keys + 100)
        # Reorder may grow the batch axis: B=3 -> B*K=6, rows interleaved.
        cache.reorder(np.repeat(np.arange(3), 2))
        assert cache.batch_size == 6
        np.testing.assert_array_equal(cache.keys[0], cache.keys[1])
        np.testing.assert_array_equal(cache.keys[0], keys[0])
        np.testing.assert_array_equal(cache.keys[4], keys[2])
        # Flattened B*K reorder: request b keeps rows b*K..b*K+K-1.
        cache.reorder(np.array([1, 0, 3, 3, 5, 4]))
        np.testing.assert_array_equal(cache.keys[2], keys[1])
        np.testing.assert_array_equal(cache.keys[3], keys[1])
        np.testing.assert_array_equal(cache.values[2], keys[1] + 100)

    def test_append_after_reorder_keeps_single_column_write(self):
        from repro.tensor import KVCache

        cache = KVCache()
        keys = np.ones((2, 2, 3, 2), dtype=np.float32)
        cache.append(keys, keys)
        cache.reorder(np.array([1, 1, 0]))
        step = np.full((3, 2, 1, 2), 7.0, dtype=np.float32)
        k, v = cache.append(step, step)
        assert k.shape == (3, 2, 4, 2)
        np.testing.assert_array_equal(k[:, :, -1], step[:, :, 0])

    def test_beam_cache_fan_out_shares_prompt(self):
        from repro.tensor import BeamKVCache

        cache = BeamKVCache()
        prompt = np.arange(2 * 2 * 3 * 2, dtype=np.float32).reshape(2, 2, 3, 2)
        cache.append(prompt, prompt)
        cache.fan_out(4)
        assert cache.batch_size == 8
        assert cache.prompt.batch_size == 2  # prompt rows are not copied
        step = np.zeros((8, 2, 1, 2), dtype=np.float32)
        cache.append(step, step)
        assert cache.length == 4
        assert cache.suffix.batch_size == 8
        with pytest.raises(RuntimeError):
            cache.fan_out(2)  # already fanned
