"""Tests for dataset assembly, presets, stats, intentions and batching."""

import numpy as np
import pytest

from repro.data import (
    IntentionGenerator,
    build_dataset,
    dataset_statistics,
    format_table2_row,
    iterate_minibatches,
    left_truncate,
    pad_sequences,
    preset_config,
)
from repro.data.intentions import intention_template_texts


class TestPresets:
    def test_all_presets_buildable(self):
        for name in ("tiny",):
            dataset = build_dataset(preset_config(name))
            assert dataset.num_users > 0
            assert dataset.num_items > 0

    def test_unknown_preset_rejected(self):
        with pytest.raises(KeyError):
            preset_config("nope")

    def test_scale_parameter(self):
        base = preset_config("instruments")
        scaled = preset_config("instruments", scale=0.5)
        assert scaled.behavior.num_users < base.behavior.num_users
        assert scaled.catalog.num_items < base.catalog.num_items

    def test_reseed(self):
        config = preset_config("tiny", seed=999)
        assert config.seed == 999

    def test_preset_copies_are_independent(self):
        config = preset_config("tiny")
        config.behavior.num_users = 1
        assert preset_config("tiny").behavior.num_users != 1


class TestBuildDataset:
    def test_sequences_meet_min_interactions(self, tiny_dataset):
        minimum = tiny_dataset.config.min_interactions
        assert all(len(s) >= minimum for s in tiny_dataset.sequences)

    def test_item_ids_dense(self, tiny_dataset):
        used = {i for seq in tiny_dataset.sequences for i in seq}
        assert used == set(range(tiny_dataset.num_items))

    def test_catalog_reindexed_consistently(self, tiny_dataset):
        # item_id_map maps dense -> raw generated ids; dense catalog items
        # must match the raw items' content.
        config = preset_config("tiny")
        from repro.data import generate_catalog
        from repro.utils.rng import SeedSequenceFactory

        raw = generate_catalog(config.catalog,
                               SeedSequenceFactory(config.seed).rng("catalog"))
        for dense_id, raw_id in enumerate(tiny_dataset.item_id_map):
            assert tiny_dataset.catalog[dense_id].title == raw[raw_id].title

    def test_split_shapes(self, tiny_dataset):
        split = tiny_dataset.split
        n = tiny_dataset.num_users
        assert len(split.test_targets) == n
        assert len(split.valid_targets) == n
        assert len(split.train_sequences) == n


class TestStatistics:
    def test_table2_columns(self, tiny_dataset):
        stats = dataset_statistics(tiny_dataset)
        assert stats.num_users == tiny_dataset.num_users
        assert stats.num_items == tiny_dataset.num_items
        assert 0.0 < stats.sparsity < 1.0
        assert stats.avg_length == pytest.approx(
            stats.num_interactions / stats.num_users)

    def test_row_formatting(self, tiny_dataset):
        row = format_table2_row(dataset_statistics(tiny_dataset))
        assert "tiny" in row
        assert "%" in row


class TestIntentions:
    def test_intention_mentions_category(self, tiny_dataset, rng):
        generator = IntentionGenerator(tiny_dataset.catalog, rng)
        item = tiny_dataset.catalog[0]
        example = generator.intention_for_item(item)
        category_name = tiny_dataset.catalog.lexicon.category_names[item.category]
        assert category_name in example.text

    def test_intention_not_verbatim_copy(self, tiny_dataset, rng):
        generator = IntentionGenerator(tiny_dataset.catalog, rng)
        item = tiny_dataset.catalog[0]
        example = generator.intention_for_item(item)
        assert example.text != item.description

    def test_test_intentions_target_held_out_item(self, tiny_dataset, rng):
        generator = IntentionGenerator(tiny_dataset.catalog, rng)
        examples = generator.test_intentions(tiny_dataset)
        assert [e.item_id for e in examples] == tiny_dataset.split.test_targets

    def test_training_intentions_avoid_test_items(self, tiny_dataset, rng):
        generator = IntentionGenerator(tiny_dataset.catalog, rng)
        examples = generator.training_intentions(tiny_dataset, per_user=2)
        for example in examples:
            train_items = set(
                tiny_dataset.split.train_sequences[example.user_id])
            assert example.item_id in train_items

    def test_preference_reflects_dominant_category(self, tiny_dataset, rng):
        generator = IntentionGenerator(tiny_dataset.catalog, rng)
        history = tiny_dataset.split.train_sequences[0]
        example = generator.preference_for_history(0, history)
        categories = [tiny_dataset.catalog[i].category for i in history]
        dominant = max(set(categories), key=categories.count)
        name = tiny_dataset.catalog.lexicon.category_names[dominant]
        assert name in example.text

    def test_preference_requires_history(self, tiny_dataset, rng):
        generator = IntentionGenerator(tiny_dataset.catalog, rng)
        with pytest.raises(ValueError):
            generator.preference_for_history(0, [])

    def test_template_texts_available(self):
        texts = intention_template_texts()
        assert len(texts) >= 5
        assert all("{" not in t for t in texts)


class TestBatching:
    def test_pad_left_alignment(self):
        batch = pad_sequences([[1, 2], [3]], pad_value=0, max_len=4)
        np.testing.assert_array_equal(batch, [[0, 0, 1, 2], [0, 0, 0, 3]])

    def test_pad_right_alignment(self):
        batch = pad_sequences([[1, 2], [3]], pad_value=9, max_len=3,
                              align="right")
        np.testing.assert_array_equal(batch, [[1, 2, 9], [3, 9, 9]])

    def test_pad_truncates_left_keeping_recent(self):
        batch = pad_sequences([[1, 2, 3, 4]], pad_value=0, max_len=2)
        np.testing.assert_array_equal(batch, [[3, 4]])

    def test_pad_invalid_align(self):
        with pytest.raises(ValueError):
            pad_sequences([[1]], align="middle")

    def test_left_truncate(self):
        assert left_truncate([1, 2, 3, 4], 2) == [3, 4]

    def test_minibatches_cover_everything(self, rng):
        seen = []
        for batch in iterate_minibatches(10, 3, rng=rng):
            seen.extend(batch.tolist())
        assert sorted(seen) == list(range(10))

    def test_minibatches_require_rng_when_shuffling(self):
        with pytest.raises(ValueError):
            list(iterate_minibatches(5, 2))

    def test_minibatches_no_shuffle_ordered(self):
        batches = list(iterate_minibatches(5, 2, shuffle=False))
        assert batches[0].tolist() == [0, 1]

    def test_minibatch_size_validated(self, rng):
        with pytest.raises(ValueError):
            list(iterate_minibatches(5, 0, rng=rng))
