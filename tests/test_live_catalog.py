"""Live catalog: COW trie snapshots, version pinning, online ingestion.

The load-bearing invariants of the versioned catalog, pinned down at
three layers:

* **Trie layer** (hypothesis properties): ``with_item`` builds a snapshot
  whose content equals a from-scratch build of the extended catalog,
  leaves the original bit-for-bit untouched, and preserves the *identity*
  of every derived array whose prefix the insertion did not change (the
  scoped-invalidation contract the gathered-head memos rely on).
* **Engine layer**: a decode state is pinned to the trie object it
  prefilled against — no matter when a version swap lands mid-decode, the
  in-flight rankings are bit-identical to a from-scratch decode against
  the pinned version, post-swap requests never join a pinned decode, and
  the prompt K/V cache survives pure ingestion but drops entries whose
  tokens a swap declared stale.
* **Catalog/serving layer**: ``LiveCatalog.ingest`` publishes atomic
  versions (old snapshots intact, uniqueness preserved, retrieval tier
  extended and periodically reclustered), new items are recommendable
  within one swap, and ``ingest_item`` on the service/cluster client
  surface reaches every worker through the shared catalog reference.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import LiveCatalog, encode_new_item
from repro.llm import LMConfig, PrefixKVCache, TinyLlama
from repro.quantization import IndexTrie
from repro.retrieval import HybridRecommender
from repro.serving import (
    RecommendationService,
    RecommendRequest,
    ServingCluster,
    TrieDecoderEngine,
)

# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
TOKENS = list(range(10, 18))
DEPTH = 3
VOCAB = 32

sequence_strategy = st.tuples(*[st.sampled_from(TOKENS)] * DEPTH)
catalog_strategy = st.lists(sequence_strategy, min_size=1, max_size=10, unique=True)


def build_trie(sequences):
    return IndexTrie({item: seq for item, seq in enumerate(sequences)})


def draw_new_sequence(data, sequences):
    return data.draw(
        sequence_strategy.filter(lambda seq: seq not in set(sequences)),
        label="new_sequence",
    )


def warm_derived_caches(trie):
    """Touch every derived-array cache so invalidation has work to scope."""
    trie.root_token_mask(VOCAB)
    for level in range(trie.num_levels):
        trie.level_union(level)
    prefixes = set()
    for seq in trie.all_sequences().values():
        for depth in range(trie.num_levels):
            prefixes.add(seq[:depth])
            trie.allowed_tokens(seq[:depth])
    by_depth = {}
    for prefix in prefixes:
        by_depth.setdefault(len(prefix), []).append(prefix)
    for depth_prefixes in by_depth.values():
        trie.allowed_token_ids(sorted(depth_prefixes))


def assert_same_content(trie, oracle):
    """``trie`` serves exactly the same derived arrays as ``oracle``."""
    assert trie.all_sequences() == oracle.all_sequences()
    assert np.array_equal(trie.root_token_mask(VOCAB), oracle.root_token_mask(VOCAB))
    for level in range(oracle.num_levels):
        assert np.array_equal(trie.level_union(level), oracle.level_union(level))
    for seq in oracle.all_sequences().values():
        for depth in range(oracle.num_levels):
            prefix = seq[:depth]
            assert np.array_equal(
                trie.allowed_tokens(prefix), oracle.allowed_tokens(prefix)
            ), prefix


def make_model(vocab=VOCAB):
    model = TinyLlama(LMConfig(vocab_size=vocab, dim=16, num_layers=2,
                               num_heads=2, ffn_hidden=24, max_seq_len=64,
                               seed=7))
    model.eval()
    return model


MODEL = make_model()


class _StubVersion:
    def __init__(self, version, trie, stale_tokens=()):
        self.version = version
        self.trie = trie
        self.stale_tokens = tuple(stale_tokens)


class _StubCatalog:
    """The minimal version-holder the engine contract reads."""

    def __init__(self, trie):
        self.version = _StubVersion(0, trie)

    def swap(self, trie, stale_tokens=()):
        self.version = _StubVersion(self.version.version + 1, trie, stale_tokens)


def assert_rankings_close(got, want):
    """Same items in the same order; scores equal up to K/V-reuse float
    accumulation order (a prefix-cache hit prefills fewer tokens than a
    cold prefill, which reorders the adds)."""
    assert [(i, t) for i, t, _ in got] == [(i, t) for i, t, _ in want]
    for (_, _, a), (_, _, b) in zip(got, want):
        assert a == pytest.approx(b, abs=1e-5)


def decode_rankings(engine, prompt, beam_size, top_k=10):
    request = RecommendRequest(prompt_ids=list(prompt), top_k=top_k, beam_size=beam_size)
    state = engine.prefill([request])
    while not state.finished_rows():
        engine.step(state)
    return [(h.item_id, h.token_ids, h.score) for h in engine.retire(state, [0])[0]]


# ----------------------------------------------------------------------
# Trie layer: copy-on-write snapshots
# ----------------------------------------------------------------------
class TestTrieCopyOnWrite:
    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_snapshot_matches_from_scratch_build(self, data):
        sequences = data.draw(catalog_strategy)
        new_sequence = draw_new_sequence(data, sequences)
        trie = build_trie(sequences)
        warm_derived_caches(trie)
        snapshot = trie.with_item(len(sequences), new_sequence)
        assert_same_content(snapshot, build_trie(sequences + [new_sequence]))

    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_snapshot_leaves_original_untouched(self, data):
        sequences = data.draw(catalog_strategy)
        new_sequence = draw_new_sequence(data, sequences)
        trie = build_trie(sequences)
        warm_derived_caches(trie)
        trie.with_item(len(sequences), new_sequence)
        assert_same_content(trie, build_trie(sequences))

    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_unchanged_prefixes_keep_array_identity(self, data):
        """Scoped invalidation: only prefixes gaining a child get new
        arrays — everything else keeps identity, which is what keeps the
        engines' gathered-head memos warm across a swap."""
        sequences = data.draw(catalog_strategy)
        new_sequence = draw_new_sequence(data, sequences)
        trie = build_trie(sequences)
        warm_derived_caches(trie)
        old_children = {
            seq[:depth]: set(trie.allowed_tokens(seq[:depth]).tolist())
            for seq in sequences
            for depth in range(DEPTH)
        }
        snapshot = trie.with_item(len(sequences), new_sequence)
        for prefix, children in old_children.items():
            unchanged = (
                new_sequence[: len(prefix)] != prefix
                or new_sequence[len(prefix)] in children
            )
            same = snapshot.allowed_tokens(prefix) is trie.allowed_tokens(prefix)
            assert same == unchanged, prefix

    @given(data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_add_item_in_place_matches_snapshot(self, data):
        sequences = data.draw(catalog_strategy)
        new_sequence = draw_new_sequence(data, sequences)
        in_place = build_trie(sequences)
        warm_derived_caches(in_place)
        in_place.add_item(len(sequences), new_sequence)
        assert_same_content(in_place, build_trie(sequences + [new_sequence]))

    def test_duplicate_sequence_rejected(self):
        trie = build_trie([(10, 11, 12)])
        with pytest.raises(ValueError, match="duplicate"):
            trie.with_item(1, (10, 11, 12))
        with pytest.raises(ValueError, match="depth"):
            trie.with_item(1, (10, 11))


# ----------------------------------------------------------------------
# Online index encoding
# ----------------------------------------------------------------------
class TestEncodeNewItem:
    def test_greedy_codes_when_free(self, tiny_lcrec):
        embedding = tiny_lcrec.item_embeddings[0]
        greedy = tiny_lcrec.rqvae.quantize(embedding[None, :]).codes[0]
        codes = encode_new_item(tiny_lcrec.rqvae, embedding, set())
        assert codes.tolist() == greedy.tolist()

    def test_avoids_every_taken_tuple(self, tiny_lcrec):
        taken = {tuple(int(c) for c in row) for row in tiny_lcrec.index_set.codes}
        for item in range(0, tiny_lcrec.index_set.num_items, 7):
            embedding = tiny_lcrec.item_embeddings[item]
            codes = encode_new_item(tiny_lcrec.rqvae, embedding, taken)
            assert tuple(codes.tolist()) not in taken

    def test_deterministic(self, tiny_lcrec):
        taken = {tuple(int(c) for c in row) for row in tiny_lcrec.index_set.codes}
        embedding = tiny_lcrec.item_embeddings[5]
        first = encode_new_item(tiny_lcrec.rqvae, embedding, taken)
        second = encode_new_item(tiny_lcrec.rqvae, embedding, taken)
        assert first.tolist() == second.tolist()


# ----------------------------------------------------------------------
# Engine layer: version pinning and cache scoping
# ----------------------------------------------------------------------
class TestEnginePinning:
    def make_engine(self, trie, prefix_cache=None):
        catalog = _StubCatalog(trie)
        engine = TrieDecoderEngine(MODEL, trie, prefix_cache=prefix_cache)
        engine.attach_catalog(catalog)
        return engine, catalog

    def test_trie_property_follows_swaps(self):
        trie = build_trie([(10, 12, 14), (11, 13, 15)])
        engine, catalog = self.make_engine(trie)
        assert engine.trie is trie
        swapped = trie.with_item(2, (10, 13, 14))
        catalog.swap(swapped)
        assert engine.trie is swapped

    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_ingest_mid_decode_never_changes_inflight_rankings(self, data):
        """The tentpole correctness property: whatever level a swap lands
        at, the pinned decode finishes bit-identical to a from-scratch
        decode against its pinned version."""
        sequences = data.draw(catalog_strategy)
        new_sequence = draw_new_sequence(data, sequences)
        prompt = data.draw(
            st.lists(st.integers(1, 8), min_size=1, max_size=5), label="prompt"
        )
        beam_size = data.draw(st.integers(2, 6), label="beam")
        swap_after = data.draw(st.integers(0, DEPTH - 1), label="swap_after")

        pinned = build_trie(sequences)
        engine, catalog = self.make_engine(pinned)
        request = RecommendRequest(prompt_ids=list(prompt), top_k=10, beam_size=beam_size)
        state = engine.prefill([request])
        steps = 0
        while not state.finished_rows():
            if steps == swap_after:
                catalog.swap(pinned.with_item(len(sequences), new_sequence))
            engine.step(state)
            steps += 1
        got = [(h.item_id, h.token_ids, h.score)
               for h in engine.retire(state, [0])[0]]

        oracle_engine = TrieDecoderEngine(make_model(), pinned)
        assert got == decode_rankings(oracle_engine, prompt, beam_size)

    def test_post_swap_requests_cannot_join_pinned_decode(self):
        trie = build_trie([(10, 12, 14), (10, 12, 15), (11, 13, 14), (11, 13, 15)])
        engine, catalog = self.make_engine(trie)
        request = RecommendRequest(prompt_ids=[1, 2, 3], top_k=4, beam_size=4)
        state = engine.prefill([request])
        follower = RecommendRequest(prompt_ids=[4, 5], top_k=4, beam_size=4)
        assert engine.can_join(state, follower)
        catalog.swap(trie.with_item(4, (11, 12, 14)))
        assert not engine.can_join(state, follower)
        # After the pinned decode drains, new prefills use the new trie.
        while not state.finished_rows():
            engine.step(state)
        engine.retire(state, [0])
        fresh = engine.prefill([follower])
        assert fresh.trie is catalog.version.trie

    def test_pure_ingest_keeps_prompt_cache_entries(self):
        trie = build_trie([(10, 12, 14), (10, 12, 15), (11, 13, 14)])
        engine, catalog = self.make_engine(trie, prefix_cache=PrefixKVCache())
        prompt = [1, 2, 3, 4, 5, 6]
        decode_rankings(engine, prompt, beam_size=3)
        assert len(engine.prefix_cache) == 1
        # Pure ingestion never remaps a token: the swap declares nothing
        # stale and the next prefill keeps (and hits) the entry.
        catalog.swap(trie.with_item(3, (11, 12, 15)))
        got = decode_rankings(engine, prompt, beam_size=3)
        assert engine.prefix_cache.catalog_version == 1
        assert len(engine.prefix_cache) == 1
        cacheless = TrieDecoderEngine(make_model(), catalog.version.trie)
        assert_rankings_close(got, decode_rankings(cacheless, prompt, beam_size=3))

    def test_stale_tokens_dropped_at_next_prefill(self):
        trie = build_trie([(10, 12, 14), (10, 12, 15), (11, 13, 14)])
        engine, catalog = self.make_engine(trie, prefix_cache=PrefixKVCache())
        stale_prompt = [1, 2, 3, 4, 5, 6]
        clean_prompt = [7, 8, 7, 8, 7, 8]
        decode_rankings(engine, stale_prompt, beam_size=3)
        decode_rankings(engine, clean_prompt, beam_size=3)
        assert len(engine.prefix_cache) == 2
        # A (hypothetical) re-encode declares token 3 stale: only prompts
        # containing it lose their K/V at the next prefill's sync.
        catalog.swap(trie.with_item(3, (11, 12, 15)), stale_tokens=(3,))
        decode_rankings(engine, clean_prompt, beam_size=3)
        assert engine.prefix_cache.catalog_version == 1
        assert stale_prompt not in engine.prefix_cache
        assert clean_prompt in engine.prefix_cache

    def test_sync_catalog_is_idempotent_per_version(self):
        cache = PrefixKVCache()
        dropped = cache.sync_catalog(3, stale_tokens=(1,))
        assert dropped == 0 and cache.catalog_version == 3
        # Replays and regressions of the version stamp are no-ops.
        assert cache.sync_catalog(3, stale_tokens=(1,)) == 0
        assert cache.sync_catalog(2, stale_tokens=(1,)) == 0
        assert cache.catalog_version == 3


# ----------------------------------------------------------------------
# Catalog layer: ingestion end to end
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def live_catalog(tiny_lcrec):
    return tiny_lcrec.live_catalog(recluster_every=3)


class TestLiveCatalogIngest:
    def test_ingest_publishes_new_version(self, tiny_lcrec):
        catalog = tiny_lcrec.live_catalog(retrieval=False)
        v0 = catalog.version
        result = catalog.ingest(text="wireless noise cancelling headphones")
        assert catalog.version.version == 1
        assert result.version is catalog.version
        assert result.item_id == v0.num_items
        assert catalog.num_items == v0.num_items + 1
        assert catalog.trie.all_sequences()[result.item_id] == result.token_ids
        # The old snapshot is bit-for-bit intact (pinned readers).
        assert result.item_id not in v0.trie.all_sequences()
        assert v0.index_set.num_items == v0.num_items
        # Codes stay unique across the whole catalog.
        assert catalog.index_set.is_unique()

    def test_ingest_embedding_lane_and_validation(self, tiny_lcrec):
        catalog = tiny_lcrec.live_catalog(retrieval=False)
        rng = np.random.default_rng(3)
        embedding = rng.normal(size=tiny_lcrec.item_embeddings.shape[1])
        result = catalog.ingest(embedding=embedding)
        assert result.item_id == catalog.num_items - 1
        with pytest.raises(ValueError, match="exactly one"):
            catalog.ingest()
        with pytest.raises(ValueError, match="exactly one"):
            catalog.ingest(text="x", embedding=embedding)

    def test_ingest_without_rqvae_rejected(self, tiny_lcrec):
        catalog = LiveCatalog(
            tiny_lcrec.trie, tiny_lcrec.index_set, tiny_lcrec.tokenizer
        )
        with pytest.raises(ValueError, match="RQ-VAE"):
            catalog.ingest(text="anything")

    def test_retrieval_tier_extends_and_reclusters(self, tiny_lcrec):
        catalog = tiny_lcrec.live_catalog(recluster_every=3)
        baseline = catalog.num_items
        for round_ in range(3):
            catalog.ingest(text=f"brand new item number {round_}")
        tier = catalog.version.retrieval
        assert tier.num_items == baseline + 3
        # recluster_every=3 tripped: pending inserts were folded into a
        # fresh k-means build.
        assert tier.index.pending_inserts == 0
        # The retrieval proxy can recommend the new items.
        full = catalog.recommend([0, 1, 2], top_k=catalog.num_items)
        assert set(range(baseline, baseline + 3)) <= set(full)

    def test_new_item_recommendable_within_one_swap(self, tiny_lcrec):
        catalog = tiny_lcrec.live_catalog(retrieval=False)
        engine = tiny_lcrec.engine(prefix_cache=None)
        engine.attach_catalog(catalog)
        result = catalog.ingest(text="limited edition collector figurine")
        prompt = engine.encode_history([1, 2, 3])
        ranked = engine.rank_prompts([prompt], top_k=catalog.num_items)[0]
        assert result.item_id in ranked


# ----------------------------------------------------------------------
# Serving layer: the client surface under churn
# ----------------------------------------------------------------------
class TestServingIngest:
    def test_service_ingest_item_swaps_for_next_request(self, tiny_lcrec):
        catalog = tiny_lcrec.live_catalog(retrieval=False)
        engine = tiny_lcrec.engine(prefix_cache=True)
        engine.attach_catalog(catalog)
        service = RecommendationService(engine)
        result = service.ingest_item(text="smart home hub with voice control")
        handle = service.submit([1, 2, 3], top_k=catalog.num_items)
        service.flush()
        assert result.item_id in handle.result()

    def test_service_without_catalog_rejects_ingest(self, tiny_lcrec):
        service = RecommendationService(tiny_lcrec.engine(prefix_cache=None))
        with pytest.raises(RuntimeError, match="no live catalog"):
            service.ingest_item(text="x")

    def test_cluster_ingest_reaches_every_worker(self, tiny_lcrec):
        catalog = tiny_lcrec.live_catalog(retrieval=False)
        engine = tiny_lcrec.engine(prefix_cache=True)
        engine.attach_catalog(catalog)
        cluster = ServingCluster(engine, num_workers=2)
        result = cluster.ingest_item(text="ergonomic split mechanical keyboard")
        for worker in cluster.workers:
            assert worker.engine.catalog is catalog
            assert worker.engine.trie is catalog.trie
        handles = [
            cluster.submit([1, 2, 3], top_k=catalog.num_items, session_key=str(i))
            for i in range(2)
        ]
        cluster.flush()
        for handle in handles:
            assert result.item_id in handle.result()

    def test_cluster_without_catalog_rejects_ingest(self, tiny_lcrec):
        cluster = ServingCluster(tiny_lcrec.engine(prefix_cache=None), num_workers=1)
        with pytest.raises(RuntimeError, match="live catalog"):
            cluster.ingest_item(text="x")


class TestHybridServingLane:
    HISTORIES = [[1, 2, 3], [4, 5], [0, 7, 9], [], [3, 3, 3]]

    @pytest.fixture()
    def hybrid(self, tiny_lcrec, live_catalog):
        engine = tiny_lcrec.engine(prefix_cache=None)
        engine.attach_catalog(live_catalog)
        return HybridRecommender(engine, live_catalog, num_candidates=8)

    def test_submit_matches_library_hybrid(self, tiny_lcrec, live_catalog, hybrid):
        engine = tiny_lcrec.engine(prefix_cache=None)
        engine.attach_catalog(live_catalog)
        service = RecommendationService(engine, hybrid=hybrid)
        expected = hybrid.recommend_many(self.HISTORIES, top_k=6)
        handles = [service.submit(h, top_k=6) for h in self.HISTORIES]
        service.flush()
        assert [handle.result() for handle in handles] == expected
        assert service.stats.hybrid_narrowed == 4
        assert service.stats.hybrid_retrieval == 1
        # The cold-start submit is typed degraded, not silently retrieval.
        assert handles[3].degraded

    def test_submit_matches_library_hybrid_continuous(
        self, tiny_lcrec, live_catalog, hybrid
    ):
        engine = tiny_lcrec.engine(prefix_cache=True)
        engine.attach_catalog(live_catalog)
        expected = hybrid.recommend_many(self.HISTORIES, top_k=6)
        with RecommendationService(engine, hybrid=hybrid, mode="continuous") as service:
            handles = [service.submit(h, top_k=6) for h in self.HISTORIES]
            got = [handle.result(timeout=120) for handle in handles]
        assert got == expected

    def test_hybrid_lane_tracks_ingestion(self, tiny_lcrec, live_catalog, hybrid):
        engine = tiny_lcrec.engine(prefix_cache=None)
        engine.attach_catalog(live_catalog)
        service = RecommendationService(engine, hybrid=hybrid)
        service.ingest_item(text="hybrid lane ingestion probe item")
        # Both lanes answer over the new catalog version — parity holds
        # after the swap without rebuilding the hybrid.
        expected = hybrid.recommend_many(self.HISTORIES, top_k=6)
        handles = [service.submit(h, top_k=6) for h in self.HISTORIES]
        service.flush()
        assert [handle.result() for handle in handles] == expected

    def test_hybrid_requires_narrowing_engine(self, tiny_lcrec, hybrid):
        class NoNarrow(TrieDecoderEngine):
            supports_narrowing = False

        engine = NoNarrow(MODEL, build_trie([(10, 12, 14)]))
        with pytest.raises(ValueError, match="narrowing"):
            RecommendationService(engine, hybrid=hybrid)
