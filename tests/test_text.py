"""Tests for the tokenizer and vocabulary."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.text import INDEX_TOKEN_PATTERN, Vocabulary, WordTokenizer


class TestVocabulary:
    def test_special_tokens_first(self):
        vocab = Vocabulary()
        assert vocab.pad_id == 0
        assert vocab.bos_id == 1
        assert vocab.eos_id == 2
        assert vocab.unk_id == 3

    def test_add_token_idempotent(self):
        vocab = Vocabulary()
        first = vocab.add_token("guitar")
        second = vocab.add_token("guitar")
        assert first == second
        assert len(vocab) == 5

    def test_unknown_maps_to_unk(self):
        vocab = Vocabulary()
        assert vocab.token_to_id("never-seen") == vocab.unk_id

    def test_base_freeze_and_extension_region(self):
        vocab = Vocabulary()
        vocab.add_token("word")
        vocab.freeze_base()
        base = vocab.base_size
        index_id = vocab.add_token("<a_1>")
        assert vocab.is_extension_id(index_id)
        assert not vocab.is_extension_id(base - 1)

    def test_from_counter_orders_by_frequency(self):
        from collections import Counter

        vocab = Vocabulary.from_counter(Counter({"rare": 1, "common": 10}))
        assert vocab.token_to_id("common") < vocab.token_to_id("rare")

    def test_from_counter_min_count(self):
        from collections import Counter

        vocab = Vocabulary.from_counter(Counter({"a": 5, "b": 1}), min_count=2)
        assert "a" in vocab
        assert "b" not in vocab

    def test_from_counter_max_size(self):
        from collections import Counter

        counts = Counter({f"w{i}": 10 - i for i in range(10)})
        vocab = Vocabulary.from_counter(counts, max_size=7)
        assert len(vocab) == 7  # 4 specials + 3 words

    def test_roundtrip_id_token(self):
        vocab = Vocabulary()
        token_id = vocab.add_token("hello")
        assert vocab.id_to_token(token_id) == "hello"


class TestWordTokenizer:
    def test_split_words_and_punct(self):
        tokens = WordTokenizer.text_to_tokens("Hello, World! It's fine.")
        assert tokens == ["hello", ",", "world", "!", "it's", "fine", "."]

    def test_index_tokens_atomic(self):
        tokens = WordTokenizer.text_to_tokens("history: <a_12><b_7>, next")
        assert "<a_12>" in tokens
        assert "<b_7>" in tokens
        assert tokens.index("<a_12>") < tokens.index("<b_7>")

    def test_numbers_kept(self):
        assert "774" in WordTokenizer.text_to_tokens("model 774 deluxe")

    def test_encode_decode_roundtrip(self):
        vocab = WordTokenizer.build_vocab(["alpha beta gamma"])
        tokenizer = WordTokenizer(vocab)
        ids = tokenizer.encode("alpha gamma beta")
        assert tokenizer.decode(ids) == "alpha gamma beta"

    def test_encode_bos_eos(self):
        vocab = WordTokenizer.build_vocab(["x"])
        tokenizer = WordTokenizer(vocab)
        ids = tokenizer.encode("x", add_bos=True, add_eos=True)
        assert ids[0] == vocab.bos_id
        assert ids[-1] == vocab.eos_id

    def test_unknown_word_becomes_unk(self):
        vocab = WordTokenizer.build_vocab(["known"])
        tokenizer = WordTokenizer(vocab)
        assert tokenizer.encode("unknownword") == [vocab.unk_id]

    def test_register_index_tokens(self):
        vocab = WordTokenizer.build_vocab(["text"])
        tokenizer = WordTokenizer(vocab)
        ids = tokenizer.register_index_tokens(["<a_0>", "<a_1>"])
        assert all(vocab.is_extension_id(i) for i in ids)
        assert tokenizer.encode("<a_0>") == [ids[0]]

    def test_register_rejects_non_index_tokens(self):
        vocab = WordTokenizer.build_vocab(["text"])
        tokenizer = WordTokenizer(vocab)
        with pytest.raises(ValueError):
            tokenizer.register_index_tokens(["not-an-index"])

    def test_decode_skips_specials(self):
        vocab = WordTokenizer.build_vocab(["word"])
        tokenizer = WordTokenizer(vocab)
        ids = [vocab.bos_id, vocab.token_to_id("word"), vocab.eos_id]
        assert tokenizer.decode(ids) == "word"

    @given(st.lists(
        st.from_regex(r"<[a-z]_\d{1,3}>", fullmatch=True), min_size=1,
        max_size=8,
    ))
    @settings(max_examples=25, deadline=None)
    def test_index_tokens_survive_tokenization(self, index_tokens):
        text = " some words " + "".join(index_tokens) + " more"
        tokens = WordTokenizer.text_to_tokens(text)
        recovered = [t for t in tokens if INDEX_TOKEN_PATTERN.fullmatch(t)]
        assert recovered == index_tokens

    @given(st.text(alphabet="abcdefgh <>_0123456789,.", max_size=80))
    @settings(max_examples=50, deadline=None)
    def test_tokenization_never_crashes(self, text):
        tokens = WordTokenizer.text_to_tokens(text)
        assert isinstance(tokens, list)
