"""Tests for the synthetic catalog generator."""

import numpy as np
import pytest

from repro.data import CatalogConfig, generate_catalog


def make(num_items=50, seed=3, **kwargs):
    config = CatalogConfig(num_items=num_items, **kwargs)
    return generate_catalog(config, np.random.default_rng(seed))


class TestCatalogGeneration:
    def test_item_count(self):
        assert len(make(37)) == 37

    def test_deterministic_for_seed(self):
        a = make(seed=9)
        b = make(seed=9)
        assert [i.title for i in a] == [i.title for i in b]

    def test_different_seeds_differ(self):
        a = make(seed=1)
        b = make(seed=2)
        assert [i.title for i in a] != [i.title for i in b]

    def test_subcategory_consistent_with_category(self):
        catalog = make(num_items=80)
        per = catalog.config.subcategories_per_category
        for item in catalog:
            assert item.subcategory // per == item.category

    def test_titles_contain_category_name_token(self):
        catalog = make()
        for item in catalog:
            name = catalog.lexicon.category_names[item.category]
            assert name in item.title.split()

    def test_description_contains_keywords(self):
        catalog = make()
        for item in catalog:
            words = set(item.description.split())
            assert set(item.keywords) <= words

    def test_same_subcategory_items_share_vocabulary(self):
        catalog = make(num_items=120)
        subs = catalog.subcategories()
        target = np.bincount(subs).argmax()
        group = [i for i in catalog if i.subcategory == target]
        pool = set(catalog.lexicon.subcategory_words[target])
        for item in group:
            assert pool & set(item.description.split()), (
                "subcategory items should use subcategory words"
            )

    def test_text_method_joins_title_and_description(self):
        catalog = make()
        item = catalog[0]
        assert item.title in item.text()
        assert item.description in item.text()

    def test_subset_reindexes(self):
        catalog = make(num_items=30)
        subset = catalog.subset([5, 10, 20])
        assert len(subset) == 3
        assert subset[0].title == catalog[5].title
        assert subset[2].item_id == 2

    def test_validation_rejects_too_few_items(self):
        config = CatalogConfig(num_items=2, num_categories=4,
                               subcategories_per_category=3)
        with pytest.raises(ValueError):
            generate_catalog(config, np.random.default_rng(0))

    def test_categories_array_shapes(self):
        catalog = make(num_items=25)
        assert catalog.categories().shape == (25,)
        assert catalog.subcategories().shape == (25,)

    def test_lexicon_words_unique(self):
        catalog = make()
        words = catalog.lexicon.all_words()
        # Common words may repeat across pools only via the shared list.
        specialised = words[len(catalog.lexicon.common_words):]
        assert len(specialised) == len(set(specialised))
