"""Tests for PCA, separation diagnostics and index-semantics reports."""

import numpy as np
import pytest

from repro.analysis import (
    PrefixGeneration,
    ascii_scatter,
    count_level_changes,
    embedding_separation,
    fit_pca,
)


class TestPCA:
    def test_projects_to_requested_dims(self, rng):
        x = rng.standard_normal((30, 10))
        pca = fit_pca(x, n_components=3)
        assert pca.transform(x).shape == (30, 3)

    def test_first_component_captures_dominant_axis(self, rng):
        base = rng.standard_normal((100, 1)) * np.array([[10.0]])
        noise = rng.standard_normal((100, 4)) * 0.1
        x = np.concatenate([base, noise], axis=1)
        pca = fit_pca(x, n_components=2)
        assert abs(pca.components[0, 0]) > 0.99

    def test_explained_variance_sorted(self, rng):
        x = rng.standard_normal((50, 6))
        pca = fit_pca(x, n_components=4)
        ev = pca.explained_variance
        assert all(ev[i] >= ev[i + 1] for i in range(len(ev) - 1))

    def test_explained_variance_ratio_sums_below_one(self, rng):
        x = rng.standard_normal((50, 6))
        pca = fit_pca(x, n_components=2)
        ratios = pca.explained_variance_ratio
        assert (ratios >= 0).all()

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            fit_pca(rng.standard_normal(5))
        with pytest.raises(ValueError):
            fit_pca(rng.standard_normal((3, 2)), n_components=5)

    def test_transform_centers_data(self, rng):
        x = rng.standard_normal((40, 5)) + 100.0
        pca = fit_pca(x, n_components=2)
        projected = pca.transform(x)
        np.testing.assert_allclose(projected.mean(axis=0), 0.0, atol=1e-8)


class TestSeparation:
    def test_separated_groups_score_high(self, rng):
        group_a = rng.standard_normal((40, 8)) + 10.0
        group_b = rng.standard_normal((40, 8)) - 10.0
        report = embedding_separation(group_a, group_b)
        assert report.separation > 3.0

    def test_mixed_groups_score_low(self, rng):
        group_a = rng.standard_normal((40, 8))
        group_b = rng.standard_normal((40, 8))
        report = embedding_separation(group_a, group_b)
        assert report.separation < 1.0


class TestAsciiScatter:
    def test_renders_markers_and_legend(self, rng):
        groups = {
            "indices": rng.standard_normal((10, 2)),
            "texts": rng.standard_normal((10, 2)) + 5,
        }
        plot = ascii_scatter(groups, width=30, height=10)
        assert "i" in plot and "t" in plot
        assert "i=indices" in plot

    def test_rejects_empty_or_not_2d(self, rng):
        with pytest.raises(ValueError):
            ascii_scatter({})
        with pytest.raises(ValueError):
            ascii_scatter({"x": rng.standard_normal((5, 3))})


class TestLevelChanges:
    def make_generations(self):
        return [
            PrefixGeneration(0, "t0", ["a", "b", "b", "b"]),  # change 1->2
            PrefixGeneration(1, "t1", ["a", "a", "b", "b"]),  # change 2->3
            PrefixGeneration(2, "t2", ["a", "a", "a", "a"]),  # no change
        ]

    def test_counts(self):
        report = count_level_changes(self.make_generations())
        assert report.transitions == ["1->2", "2->3", "3->4"]
        assert report.change_counts == [1, 1, 0]

    def test_proportions(self):
        report = count_level_changes(self.make_generations())
        assert report.change_proportions == pytest.approx([1 / 3, 1 / 3, 0.0])

    def test_validation(self):
        with pytest.raises(ValueError):
            count_level_changes([])
        with pytest.raises(ValueError):
            count_level_changes([PrefixGeneration(0, "t", ["only-one"])])
