"""Tests for k-core filtering and the leave-one-out split."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    Interaction,
    build_user_sequences,
    k_core_filter,
    leave_one_out_split,
    reindex_log,
)


def make_log(pairs):
    """pairs: list of (user, item); timestamps follow list order per user."""
    counters: dict[int, int] = {}
    log = []
    for user, item in pairs:
        t = counters.get(user, 0)
        counters[user] = t + 1
        log.append(Interaction(user, item, t))
    return log


class TestKCore:
    def test_removes_sparse_users(self):
        log = make_log([(0, 0), (0, 1), (1, 0)])
        filtered = k_core_filter(log, 2, 1)
        assert all(x.user_id == 0 for x in filtered)

    def test_removes_sparse_items(self):
        log = make_log([(0, 0), (1, 0), (0, 1)])
        filtered = k_core_filter(log, 1, 2)
        assert all(x.item_id == 0 for x in filtered)

    def test_iterates_until_stable(self):
        # Removing item 1 drops user 1 below threshold, cascading.
        log = make_log([(0, 0), (0, 0), (1, 0), (1, 1)])
        filtered = k_core_filter(log, 2, 2)
        users = {x.user_id for x in filtered}
        assert 1 not in users

    def test_empty_result_possible(self):
        log = make_log([(0, 0)])
        assert k_core_filter(log, 5, 5) == []

    @given(st.lists(st.tuples(st.integers(0, 8), st.integers(0, 8)),
                    min_size=0, max_size=60))
    @settings(max_examples=50, deadline=None)
    def test_kcore_invariant(self, pairs):
        """After filtering, every remaining user/item meets the threshold."""
        log = make_log(pairs)
        filtered = k_core_filter(log, 3, 3)
        from collections import Counter

        users = Counter(x.user_id for x in filtered)
        items = Counter(x.item_id for x in filtered)
        assert all(c >= 3 for c in users.values())
        assert all(c >= 3 for c in items.values())


class TestReindex:
    def test_dense_ids(self):
        log = make_log([(5, 9), (5, 3), (7, 9)])
        dense, user_ids, item_ids = reindex_log(log)
        assert user_ids == [5, 7]
        assert item_ids == [3, 9]
        assert {x.user_id for x in dense} == {0, 1}
        assert {x.item_id for x in dense} == {0, 1}

    def test_preserves_order_mapping(self):
        log = make_log([(5, 9)])
        dense, user_ids, item_ids = reindex_log(log)
        assert dense[0].item_id == item_ids.index(9)


class TestSequences:
    def test_chronological(self):
        log = [Interaction(0, 3, 2), Interaction(0, 1, 0), Interaction(0, 2, 1)]
        assert build_user_sequences(log) == [[1, 2, 3]]

    def test_multiple_users(self):
        log = make_log([(0, 1), (1, 2), (0, 3)])
        sequences = build_user_sequences(log)
        assert sequences[0] == [1, 3]
        assert sequences[1] == [2]


class TestLeaveOneOut:
    def test_split_structure(self):
        split = leave_one_out_split([[1, 2, 3, 4, 5]], max_len=3)
        assert split.test_targets == [5]
        assert split.valid_targets == [4]
        assert split.test_histories == [[2, 3, 4]]
        assert split.valid_histories == [[1, 2, 3]]
        assert split.train_sequences == [[1, 2, 3]]

    def test_max_len_truncates_to_most_recent(self):
        split = leave_one_out_split([list(range(30))], max_len=5)
        assert split.test_histories[0] == list(range(24, 29))

    def test_rejects_short_sequences(self):
        with pytest.raises(ValueError):
            leave_one_out_split([[1, 2]])

    @given(st.lists(st.integers(0, 50), min_size=3, max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_no_leakage(self, seq):
        """Test target never appears in the train prefix *positions*."""
        split = leave_one_out_split([seq], max_len=20)
        assert split.test_targets[0] == seq[-1]
        assert split.valid_targets[0] == seq[-2]
        # The training view stops before the validation item.
        assert split.train_sequences[0] == seq[:-2][-20:]
