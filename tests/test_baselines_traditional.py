"""Tests for the traditional (ID-based) baselines and the shared trainer."""

import numpy as np
import pytest

from repro.baselines import (
    BERT4Rec,
    BaselineTrainer,
    BaselineTrainerConfig,
    Caser,
    FDSA,
    FMLP,
    FilterLayer,
    GRU4Rec,
    HGN,
    S3Rec,
    SASRec,
)
from repro.tensor import Tensor


def all_models(dataset, dim=16):
    n = dataset.num_items
    subs = dataset.catalog.subcategories()
    num_subs = dataset.catalog.num_subcategories
    return [
        Caser(n, dim=dim),
        HGN(n, dim=dim),
        GRU4Rec(n, dim=dim),
        BERT4Rec(n, dim=dim),
        SASRec(n, dim=dim),
        FMLP(n, dim=dim),
        FDSA(n, subs, num_subs, dim=dim),
        S3Rec(n, subs, num_subs, dim=dim),
    ]


class TestInterfaces:
    def test_score_all_shapes(self, tiny_dataset):
        histories = tiny_dataset.split.test_histories[:6]
        for model in all_models(tiny_dataset):
            scores = model.score_all(histories)
            assert scores.shape == (6, tiny_dataset.num_items), model.name

    def test_recommend_returns_ranked_ids(self, tiny_dataset):
        history = tiny_dataset.split.test_histories[0]
        for model in all_models(tiny_dataset):
            ranked = model.recommend(history, top_k=5)
            assert len(ranked) == 5, model.name
            assert len(set(ranked)) == 5
            assert all(0 <= i < tiny_dataset.num_items for i in ranked)

    def test_pad_id_outside_item_range(self, tiny_dataset):
        for model in all_models(tiny_dataset):
            assert model.pad_id == tiny_dataset.num_items

    def test_empty_history_scores(self, tiny_dataset):
        for model in all_models(tiny_dataset):
            scores = model.score_all([[]])
            assert np.isfinite(scores).all(), model.name


class TestTraining:
    @pytest.mark.parametrize("model_index", range(8))
    def test_fit_reduces_loss(self, tiny_dataset, model_index):
        model = all_models(tiny_dataset)[model_index]
        trainer = BaselineTrainer(BaselineTrainerConfig(epochs=5,
                                                        batch_size=32))
        losses = trainer.fit(model, tiny_dataset)
        assert losses[-1] < losses[0], model.name

    def test_training_beats_random_ranking(self, tiny_dataset):
        from repro.eval import evaluate_score_model

        model = SASRec(tiny_dataset.num_items, dim=16)
        trainer = BaselineTrainer(BaselineTrainerConfig(epochs=10,
                                                        batch_size=32))
        trainer.fit(model, tiny_dataset)
        report = evaluate_score_model(model,
                                      tiny_dataset.split.test_histories,
                                      tiny_dataset.split.test_targets)
        # Random HR@10 would be 10/40 = 0.25.
        assert report["HR@10"] > 0.3

    def test_unknown_mode_rejected(self, tiny_dataset):
        model = SASRec(tiny_dataset.num_items, dim=16)
        model.training_mode = "bogus"
        with pytest.raises(ValueError):
            BaselineTrainer().fit(model, tiny_dataset)

    def test_masked_mode_requires_mask_id(self, tiny_dataset):
        model = SASRec(tiny_dataset.num_items, dim=16)
        model.training_mode = "masked"
        with pytest.raises(TypeError):
            BaselineTrainer().fit(model, tiny_dataset)


class TestModelSpecifics:
    def test_sasrec_causality(self, tiny_dataset):
        model = SASRec(tiny_dataset.num_items, dim=16)
        model.eval()
        seq = np.array([[0, 1, 2, 3]])
        from repro.tensor import no_grad

        with no_grad():
            base = model.sequence_output(seq).data
            changed_input = seq.copy()
            changed_input[0, -1] = 5
            changed = model.sequence_output(changed_input).data
        np.testing.assert_allclose(base[0, :3], changed[0, :3], atol=1e-5)

    def test_bert4rec_is_bidirectional(self, tiny_dataset):
        model = BERT4Rec(tiny_dataset.num_items, dim=16)
        model.eval()
        seq = np.array([[0, 1, 2, 3]])
        from repro.tensor import no_grad

        with no_grad():
            base = model.sequence_output(seq).data
            changed_input = seq.copy()
            changed_input[0, -1] = 5
            changed = model.sequence_output(changed_input).data
        assert not np.allclose(base[0, 0], changed[0, 0])

    def test_bert4rec_mask_position_scoring(self, tiny_dataset):
        model = BERT4Rec(tiny_dataset.num_items, dim=16)
        # History shorter than max_len: mask goes right after the history.
        scores = model.score_all([[1, 2, 3]])
        assert scores.shape == (1, tiny_dataset.num_items)

    def test_filter_layer_identity_at_init_is_near_input(self):
        rng = np.random.default_rng(0)
        layer = FilterLayer(seq_len=6, dim=4, rng=rng)
        x = Tensor(rng.standard_normal((2, 6, 4)).astype(np.float32))
        out = layer(x).data
        # Kernel initialises near a delta: output should correlate strongly.
        corr = np.corrcoef(out.ravel(), x.data.ravel())[0, 1]
        assert corr > 0.9

    def test_filter_layer_rejects_wrong_length(self):
        layer = FilterLayer(seq_len=6, dim=4, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            layer(Tensor(np.zeros((1, 4, 4), dtype=np.float32)))

    def test_filter_layer_equals_circular_convolution(self):
        rng = np.random.default_rng(1)
        layer = FilterLayer(seq_len=5, dim=2, rng=rng)
        x = rng.standard_normal((1, 5, 2)).astype(np.float32)
        out = layer(Tensor(x)).data
        kernel = layer.kernel.data
        # Reference: FFT-based circular convolution per dimension.
        expected = np.real(np.fft.ifft(
            np.fft.fft(x, axis=1) * np.fft.fft(kernel[None], axis=1), axis=1))
        np.testing.assert_allclose(out, expected, atol=1e-4)

    def test_fdsa_validates_features(self, tiny_dataset):
        with pytest.raises(ValueError):
            FDSA(tiny_dataset.num_items, np.zeros(3), 4, dim=16)

    def test_s3rec_pretrain_improves_attribute_knowledge(self, tiny_dataset):
        subs = tiny_dataset.catalog.subcategories()
        model = S3Rec(tiny_dataset.num_items, subs,
                      tiny_dataset.catalog.num_subcategories, dim=16)
        losses = model.pretrain(tiny_dataset)
        assert losses[-1] < losses[0]
        assert model._bidirectional is False  # restored after pretraining

    def test_caser_window_shapes(self, tiny_dataset):
        model = Caser(tiny_dataset.num_items, dim=16, max_len=20)
        padded, lengths = model.pad_histories([[1, 2, 3]])
        representation = model.user_representation(padded, lengths)
        assert representation.shape == (1, 16)

    def test_sasrec_item_embedding_matrix(self, tiny_dataset):
        model = SASRec(tiny_dataset.num_items, dim=16)
        matrix = model.item_embedding_matrix()
        assert matrix.shape == (tiny_dataset.num_items, 16)
