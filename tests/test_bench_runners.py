"""Plumbing tests for the bench runners (tiny scale, fast settings)."""

import pytest

from repro.bench.config import BenchScale
from repro.bench.runners import (
    GENERATIVE_BASELINES,
    TRADITIONAL_BASELINES,
    baseline_model,
    lcrec_config_for,
    run_traditional_baseline,
)

FAST = BenchScale("test", dataset_scale=0.15, epoch_scale=0.1,
                  max_eval_users=20)


class TestFactories:
    def test_all_traditional_names_constructible(self, tiny_dataset):
        for name in TRADITIONAL_BASELINES:
            model = baseline_model(name, tiny_dataset)
            assert model.num_items == tiny_dataset.num_items

    def test_unknown_baseline_rejected(self, tiny_dataset):
        with pytest.raises(KeyError):
            baseline_model("NotAModel", tiny_dataset)

    def test_generative_names_declared(self):
        assert set(GENERATIVE_BASELINES) == {"P5-CID", "TIGER"}

    def test_lcrec_config_respects_overrides(self, tiny_dataset):
        config = lcrec_config_for(tiny_dataset, FAST, tasks=("seq",),
                                  index_source="random",
                                  indexing_strategy="extra_level", seed=9)
        assert config.tasks.tasks == ("seq",)
        assert config.index_source == "random"
        assert config.indexer.strategy == "extra_level"
        assert config.seed == 9

    def test_lcrec_config_codebook_scales_with_items(self, tiny_dataset):
        config = lcrec_config_for(tiny_dataset, FAST)
        assert config.indexer.rqvae.codebook_size == 24


class TestRunners:
    def test_run_traditional_baseline_end_to_end(self, tiny_dataset):
        report = run_traditional_baseline("GRU4Rec", tiny_dataset, FAST)
        assert 0.0 <= report["HR@10"] <= 1.0

    def test_seeded_runs_reproduce(self, tiny_dataset):
        first = run_traditional_baseline("HGN", tiny_dataset, FAST, seed=3)
        second = run_traditional_baseline("HGN", tiny_dataset, FAST, seed=3)
        assert first.values == second.values
