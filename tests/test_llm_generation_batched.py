"""Batched constrained decoding: parity with the single-request path."""

import numpy as np
import pytest

from repro.llm import (
    LMConfig,
    TinyLlama,
    backfill_ranked_item_ids,
    beam_search_items,
    beam_search_items_batched,
    beam_search_items_single,
    left_pad_prompts,
    ranked_item_ids,
)
from repro.quantization import IndexTrie


def make_model(vocab=30):
    model = TinyLlama(LMConfig(vocab_size=vocab, dim=16, num_layers=1,
                               num_heads=2, ffn_hidden=24, max_seq_len=64,
                               seed=7))
    model.eval()
    return model


def make_trie():
    return IndexTrie({
        0: (10, 12, 14),
        1: (10, 12, 15),
        2: (10, 13, 14),
        3: (11, 12, 14),
        4: (11, 13, 15),
    })


MIXED_PROMPTS = [[1, 2, 3], [4, 5], [1], [2, 2, 6, 7], [3, 3, 3]]


class TestLeftPadPrompts:
    def test_rectangle_and_pad_counts(self):
        tokens, pads = left_pad_prompts(MIXED_PROMPTS, pad_id=0)
        assert tokens.shape == (5, 4)
        assert pads.tolist() == [1, 2, 3, 0, 1]
        # Real tokens occupy the tail of each row.
        for row, prompt in zip(tokens, MIXED_PROMPTS):
            assert row[len(row) - len(prompt):].tolist() == prompt

    def test_last_column_is_last_token(self):
        tokens, _ = left_pad_prompts(MIXED_PROMPTS)
        assert tokens[:, -1].tolist() == [p[-1] for p in MIXED_PROMPTS]

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValueError):
            left_pad_prompts([])
        with pytest.raises(ValueError):
            left_pad_prompts([[1], []])


class TestBatchedParity:
    """Rankings must match the reference single-request loop exactly."""

    @pytest.mark.parametrize("beam_size", [1, 3, 5, 50])
    def test_mixed_length_batch_matches_reference(self, beam_size):
        model, trie = make_model(), make_trie()
        batched = beam_search_items_batched(model, MIXED_PROMPTS, trie,
                                            beam_size=beam_size)
        assert len(batched) == len(MIXED_PROMPTS)
        for prompt, hypotheses in zip(MIXED_PROMPTS, batched):
            reference = beam_search_items_single(model, prompt, trie,
                                                 beam_size=beam_size)
            assert ([h.item_id for h in hypotheses]
                    == [h.item_id for h in reference])
            assert ([h.token_ids for h in hypotheses]
                    == [h.token_ids for h in reference])
            np.testing.assert_allclose([h.score for h in hypotheses],
                                       [h.score for h in reference],
                                       rtol=1e-5, atol=1e-6)

    def test_wrapper_matches_reference(self):
        model, trie = make_model(), make_trie()
        wrapped = beam_search_items(model, [1, 2, 3], trie, beam_size=10)
        reference = beam_search_items_single(model, [1, 2, 3], trie,
                                             beam_size=10)
        assert [h.item_id for h in wrapped] == [h.item_id for h in reference]
        np.testing.assert_allclose([h.score for h in wrapped],
                                   [h.score for h in reference], rtol=1e-6)

    def test_batch_of_one_equals_batch_of_many(self):
        model, trie = make_model(), make_trie()
        together = beam_search_items_batched(model, MIXED_PROMPTS, trie,
                                             beam_size=5)
        for prompt, hypotheses in zip(MIXED_PROMPTS, together):
            alone = beam_search_items_batched(model, [prompt], trie,
                                              beam_size=5)[0]
            assert ([h.item_id for h in hypotheses]
                    == [h.item_id for h in alone])

    def test_wide_beam_covers_all_items_per_request(self):
        model, trie = make_model(), make_trie()
        batched = beam_search_items_batched(model, [[1], [2, 3]], trie,
                                            beam_size=50)
        for hypotheses in batched:
            assert {h.item_id for h in hypotheses} == {0, 1, 2, 3, 4}

    def test_scores_sorted_descending_per_request(self):
        model, trie = make_model(), make_trie()
        for hypotheses in beam_search_items_batched(model, MIXED_PROMPTS,
                                                    trie, beam_size=10):
            scores = [h.score for h in hypotheses]
            assert scores == sorted(scores, reverse=True)
            assert all(np.isfinite(s) for s in scores)

    def test_empty_batch(self):
        assert beam_search_items_batched(make_model(), [], make_trie()) == []

    def test_beam_size_validated(self):
        with pytest.raises(ValueError):
            beam_search_items_batched(make_model(), [[1]], make_trie(),
                                      beam_size=0)

    def test_empty_prompt_in_batch_rejected_with_row(self):
        """A degenerate row must raise a clear per-row error, not crash
        somewhere inside left-padding or prefill."""
        with pytest.raises(ValueError, match="prompt 1 is empty"):
            beam_search_items_batched(make_model(), [[1, 2], [], [3]],
                                      make_trie(), beam_size=5)

    def test_single_item_trie(self):
        model = make_model()
        trie = IndexTrie({0: (10, 12, 14)})
        batched = beam_search_items_batched(model, [[1], [2, 3]], trie,
                                            beam_size=20)
        for hypotheses in batched:
            assert [h.item_id for h in hypotheses] == [0]
            assert hypotheses[0].token_ids == (10, 12, 14)

    def test_beam_exceeding_legal_hypotheses_mid_batch(self):
        """Rows starving mid-search carry -inf fillers that never leak out."""
        model = make_model()
        # Item 5 lives alone under root token 20: any row whose beam leads
        # with that branch has a single legal continuation at every level.
        trie = IndexTrie({
            0: (10, 12, 14),
            1: (10, 12, 15),
            5: (20, 21, 22),
        })
        batched = beam_search_items_batched(model, [[1, 2], [4]], trie,
                                            beam_size=50)
        for prompt, hypotheses in zip([[1, 2], [4]], batched):
            assert {h.item_id for h in hypotheses} == {0, 1, 5}
            assert all(np.isfinite(h.score) for h in hypotheses)
            reference = beam_search_items_single(model, prompt, trie,
                                                 beam_size=50)
            assert ([h.token_ids for h in hypotheses]
                    == [h.token_ids for h in reference])


class TestRankedItemIds:
    def test_dedup_and_truncation(self):
        model, trie = make_model(), make_trie()
        hypotheses = beam_search_items(model, [1], trie, beam_size=50)
        ranked = ranked_item_ids(hypotheses, top_k=3)
        assert len(ranked) == 3
        assert len(set(ranked)) == 3
        assert ranked == [h.item_id for h in hypotheses[:3]]

    def test_backfill_pads_short_rankings(self):
        model, trie = make_model(), make_trie()
        hypotheses = beam_search_items(model, [1], trie, beam_size=50)
        # Full beams are untouched.
        assert backfill_ranked_item_ids(hypotheses, 3, 5) == ranked_item_ids(
            hypotheses, 3)
        # A starved beam is padded with the smallest unused item ids,
        # keeping the beam's own ranking at the front.
        padded = backfill_ranked_item_ids(hypotheses[:2], top_k=4, num_items=5)
        assert padded[:2] == [h.item_id for h in hypotheses[:2]]
        assert len(padded) == 4
        assert len(set(padded)) == 4
        # top_k beyond the catalog: every item once, nothing invented.
        everything = backfill_ranked_item_ids(hypotheses[:2], top_k=10,
                                              num_items=5)
        assert sorted(everything) == [0, 1, 2, 3, 4]


class TestTrieMask:
    def test_mask_matches_allowed_tokens(self):
        trie = make_trie()
        prefixes = [(), (10,), (11,), (10, 12), (11, 13)]
        mask = trie.allowed_token_mask(prefixes, vocab_size=30)
        assert mask.shape == (5, 30)
        for row, prefix in zip(mask, prefixes):
            assert set(np.flatnonzero(row)) == set(trie.allowed_tokens(prefix))

    def test_unknown_prefix_has_empty_row(self):
        mask = make_trie().allowed_token_mask([(9,), (10, 11)], vocab_size=30)
        assert not mask.any()

    def test_vocab_size_validated(self):
        with pytest.raises(ValueError):
            make_trie().allowed_token_mask([()], vocab_size=15)

    def test_vocab_growth_rebuilds_rows(self):
        trie = make_trie()
        small = trie.allowed_token_mask([()], vocab_size=20)
        grown = trie.allowed_token_mask([()], vocab_size=40)
        assert small.shape == (1, 20)
        assert grown.shape == (1, 40)
        np.testing.assert_array_equal(np.flatnonzero(small),
                                      np.flatnonzero(grown))


class TestPaddedForwardEquivalence:
    def test_padded_hidden_states_match_unpadded(self):
        """Left-padding + masking must reproduce per-row forward passes."""
        model = make_model()
        tokens, pads = left_pad_prompts(MIXED_PROMPTS, pad_id=0)
        batched = model.forward(tokens, pad_lengths=pads).data
        for row, prompt in enumerate(MIXED_PROMPTS):
            solo = model.forward(np.asarray([prompt], dtype=np.int64)).data[0]
            real = batched[row, pads[row]:, :]
            np.testing.assert_allclose(real, solo, rtol=2e-5, atol=2e-6)
