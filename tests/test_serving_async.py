"""Async serving: deadline-batched background flushing and its lifecycle."""

import threading
import time

import pytest

from repro.serving import (
    LCRecEngine,
    MicroBatcherConfig,
    RecommendationService,
    RecommendRequest,
    RequestQueue,
)


def request(length, beam_size=10):
    return RecommendRequest(prompt_ids=list(range(1, length + 1)), beam_size=beam_size)


class TestAwaitBatch:
    """The queue-side primitive the flush loop is built on."""

    def test_size_trigger_fires_immediately(self):
        queue = RequestQueue()
        for _ in range(3):
            queue.push(request(4))
        start = time.monotonic()
        drained, reason = queue.await_batch(60.0, 3, should_stop=lambda: False)
        assert reason == "size"
        assert len(drained) == 3
        assert time.monotonic() - start < 1.0  # did not wait out the deadline
        assert len(queue) == 0

    def test_deadline_trigger_fires_on_oldest_age(self):
        queue = RequestQueue()
        queue.push(request(4))
        start = time.monotonic()
        drained, reason = queue.await_batch(0.05, 100, should_stop=lambda: False)
        elapsed = time.monotonic() - start
        assert reason == "deadline"
        assert len(drained) == 1
        assert elapsed >= 0.04  # waited for the budget...
        assert elapsed < 5.0  # ...but not forever

    def test_stop_wakes_empty_wait(self):
        queue = RequestQueue()
        stop = threading.Event()
        results = {}

        def waiter():
            results["out"] = queue.await_batch(60.0, 100, should_stop=stop.is_set)

        thread = threading.Thread(target=waiter)
        thread.start()
        time.sleep(0.02)
        stop.set()
        queue.kick()
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert results["out"] == ([], "stop")

    def test_push_wakes_waiter_for_size_trigger(self):
        queue = RequestQueue()
        results = {}

        def waiter():
            results["out"] = queue.await_batch(60.0, 2, should_stop=lambda: False)

        thread = threading.Thread(target=waiter)
        thread.start()
        queue.push(request(4))
        queue.push(request(4))
        thread.join(timeout=5)
        assert not thread.is_alive()
        drained, reason = results["out"]
        assert reason == "size"
        assert len(drained) == 2

    def test_oldest_age(self):
        queue = RequestQueue()
        assert queue.oldest_age() is None
        queue.push(request(3))
        time.sleep(0.01)
        assert queue.oldest_age() >= 0.01


class TestAsyncService:
    @pytest.fixture()
    def service(self, tiny_lcrec):
        service = RecommendationService(
            LCRecEngine(tiny_lcrec),
            batcher=MicroBatcherConfig(max_batch_size=4),
            deadline_ms=40.0,
        )
        yield service
        service.stop()

    def test_deadline_flushes_partial_batch(self, service, tiny_dataset):
        """Fewer requests than a batch still get served within the budget."""
        service.start()
        pending = [service.submit(h, top_k=3) for h in tiny_dataset.split.test_histories[:2]]
        rankings = [p.result(timeout=10.0) for p in pending]
        assert all(len(r) == 3 for r in rankings)
        assert service.stats.deadline_flushes >= 1
        assert service.stats.requests == 2

    def test_full_batch_flushes_before_deadline(self, tiny_lcrec, tiny_dataset):
        service = RecommendationService(
            LCRecEngine(tiny_lcrec),
            batcher=MicroBatcherConfig(max_batch_size=4),
            deadline_ms=60_000.0,  # the deadline alone would take a minute
        )
        with service:
            pending = [
                service.submit(h, top_k=3) for h in tiny_dataset.split.test_histories[:4]
            ]
            rankings = [p.result(timeout=10.0) for p in pending]
        assert all(len(r) == 3 for r in rankings)
        assert service.stats.size_flushes >= 1

    def test_stop_drains_in_flight_work(self, service, tiny_dataset):
        service.start()
        pending = [service.submit(h, top_k=3) for h in tiny_dataset.split.test_histories[:3]]
        service.stop()  # drain=True default
        assert all(p.done for p in pending)
        assert not service.is_running
        for p in pending:
            assert len(p.result()) == 3

    def test_stop_without_drain_leaves_queue(self, tiny_lcrec, tiny_dataset):
        service = RecommendationService(
            LCRecEngine(tiny_lcrec),
            batcher=MicroBatcherConfig(max_batch_size=64),
            deadline_ms=60_000.0,
        )
        service.start()
        pending = service.submit(tiny_dataset.split.test_histories[0], top_k=3)
        service.stop(drain=False)
        assert not pending.done
        assert len(service.queue) == 1
        assert len(pending.result()) == 3  # sync fallback flush still works

    def test_async_results_match_sync_recommend(self, service, tiny_lcrec, tiny_dataset):
        histories = tiny_dataset.split.test_histories[:6]
        service.start()
        pending = [service.submit(h, top_k=5) for h in histories]
        for history, p in zip(histories, pending):
            assert p.result(timeout=10.0) == tiny_lcrec.recommend(list(history), top_k=5)

    def test_concurrent_submitters(self, service, tiny_lcrec, tiny_dataset):
        histories = tiny_dataset.split.test_histories[:8]
        service.start()
        results: dict[int, list[int]] = {}

        def submit_and_wait(index, history):
            results[index] = service.submit(history, top_k=4).result(timeout=10.0)

        threads = [
            threading.Thread(target=submit_and_wait, args=(i, h))
            for i, h in enumerate(histories)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=15)
        assert len(results) == len(histories)
        for index, history in enumerate(histories):
            assert results[index] == tiny_lcrec.recommend(list(history), top_k=4)

    def test_result_timeout_raises(self, tiny_lcrec, tiny_dataset):
        service = RecommendationService(
            LCRecEngine(tiny_lcrec),
            batcher=MicroBatcherConfig(max_batch_size=64),
            deadline_ms=60_000.0,
        )
        service.start()
        try:
            pending = service.submit(tiny_dataset.split.test_histories[0])
            with pytest.raises(TimeoutError):
                pending.result(timeout=0.05)
        finally:
            service.stop()
        assert pending.done  # stop() drained it after all

    def test_context_manager_lifecycle(self, tiny_lcrec, tiny_dataset):
        with tiny_lcrec.service(deadline_ms=40.0) as service:
            assert service.is_running
            pending = service.submit(tiny_dataset.split.test_histories[0], top_k=3)
            assert len(pending.result(timeout=10.0)) == 3
        assert not service.is_running

    def test_start_twice_rejected(self, service):
        service.start()
        with pytest.raises(RuntimeError):
            service.start()

    def test_stop_idempotent_and_restartable(self, service, tiny_dataset):
        service.start()
        service.stop()
        service.stop()
        service.start()  # a stopped service can be restarted
        pending = service.submit(tiny_dataset.split.test_histories[0], top_k=3)
        assert len(pending.result(timeout=10.0)) == 3

    def test_stop_safe_under_concurrent_callers(self, service):
        """Regression: concurrent stop() calls used to race the worker field.

        Two callers could both pass the ``_worker is None`` check; the
        loser then joined/cleared a dead (or None) thread.  The lifecycle
        lock serializes them: every caller returns cleanly and the service
        is stopped exactly once per start.
        """
        errors: list[BaseException] = []
        for _ in range(10):
            service.start()
            barrier = threading.Barrier(4)

            def stopper():
                try:
                    barrier.wait(timeout=5)
                    service.stop()
                except BaseException as exc:  # noqa: BLE001 - recorded for assert
                    errors.append(exc)

            threads = [threading.Thread(target=stopper) for _ in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=10)
            assert not any(thread.is_alive() for thread in threads)
            assert not service.is_running
        assert errors == []

    def test_sync_flush_still_works_while_running(self, service, tiny_dataset):
        """Explicit flush() and the background loop may race safely."""
        service.start()
        pending = [service.submit(h, top_k=3) for h in tiny_dataset.split.test_histories[:3]]
        service.flush()
        for p in pending:
            assert len(p.result(timeout=10.0)) == 3

    def test_validation(self, tiny_lcrec):
        with pytest.raises(ValueError):
            RecommendationService(LCRecEngine(tiny_lcrec), deadline_ms=0.0)

    def test_failing_batch_does_not_strand_other_batches(
        self, tiny_lcrec, tiny_dataset, monkeypatch
    ):
        """One broken micro-batch fails its own waiters; the rest are served."""
        service = RecommendationService(
            LCRecEngine(tiny_lcrec, prefix_cache=False),
            batcher=MicroBatcherConfig(max_batch_size=1),
        )
        real_prefill = service.engine.prefill
        calls = {"count": 0}

        def flaky(*args, **kwargs):
            calls["count"] += 1
            if calls["count"] == 1:
                raise RuntimeError("decode blew up")
            return real_prefill(*args, **kwargs)

        monkeypatch.setattr(service.engine, "prefill", flaky)
        pending = [service.submit(h, top_k=3) for h in tiny_dataset.split.test_histories[:2]]
        with pytest.raises(RuntimeError, match="decode blew up"):
            service.flush()
        # Every handle resolved: exactly one failed, the other got results.
        assert all(p.done for p in pending)
        outcomes = []
        for p in pending:
            try:
                outcomes.append(("ok", len(p.result(timeout=0.1))))
            except RuntimeError:
                outcomes.append(("error", None))
        assert sorted(kind for kind, _ in outcomes) == ["error", "ok"]
