"""Tests for instruction encoding, collation, pretraining and tuning."""

import numpy as np
import pytest

from repro.llm import (
    IGNORE_INDEX,
    InstructionExample,
    InstructionTuner,
    LMConfig,
    PretrainConfig,
    TinyLlama,
    TuningConfig,
    build_corpus_stream,
    collate_batch,
    encode_example,
    encode_texts,
    pretrain_lm,
)
from repro.llm.instruction import prompt_ids
from repro.text import WordTokenizer


@pytest.fixture()
def tokenizer():
    corpus = ["the quick brown fox jumps over the lazy dog",
              "answer : recommendation item title description user history"]
    return WordTokenizer(WordTokenizer.build_vocab(corpus))


def small_model(tokenizer):
    return TinyLlama(LMConfig(vocab_size=len(tokenizer.vocab), dim=16,
                              num_layers=1, num_heads=2, ffn_hidden=24,
                              max_seq_len=64, seed=3))


class TestEncodeExample:
    def test_labels_ignore_prompt(self, tokenizer):
        example = InstructionExample("the quick fox", "lazy dog", task="t")
        encoded = encode_example(tokenizer, example)
        boundary = np.argmax(encoded.labels != IGNORE_INDEX)
        assert (encoded.labels[:boundary] == IGNORE_INDEX).all()
        assert (encoded.labels[boundary:] != IGNORE_INDEX).all()

    def test_response_ends_with_eos(self, tokenizer):
        example = InstructionExample("the quick", "dog", task="t")
        encoded = encode_example(tokenizer, example)
        assert encoded.input_ids[-1] == tokenizer.vocab.eos_id
        assert encoded.labels[-1] == tokenizer.vocab.eos_id

    def test_starts_with_bos(self, tokenizer):
        example = InstructionExample("quick", "dog", task="t")
        encoded = encode_example(tokenizer, example)
        assert encoded.input_ids[0] == tokenizer.vocab.bos_id

    def test_prompt_truncation(self, tokenizer):
        example = InstructionExample("the quick brown fox " * 50, "dog", "t")
        encoded = encode_example(tokenizer, example, max_len=32)
        assert len(encoded) <= 32

    def test_too_long_response_rejected(self, tokenizer):
        example = InstructionExample("x", "dog " * 100, task="t")
        with pytest.raises(ValueError):
            encode_example(tokenizer, example, max_len=16)

    def test_prompt_ids_match_encode_prefix(self, tokenizer):
        example = InstructionExample("the quick fox", "dog", task="t")
        encoded = encode_example(tokenizer, example)
        prompt = prompt_ids(tokenizer, example.instruction)
        np.testing.assert_array_equal(encoded.input_ids[:len(prompt)], prompt)


class TestCollate:
    def test_padding_and_labels(self, tokenizer):
        examples = [
            encode_example(tokenizer, InstructionExample("quick", "dog", "t")),
            encode_example(tokenizer, InstructionExample(
                "the quick brown fox", "lazy dog", "t")),
        ]
        input_ids, labels = collate_batch(examples, tokenizer.vocab.pad_id)
        assert input_ids.shape == labels.shape
        short_len = len(examples[0])
        assert (input_ids[0, short_len:] == tokenizer.vocab.pad_id).all()
        assert (labels[0, short_len:] == IGNORE_INDEX).all()

    def test_empty_batch_rejected(self, tokenizer):
        with pytest.raises(ValueError):
            collate_batch([], 0)


class TestPretrain:
    def test_corpus_stream_separated_by_eos(self, tokenizer):
        stream = build_corpus_stream(tokenizer, ["the quick", "brown fox"])
        assert (stream == tokenizer.vocab.eos_id).sum() == 2

    def test_empty_corpus_rejected(self, tokenizer):
        with pytest.raises(ValueError):
            build_corpus_stream(tokenizer, [])

    def test_loss_decreases(self, tokenizer):
        model = small_model(tokenizer)
        losses = pretrain_lm(model, tokenizer,
                             ["the quick brown fox jumps over the lazy dog"],
                             PretrainConfig(steps=80, batch_size=4,
                                            seq_len=12, lr=5e-3))
        assert np.mean(losses[-10:]) < np.mean(losses[:10])


class TestEncodeTexts:
    def test_shapes_and_determinism(self, tokenizer):
        model = small_model(tokenizer)
        texts = ["the quick fox", "lazy dog", "brown fox jumps"]
        first = encode_texts(model, tokenizer, texts)
        second = encode_texts(model, tokenizer, texts)
        assert first.shape == (3, 16)
        np.testing.assert_allclose(first, second)

    def test_batching_invariance(self, tokenizer):
        model = small_model(tokenizer)
        texts = [f"the quick fox {i}" for i in range(5)]
        together = encode_texts(model, tokenizer, texts, batch_size=5)
        split = encode_texts(model, tokenizer, texts, batch_size=2)
        np.testing.assert_allclose(together, split, atol=1e-4)

    def test_empty_rejected(self, tokenizer):
        with pytest.raises(ValueError):
            encode_texts(small_model(tokenizer), tokenizer, [])


class TestInstructionTuner:
    def test_tuning_reduces_heldout_loss(self, tokenizer):
        model = small_model(tokenizer)
        examples = [
            InstructionExample("the quick brown", "fox", "t"),
            InstructionExample("the lazy", "dog", "t"),
            InstructionExample("quick brown", "fox", "t"),
            InstructionExample("over the lazy", "dog", "t"),
        ]
        tuner = InstructionTuner(model, tokenizer,
                                 TuningConfig(epochs=8, batch_size=2,
                                              lr=5e-3, max_len=32))
        before = tuner.evaluate_loss(examples)
        tuner.tune(lambda epoch: examples)
        after = tuner.evaluate_loss(examples)
        assert after < before

    def test_sampler_called_per_epoch(self, tokenizer):
        model = small_model(tokenizer)
        calls = []

        def sampler(epoch):
            calls.append(epoch)
            return [InstructionExample("quick", "dog", "t")]

        tuner = InstructionTuner(model, tokenizer,
                                 TuningConfig(epochs=3, batch_size=2,
                                              max_len=32))
        tuner.tune(sampler)
        assert calls == [0, 1, 2]

    def test_empty_sampler_rejected(self, tokenizer):
        model = small_model(tokenizer)
        tuner = InstructionTuner(model, tokenizer, TuningConfig(max_len=32))
        with pytest.raises(ValueError):
            tuner.tune(lambda epoch: [])

    def test_model_left_in_eval_mode(self, tokenizer):
        model = small_model(tokenizer)
        tuner = InstructionTuner(model, tokenizer,
                                 TuningConfig(epochs=1, batch_size=2,
                                              max_len=32))
        tuner.tune(lambda epoch: [InstructionExample("quick", "dog", "t")])
        assert not model.training
