"""Tests for significance testing, popularity buckets, codebook
diagnostics, trivial baselines and sampling decoders."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import PopularityRecommender, RandomRecommender
from repro.eval import (
    evaluate_by_popularity,
    item_popularity,
    paired_bootstrap,
)
from repro.llm import LMConfig, TinyLlama, sample_generate
from repro.quantization import codebook_usage


class TestPairedBootstrap:
    def test_clear_winner_is_significant(self, rng):
        targets = list(range(50))
        ranked_a = [[t] + [99] * 9 for t in targets]       # always rank 1
        ranked_b = [[99] * 10 for _ in targets]            # never hits
        result = paired_bootstrap(ranked_a, ranked_b, targets, rng=rng)
        assert result.win_rate == 1.0
        assert result.significant
        assert result.mean_a == 1.0
        assert result.mean_b == 0.0

    def test_identical_models_not_significant(self, rng):
        targets = list(range(30))
        ranked = [[t, 5, 6] for t in targets]
        result = paired_bootstrap(ranked, ranked, targets, rng=rng)
        assert not result.significant
        assert result.win_rate == 0.0  # ties never count as wins

    def test_ndcg_metric(self, rng):
        targets = [0, 1]
        ranked_a = [[0, 9], [9, 1]]
        result = paired_bootstrap(ranked_a, ranked_a, targets,
                                  metric="ndcg", k=2, rng=rng)
        expected = (1.0 + 1 / np.log2(3)) / 2
        assert result.mean_a == pytest.approx(expected)

    def test_unknown_metric_rejected(self, rng):
        with pytest.raises(ValueError):
            paired_bootstrap([[0]], [[0]], [0], metric="auc", rng=rng)

    def test_misaligned_inputs_rejected(self, rng):
        with pytest.raises(ValueError):
            paired_bootstrap([[0]], [[0], [1]], [0], rng=rng)


class TestPopularityBuckets:
    def test_item_popularity_counts(self):
        pop = item_popularity([[0, 1, 1], [1]], num_items=3)
        np.testing.assert_array_equal(pop, [1, 3, 0])

    def test_bucket_report_structure(self):
        popularity = np.array([100, 50, 1, 0])
        targets = [0, 1, 2, 3]
        ranked = [[0], [9], [2], [9]]
        report = evaluate_by_popularity(ranked, targets, popularity,
                                        num_buckets=2, k=1)
        assert report.bucket_labels == ["tail", "head"]
        assert sum(report.bucket_sizes) == 4
        rows = report.rows()
        assert len(rows) == 3

    def test_tail_vs_head_hr(self):
        popularity = np.array([0, 0, 100, 100])
        targets = [0, 1, 2, 3]
        ranked = [[9], [9], [2], [3]]  # only head targets hit
        report = evaluate_by_popularity(ranked, targets, popularity,
                                        num_buckets=2, k=1)
        assert report.hr_at_k[0] == 0.0
        assert report.hr_at_k[-1] == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            evaluate_by_popularity([], [], np.array([1]))
        with pytest.raises(ValueError):
            evaluate_by_popularity([[0]], [0], np.array([1]), num_buckets=1)


class TestCodebookUsage:
    def test_uniform_usage(self):
        codes = np.array([[0], [1], [2], [3]])
        usage = codebook_usage(codes, [4])[0]
        assert usage.used_codes == 4
        assert usage.dead_codes == 0
        assert usage.normalized_entropy == pytest.approx(1.0)
        assert usage.perplexity == pytest.approx(4.0)

    def test_collapsed_usage(self):
        codes = np.zeros((10, 1), dtype=np.int64)
        usage = codebook_usage(codes, [8])[0]
        assert usage.used_codes == 1
        assert usage.dead_codes == 7
        assert usage.entropy == 0.0

    def test_multi_level(self):
        codes = np.array([[0, 1], [1, 1]])
        usages = codebook_usage(codes, [2, 4])
        assert [u.level for u in usages] == [0, 1]
        assert usages[1].used_codes == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            codebook_usage(np.zeros(3), [3])
        with pytest.raises(ValueError):
            codebook_usage(np.zeros((3, 2)), [3])

    @given(st.integers(2, 30), st.integers(2, 8), st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_entropy_bounds(self, n, k, seed):
        rng = np.random.default_rng(seed)
        codes = rng.integers(0, k, size=(n, 1))
        usage = codebook_usage(codes, [k])[0]
        assert 0.0 <= usage.normalized_entropy <= 1.0 + 1e-9
        assert 1.0 <= usage.perplexity <= k + 1e-9


class TestTrivialBaselines:
    def test_popularity_orders_by_count(self, tiny_dataset):
        model = PopularityRecommender(tiny_dataset.num_items).fit(tiny_dataset)
        ranked = model.recommend([], top_k=5)
        pop = item_popularity(tiny_dataset.split.train_sequences,
                              tiny_dataset.num_items)
        assert pop[ranked[0]] == pop.max()

    def test_popularity_score_all_shape(self, tiny_dataset):
        model = PopularityRecommender(tiny_dataset.num_items).fit(tiny_dataset)
        assert model.score_all([[0], [1]]).shape == (2, tiny_dataset.num_items)

    def test_random_recommender_valid_items(self, tiny_dataset):
        model = RandomRecommender(tiny_dataset.num_items).fit(tiny_dataset)
        ranked = model.recommend([0], top_k=10)
        assert len(set(ranked)) == 10

    def test_trained_models_beat_random(self, tiny_dataset):
        """Sanity floor: a trained SASRec must clearly beat random."""
        from repro.baselines import BaselineTrainer, BaselineTrainerConfig, \
            SASRec
        from repro.eval import evaluate_score_model

        random_model = RandomRecommender(tiny_dataset.num_items)
        sasrec = SASRec(tiny_dataset.num_items, dim=16)
        BaselineTrainer(BaselineTrainerConfig(epochs=8)).fit(sasrec,
                                                             tiny_dataset)
        histories = tiny_dataset.split.test_histories
        targets = tiny_dataset.split.test_targets
        trained = evaluate_score_model(sasrec, histories, targets)
        baseline = evaluate_score_model(random_model, histories, targets)
        assert trained["HR@10"] > baseline["HR@10"]


class TestSampling:
    def make_model(self):
        return TinyLlama(LMConfig(vocab_size=30, dim=16, num_layers=1,
                                  num_heads=2, ffn_hidden=24, seed=2))

    def test_sampled_tokens_in_vocab(self, rng):
        model = self.make_model()
        out = sample_generate(model, [1, 2], 8, eos_id=-1, rng=rng)
        assert all(0 <= t < 30 for t in out)
        assert len(out) == 8

    def test_banned_ids_respected(self, rng):
        model = self.make_model()
        banned = set(range(15))
        out = sample_generate(model, [1], 8, eos_id=-1, rng=rng,
                              banned_ids=banned)
        assert banned.isdisjoint(out)

    def test_low_temperature_matches_greedy(self, rng):
        from repro.llm import greedy_generate

        model = self.make_model()
        greedy = greedy_generate(model, [1, 2], 6, eos_id=-1)
        sampled = sample_generate(model, [1, 2], 6, eos_id=-1, rng=rng,
                                  temperature=1e-4)
        assert sampled == greedy

    def test_top_k_one_is_deterministic(self, rng):
        model = self.make_model()
        a = sample_generate(model, [1], 6, eos_id=-1,
                            rng=np.random.default_rng(0), top_k=1)
        b = sample_generate(model, [1], 6, eos_id=-1,
                            rng=np.random.default_rng(99), top_k=1)
        assert a == b

    def test_top_p_restricts_support(self):
        model = self.make_model()
        outcomes = set()
        for seed in range(20):
            out = sample_generate(model, [1], 1, eos_id=-1,
                                  rng=np.random.default_rng(seed),
                                  top_p=0.05)
            outcomes.add(out[0])
        # A tight nucleus admits very few distinct first tokens.
        assert len(outcomes) <= 3

    def test_temperature_validated(self, rng):
        with pytest.raises(ValueError):
            sample_generate(self.make_model(), [1], 3, eos_id=-1, rng=rng,
                            temperature=0.0)
