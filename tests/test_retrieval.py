"""Hybrid retrieval tier: clustered-KNN parity, trie narrowing, fallbacks.

Acceptance contracts pinned here:

* clustered KNN is an *accelerator*, not an approximation of the oracle
  it is configured to match: with one cluster — or with every cluster
  probed — it ranks identically to brute-force dot-product KNN, and the
  same build is deterministic under a fixed seed;
* a narrowed-trie decode ranks the retrieved candidate set *identically*
  to a full constrained decode restricted to those candidates post hoc,
  for all three engines (LC-Rec, P5-CID, TIGER), batch sizes 1/4/16,
  prefix cache on and off, and sparse or dense output head — narrowing
  shrinks the per-step candidate unions, never the math;
* the retrieval recommender honours the serving result contract
  (``min(top_k, num_items)`` distinct ids, deterministic popularity
  cold start) that lets it serve as the degradation fast lane.
"""

import numpy as np
import pytest

from repro.baselines import P5CID, P5CIDConfig, TIGER, TIGERConfig
from repro.core.indexer import build_random_index_set
from repro.llm import beam_search_items_batched, decode_join, decode_prefill, ranked_item_ids
from repro.llm.generation import _narrow_positions
from repro.quantization import IndexTrie
from repro.retrieval import (
    ClusteredKNNConfig,
    ClusteredKNNIndex,
    HybridRecommender,
    RetrievalRecommender,
    brute_force_topk,
    rank_by_score,
)
from repro.serving import LCRecEngine, P5CIDEngine, TIGEREngine


# ----------------------------------------------------------------------
# Fixtures: shared vectors and one fitted model per generative backend
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def vectors():
    rng = np.random.default_rng(42)
    return rng.standard_normal((60, 12)).astype(np.float32)


@pytest.fixture(scope="module")
def tiger(tiny_dataset):
    index_set = build_random_index_set(tiny_dataset.num_items, 3, 8, np.random.default_rng(0))
    model = TIGER(index_set, TIGERConfig(epochs=3, dim=16, beam_size=10))
    model.fit(tiny_dataset)
    return model


@pytest.fixture(scope="module")
def p5cid(tiny_dataset):
    model = P5CID(
        tiny_dataset,
        P5CIDConfig(epochs=3, dim=16, cluster_levels=2, branch=4, beam_size=10),
    )
    model.fit(tiny_dataset)
    return model


def make_engine(name, tiny_lcrec, tiger, p5cid, cache=False, sparse=True):
    if name == "lcrec":
        return LCRecEngine(tiny_lcrec, prefix_cache=cache, sparse_head=sparse)
    if name == "p5cid":
        return P5CIDEngine(p5cid, prefix_cache=cache, sparse_head=sparse)
    assert not cache, "TIGER has no prefix cache"
    return TIGEREngine(tiger, sparse_head=sparse)


# ----------------------------------------------------------------------
# Clustered KNN: exact-parity oracle suite
# ----------------------------------------------------------------------
class TestRankByScore:
    def test_descending_with_id_tiebreak(self):
        ids = np.array([7, 3, 9, 1])
        scores = np.array([0.5, 1.0, 0.5, -1.0])
        assert rank_by_score(ids, scores, 4).tolist() == [3, 7, 9, 1]

    def test_top_k_clamps_to_available(self):
        ids = np.array([2, 0])
        scores = np.array([1.0, 2.0])
        assert rank_by_score(ids, scores, 10).tolist() == [0, 2]


class TestClusteredKNNParity:
    def test_single_cluster_matches_brute_force(self, vectors):
        """n_clusters=1 degenerates to exact KNN: identical rankings."""
        index = ClusteredKNNIndex(vectors, ClusteredKNNConfig(n_clusters=1, n_probe=1))
        queries = np.random.default_rng(7).standard_normal((20, vectors.shape[1]))
        for query in queries.astype(np.float32):
            for top_k in (1, 5, len(vectors)):
                exact = brute_force_topk(index.vectors, query, top_k)
                assert index.search(query, top_k).tolist() == exact.tolist()

    @pytest.mark.parametrize("n_clusters", [2, 5, 16])
    def test_full_probe_matches_brute_force(self, vectors, n_clusters):
        """Probing every cluster covers the whole catalog: exact again."""
        index = ClusteredKNNIndex(vectors, ClusteredKNNConfig(n_clusters=n_clusters))
        queries = np.random.default_rng(11).standard_normal((10, vectors.shape[1]))
        for query in queries.astype(np.float32):
            exact = brute_force_topk(index.vectors, query, 10)
            got = index.search(query, 10, n_probe=index.num_clusters)
            assert got.tolist() == exact.tolist()

    def test_seeded_build_is_deterministic(self, vectors):
        config = ClusteredKNNConfig(n_clusters=6, n_probe=2, seed=3)
        a, b = ClusteredKNNIndex(vectors, config), ClusteredKNNIndex(vectors, config)
        assert len(a.members) == len(b.members)
        assert all(np.array_equal(m_a, m_b) for m_a, m_b in zip(a.members, b.members))
        query = vectors[5]
        assert a.search(query, 8).tolist() == b.search(query, 8).tolist()
        assert a.search(query, 8).tolist() == a.search(query, 8).tolist()

    def test_probe_widening_guarantees_top_k(self, vectors):
        """Asking for more neighbours than the probed clusters hold widens
        the probe deterministically instead of returning short."""
        index = ClusteredKNNIndex(vectors, ClusteredKNNConfig(n_clusters=16, n_probe=1))
        ranked = index.search(vectors[0], len(vectors))
        assert len(ranked) == len(vectors)
        assert sorted(ranked.tolist()) == list(range(len(vectors)))

    def test_search_many_matches_search(self, vectors):
        index = ClusteredKNNIndex(vectors, ClusteredKNNConfig(n_clusters=4, n_probe=2))
        queries = vectors[:5]
        many = index.search_many(queries, 6)
        assert [r.tolist() for r in many] == [index.search(q, 6).tolist() for q in queries]

    def test_validation(self, vectors):
        with pytest.raises(ValueError, match="n_clusters"):
            ClusteredKNNConfig(n_clusters=0)
        with pytest.raises(ValueError, match="n_probe"):
            ClusteredKNNConfig(n_probe=0)
        index = ClusteredKNNIndex(vectors, ClusteredKNNConfig(n_clusters=4))
        with pytest.raises(ValueError, match="query"):
            index.search(np.zeros((2, vectors.shape[1])), 5)
        with pytest.raises(ValueError, match="top_k"):
            index.search(vectors[0], 0)


class TestRetrievalRecommender:
    def make(self, vectors, popularity=None):
        index = ClusteredKNNIndex(vectors, ClusteredKNNConfig(n_clusters=5, n_probe=2))
        return RetrievalRecommender(index, popularity=popularity)

    def test_result_contract(self, vectors):
        rec = self.make(vectors)
        for top_k in (1, 10, len(vectors), len(vectors) + 9):
            ranked = rec.recommend([3, 8, 20], top_k)
            assert len(ranked) == min(top_k, len(vectors))
            assert len(set(ranked)) == len(ranked)

    def test_cold_start_is_popularity_order(self, vectors):
        counts = np.zeros(len(vectors), dtype=np.int64)
        counts[[9, 4, 30]] = [5, 9, 2]
        rec = self.make(vectors, popularity=counts)
        assert rec.recommend([], 5) == [4, 9, 30, 0, 1]
        # Fully-unknown histories are cold starts too.
        assert rec.recommend([len(vectors) + 5, -1], 5) == [4, 9, 30, 0, 1]

    def test_out_of_catalog_items_ignored_in_profile(self, vectors):
        rec = self.make(vectors)
        assert rec.recommend([3, 10**6], 5) == rec.recommend([3], 5)

    def test_popularity_shape_validated(self, vectors):
        with pytest.raises(ValueError, match="popularity"):
            self.make(vectors, popularity=np.zeros(3, dtype=np.int64))

    def test_from_lcrec(self, tiny_lcrec):
        rec = RetrievalRecommender.from_lcrec(tiny_lcrec, ClusteredKNNConfig(n_clusters=4))
        assert rec.num_items == tiny_lcrec.dataset.num_items
        ranked = rec.recommend([0, 1, 2], 10)
        assert len(ranked) == min(10, rec.num_items)
        assert len(set(ranked)) == len(ranked)


# ----------------------------------------------------------------------
# Trie narrowing: the candidate-selection constraint
# ----------------------------------------------------------------------
class TestSubtrie:
    def test_keeps_only_candidate_sequences(self):
        trie = IndexTrie({0: (10, 14), 1: (10, 15), 2: (11, 14), 3: (11, 16)})
        narrow = trie.subtrie([1, 3])
        assert narrow.num_items == 2
        assert narrow.all_sequences() == {1: (10, 15), 3: (11, 16)}
        assert narrow.allowed_tokens(()).tolist() == [10, 11]
        assert narrow.allowed_tokens((10,)).tolist() == [15]
        # Independence: the parent still knows everything.
        assert trie.allowed_tokens((10,)).tolist() == [14, 15]

    def test_unknown_item_raises(self):
        trie = IndexTrie({0: (10, 14)})
        with pytest.raises(KeyError, match="99"):
            trie.subtrie([99])

    def test_empty_candidate_set_raises(self):
        trie = IndexTrie({0: (10, 14)})
        with pytest.raises(ValueError, match="no items"):
            trie.subtrie([])


class TestNarrowPositions:
    def test_maps_allowed_into_union(self):
        union = np.array([2, 5, 9])
        assert _narrow_positions(union, np.array([5, 9])).tolist() == [1, 2]
        assert _narrow_positions(union, np.array([], dtype=np.int64)).tolist() == []

    def test_foreign_token_rejected(self):
        union = np.array([2, 5, 9])
        with pytest.raises(ValueError, match="narrow"):
            _narrow_positions(union, np.array([6]))
        with pytest.raises(ValueError, match="narrow"):
            _narrow_positions(union, np.array([11]))


def constrained_logprob(lm, prompt, sequence, trie):
    """Exact full-trie constrained score of one item sequence.

    Per-level logits renormalised over the trie's allowed sets — the
    semantics every constrained decode in the repo implements — computed
    directly, with no beam search in the loop.
    """
    full = np.asarray(list(prompt) + list(sequence), dtype=np.int64)[None, :]
    logits = lm.forward(full).data[0]
    total = 0.0
    for level, token in enumerate(sequence):
        allowed = trie.allowed_tokens(tuple(sequence[:level]))
        raw = logits[len(prompt) - 1 + level, allowed]
        shift = raw.max()
        logp = raw - (shift + np.log(np.exp(raw - shift).sum()))
        total += float(logp[list(allowed).index(token)])
    return total


def restricted_oracle(engine, histories, candidates, top_k):
    """The full-decode ranking of the candidate set, computed without
    narrowing.

    For engines whose full decode can enumerate the whole catalog (beam
    widened to ``num_items``) this is literally the exhaustive decode
    filtered to the candidates post hoc.  Decoder engines clamp beams to
    the LM vocabulary, which for small-vocab models (P5-CID) makes the
    engine-level "full" ranking part genuine, part deterministic
    backfill — there the candidates are ranked by their exact full-trie
    constrained scores instead, which is what an unclamped exhaustive
    decode would produce.
    """
    candidate_set = set(candidates)
    if isinstance(engine, TIGEREngine):
        full = engine.recommend_many(histories, top_k=engine.num_items)
        return [
            [item for item in ranking if item in candidate_set][:top_k] for ranking in full
        ]
    if engine.effective_beams(engine.num_items) == engine.num_items:
        prompts = [engine.encode_history(list(h)) for h in histories]
        hypotheses = beam_search_items_batched(
            engine.lm,
            prompts,
            engine.trie,
            beam_size=engine.num_items,
            pad_id=engine.pad_id,
        )
        full = [ranked_item_ids(hyps, engine.num_items) for hyps in hypotheses]
        return [
            [item for item in ranking if item in candidate_set][:top_k] for ranking in full
        ]
    sequences = engine.trie.all_sequences()
    rankings = []
    for history in histories:
        prompt = engine.encode_history(list(history))
        scored = sorted(
            (-constrained_logprob(engine.lm, prompt, sequences[item], engine.trie), item)
            for item in candidates
        )
        rankings.append([item for _, item in scored][:top_k])
    return rankings


class TestNarrowedDecodeParity:
    """The tentpole invariant: narrowing is selection, never re-scoring."""

    @pytest.mark.parametrize("name", ["lcrec", "p5cid", "tiger"])
    @pytest.mark.parametrize("batch", [1, 4, 16])
    @pytest.mark.parametrize("cache", [False, True])
    def test_matches_full_decode_restricted(
        self, name, batch, cache, tiny_lcrec, tiny_dataset, tiger, p5cid
    ):
        if name == "tiger" and cache:
            pytest.skip("TIGER has no prefix cache")
        engine = make_engine(name, tiny_lcrec, tiger, p5cid, cache=cache)
        pool = tiny_dataset.split.test_histories
        histories = [list(pool[i % len(pool)]) for i in range(batch)]
        candidates = sorted(range(0, tiny_dataset.num_items, 3))
        expected = restricted_oracle(engine, histories, candidates, len(candidates))
        narrowed = engine.narrowed(candidates)
        got = narrowed.recommend_many(histories, top_k=len(candidates))
        assert got == expected
        # Narrowing never leaks into the parent engine.
        assert engine.narrow is None

    @pytest.mark.parametrize("name", ["lcrec", "tiger"])
    def test_sparse_and_dense_heads_agree_under_narrowing(
        self, name, tiny_lcrec, tiny_dataset, tiger, p5cid
    ):
        histories = [list(h) for h in tiny_dataset.split.test_histories[:4]]
        candidates = list(range(0, tiny_dataset.num_items, 4))
        rankings = [
            make_engine(name, tiny_lcrec, tiger, p5cid, sparse=sparse)
            .narrowed(candidates)
            .recommend_many(histories, top_k=len(candidates))
            for sparse in (True, False)
        ]
        assert rankings[0] == rankings[1]

    def test_singleton_candidate_set(self, tiny_lcrec, tiny_dataset):
        engine = LCRecEngine(tiny_lcrec, prefix_cache=False)
        histories = [list(tiny_dataset.split.test_histories[0])]
        assert engine.narrowed([5]).recommend_many(histories, top_k=1) == [[5]]

    def test_depth_mismatch_rejected(self, tiny_lcrec, tiny_dataset):
        engine = LCRecEngine(tiny_lcrec, prefix_cache=False)
        shallow = IndexTrie({0: (engine.trie.allowed_tokens(())[0],)})
        prompt = engine.encode_history(list(tiny_dataset.split.test_histories[0]))
        with pytest.raises(ValueError, match="depth"):
            decode_prefill(engine.lm, [prompt], engine.trie, beam_size=4, narrow=shallow)

    def test_join_requires_matching_narrow(self, tiny_lcrec, tiny_dataset):
        engine = LCRecEngine(tiny_lcrec, prefix_cache=False)
        prompts = [
            engine.encode_history(list(h)) for h in tiny_dataset.split.test_histories[:2]
        ]
        narrow = engine.trie.subtrie([0, 1, 2])
        state = decode_prefill(engine.lm, prompts[:1], engine.trie, beam_size=4, narrow=narrow)
        incoming = decode_prefill(engine.lm, prompts[1:], engine.trie, beam_size=4)
        with pytest.raises(ValueError, match="narrow"):
            decode_join(state, incoming)

    def test_narrowed_continuous_serving_matches_oracle(self, tiny_lcrec, tiny_dataset):
        """A narrowed engine still serves through every serving mode."""
        from repro.serving import MicroBatcherConfig, RecommendationService

        candidates = list(range(0, tiny_dataset.num_items, 3))
        histories = [list(h) for h in tiny_dataset.split.test_histories[:5]]
        engine = LCRecEngine(tiny_lcrec, prefix_cache=False)
        expected = restricted_oracle(engine, histories, candidates, 5)
        with RecommendationService(
            engine.narrowed(candidates),
            batcher=MicroBatcherConfig(max_batch_size=2),
            mode="continuous",
        ) as service:
            pending = [service.submit(h, top_k=5) for h in histories]
            assert [p.result(timeout=60.0) for p in pending] == expected


# ----------------------------------------------------------------------
# The hybrid recommender: retrieval narrows, the decode re-ranks
# ----------------------------------------------------------------------
class TestHybridRecommender:
    @pytest.fixture()
    def retriever(self, tiny_lcrec):
        return RetrievalRecommender.from_lcrec(
            tiny_lcrec, ClusteredKNNConfig(n_clusters=4, n_probe=2)
        )

    def test_requires_narrowing_support(self, retriever):
        class NoNarrowing:
            supports_narrowing = False

        with pytest.raises(ValueError, match="narrowing"):
            HybridRecommender(NoNarrowing(), retriever)

    def test_ranking_is_narrowed_decode_of_candidates(self, tiny_lcrec, retriever, tiny_dataset):
        engine = LCRecEngine(tiny_lcrec, prefix_cache=False)
        hybrid = HybridRecommender(engine, retriever, num_candidates=12)
        history = list(tiny_dataset.split.test_histories[0])
        candidates = hybrid.candidates(history, 5)
        expected = restricted_oracle(engine, [history], candidates, 5)[0]
        assert hybrid.recommend(history, top_k=5) == expected

    def test_cold_start_routes_to_retrieval(self, tiny_lcrec, retriever):
        engine = LCRecEngine(tiny_lcrec, prefix_cache=False)
        hybrid = HybridRecommender(engine, retriever)
        assert hybrid.recommend([], top_k=5) == retriever.recommend([], 5)

    def test_batched_matches_per_row(self, tiny_lcrec, retriever, tiny_dataset):
        engine = LCRecEngine(tiny_lcrec, prefix_cache=False)
        hybrid = HybridRecommender(engine, retriever, num_candidates=8)
        pool = tiny_dataset.split.test_histories
        histories = [list(pool[i % len(pool)]) for i in range(6)] + [[]]
        batched = hybrid.recommend_many(histories, top_k=4)
        assert batched == [hybrid.recommend(h, top_k=4) for h in histories]

    def test_result_contract(self, tiny_lcrec, retriever, tiny_dataset):
        engine = LCRecEngine(tiny_lcrec, prefix_cache=False)
        hybrid = HybridRecommender(engine, retriever, num_candidates=6)
        history = list(tiny_dataset.split.test_histories[0])
        for top_k in (1, 10, retriever.num_items):
            ranked = hybrid.recommend(history, top_k=top_k)
            assert len(ranked) == min(top_k, retriever.num_items)
            assert len(set(ranked)) == len(ranked)

    def test_backfill_extends_from_candidates_then_popularity(self, tiny_lcrec, retriever):
        engine = LCRecEngine(tiny_lcrec, prefix_cache=False)
        hybrid = HybridRecommender(engine, retriever)
        ranked = hybrid.backfill([5], [5, 7, 9], top_k=6)
        assert ranked[:3] == [5, 7, 9]
        assert len(ranked) == 6
        assert len(set(ranked)) == 6
        popularity_tail = [
            int(item) for item in retriever.popularity_order if int(item) not in {5, 7, 9}
        ][:3]
        assert ranked[3:] == popularity_tail
