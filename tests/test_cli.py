"""Tests for the ``python -m repro`` command line."""

import pytest

from repro.__main__ import main


class TestCLI:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "LC-Rec" in out
        assert "instruments" in out

    def test_stats(self, capsys):
        assert main(["stats", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "tiny" in out
        assert "%" in out

    def test_stats_scale(self, capsys):
        assert main(["stats", "tiny", "--scale", "0.5"]) == 0

    def test_unknown_preset_rejected(self):
        with pytest.raises(SystemExit):
            main(["stats", "nope"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            main([])
