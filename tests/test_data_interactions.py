"""Tests for the behaviour simulator."""

import numpy as np
import pytest

from repro.data import (
    BehaviorConfig,
    BehaviorModel,
    CatalogConfig,
    generate_catalog,
    simulate_interactions,
)


def make_catalog(seed=0):
    return generate_catalog(CatalogConfig(num_items=60, num_categories=4,
                                          subcategories_per_category=2),
                            np.random.default_rng(seed))


class TestBehaviorModel:
    def test_user_preferences_are_distributions(self):
        catalog = make_catalog()
        model = BehaviorModel(catalog, BehaviorConfig(num_users=40),
                              np.random.default_rng(1))
        sums = model.user_preferences.sum(axis=1)
        np.testing.assert_allclose(sums, 1.0, atol=1e-9)

    def test_preferred_categories_sparse(self):
        catalog = make_catalog()
        config = BehaviorConfig(num_users=40, preferred_categories=2)
        model = BehaviorModel(catalog, config, np.random.default_rng(1))
        nonzero = (model.user_preferences > 0).sum(axis=1)
        assert (nonzero <= 2).all()

    def test_complement_map_is_derangement_like(self):
        catalog = make_catalog()
        model = BehaviorModel(catalog, BehaviorConfig(num_users=5),
                              np.random.default_rng(2))
        for source, target in model.complements.items():
            assert source != target

    def test_sequence_lengths_respect_bounds(self):
        catalog = make_catalog()
        config = BehaviorConfig(num_users=30, min_length=5, max_length=12)
        model = BehaviorModel(catalog, config, np.random.default_rng(3))
        rng = np.random.default_rng(4)
        for user in range(30):
            seq = model.simulate_user(user, rng)
            assert 5 <= len(seq) <= 12

    def test_no_immediate_repetition(self):
        catalog = make_catalog()
        model = BehaviorModel(catalog, BehaviorConfig(num_users=10),
                              np.random.default_rng(5))
        rng = np.random.default_rng(6)
        for user in range(10):
            seq = model.simulate_user(user, rng)
            assert all(a != b for a, b in zip(seq, seq[1:]))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            BehaviorConfig(num_users=0).validate()
        with pytest.raises(ValueError):
            BehaviorConfig(min_length=1).validate()
        with pytest.raises(ValueError):
            BehaviorConfig(stay_subcategory_prob=0.6, stay_category_prob=0.4,
                           complement_prob=0.2).validate()

    def test_subcategory_coherence(self):
        """High stay probability should produce category-coherent sessions."""
        catalog = make_catalog()
        config = BehaviorConfig(num_users=50, stay_subcategory_prob=0.8,
                                stay_category_prob=0.15, complement_prob=0.0)
        model = BehaviorModel(catalog, config, np.random.default_rng(7))
        rng = np.random.default_rng(8)
        same = total = 0
        for user in range(50):
            seq = model.simulate_user(user, rng)
            subs = [catalog[i].subcategory for i in seq]
            same += sum(1 for a, b in zip(subs, subs[1:]) if a == b)
            total += len(subs) - 1
        assert same / total > 0.5


class TestSimulateInteractions:
    def test_timestamps_sequential_per_user(self):
        catalog = make_catalog()
        log, _ = simulate_interactions(catalog, BehaviorConfig(num_users=20),
                                       np.random.default_rng(9))
        per_user: dict[int, list[int]] = {}
        for event in log:
            per_user.setdefault(event.user_id, []).append(event.timestamp)
        for stamps in per_user.values():
            assert stamps == sorted(stamps)
            assert stamps[0] == 0

    def test_every_user_present(self):
        catalog = make_catalog()
        log, _ = simulate_interactions(catalog, BehaviorConfig(num_users=25),
                                       np.random.default_rng(10))
        assert {event.user_id for event in log} == set(range(25))

    def test_item_ids_in_range(self):
        catalog = make_catalog()
        log, _ = simulate_interactions(catalog, BehaviorConfig(num_users=15),
                                       np.random.default_rng(11))
        assert all(0 <= event.item_id < len(catalog) for event in log)
