"""Tests for the multi-template evaluation protocol (paper Table III note)."""

import pytest

from repro.bench.config import BenchScale
from repro.bench.runners import (
    evaluate_recommender,
    evaluate_recommender_multi_template,
)

FAST = BenchScale("test", dataset_scale=1.0, epoch_scale=1.0,
                  max_eval_users=12)


class TestMultiTemplateEvaluation:
    def test_average_of_single_template_reports(self, tiny_lcrec,
                                                tiny_dataset):
        merged = evaluate_recommender_multi_template(
            tiny_lcrec, tiny_dataset, FAST, template_ids=(0, 1))
        first = evaluate_recommender(tiny_lcrec, tiny_dataset, FAST,
                                     template_id=0)
        second = evaluate_recommender(tiny_lcrec, tiny_dataset, FAST,
                                      template_id=1)
        for key in merged.values:
            expected = (first[key] + second[key]) / 2
            assert merged[key] == pytest.approx(expected)

    def test_single_template_is_identity(self, tiny_lcrec, tiny_dataset):
        merged = evaluate_recommender_multi_template(
            tiny_lcrec, tiny_dataset, FAST, template_ids=(0,))
        single = evaluate_recommender(tiny_lcrec, tiny_dataset, FAST,
                                      template_id=0)
        assert merged.values == single.values

    def test_empty_templates_rejected(self, tiny_lcrec, tiny_dataset):
        with pytest.raises(ValueError):
            evaluate_recommender_multi_template(tiny_lcrec, tiny_dataset,
                                                FAST, template_ids=())

    def test_all_seq_templates_usable(self, tiny_lcrec, tiny_dataset):
        from repro.core import templates as T

        for template_id in range(len(T.SEQ_TEMPLATES)):
            instruction = tiny_lcrec.seq_instruction(
                tiny_dataset.split.test_histories[0], template_id)
            assert "{" not in instruction
