"""Public-API consistency: every ``__all__`` name exists and is importable,
and every serving entry point speaks the one client surface
(``submit(...) -> RecommendationHandle`` / ``handle.result(timeout)``)."""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.tensor",
    "repro.text",
    "repro.data",
    "repro.llm",
    "repro.quantization",
    "repro.core",
    "repro.baselines",
    "repro.eval",
    "repro.analysis",
    "repro.bench",
    "repro.serving",
    "repro.utils",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_names_resolve(package_name):
    module = importlib.import_module(package_name)
    exported = getattr(module, "__all__", [])
    for name in exported:
        assert hasattr(module, name), f"{package_name}.__all__ lists {name}"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_package_has_docstring(package_name):
    module = importlib.import_module(package_name)
    assert module.__doc__, f"{package_name} lacks a module docstring"


def test_version_string():
    import repro

    parts = repro.__version__.split(".")
    assert len(parts) == 3
    assert all(part.isdigit() for part in parts)


def test_public_classes_documented():
    """Spot-check: core public classes carry docstrings."""
    from repro.core import LCRec, ChatSession
    from repro.quantization import RQVAE, ItemIndexSet
    from repro.llm import TinyLlama
    from repro.baselines import SASRec, TIGER

    for cls in (LCRec, ChatSession, RQVAE, ItemIndexSet, TinyLlama, SASRec,
                TIGER):
        assert cls.__doc__ and len(cls.__doc__) > 10


class TestUnifiedClientSurface:
    """One client API across all serving modes — the PR-6 contract.

    Single-process or cluster, sync or background, callers program
    against ``RecommendationClient``: the same ``submit*`` signatures,
    the same handle semantics, the same lifecycle verbs.
    """

    def clients(self):
        from repro.serving import RecommendationService, ServingCluster

        return [RecommendationService, ServingCluster]

    def test_every_client_subclasses_the_abc(self):
        from repro.serving import RecommendationClient

        for cls in self.clients():
            assert issubclass(cls, RecommendationClient)

    def test_submit_signatures_are_aligned(self):
        """Each submit verb exposes the same caller-facing parameters."""
        for method in ("submit", "submit_intention", "submit_instruction"):
            signatures = [
                inspect.signature(getattr(cls, method)) for cls in self.clients()
            ]
            names = [list(sig.parameters) for sig in signatures]
            assert names[0] == names[1], f"{method} diverges: {names}"
            for sig in signatures:
                assert sig.parameters["session_key"].kind is inspect.Parameter.KEYWORD_ONLY
                assert sig.parameters["deadline_ms"].kind is inspect.Parameter.KEYWORD_ONLY

    def test_lifecycle_verbs_exist_everywhere(self):
        for cls in self.clients():
            for verb in ("start", "stop", "flush", "is_running", "__enter__", "__exit__",
                         "recommend_many"):
                assert hasattr(cls, verb), f"{cls.__name__} lacks {verb}"

    def test_handle_protocol_is_runtime_checkable(self):
        from repro.serving import (
            Overloaded,
            RecommendationHandle,
            RejectedRecommendation,
        )

        handle = RejectedRecommendation(Overloaded("saturated"))
        assert isinstance(handle, RecommendationHandle)
        assert handle.done
        with pytest.raises(Overloaded) as err:
            handle.result(timeout=0.0)
        assert err.value.reason == "queue_full"

    def test_overloaded_reasons_are_closed_set(self):
        from repro.serving import Overloaded

        assert Overloaded("x").reason == "queue_full"
        assert Overloaded("x", reason="deadline").reason == "deadline"
        assert issubclass(Overloaded, RuntimeError)

    def test_client_abc_rejects_partial_implementations(self):
        from repro.serving import RecommendationClient

        class Partial(RecommendationClient):
            pass

        with pytest.raises(TypeError):
            Partial()
