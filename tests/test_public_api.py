"""Public-API consistency: every ``__all__`` name exists and is importable."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.tensor",
    "repro.text",
    "repro.data",
    "repro.llm",
    "repro.quantization",
    "repro.core",
    "repro.baselines",
    "repro.eval",
    "repro.analysis",
    "repro.bench",
    "repro.utils",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_names_resolve(package_name):
    module = importlib.import_module(package_name)
    exported = getattr(module, "__all__", [])
    for name in exported:
        assert hasattr(module, name), f"{package_name}.__all__ lists {name}"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_package_has_docstring(package_name):
    module = importlib.import_module(package_name)
    assert module.__doc__, f"{package_name} lacks a module docstring"


def test_version_string():
    import repro

    parts = repro.__version__.split(".")
    assert len(parts) == 3
    assert all(part.isdigit() for part in parts)


def test_public_classes_documented():
    """Spot-check: core public classes carry docstrings."""
    from repro.core import LCRec, ChatSession
    from repro.quantization import RQVAE, ItemIndexSet
    from repro.llm import TinyLlama
    from repro.baselines import SASRec, TIGER

    for cls in (LCRec, ChatSession, RQVAE, ItemIndexSet, TinyLlama, SASRec,
                TIGER):
        assert cls.__doc__ and len(cls.__doc__) > 10
