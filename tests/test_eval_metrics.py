"""Tests for HR/NDCG metrics and ranking evaluators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval import (
    MetricReport,
    evaluate_generative_model,
    evaluate_score_model,
    hit_ratio_at_k,
    ndcg_at_k,
    rank_of_target,
    rankings_from_scores,
)


class TestMetrics:
    def test_hr_perfect(self):
        assert hit_ratio_at_k([[1, 2], [3, 4]], [1, 3], k=1) == 1.0

    def test_hr_partial(self):
        assert hit_ratio_at_k([[1, 2], [3, 4]], [2, 9], k=2) == 0.5

    def test_ndcg_rank_discounting(self):
        # Target at rank 0 -> 1.0; at rank 1 -> 1/log2(3).
        assert ndcg_at_k([[5, 6]], [5], k=2) == pytest.approx(1.0)
        assert ndcg_at_k([[6, 5]], [5], k=2) == pytest.approx(1 / np.log2(3))

    def test_ndcg_zero_when_absent(self):
        assert ndcg_at_k([[1, 2, 3]], [9], k=3) == 0.0

    def test_hr1_equals_ndcg1_semantics(self):
        ranked = [[1, 2], [3, 1], [2, 1]]
        targets = [1, 1, 1]
        assert hit_ratio_at_k(ranked, targets, 1) == pytest.approx(
            ndcg_at_k(ranked, targets, 1))

    def test_rank_of_target(self):
        assert rank_of_target([7, 8, 9], 8) == 1
        assert rank_of_target([7, 8, 9], 5) is None

    def test_validation(self):
        with pytest.raises(ValueError):
            hit_ratio_at_k([[1]], [1], k=0)
        with pytest.raises(ValueError):
            hit_ratio_at_k([[1]], [1, 2], k=1)
        with pytest.raises(ValueError):
            ndcg_at_k([], [], k=1)

    @given(st.lists(st.integers(0, 20), min_size=1, max_size=10, unique=True),
           st.integers(0, 20), st.integers(1, 10))
    @settings(max_examples=60, deadline=None)
    def test_hr_bounds_and_monotonicity(self, ranked, target, k):
        hr_k = hit_ratio_at_k([ranked], [target], k)
        hr_k10 = hit_ratio_at_k([ranked], [target], k + 10)
        assert 0.0 <= hr_k <= hr_k10 <= 1.0
        assert ndcg_at_k([ranked], [target], k) <= hr_k


class TestMetricReport:
    def test_from_rankings_keys(self):
        report = MetricReport.from_rankings([[1, 2, 3] + list(range(4, 20))],
                                            [2])
        assert set(report.values) == {"HR@1", "HR@5", "HR@10", "NDCG@5",
                                      "NDCG@10"}

    def test_row_and_header_align(self):
        report = MetricReport.from_rankings([[1]], [1], ks=(1,))
        header = MetricReport.header()
        row = report.row("model-x")
        assert header.split()[0] == "model"
        assert row.startswith("model-x")

    def test_getitem(self):
        report = MetricReport({"HR@5": 0.25})
        assert report["HR@5"] == 0.25


class FakeScoreModel:
    def __init__(self, scores):
        self.scores = scores
        self.calls = 0

    def score_all(self, histories):
        self.calls += 1
        return self.scores[:len(histories)]


class TestEvaluators:
    def test_rankings_from_scores(self):
        scores = np.array([[0.1, 0.9, 0.5]])
        assert rankings_from_scores(scores, 3) == [[1, 2, 0]]

    def test_rankings_top_k_truncates(self):
        scores = np.array([[0.1, 0.9, 0.5, 0.7]])
        assert rankings_from_scores(scores, 2) == [[1, 3]]

    def test_rankings_validates_shape(self):
        with pytest.raises(ValueError):
            rankings_from_scores(np.zeros(3), 2)

    def test_evaluate_score_model(self):
        scores = np.array([[0.9, 0.1, 0.0], [0.0, 0.1, 0.9]])
        model = FakeScoreModel(scores)
        report = evaluate_score_model(model, [[0], [1]], [0, 2], ks=(1,))
        assert report["HR@1"] == 1.0

    def test_evaluate_score_model_batching(self):
        scores = np.array([[1.0, 0.0]] * 5)
        model = FakeScoreModel(scores)
        evaluate_score_model(model, [[0]] * 5, [0] * 5, ks=(1,), batch_size=2)
        assert model.calls == 3

    def test_evaluate_generative_model(self):
        def recommend(history):
            return [history[0], 99]

        report = evaluate_generative_model(recommend, [[4], [7]], [4, 99],
                                           ks=(1,))
        assert report["HR@1"] == 0.5
