"""Tests for templates and the alignment-task builders."""

import numpy as np
import pytest

from repro.core import AlignmentTaskBuilder, AlignmentTaskConfig
from repro.core import templates as T
from repro.core.indexer import build_random_index_set
from repro.data import IntentionGenerator
from repro.text import INDEX_TOKEN_PATTERN


@pytest.fixture()
def builder(tiny_dataset, rng):
    index_set = build_random_index_set(tiny_dataset.num_items, 4, 8, rng)
    generator = IntentionGenerator(tiny_dataset.catalog,
                                   np.random.default_rng(5))
    return AlignmentTaskBuilder(
        dataset=tiny_dataset,
        index_set=index_set,
        intention_generator=generator,
        config=AlignmentTaskConfig(seq_per_user=2, max_history=6),
    )


class TestTemplates:
    def test_multiple_templates_per_task(self):
        assert len(T.SEQ_TEMPLATES) >= 2
        assert len(T.MUT_TEXT_TO_INDEX_TEMPLATES) >= 2
        assert len(T.MUT_INDEX_TO_TEXT_TEMPLATES) >= 2
        assert len(T.ITE_SEARCH_TEMPLATES) >= 2
        assert len(T.PER_TEMPLATES) >= 2

    def test_placeholders_present(self):
        assert all("{history}" in t for t in T.SEQ_TEMPLATES)
        assert all("{intention}" in t for t in T.ITE_SEARCH_TEMPLATES)
        assert all("{index}" in t for t in T.MUT_INDEX_TO_TEXT_TEMPLATES)

    def test_template_texts_for_vocab_have_no_placeholders(self):
        for text in T.all_template_texts():
            assert "{" not in text and "}" not in text


class TestTaskBuilder:
    def test_all_families_present(self, builder):
        counts = builder.task_counts(epoch=0)
        assert set(counts) == {"seq", "mut", "asy", "ite", "per"}
        assert all(count > 0 for count in counts.values())

    def test_task_subset_respected(self, tiny_dataset, rng):
        index_set = build_random_index_set(tiny_dataset.num_items, 4, 8, rng)
        builder = AlignmentTaskBuilder(
            dataset=tiny_dataset, index_set=index_set,
            config=AlignmentTaskConfig(tasks=("seq",)),
        )
        counts = builder.task_counts()
        assert set(counts) == {"seq"}

    def test_ite_requires_intention_generator(self, tiny_dataset, rng):
        index_set = build_random_index_set(tiny_dataset.num_items, 4, 8, rng)
        with pytest.raises(ValueError):
            AlignmentTaskBuilder(
                dataset=tiny_dataset, index_set=index_set,
                config=AlignmentTaskConfig(tasks=("seq", "ite")),
            )

    def test_unknown_task_rejected(self):
        with pytest.raises(ValueError):
            AlignmentTaskConfig(tasks=("seq", "bogus")).validate()

    def test_seq_responses_are_index_strings(self, builder):
        examples = [e for e in builder.epoch_examples(0) if e.task == "seq"]
        for example in examples[:20]:
            tokens = INDEX_TOKEN_PATTERN.findall(example.response)
            assert len(tokens) == 4

    def test_seq_targets_never_from_test_set(self, builder, tiny_dataset):
        """Alignment data must come from the train prefix only."""
        for _, history, target in builder._seq_pairs:
            pass  # structure check below uses the last pair
        for user, seq in enumerate(tiny_dataset.split.train_sequences):
            allowed = set(seq)
            for pair_user, history, target in builder._seq_pairs:
                if pair_user == user:
                    assert target in allowed
                    assert set(history) <= allowed

    def test_histories_bounded(self, builder):
        config = builder.config
        for _, history, _ in builder._seq_pairs:
            assert config.min_history <= len(history) <= config.max_history

    def test_mut_covers_every_item_both_directions(self, builder,
                                                   tiny_dataset):
        examples = [e for e in builder.epoch_examples(0) if e.task == "mut"]
        assert len(examples) == 2 * tiny_dataset.num_items

    def test_template_sampling_varies_across_epochs(self, builder):
        first = [e.instruction for e in builder.epoch_examples(0)
                 if e.task == "seq"]
        second = [e.instruction for e in builder.epoch_examples(1)
                  if e.task == "seq"]
        assert first != second

    def test_epoch_examples_deterministic_per_epoch(self, builder):
        a = builder.epoch_examples(3)
        b = builder.epoch_examples(3)
        assert [(x.instruction, x.response) for x in a] == \
               [(x.instruction, x.response) for x in b]

    def test_per_examples_describe_users(self, builder, tiny_dataset):
        examples = [e for e in builder.epoch_examples(0) if e.task == "per"]
        assert len(examples) == tiny_dataset.num_users

    def test_asy_title_variant_uses_titles(self, builder, tiny_dataset):
        examples = [e for e in builder.epoch_examples(0) if e.task == "asy"]
        title_variant = [e for e in examples
                         if INDEX_TOKEN_PATTERN.findall(e.response)]
        # Title-history variant responds with indices; its instruction
        # contains item titles rather than index tokens.
        for example in title_variant:
            assert not INDEX_TOKEN_PATTERN.findall(example.instruction)
