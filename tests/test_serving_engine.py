"""The GenerativeEngine boundary: protocol, adapters, and backend parity.

Acceptance contracts pinned here:

* the service is model-agnostic — LC-Rec, TIGER and P5-CID all serve
  through the same ``RecommendationService`` via their adapters;
* LCRec rankings through ``LCRecEngine`` are identical to the
  single-request oracle in every mode (deadline and continuous) with the
  prefix cache on and off;
* TIGER rankings through ``TIGEREngine`` are identical to the
  ``TIGER.recommend`` single loop for B ∈ {1, 4, 16}, including the
  widen-to-catalog retry, top-k backfill, and single-item tries;
* the pre-PR-4 ``RecommendationService(model)`` shim is gone: a bare
  model raises ``TypeError`` naming ``LCRecEngine(model)`` as the fix.
"""

import numpy as np
import pytest

from repro.baselines import P5CID, P5CIDConfig, TIGER, TIGERConfig
from repro.core.indexer import build_random_index_set
from repro.llm import DecodeState, beam_search_items_single, ranked_item_ids
from repro.serving import (
    EngineState,
    GenerativeEngine,
    LCRecEngine,
    MicroBatcherConfig,
    P5CIDEngine,
    PrefixKVCache,
    RecommendationService,
    RecommendRequest,
    TIGEREngine,
)


def lcrec_oracle(model, histories, top_k):
    """Per-request reference rankings via the single-request beam search."""
    beam = max(model.config.beam_size, top_k)
    rankings = []
    for history in histories:
        prompt = model.encode_instruction(model.seq_instruction(list(history)))
        hypotheses = beam_search_items_single(model.lm, prompt, model.trie, beam_size=beam)
        rankings.append(ranked_item_ids(hypotheses, top_k))
    return rankings


class TestEngineProtocol:
    def test_capability_flags(self, tiny_lcrec):
        engine = LCRecEngine(tiny_lcrec)
        assert isinstance(engine, GenerativeEngine)
        assert engine.supports_continuous
        assert engine.supports_prefix_cache
        assert engine.num_levels == tiny_lcrec.trie.num_levels
        assert engine.num_items == tiny_lcrec.trie.num_items
        assert engine.request_beam_size(3) == tiny_lcrec.config.beam_size
        assert engine.request_beam_size(99) == 99

    def test_decode_state_satisfies_engine_state(self, tiny_lcrec, tiny_dataset):
        engine = LCRecEngine(tiny_lcrec, prefix_cache=False)
        prompt = engine.encode_history(list(tiny_dataset.split.test_histories[0]))
        request = RecommendRequest(prompt_ids=prompt, top_k=3, beam_size=5)
        state = engine.prefill([request])
        assert isinstance(state, DecodeState)
        assert isinstance(state, EngineState)
        assert state.num_rows == 1
        assert state.tags == [request]
        assert not state.done

    def test_prefix_cache_override_through_service(self, tiny_lcrec):
        service = RecommendationService(LCRecEngine(tiny_lcrec), prefix_cache=False)
        assert service.prefix_cache is None
        service = RecommendationService(LCRecEngine(tiny_lcrec, prefix_cache=False))
        assert service.prefix_cache is None
        service = RecommendationService(LCRecEngine(tiny_lcrec))
        assert service.prefix_cache is not None

    def test_unsupported_prefix_cache_rejected(self, tiny_dataset):
        index_set = build_random_index_set(tiny_dataset.num_items, 3, 8,
                                           np.random.default_rng(0))
        engine = TIGEREngine(TIGER(index_set, TIGERConfig(epochs=1, dim=16)))
        assert not engine.supports_prefix_cache
        with pytest.raises(NotImplementedError):
            engine.set_prefix_cache(True)
        # An *empty* cache instance is falsy (PrefixKVCache has __len__)
        # but still asks for caching: it must be rejected, not silently
        # dropped.
        with pytest.raises(NotImplementedError):
            engine.set_prefix_cache(PrefixKVCache())
        engine.set_prefix_cache(False)  # disabling is always fine
        engine.set_prefix_cache(None)
        assert engine.prefix_cache is None

    def test_rebuilt_model_refreshes_cached_inference_engine(
            self, tiny_lcrec, tiny_dataset):
        """Swapping lm/trie (what a re-build does) must not serve stale
        weights through the lazily cached oracle engine."""
        import copy

        history = list(tiny_dataset.split.test_histories[0])
        tiny_lcrec.recommend(history, top_k=3)
        stale = tiny_lcrec._inference_engine
        original_lm = tiny_lcrec.lm
        try:
            tiny_lcrec.lm = copy.copy(original_lm)
            tiny_lcrec.recommend(history, top_k=3)
            assert tiny_lcrec._inference_engine is not stale
            assert tiny_lcrec._inference_engine.lm is tiny_lcrec.lm
        finally:
            tiny_lcrec.lm = original_lm

    def test_failing_finalize_fails_handle_but_not_continuous_loop(
            self, tiny_lcrec, tiny_dataset):
        """A finalize error (widen-and-backfill engines re-decode there)
        must fail only its own request, never kill the background loop."""

        class PoisonedFinalize(LCRecEngine):
            def finalize(self, requests, all_hypotheses):
                if any(request.top_k == 7 for request in requests):
                    raise RuntimeError("finalize boom")
                return super().finalize(requests, all_hypotheses)

        histories = [list(h) for h in tiny_dataset.split.test_histories[:4]]
        with RecommendationService(
                PoisonedFinalize(tiny_lcrec, prefix_cache=False),
                batcher=MicroBatcherConfig(max_batch_size=4),
                mode="continuous") as service:
            bad = service.submit(histories[0], top_k=7)
            with pytest.raises(RuntimeError, match="finalize boom"):
                bad.result(timeout=30.0)
            # The loop is still alive and serving.
            good = [service.submit(h, top_k=5) for h in histories[1:]]
            results = [p.result(timeout=30.0) for p in good]
        assert results == lcrec_oracle(tiny_lcrec, histories[1:], 5)

    def test_bare_model_constructor_raises_with_fix(self, tiny_lcrec):
        # The PR-4 deprecation shim is gone: the error must say what to
        # wrap the model in, not silently adapt it.
        with pytest.raises(TypeError, match=r"LCRecEngine\(model\)"):
            RecommendationService(tiny_lcrec)
        with pytest.raises(TypeError, match="GenerativeEngine"):
            RecommendationService(None)


class TestLCRecEngineParity:
    """LCRec through the engine: identical to the single-request oracle in
    every mode, prefix cache on and off (the acceptance criterion)."""

    @pytest.mark.parametrize("mode", ["deadline", "continuous"])
    @pytest.mark.parametrize("cache", [True, False])
    def test_all_modes_match_single_request_oracle(self, tiny_lcrec,
                                                   tiny_dataset, mode, cache):
        histories = [list(h) for h in tiny_dataset.split.test_histories[:6]]
        oracle = lcrec_oracle(tiny_lcrec, histories, 5)
        service = RecommendationService(
            LCRecEngine(tiny_lcrec, prefix_cache=cache),
            batcher=MicroBatcherConfig(max_batch_size=4), mode=mode)
        with service:
            pending = [service.submit(h, top_k=5) for h in histories]
            results = [p.result(timeout=30.0) for p in pending]
        assert results == oracle

    def test_mixed_beam_widths_served_continuously(self, tiny_lcrec,
                                                   tiny_dataset):
        """Co-queued requests with different effective beam widths are
        admitted FIFO in width-uniform groups (one prefill needs a uniform
        width) — never popped together and failed by prefill validation."""
        histories = [list(h) for h in tiny_dataset.split.test_histories[:6]]
        top_ks = [3, 20, 3, 20, 3, 20]  # alternating effective widths 10/20
        expected = [lcrec_oracle(tiny_lcrec, [h], k)[0]
                    for h, k in zip(histories, top_ks)]
        service = RecommendationService(
            LCRecEngine(tiny_lcrec, prefix_cache=False),
            batcher=MicroBatcherConfig(max_batch_size=4), mode="continuous")
        # Queue everything before the loop starts, so the first admission
        # pop sees the mixed-width queue all at once.
        pending = [service.submit(h, top_k=k)
                   for h, k in zip(histories, top_ks)]
        with service:
            results = [p.result(timeout=30.0) for p in pending]
        assert results == expected

    def test_sync_flush_matches_oracle(self, tiny_lcrec, tiny_dataset):
        histories = [list(h) for h in tiny_dataset.split.test_histories[:5]]
        service = RecommendationService(
            LCRecEngine(tiny_lcrec), batcher=MicroBatcherConfig(max_batch_size=2))
        assert service.recommend_many(histories, top_k=5) == lcrec_oracle(
            tiny_lcrec, histories, 5)

    def test_model_engine_factory(self, tiny_lcrec, tiny_dataset):
        engine = tiny_lcrec.engine(prefix_cache=None)
        histories = [list(h) for h in tiny_dataset.split.test_histories[:3]]
        assert engine.recommend_many(histories, top_k=4) == lcrec_oracle(
            tiny_lcrec, histories, 4)


class TestTIGEREngine:
    @pytest.fixture(scope="class")
    def tiger(self, tiny_dataset):
        index_set = build_random_index_set(tiny_dataset.num_items, 3, 8,
                                           np.random.default_rng(0))
        model = TIGER(index_set, TIGERConfig(epochs=3, dim=16, beam_size=10))
        model.fit(tiny_dataset)
        return model

    def test_capability_flags(self, tiger):
        engine = TIGEREngine(tiger)
        assert not engine.supports_continuous
        assert not engine.supports_prefix_cache
        assert engine.num_levels == tiger.num_levels
        assert engine.num_items == tiger.trie.num_items

    @pytest.mark.parametrize("batch", [1, 4, 16])
    def test_batched_matches_single_loop(self, tiger, tiny_dataset, batch):
        """Rankings bit-identical to TIGER.recommend for B in {1, 4, 16}."""
        pool = tiny_dataset.split.test_histories
        histories = [list(pool[i % len(pool)]) for i in range(batch)]
        batched = tiger.recommend_many(histories, top_k=10)
        assert batched == [tiger.recommend(h, top_k=10) for h in histories]

    def test_top_k_backfill_matches_single_loop(self, tiger, tiny_dataset):
        """Widen-to-catalog retry + deterministic backfill, batched."""
        num_items = tiny_dataset.num_items
        histories = [list(h) for h in tiny_dataset.split.test_histories[:4]]
        for top_k in (1, num_items, num_items + 7):
            batched = tiger.recommend_many(histories, top_k=top_k)
            assert batched == [tiger.recommend(h, top_k=top_k) for h in histories]
            assert all(len(r) == min(top_k, num_items) for r in batched)
        everything = tiger.recommend_many(histories[:1], top_k=num_items + 7)[0]
        assert sorted(everything) == list(range(num_items))

    def test_single_item_trie(self, tiny_dataset):
        """A one-item catalog: effective width 1, fillers never surface."""
        index_set = build_random_index_set(1, 3, 8, np.random.default_rng(3))
        model = TIGER(index_set, TIGERConfig(epochs=1, dim=16, beam_size=5))
        model.eval()  # untrained weights; eval mode keeps dropout off
        histories = [[0], [0, 0], [0, 0, 0]]
        batched = model.recommend_many(histories, top_k=3)
        assert batched == [model.recommend(h, top_k=3) for h in histories]
        assert all(r == [0] for r in batched)

    def test_serves_through_shared_service(self, tiger, tiny_dataset):
        """The same RecommendationService machinery serves TIGER."""
        histories = [list(h) for h in tiny_dataset.split.test_histories[:5]]
        expected = [tiger.recommend(h, top_k=5) for h in histories]
        service = RecommendationService(
            TIGEREngine(tiger), batcher=MicroBatcherConfig(max_batch_size=4))
        assert service.recommend_many(histories, top_k=5) == expected
        # Async deadline-batched mode too: the background loop is engine-
        # agnostic.
        with RecommendationService(
                TIGEREngine(tiger), batcher=MicroBatcherConfig(max_batch_size=4),
                deadline_ms=20.0) as async_service:
            pending = [async_service.submit(h, top_k=5) for h in histories]
            assert [p.result(timeout=30.0) for p in pending] == expected

    def test_continuous_mode_rejected(self, tiger):
        with pytest.raises(ValueError, match="continuous"):
            RecommendationService(TIGEREngine(tiger), mode="continuous")

    def test_instruction_submission_rejected(self, tiger):
        service = RecommendationService(TIGEREngine(tiger))
        with pytest.raises(NotImplementedError):
            service.submit_instruction("free text has no meaning here")
        with pytest.raises(NotImplementedError):
            service.submit_intention("nor do intention queries")


class TestP5CIDEngine:
    @pytest.fixture(scope="class")
    def p5cid(self, tiny_dataset):
        model = P5CID(tiny_dataset, P5CIDConfig(epochs=3, dim=16,
                                                cluster_levels=2, branch=4,
                                                beam_size=10))
        model.fit(tiny_dataset)
        return model

    def test_capability_flags(self, p5cid):
        engine = P5CIDEngine(p5cid)
        assert engine.supports_continuous  # decoder-only: shared stepper
        assert engine.supports_prefix_cache
        assert engine.prefix_cache is None  # off by default for P5-CID

    def test_serves_through_shared_service_continuously(self, p5cid,
                                                        tiny_dataset):
        """P5-CID inherits continuous batching from the decoder engine."""
        histories = [list(h) for h in tiny_dataset.split.test_histories[:6]]
        expected = [p5cid.recommend(h, top_k=5) for h in histories]
        with RecommendationService(
                P5CIDEngine(p5cid), batcher=MicroBatcherConfig(max_batch_size=4),
                mode="continuous") as service:
            pending = [service.submit(h, top_k=5) for h in histories]
            results = [p.result(timeout=30.0) for p in pending]
        assert results == expected

    def test_full_top_k_guarantee_preserved(self, p5cid, tiny_dataset):
        num_items = tiny_dataset.num_items
        histories = [list(h) for h in tiny_dataset.split.test_histories[:3]]
        for top_k in (1, num_items, num_items + 3):
            rankings = p5cid.recommend_many(histories, top_k=top_k)
            assert all(len(r) == min(top_k, num_items) for r in rankings)
            assert rankings == [p5cid.recommend(h, top_k=top_k) for h in histories]
