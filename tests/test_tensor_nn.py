"""Tests for the module system, optimisers and schedules."""

import numpy as np
import pytest

from repro.tensor import (
    MLP,
    Adam,
    AdamW,
    ConstantSchedule,
    CosineWarmup,
    Dropout,
    Embedding,
    GRU,
    LayerNorm,
    Linear,
    LinearWarmup,
    Module,
    RMSNorm,
    SGD,
    Sequential,
    Tensor,
    clip_grad_norm,
)


def rng():
    return np.random.default_rng(11)


class TestModuleSystem:
    def test_named_parameters_nested(self):
        model = Sequential(Linear(4, 8, rng=rng()), Linear(8, 2, rng=rng()))
        names = dict(model.named_parameters())
        assert "layers.0.weight" in names
        assert "layers.1.bias" in names
        assert len(names) == 4

    def test_num_parameters(self):
        layer = Linear(4, 8, rng=rng())
        assert layer.num_parameters() == 4 * 8 + 8

    def test_state_dict_roundtrip(self):
        model_a = MLP([4, 8, 2], rng=rng())
        model_b = MLP([4, 8, 2], rng=np.random.default_rng(99))
        model_b.load_state_dict(model_a.state_dict())
        x = Tensor(rng().standard_normal((3, 4)).astype(np.float32))
        np.testing.assert_allclose(model_a(x).data, model_b(x).data)

    def test_load_state_dict_rejects_mismatch(self):
        model = Linear(4, 8, rng=rng())
        with pytest.raises(KeyError):
            model.load_state_dict({"weight": np.zeros((4, 8))})

    def test_load_state_dict_rejects_bad_shape(self):
        model = Linear(4, 8, rng=rng())
        state = model.state_dict()
        state["weight"] = np.zeros((3, 8))
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_train_eval_propagates(self):
        model = Sequential(Linear(4, 4, rng=rng()), Dropout(0.5, rng=rng()))
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_zero_grad(self):
        layer = Linear(3, 3, rng=rng())
        out = layer(Tensor(np.ones((2, 3), dtype=np.float32)))
        out.sum().backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None


class TestLayers:
    def test_linear_shapes(self):
        layer = Linear(5, 7, rng=rng())
        out = layer(Tensor(np.zeros((2, 3, 5), dtype=np.float32)))
        assert out.shape == (2, 3, 7)

    def test_linear_no_bias(self):
        layer = Linear(5, 7, bias=False, rng=rng())
        assert layer.bias is None
        assert len(list(layer.named_parameters())) == 1

    def test_embedding_lookup(self):
        emb = Embedding(10, 4, rng=rng())
        out = emb(np.array([[1, 2], [3, 1]]))
        assert out.shape == (2, 2, 4)
        np.testing.assert_allclose(out.data[0, 0], emb.weight.data[1])

    def test_embedding_extend(self):
        emb = Embedding(10, 4, rng=rng())
        before = emb.weight.data.copy()
        emb.extend(5, rng=rng())
        assert emb.weight.shape == (15, 4)
        assert emb.num_embeddings == 15
        np.testing.assert_allclose(emb.weight.data[:10], before)

    def test_layer_norm_statistics(self):
        norm = LayerNorm(8)
        x = Tensor(rng().standard_normal((4, 8)).astype(np.float32) * 5 + 3)
        out = norm(x).data
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-4)
        np.testing.assert_allclose(out.std(axis=-1), 1.0, atol=1e-2)

    def test_rms_norm_scale(self):
        norm = RMSNorm(8)
        x = Tensor(rng().standard_normal((4, 8)).astype(np.float32))
        out = norm(x).data
        rms = np.sqrt((out**2).mean(axis=-1))
        np.testing.assert_allclose(rms, 1.0, atol=1e-2)

    def test_dropout_validation(self):
        with pytest.raises(ValueError):
            Dropout(1.5)

    def test_mlp_depth(self):
        mlp = MLP([4, 16, 16, 2], rng=rng())
        assert len(mlp.linears) == 3
        out = mlp(Tensor(np.zeros((5, 4), dtype=np.float32)))
        assert out.shape == (5, 2)

    def test_mlp_requires_two_dims(self):
        with pytest.raises(ValueError):
            MLP([4])

    def test_gru_shapes(self):
        gru = GRU(6, 8, num_layers=2, rng=rng())
        out = gru(Tensor(rng().standard_normal((3, 5, 6)).astype(np.float32)))
        assert out.shape == (3, 5, 8)

    def test_gru_gradient_flows(self):
        gru = GRU(4, 4, rng=rng())
        x = Tensor(rng().standard_normal((2, 3, 4)).astype(np.float32))
        gru(x).sum().backward()
        assert all(p.grad is not None for p in gru.parameters())


class TestOptimizers:
    @staticmethod
    def quadratic_setup():
        param = Linear(1, 1, bias=False, rng=rng())
        param.weight.data[:] = 5.0
        return param

    def _minimise(self, optimizer_factory, steps=200):
        layer = self.quadratic_setup()
        optimizer = optimizer_factory(layer.parameters())
        x = Tensor(np.ones((8, 1), dtype=np.float32))
        for _ in range(steps):
            optimizer.zero_grad()
            out = layer(x)
            (out * out).mean().backward()
            optimizer.step()
        return abs(layer.weight.data.item())

    def test_sgd_minimises(self):
        assert self._minimise(lambda p: SGD(p, lr=0.1)) < 1e-3

    def test_sgd_momentum_minimises(self):
        assert self._minimise(lambda p: SGD(p, lr=0.05, momentum=0.9)) < 1e-3

    def test_adam_minimises(self):
        assert self._minimise(lambda p: Adam(p, lr=0.1)) < 1e-2

    def test_adamw_minimises(self):
        assert self._minimise(lambda p: AdamW(p, lr=0.1, weight_decay=0.01)) < 1e-2

    def test_adamw_decay_is_decoupled(self):
        layer = Linear(2, 2, bias=False, rng=rng())
        opt = AdamW(layer.parameters(), lr=0.1, weight_decay=0.5)
        before = np.abs(layer.weight.data).sum()
        # Zero gradient: the Adam update vanishes but decay still shrinks.
        layer.weight.grad = np.zeros_like(layer.weight.data)
        opt.step()
        assert np.abs(layer.weight.data).sum() < before

    def test_invalid_lr_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.0)

    def test_clip_grad_norm(self):
        layer = Linear(4, 4, rng=rng())
        out = layer(Tensor(np.full((2, 4), 100.0, dtype=np.float32)))
        (out * out).sum().backward()
        norm_before = clip_grad_norm(layer.parameters(), max_norm=1.0)
        assert norm_before > 1.0
        total = sum(float((p.grad**2).sum()) for p in layer.parameters())
        assert np.sqrt(total) <= 1.0 + 1e-4


class TestSchedules:
    def test_constant(self):
        sched = ConstantSchedule(0.5)
        assert sched.lr_at(0) == sched.lr_at(1000) == 0.5

    def test_linear_warmup(self):
        sched = LinearWarmup(1.0, warmup_steps=10)
        assert sched.lr_at(0) == pytest.approx(0.1)
        assert sched.lr_at(9) == pytest.approx(1.0)
        assert sched.lr_at(50) == 1.0

    def test_cosine_warmup_shape(self):
        sched = CosineWarmup(1.0, warmup_steps=10, total_steps=110)
        assert sched.lr_at(0) < sched.lr_at(9)
        assert sched.lr_at(10) == pytest.approx(1.0, abs=1e-6)
        assert sched.lr_at(60) < sched.lr_at(10)
        assert sched.lr_at(109) == pytest.approx(0.0, abs=1e-3)

    def test_cosine_min_lr_floor(self):
        sched = CosineWarmup(1.0, warmup_steps=0, total_steps=100, min_lr=0.1)
        assert sched.lr_at(100) == pytest.approx(0.1)
        assert sched.lr_at(10_000) == pytest.approx(0.1)

    def test_apply_sets_optimizer_lr(self):
        layer = Linear(2, 2, rng=rng())
        opt = SGD(layer.parameters(), lr=1.0)
        sched = CosineWarmup(1.0, warmup_steps=5, total_steps=50)
        sched.apply(opt, 0)
        assert opt.lr == pytest.approx(0.2)

    def test_total_steps_validated(self):
        with pytest.raises(ValueError):
            CosineWarmup(1.0, warmup_steps=0, total_steps=0)
