"""Tests for the Sinkhorn-Knopp solver and uniform assignment."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.quantization import sinkhorn_knopp, uniform_assign


class TestSinkhornKnopp:
    def test_marginals_uniform(self):
        rng = np.random.default_rng(0)
        cost = rng.random((12, 4))
        plan = sinkhorn_knopp(cost, epsilon=0.1, num_iters=300)
        np.testing.assert_allclose(plan.sum(axis=1), 1 / 12, atol=1e-4)
        np.testing.assert_allclose(plan.sum(axis=0), 1 / 4, atol=1e-3)

    def test_low_epsilon_prefers_cheap_cells(self):
        cost = np.array([[0.0, 10.0], [10.0, 0.0]])
        plan = sinkhorn_knopp(cost, epsilon=0.01)
        assert plan[0, 0] > plan[0, 1]
        assert plan[1, 1] > plan[1, 0]

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            sinkhorn_knopp(np.zeros(3))
        with pytest.raises(ValueError):
            sinkhorn_knopp(np.zeros((0, 3)))

    def test_handles_large_costs(self):
        cost = np.full((6, 3), 1e6)
        plan = sinkhorn_knopp(cost, epsilon=0.05)
        assert np.isfinite(plan).all()

    @given(arrays(np.float64, (8, 4),
                  elements=st.floats(0, 100, allow_nan=False)))
    @settings(max_examples=30, deadline=None)
    def test_plan_is_distribution(self, cost):
        plan = sinkhorn_knopp(cost, epsilon=0.1, num_iters=200)
        assert (plan >= 0).all()
        np.testing.assert_allclose(plan.sum(), 1.0, atol=1e-3)


class TestUniformAssign:
    def test_capacity_one_gives_permutation(self):
        rng = np.random.default_rng(1)
        cost = rng.random((5, 5))
        assignment = uniform_assign(cost, capacity=1)
        assert sorted(assignment.tolist()) == list(range(5))

    def test_default_capacity_is_uniform_quota(self):
        rng = np.random.default_rng(2)
        cost = rng.random((10, 4))
        assignment = uniform_assign(cost)
        counts = np.bincount(assignment, minlength=4)
        assert counts.max() <= int(np.ceil(10 / 4))

    def test_assignment_prefers_cheap_columns(self):
        cost = np.array([[0.0, 5.0, 5.0], [5.0, 0.0, 5.0], [5.0, 5.0, 0.0]])
        assignment = uniform_assign(cost, capacity=1)
        np.testing.assert_array_equal(assignment, [0, 1, 2])

    def test_insufficient_capacity_rejected(self):
        with pytest.raises(ValueError):
            uniform_assign(np.zeros((5, 2)), capacity=2)

    @given(arrays(np.float64, (12, 4),
                  elements=st.floats(0, 10, allow_nan=False)))
    @settings(max_examples=30, deadline=None)
    def test_every_row_assigned_within_capacity(self, cost):
        assignment = uniform_assign(cost)
        assert (assignment >= 0).all()
        counts = np.bincount(assignment, minlength=4)
        assert counts.max() <= 3  # ceil(12 / 4)
