"""Integration tests for the full LC-Rec pipeline (tiny scale)."""

import numpy as np
import pytest

from repro.core import LCRec, LCRecConfig
from repro.text import INDEX_TOKEN_PATTERN

from helpers import small_lcrec_config


class TestBuildArtifacts:
    def test_indices_unique_and_registered(self, tiny_lcrec):
        assert tiny_lcrec.index_set.is_unique()
        vocab = tiny_lcrec.tokenizer.vocab
        for token in tiny_lcrec.index_set.all_token_strings():
            assert token in vocab
            assert vocab.is_extension_id(vocab.token_to_id(token))

    def test_lm_vocab_extended_to_match_tokenizer(self, tiny_lcrec):
        assert tiny_lcrec.lm.vocab_size == len(tiny_lcrec.tokenizer.vocab)

    def test_trie_covers_all_items(self, tiny_lcrec, tiny_dataset):
        assert tiny_lcrec.trie.num_items == tiny_dataset.num_items

    def test_pretrain_reduced_loss(self, tiny_lcrec):
        losses = tiny_lcrec.pretrain_losses
        assert np.mean(losses[-10:]) < np.mean(losses[:10])

    def test_tuning_ran(self, tiny_lcrec):
        assert len(tiny_lcrec.tuning_losses) > 0

    def test_item_embeddings_cached(self, tiny_lcrec, tiny_dataset):
        assert tiny_lcrec.item_embeddings.shape[0] == tiny_dataset.num_items


class TestInference:
    def test_recommend_returns_legal_unique_items(self, tiny_lcrec,
                                                  tiny_dataset):
        history = tiny_dataset.split.test_histories[0]
        ranked = tiny_lcrec.recommend(history, top_k=10)
        assert len(ranked) == 10
        assert len(set(ranked)) == 10
        assert all(0 <= i < tiny_dataset.num_items for i in ranked)

    def test_recommend_respects_top_k(self, tiny_lcrec, tiny_dataset):
        history = tiny_dataset.split.test_histories[1]
        assert len(tiny_lcrec.recommend(history, top_k=3)) == 3

    def test_seq_instruction_contains_history_indices(self, tiny_lcrec,
                                                      tiny_dataset):
        history = tiny_dataset.split.test_histories[0][-4:]
        instruction = tiny_lcrec.seq_instruction(history)
        tokens = INDEX_TOKEN_PATTERN.findall(instruction)
        assert len(tokens) == 4 * len(history)

    def test_intention_recommendation(self, tiny_lcrec):
        ranked = tiny_lcrec.recommend_for_intention(
            "looking for something nice", top_k=5)
        assert len(ranked) == 5

    def test_generate_text_produces_string(self, tiny_lcrec):
        index = tiny_lcrec.index_set.index_text(0)
        text = tiny_lcrec.generate_text(
            f"please tell me what item {index} is called , along with a "
            "brief description of it .")
        assert isinstance(text, str)

    def test_response_logprob_finite_and_negative(self, tiny_lcrec,
                                                  tiny_dataset):
        history = tiny_dataset.split.test_histories[0]
        instruction = tiny_lcrec.seq_instruction(history)
        target = tiny_dataset.split.test_targets[0]
        logprob = tiny_lcrec.response_logprob(
            instruction, tiny_lcrec.index_set.index_text(target))
        assert np.isfinite(logprob)
        assert logprob < 0

    def test_inference_before_build_rejected(self, tiny_dataset):
        model = LCRec(tiny_dataset, LCRecConfig())
        with pytest.raises(RuntimeError):
            model.recommend([0, 1])


class TestEmbeddingGroups:
    def test_groups_shapes(self, tiny_lcrec):
        groups = tiny_lcrec.token_embedding_groups()
        dim = tiny_lcrec.lm.config.dim
        assert groups["item_indices"].shape[1] == dim
        assert groups["item_texts"].shape[1] == dim
        assert len(groups["item_indices"]) == sum(
            tiny_lcrec.index_set.level_sizes)


class TestAblationVariants:
    def test_vanilla_index_source(self, tiny_dataset):
        config = small_lcrec_config(index_source="vanilla")
        config.tuning.epochs = 1
        config.tasks.tasks = ("seq",)
        model = LCRec(tiny_dataset, config).build()
        assert model.index_set.num_levels == 1
        ranked = model.recommend(tiny_dataset.split.test_histories[0],
                                 top_k=5)
        assert len(ranked) == 5

    def test_random_index_source(self, tiny_dataset):
        config = small_lcrec_config(index_source="random")
        config.tuning.epochs = 1
        config.tasks.tasks = ("seq",)
        model = LCRec(tiny_dataset, config).build()
        assert model.index_set.num_levels == 4
        assert model.index_set.is_unique()

    def test_invalid_index_source_rejected(self, tiny_dataset):
        with pytest.raises(ValueError):
            LCRec(tiny_dataset, small_lcrec_config(index_source="bogus"))
