"""Cross-request prefix KV cache: trie semantics, eviction, decode parity."""

import numpy as np
import pytest

from repro.llm import (
    LMConfig,
    PrefixKVCache,
    TinyLlama,
    beam_search_items_batched,
    beam_search_items_single,
    ranked_item_ids,
)
from repro.quantization.trie import IndexTrie


def fake_kvs(length, layers=2, heads=2, head_dim=4, fill=1.0):
    """Per-layer (keys, values) pairs shaped like a 1-row prompt cache."""
    out = []
    for layer in range(layers):
        keys = np.full((1, heads, length, head_dim), fill + layer, dtype=np.float32)
        values = keys + 100.0
        out.append((keys, values))
    return out


class TestPrefixKVCacheUnit:
    def test_exact_and_partial_match(self):
        cache = PrefixKVCache(min_prefix_len=2)
        prompt = [1, 5, 6, 7, 8]
        cache.insert(prompt, fake_kvs(5))
        exact = cache.match(prompt)
        assert exact.length == 5
        assert exact.layer_kvs[0][0].shape == (1, 2, 5, 4)
        # A diverging prompt reuses the shared prefix via the same entry.
        partial = cache.match([1, 5, 6, 9, 9, 9])
        assert partial.length == 3
        np.testing.assert_array_equal(
            partial.layer_kvs[1][1], exact.layer_kvs[1][1][:, :, :3, :]
        )

    def test_max_len_caps_match(self):
        cache = PrefixKVCache(min_prefix_len=2)
        prompt = [1, 5, 6, 7, 8]
        cache.insert(prompt, fake_kvs(5))
        assert cache.match(prompt, max_len=len(prompt) - 1).length == 4

    def test_short_matches_are_misses(self):
        cache = PrefixKVCache(min_prefix_len=4)
        cache.insert([1, 2, 3, 4, 5], fake_kvs(5))
        assert cache.match([1, 2, 3, 9, 9, 9]) is None  # depth 3 < 4
        assert cache.match([1, 2, 3, 4, 9]) is not None
        assert cache.stats.lookups == 2
        assert cache.stats.hits == 1

    def test_insert_rejects_short_and_duplicate(self):
        cache = PrefixKVCache(min_prefix_len=4)
        assert not cache.insert([1, 2], fake_kvs(2))
        assert cache.insert([1, 2, 3, 4], fake_kvs(4))
        assert not cache.insert([1, 2, 3, 4], fake_kvs(4))
        assert len(cache) == 1
        assert [1, 2, 3, 4] in cache
        assert [1, 2, 3] not in cache

    def test_insert_copies_and_freezes(self):
        cache = PrefixKVCache(min_prefix_len=2)
        kvs = fake_kvs(3)
        cache.insert([1, 2, 3], kvs)
        kvs[0][0][:] = -1.0  # caller mutates its live buffer afterwards
        match = cache.match([1, 2, 3])
        np.testing.assert_array_equal(match.layer_kvs[0][0], fake_kvs(3)[0][0])
        assert not match.layer_kvs[0][0].flags.writeable

    def test_length_mismatch_rejected(self):
        cache = PrefixKVCache(min_prefix_len=2)
        with pytest.raises(ValueError):
            cache.insert([1, 2, 3], fake_kvs(4))

    def test_lru_eviction_and_rebuild(self):
        cache = PrefixKVCache(max_entries=2, min_prefix_len=2)
        cache.insert([1, 2, 3], fake_kvs(3))
        cache.insert([4, 5, 6], fake_kvs(3))
        cache.match([1, 2, 3])  # touch: [4, 5, 6] becomes least-recent
        cache.insert([7, 8, 9], fake_kvs(3))
        assert len(cache) == 2
        assert cache.stats.evictions == 1
        assert cache.match([4, 5, 6]) is None  # evicted, trie rebuilt
        assert cache.match([1, 2, 3]) is not None
        assert cache.match([7, 8, 9]) is not None

    def test_clear(self):
        cache = PrefixKVCache(min_prefix_len=2)
        cache.insert([1, 2, 3], fake_kvs(3))
        cache.clear()
        assert len(cache) == 0
        assert cache.match([1, 2, 3]) is None

    def test_stats_token_hit_rate(self):
        cache = PrefixKVCache(min_prefix_len=2)
        cache.insert([1, 2, 3, 4], fake_kvs(4))
        cache.match([1, 2, 3, 4, 5, 6])  # 4 of 6 tokens reused
        assert cache.stats.prompt_tokens == 6
        assert cache.stats.reused_tokens == 4
        assert cache.stats.token_hit_rate == pytest.approx(4 / 6)
        assert cache.stats.hit_rate == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            PrefixKVCache(max_entries=0)
        with pytest.raises(ValueError):
            PrefixKVCache(min_prefix_len=0)


def make_model(vocab_size=64):
    model = TinyLlama(
        LMConfig(
            vocab_size=vocab_size,
            dim=32,
            num_layers=2,
            num_heads=4,
            ffn_hidden=64,
            max_seq_len=128,
        )
    )
    model.eval()
    return model


def make_trie():
    sequences = {}
    item = 0
    for a in range(4, 10):
        for b in range(10, 16):
            sequences[item] = (a, b, (a + b) % 6 + 16, (a * b) % 6 + 22)
            item += 1
    return IndexTrie(sequences)


TEMPLATE_HEAD = [1, 33, 34, 35, 36, 37, 38, 39]


def session_prompts(rng, users=6, turns=2):
    """Template-headed prompts where each user's later turns grow the first."""
    prompts = []
    for _ in range(users):
        base = TEMPLATE_HEAD + [int(t) for t in rng.integers(40, 60, size=4)]
        prompts.append(base)
        for _ in range(turns - 1):
            base = base + [int(t) for t in rng.integers(40, 60, size=2)]
            prompts.append(base)
    return prompts


class TestPrefixCacheDecodeParity:
    """Cached-prefix decoding must return byte-identical rankings."""

    def test_warm_cache_matches_single_reference(self):
        model, trie = make_model(), make_trie()
        rng = np.random.default_rng(7)
        prompts = session_prompts(rng)
        reference = [
            ranked_item_ids(beam_search_items_single(model, p, trie, beam_size=8), 5)
            for p in prompts
        ]
        cache = PrefixKVCache()
        for round_index in range(3):  # cold, then increasingly warm
            batched = beam_search_items_batched(
                model, prompts, trie, beam_size=8, prefix_cache=cache
            )
            assert [ranked_item_ids(h, 5) for h in batched] == reference, (
                f"rankings diverged on round {round_index}"
            )
        assert cache.stats.hits > 0
        assert cache.stats.reused_tokens > 0

    def test_scores_match_uncached_batched(self):
        model, trie = make_model(), make_trie()
        rng = np.random.default_rng(11)
        prompts = session_prompts(rng, users=3)
        plain = beam_search_items_batched(model, prompts, trie, beam_size=6)
        cache = PrefixKVCache()
        beam_search_items_batched(model, prompts, trie, beam_size=6, prefix_cache=cache)
        warm = beam_search_items_batched(
            model, prompts, trie, beam_size=6, prefix_cache=cache
        )
        for plain_row, warm_row in zip(plain, warm):
            assert [h.token_ids for h in plain_row] == [h.token_ids for h in warm_row]
            for plain_hyp, warm_hyp in zip(plain_row, warm_row):
                assert plain_hyp.score == pytest.approx(warm_hyp.score, abs=1e-4)

    def test_session_growth_reuses_previous_turn(self):
        model, trie = make_model(), make_trie()
        cache = PrefixKVCache()
        first = TEMPLATE_HEAD + [40, 41, 42]
        beam_search_items_batched(model, [first], trie, beam_size=6, prefix_cache=cache)
        grown = first + [43, 44]
        reused_before = cache.stats.reused_tokens
        batched = beam_search_items_batched(
            model, [grown], trie, beam_size=6, prefix_cache=cache
        )
        assert cache.stats.reused_tokens - reused_before == len(first)
        reference = beam_search_items_single(model, grown, trie, beam_size=6)
        assert ranked_item_ids(batched[0], 5) == ranked_item_ids(reference, 5)

    def test_mixed_hit_miss_batch(self):
        """Rows with cached prefixes co-decode with never-seen rows."""
        model, trie = make_model(), make_trie()
        rng = np.random.default_rng(3)
        known = session_prompts(rng, users=2, turns=1)
        cache = PrefixKVCache()
        beam_search_items_batched(model, known, trie, beam_size=8, prefix_cache=cache)
        fresh = [[1, 50, 51, 52, 53, 54, 55], [1, 56, 57]]  # no shared head
        mixed = [known[0], fresh[0], known[1], fresh[1]]
        batched = beam_search_items_batched(
            model, mixed, trie, beam_size=8, prefix_cache=cache
        )
        for prompt, hypotheses in zip(mixed, batched):
            reference = beam_search_items_single(model, prompt, trie, beam_size=8)
            assert ranked_item_ids(hypotheses, 5) == ranked_item_ids(reference, 5)

    def test_whole_prompt_repeat_caps_at_one_suffix_token(self):
        """An exact repeat still forwards >= 1 token (the logits source)."""
        model, trie = make_model(), make_trie()
        cache = PrefixKVCache()
        prompt = TEMPLATE_HEAD + [44, 45]
        beam_search_items_batched(model, [prompt], trie, beam_size=6, prefix_cache=cache)
        repeat = beam_search_items_batched(
            model, [prompt], trie, beam_size=6, prefix_cache=cache
        )
        assert cache.stats.reused_tokens == len(prompt) - 1
        reference = beam_search_items_single(model, prompt, trie, beam_size=6)
        assert ranked_item_ids(repeat[0], 5) == ranked_item_ids(reference, 5)


class TestPrefixCacheOnLCRec:
    """End-to-end on the built tiny model: serving templates really collide."""

    def test_service_prefix_cache_parity(self, tiny_lcrec, tiny_dataset):
        histories = tiny_dataset.split.test_histories[:6]
        service = tiny_lcrec.service()
        assert service.prefix_cache is not None  # on by default
        cold = service.recommend_many(histories, top_k=5)
        warm = service.recommend_many(histories, top_k=5)
        assert cold == warm
        for history, ranked in zip(histories, cold):
            assert ranked == tiny_lcrec.recommend(list(history), top_k=5)
        assert service.prefix_cache.stats.hits > 0

    def test_template_heads_hit_across_users(self, tiny_lcrec, tiny_dataset):
        service = tiny_lcrec.service()
        first, second = tiny_dataset.split.test_histories[:2]
        service.recommend_many([first], top_k=3)
        before = service.prefix_cache.stats.reused_tokens
        service.recommend_many([second], top_k=3)  # different user, same template
        assert service.prefix_cache.stats.reused_tokens > before

    def test_disabled_cache(self, tiny_lcrec, tiny_dataset):
        service = tiny_lcrec.service(prefix_cache=False)
        assert service.prefix_cache is None
        histories = tiny_dataset.split.test_histories[:3]
        for history, ranked in zip(histories, service.recommend_many(histories, top_k=4)):
            assert ranked == tiny_lcrec.recommend(list(history), top_k=4)
