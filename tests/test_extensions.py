"""Tests for the extension features: extra metrics, chat sessions,
bundle/explanation tasks, dataset persistence and early stopping."""

import numpy as np
import pytest

from repro.core import ChatSession
from repro.core.indexer import build_random_index_set
from repro.core.tasks import AlignmentTaskBuilder, AlignmentTaskConfig
from repro.data import IntentionGenerator, load_dataset, save_dataset
from repro.eval import catalog_coverage, intra_list_diversity, mrr_at_k
from repro.text import INDEX_TOKEN_PATTERN


class TestExtraMetrics:
    def test_mrr_values(self):
        assert mrr_at_k([[3, 1, 2]], [1], k=3) == pytest.approx(0.5)
        assert mrr_at_k([[1, 2]], [1], k=2) == 1.0
        assert mrr_at_k([[2, 3]], [9], k=2) == 0.0

    def test_mrr_truncation(self):
        assert mrr_at_k([[5, 6, 7]], [7], k=2) == 0.0

    def test_mrr_validation(self):
        with pytest.raises(ValueError):
            mrr_at_k([[1]], [1], k=0)
        with pytest.raises(ValueError):
            mrr_at_k([], [], k=1)

    def test_catalog_coverage(self):
        lists = [[0, 1], [1, 2], [2, 3]]
        assert catalog_coverage(lists, num_items=8, k=2) == pytest.approx(0.5)

    def test_coverage_validation(self):
        with pytest.raises(ValueError):
            catalog_coverage([[0]], num_items=0)

    def test_diversity_extremes(self):
        categories = np.array([0, 0, 1, 1])
        same = intra_list_diversity([[0, 1]], categories)
        mixed = intra_list_diversity([[0, 2]], categories)
        assert same == 0.0
        assert mixed == 1.0

    def test_diversity_requires_pairs(self):
        with pytest.raises(ValueError):
            intra_list_diversity([[0]], np.array([0, 1]))


class TestChatSession:
    def test_recommend_excludes_rejected_and_history(self, tiny_lcrec,
                                                     tiny_dataset):
        history = list(tiny_dataset.split.test_histories[0])
        session = ChatSession(tiny_lcrec, history=list(history))
        first = session.recommend(top_k=5)
        assert len(first) <= 5
        assert not set(first) & set(history)
        session.reject(first[0])
        second = session.recommend(top_k=5)
        assert first[0] not in second

    def test_accept_extends_history(self, tiny_lcrec, tiny_dataset):
        history = list(tiny_dataset.split.test_histories[1])
        session = ChatSession(tiny_lcrec, history=list(history))
        items = session.recommend(top_k=3)
        session.accept(items[0])
        assert session.history[-1] == items[0]
        assert session.turns[-1].accepted == items[0]
        # Accepted items are never recommended again.
        assert items[0] not in session.recommend(top_k=3)

    def test_intention_turn(self, tiny_lcrec):
        session = ChatSession(tiny_lcrec, history=[0])
        items = session.ask("looking for something great", top_k=4)
        assert len(items) <= 4
        assert session.turns[-1].query is not None

    def test_describe(self, tiny_lcrec, tiny_dataset):
        session = ChatSession(tiny_lcrec, history=[0])
        text = session.describe(1)
        assert tiny_dataset.catalog[1].title in text

    def test_empty_history_rejected(self, tiny_lcrec):
        session = ChatSession(tiny_lcrec)
        with pytest.raises(ValueError):
            session.recommend()

    def test_unknown_item_rejected(self, tiny_lcrec):
        session = ChatSession(tiny_lcrec, history=[0])
        with pytest.raises(ValueError):
            session.reject(10_000)


class TestExtensionTasks:
    @pytest.fixture()
    def builder(self, tiny_dataset, rng):
        index_set = build_random_index_set(tiny_dataset.num_items, 4, 8, rng)
        return AlignmentTaskBuilder(
            dataset=tiny_dataset,
            index_set=index_set,
            intention_generator=IntentionGenerator(
                tiny_dataset.catalog, np.random.default_rng(0)),
            config=AlignmentTaskConfig(
                tasks=("seq", "bun", "exp"), seq_per_user=1),
        )

    def test_bundle_responses_have_two_items(self, builder):
        examples = [e for e in builder.epoch_examples(0) if e.task == "bun"]
        assert examples
        for example in examples[:10]:
            tokens = INDEX_TOKEN_PATTERN.findall(example.response)
            assert len(tokens) == 8  # two items x four levels

    def test_bundle_items_consecutive_in_training_data(self, builder,
                                                       tiny_dataset):
        examples = [e for e in builder.epoch_examples(0) if e.task == "bun"]
        index_texts = {builder._index_text(i): i
                       for i in range(tiny_dataset.num_items)}
        for example in examples[:10]:
            first, second = [index_texts[t.strip()]
                             for t in example.response.split(",")]
            found = any(
                first in seq and second in seq
                and seq.index(second) == seq.index(first) + 1
                for seq in tiny_dataset.split.train_sequences
                if first in seq and second in seq
                and seq.index(first) + 1 < len(seq)
            )
            assert found or first != second

    def test_explanations_mention_title_and_category(self, builder,
                                                     tiny_dataset):
        examples = [e for e in builder.epoch_examples(0) if e.task == "exp"]
        assert examples
        lexicon = tiny_dataset.catalog.lexicon
        for example in examples[:10]:
            assert any(name in example.response
                       for name in lexicon.category_names)

    def test_extension_tasks_validate(self):
        AlignmentTaskConfig(tasks=("seq", "bun", "exp")).validate()
        with pytest.raises(ValueError):
            AlignmentTaskConfig(tasks=("seq", "nope")).validate()


class TestDatasetPersistence:
    def test_roundtrip(self, tiny_dataset, tmp_path):
        path = save_dataset(tiny_dataset, tmp_path / "data.json")
        loaded = load_dataset(path)
        assert loaded.num_items == tiny_dataset.num_items
        assert loaded.sequences == tiny_dataset.sequences
        assert loaded.split.test_targets == tiny_dataset.split.test_targets
        assert (loaded.catalog[3].title == tiny_dataset.catalog[3].title)

    def test_loaded_dataset_supports_intentions(self, tiny_dataset,
                                                tmp_path):
        path = save_dataset(tiny_dataset, tmp_path / "data.json")
        loaded = load_dataset(path)
        generator = IntentionGenerator(loaded.catalog,
                                       np.random.default_rng(0))
        example = generator.intention_for_item(loaded.catalog[0])
        assert example.text

    def test_bad_version_rejected(self, tiny_dataset, tmp_path):
        import json

        path = save_dataset(tiny_dataset, tmp_path / "data.json")
        payload = json.loads(path.read_text())
        payload["format_version"] = 99
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError):
            load_dataset(path)


class TestEarlyStopping:
    def test_early_stop_restores_best_weights(self):
        from repro.llm import (InstructionExample, InstructionTuner,
                               LMConfig, TinyLlama, TuningConfig)
        from repro.text import WordTokenizer

        tokenizer = WordTokenizer(WordTokenizer.build_vocab(
            ["alpha beta gamma delta answer :"]))
        model = TinyLlama(LMConfig(vocab_size=len(tokenizer.vocab), dim=16,
                                   num_layers=1, num_heads=2, ffn_hidden=24))
        train = [InstructionExample("alpha beta", "gamma", "t")] * 4
        valid = [InstructionExample("alpha beta", "delta", "t")]
        tuner = InstructionTuner(model, tokenizer, TuningConfig(
            epochs=30, batch_size=4, lr=5e-3, max_len=32,
            early_stopping_patience=2))
        tuner.tune(lambda epoch: train, validation_examples=valid)
        # Training on a target that conflicts with validation must stop
        # early (well before 30 epochs worth of steps).
        assert len(tuner.model.parameters()) > 0

    def test_no_early_stop_without_patience(self):
        from repro.llm import (InstructionExample, InstructionTuner,
                               LMConfig, TinyLlama, TuningConfig)
        from repro.text import WordTokenizer

        tokenizer = WordTokenizer(WordTokenizer.build_vocab(
            ["alpha beta answer :"]))
        model = TinyLlama(LMConfig(vocab_size=len(tokenizer.vocab), dim=16,
                                   num_layers=1, num_heads=2, ffn_hidden=24))
        train = [InstructionExample("alpha", "beta", "t")]
        tuner = InstructionTuner(model, tokenizer, TuningConfig(
            epochs=3, batch_size=2, max_len=32))
        losses = tuner.tune(lambda epoch: train)
        assert len(losses) == 3
