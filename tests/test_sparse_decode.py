"""Trie-aware sparse decode: candidate head, forced fast path, workspaces.

Parity contracts pinned here:

* ``IndexTrie.allowed_token_ids`` exposes exactly the same constraint as
  the dense ``allowed_token_mask`` (union + mask in candidate space),
  with memoized identities and invalidation on trie mutation;
* the sparse (candidate-only) decode returns rankings identical to the
  dense full-vocabulary head — and scores equal to float rounding — for
  the raw stepper and for every engine adapter (LCRec, P5CID, TIGER) at
  B ∈ {1, 4, 16}, with and without the prefix cache;
* the forced-token fast path skips model forwards without changing any
  score (a singleton allowed set renormalises to log-probability 0.0),
  across one-shot decodes, mid-decode retirement, and continuous joins;
* the fused-QKV / gathered-head caches never serve stale weights across
  train()/eval() cycles.
"""

import numpy as np
import pytest

from repro.baselines import P5CID, P5CIDConfig, TIGER, TIGERConfig
from repro.core.indexer import build_random_index_set
from repro.llm import (
    LMConfig,
    PrefixKVCache,
    TinyLlama,
    beam_search_items_batched,
    beam_search_items_single,
    decode_finish,
    decode_join,
    decode_prefill,
    decode_retire,
    decode_step,
    masked_log_softmax,
)
from repro.llm.generation import log_softmax_np
from repro.quantization import IndexTrie
from repro.serving import (
    LCRecEngine,
    MicroBatcherConfig,
    P5CIDEngine,
    RecommendationService,
    TIGEREngine,
)
from repro.tensor import StepWorkspace


def make_model(vocab=60, seed=7):
    model = TinyLlama(LMConfig(vocab_size=vocab, dim=16, num_layers=1,
                               num_heads=2, ffn_hidden=24, max_seq_len=64,
                               seed=seed))
    model.eval()
    return model


def make_trie():
    return IndexTrie({
        0: (10, 12, 14),
        1: (10, 12, 15),
        2: (10, 13, 14),
        3: (11, 12, 14),
        4: (11, 13, 15),
    })


def make_forced_trie():
    """Level 2 is forced: every (L0, L1) prefix has exactly one child."""
    items = {}
    for a in (10, 11):
        for b in (20, 21):
            for d in (40, 41):
                items[len(items)] = (a, b, 30 + (b - 20), d)
    return IndexTrie(items)


MIXED_PROMPTS = [[1, 2, 3], [4, 5], [1], [2, 2, 6, 7], [3, 3, 3]]


def assert_same_hypotheses(got, expected, rtol=1e-5, atol=1e-6):
    assert [h.item_id for h in got] == [h.item_id for h in expected]
    assert [h.token_ids for h in got] == [h.token_ids for h in expected]
    np.testing.assert_allclose([h.score for h in got],
                               [h.score for h in expected],
                               rtol=rtol, atol=atol)


# ----------------------------------------------------------------------
# Trie: candidate unions, masks, memoization, mutation
# ----------------------------------------------------------------------
class TestAllowedTokenIds:
    def test_union_and_mask_match_dense_mask(self):
        trie = make_trie()
        prefixes = [(), (10,), (11,), (10, 12), (11, 13), (9,)]
        for batch in ([prefixes[0]], prefixes[1:3], prefixes[3:]):
            cand = trie.allowed_token_ids(batch)
            dense = trie.allowed_token_mask(batch, vocab_size=30)
            for row, prefix in enumerate(batch):
                np.testing.assert_array_equal(cand.union[cand.mask[row]],
                                              np.flatnonzero(dense[row]))
                np.testing.assert_array_equal(cand.per_row[row],
                                              np.flatnonzero(dense[row]))

    def test_union_covers_mixed_levels(self):
        trie = make_trie()
        cand = trie.allowed_token_ids([(), (10,), (10, 12)])
        assert set(trie.allowed_tokens(())) <= set(cand.union)
        assert set(trie.allowed_tokens((10,))) <= set(cand.union)
        assert set(trie.allowed_tokens((10, 12))) <= set(cand.union)

    def test_level_union_is_memoized_and_readonly(self):
        trie = make_trie()
        first = trie.level_union(1)
        assert trie.level_union(1) is first
        assert not first.flags.writeable
        assert set(first) == {12, 13}
        with pytest.raises(ValueError):
            trie.level_union(3)

    def test_root_token_mask_is_cached(self):
        trie = make_trie()
        first = trie.root_token_mask(30)
        assert trie.root_token_mask(30) is first
        assert first.shape == (1, 30)
        np.testing.assert_array_equal(np.flatnonzero(first[0]), [10, 11])
        # A different vocab size rebuilds rather than serving a stale row.
        assert trie.root_token_mask(40).shape == (1, 40)

    def test_add_item_invalidates_derived_caches(self):
        trie = make_trie()
        root_before = trie.root_token_mask(30)
        union_before = trie.level_union(0)
        trie.add_item(5, (20, 21, 22))
        assert trie.num_items == 6
        assert trie.item_at((20, 21, 22)) == 5
        assert 20 in set(trie.level_union(0))
        assert trie.level_union(0) is not union_before
        root_after = trie.root_token_mask(30)
        assert root_after is not root_before
        assert root_after[0, 20]

    def test_add_item_validates_depth_and_duplicates(self):
        trie = make_trie()
        with pytest.raises(ValueError):
            trie.add_item(9, (10, 12))
        with pytest.raises(ValueError):
            trie.add_item(9, (10, 12, 14))

    def test_forcedness_helpers(self):
        trie = make_forced_trie()
        cand = trie.allowed_token_ids([(10, 20), (11, 21)])
        assert cand.is_forced()
        np.testing.assert_array_equal(cand.forced_tokens(), [30, 31])
        mixed = trie.allowed_token_ids([(10,), (10, 20)])
        assert not mixed.is_forced()
        # Dead rows (alive=False) may have any fan-out without breaking it.
        assert mixed.is_forced(alive=np.array([False, True]))


class TestMaskedLogSoftmax:
    def test_matches_full_log_softmax_when_unmasked(self):
        logits = np.random.default_rng(0).standard_normal((4, 9)).astype(np.float32)
        np.testing.assert_allclose(
            masked_log_softmax(logits, np.ones((1, 9), dtype=bool)),
            log_softmax_np(logits), rtol=1e-6)

    def test_renormalises_over_the_masked_set(self):
        logits = np.array([[0.5, 1.0, -2.0, 3.0]], dtype=np.float32)
        mask = np.array([[True, False, True, False]])
        out = masked_log_softmax(logits, mask)
        assert out[0, 1] == -np.inf and out[0, 3] == -np.inf
        np.testing.assert_allclose(np.exp(out[0, [0, 2]]).sum(), 1.0, rtol=1e-6)

    def test_empty_row_is_all_neg_inf(self):
        logits = np.zeros((2, 3), dtype=np.float32)
        mask = np.array([[True, True, True], [False, False, False]])
        out = masked_log_softmax(logits, mask)
        assert np.isfinite(out[0]).all()
        assert (out[1] == -np.inf).all()


class TestStepWorkspace:
    def test_same_key_returns_same_buffer(self):
        ws = StepWorkspace()
        a = ws.take("x", (3, 4))
        assert ws.take("x", (3, 4)) is a
        assert ws.take("x", (3, 5)) is not a
        assert ws.take("y", (3, 4)) is not a
        assert ws.num_buffers == 3
        assert ws.nbytes == (12 + 15 + 12) * 4

    def test_clear_drops_buffers(self):
        ws = StepWorkspace()
        a = ws.take("x", (2, 2))
        ws.clear()
        assert ws.num_buffers == 0
        assert ws.take("x", (2, 2)) is not a


# ----------------------------------------------------------------------
# Sparse vs dense stepper parity
# ----------------------------------------------------------------------
class TestSparseDenseParity:
    @pytest.mark.parametrize("beam_size", [1, 4, 16])
    def test_rankings_and_scores_match_dense(self, beam_size):
        model, trie = make_model(), make_trie()
        sparse = beam_search_items_batched(model, MIXED_PROMPTS, trie,
                                           beam_size=beam_size, sparse=True)
        dense = beam_search_items_batched(model, MIXED_PROMPTS, trie,
                                          beam_size=beam_size, sparse=False)
        for got, expected in zip(sparse, dense):
            assert_same_hypotheses(got, expected)

    def test_matches_single_request_oracle(self):
        model, trie = make_model(), make_trie()
        batched = beam_search_items_batched(model, MIXED_PROMPTS, trie, beam_size=10)
        for prompt, hypotheses in zip(MIXED_PROMPTS, batched):
            reference = beam_search_items_single(model, prompt, trie, beam_size=10)
            assert_same_hypotheses(hypotheses, reference)

    @pytest.mark.parametrize("sparse", [True, False])
    def test_prefix_cache_parity(self, sparse):
        model, trie = make_model(), make_trie()
        cache = PrefixKVCache()
        cold = beam_search_items_batched(model, MIXED_PROMPTS, trie, beam_size=6,
                                         prefix_cache=cache, sparse=sparse)
        warm = beam_search_items_batched(model, MIXED_PROMPTS, trie, beam_size=6,
                                         prefix_cache=cache, sparse=sparse)
        plain = beam_search_items_batched(model, MIXED_PROMPTS, trie, beam_size=6,
                                          sparse=sparse)
        for a, b, c in zip(cold, warm, plain):
            assert_same_hypotheses(a, c, rtol=1e-4, atol=1e-5)
            assert_same_hypotheses(b, c, rtol=1e-4, atol=1e-5)

    def test_lm_head_gather_matches_dense_columns(self):
        model = make_model()
        hidden = np.random.default_rng(3).standard_normal((5, 16)).astype(np.float32)
        ids = np.array([2, 11, 30, 59], dtype=np.int64)
        full = np.matmul(hidden, model.lm_head.weight.data)
        np.testing.assert_allclose(model.lm_head_gather(hidden, ids),
                                   full[:, ids], rtol=1e-6)

    def test_lm_head_gather_memoizes_per_identity(self):
        model = make_model()
        ids = np.array([1, 2, 3], dtype=np.int64)
        first = model._gathered_head_weight(ids)
        assert model._gathered_head_weight(ids) is first
        # extend_vocab rebinds the head weight: the cache must not go stale.
        model.extend_vocab(4)
        assert model._gathered_head_weight(ids) is not first


class TestForcedFastPath:
    def _count_forwards(self, model):
        calls = {"n": 0}
        original = model.hidden_states

        def counting(*args, **kwargs):
            calls["n"] += 1
            return original(*args, **kwargs)

        model.hidden_states = counting
        return calls

    def test_forced_level_skips_forwards_and_keeps_parity(self):
        trie = make_forced_trie()
        model, dense_model = make_model(seed=11), make_model(seed=11)
        counts = self._count_forwards(model)
        sparse = beam_search_items_batched(model, MIXED_PROMPTS, trie,
                                           beam_size=4, sparse=True)
        sparse_forwards = counts["n"]
        counts_dense = self._count_forwards(dense_model)
        dense = beam_search_items_batched(dense_model, MIXED_PROMPTS, trie,
                                          beam_size=4, sparse=False)
        dense_forwards = counts_dense["n"]
        # Dense: prefill + 3 steps.  Sparse: level 2 is forced (no forward)
        # and its token is flushed inside level 3's combined forward.
        assert dense_forwards == 4
        assert sparse_forwards == 3
        for got, expected in zip(sparse, dense):
            assert_same_hypotheses(got, expected)

    def test_trailing_forced_levels_never_forward(self):
        # A single-item trie is forced at every level after the root.
        trie = IndexTrie({0: (10, 12, 14, 16)})
        model = make_model(seed=5)
        counts = self._count_forwards(model)
        hypotheses = beam_search_items_batched(model, [[1, 2]], trie,
                                               beam_size=8, sparse=True)
        assert counts["n"] == 1  # prefill only: levels 1..3 are all forced
        assert [h.item_id for h in hypotheses[0]] == [0]
        assert hypotheses[0][0].score == pytest.approx(
            beam_search_items_single(model, [1, 2], trie, beam_size=8)[0].score,
            abs=1e-6)

    def test_mid_decode_retire_with_pending_tokens(self):
        trie = make_forced_trie()
        model = make_model(seed=9)
        prompts = [[1, 2, 3], [4, 5]]
        state = decode_prefill(model, prompts, trie, beam_size=4, sparse=True)
        decode_step(state)  # level 1
        decode_step(state)  # level 2: forced, appended without a forward
        decode_step(state)  # level 3: combined forward flushes the pending
        assert state.done
        first = decode_retire(state, [0])[0]
        rest = decode_finish(state)[0]
        alone = beam_search_items_batched(model, [prompts[0]], trie,
                                          beam_size=4, sparse=True)[0]
        alone_rest = beam_search_items_batched(model, [prompts[1]], trie,
                                               beam_size=4, sparse=True)[0]
        assert_same_hypotheses(first, alone)
        assert_same_hypotheses(rest, alone_rest)

    def test_join_flushes_pending_tokens(self):
        trie = make_forced_trie()
        model = make_model(seed=13)
        live = decode_prefill(model, [[1, 2, 3]], trie, beam_size=4,
                              sparse=True, tags=["first"])
        decode_step(live)  # level 1
        decode_step(live)  # level 2: forced -> two pending columns
        assert live.pending.shape[1] == 2
        incoming = decode_prefill(model, [[4, 5]], trie, beam_size=4,
                                  sparse=True, tags=["second"])
        decode_join(live, incoming)
        assert live.pending.shape[1] == 1  # flushed before the join
        # Mixed-level decode: retire rows the moment they finish, exactly
        # as the continuous scheduler drives the stepper.
        merged = {}
        while live.num_rows:
            finished = live.finished_rows()
            if finished:
                tags = [live.tags[row] for row in finished]
                for tag, hypotheses in zip(tags, decode_retire(live, finished)):
                    merged[tag] = hypotheses
                continue
            decode_step(live)
        for tag, prompt in (("first", [1, 2, 3]), ("second", [4, 5])):
            alone = beam_search_items_batched(model, [prompt], trie,
                                              beam_size=4, sparse=True)[0]
            assert_same_hypotheses(merged[tag], alone)

    def test_join_rejects_mixed_sparse_settings(self):
        trie = make_trie()
        model = make_model()
        live = decode_prefill(model, [[1, 2]], trie, beam_size=4, sparse=True)
        incoming = decode_prefill(model, [[3]], trie, beam_size=4, sparse=False)
        with pytest.raises(ValueError, match="sparse"):
            decode_join(live, incoming)


class TestStaleWeightGuards:
    def test_fused_qkv_sees_weight_updates_across_training(self):
        from repro.tensor import Adam
        from repro.tensor import functional as F

        model, trie = make_model(seed=21), make_trie()
        before = beam_search_items_batched(model, [[1, 2]], trie, beam_size=5)
        optimizer = Adam(model.parameters(), lr=0.05)
        sequence = np.array([[1, 10, 12, 14]])
        model.train()
        for _ in range(30):
            optimizer.zero_grad()
            loss = F.cross_entropy(model(sequence[:, :-1]), sequence[:, 1:])
            loss.backward()
            optimizer.step()
        model.eval()
        after = beam_search_items_batched(model, [[1, 2]], trie, beam_size=5)
        fresh = TinyLlama(model.config)
        fresh.load_state_dict(model.state_dict())
        fresh.eval()
        expected = beam_search_items_batched(fresh, [[1, 2]], trie, beam_size=5)
        assert_same_hypotheses(after[0], expected[0])
        assert [h.score for h in after[0]] != [h.score for h in before[0]]


# ----------------------------------------------------------------------
# Engine adapters: sparse vs dense across backends
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def tiny_p5cid(tiny_dataset):
    model = P5CID(tiny_dataset, P5CIDConfig(epochs=2, seed=3))
    model.fit(tiny_dataset)
    return model


@pytest.fixture(scope="module")
def tiny_tiger(tiny_dataset):
    index_set = build_random_index_set(tiny_dataset.num_items, 3, 8,
                                       np.random.default_rng(3))
    model = TIGER(index_set, TIGERConfig(epochs=2, seed=3))
    model.fit(tiny_dataset)
    return model


class TestEngineSparseParity:
    @pytest.mark.parametrize("batch", [1, 4, 16])
    def test_lcrec_engine_parity(self, tiny_lcrec, tiny_dataset, batch):
        pool = tiny_dataset.split.test_histories
        histories = [list(pool[i % len(pool)]) for i in range(batch)]
        sparse = LCRecEngine(tiny_lcrec, prefix_cache=False, sparse_head=True)
        dense = LCRecEngine(tiny_lcrec, prefix_cache=False, sparse_head=False)
        assert sparse.supports_sparse_head
        assert sparse.recommend_many(histories, top_k=5) == \
            dense.recommend_many(histories, top_k=5)

    def test_lcrec_engine_parity_with_prefix_cache(self, tiny_lcrec, tiny_dataset):
        pool = tiny_dataset.split.test_histories
        histories = [list(pool[i % len(pool)]) for i in range(4)]
        sparse = LCRecEngine(tiny_lcrec, prefix_cache=True, sparse_head=True)
        dense = LCRecEngine(tiny_lcrec, prefix_cache=False, sparse_head=False)
        cold = sparse.recommend_many(histories, top_k=5)
        warm = sparse.recommend_many(histories, top_k=5)
        expected = dense.recommend_many(histories, top_k=5)
        assert cold == expected
        assert warm == expected

    def test_lcrec_continuous_service_parity(self, tiny_lcrec, tiny_dataset):
        pool = tiny_dataset.split.test_histories
        histories = [list(pool[i % len(pool)]) for i in range(6)]
        rankings = {}
        for sparse_head in (True, False):
            engine = LCRecEngine(tiny_lcrec, prefix_cache=False,
                                 sparse_head=sparse_head)
            with RecommendationService(
                engine, batcher=MicroBatcherConfig(max_batch_size=3),
                mode="continuous",
            ) as service:
                pending = [service.submit(h, top_k=5) for h in histories]
                rankings[sparse_head] = [p.result(timeout=60.0) for p in pending]
        assert rankings[True] == rankings[False]

    @pytest.mark.parametrize("batch", [1, 4, 16])
    def test_p5cid_engine_parity(self, tiny_p5cid, tiny_dataset, batch):
        pool = tiny_dataset.split.test_histories
        histories = [list(pool[i % len(pool)]) for i in range(batch)]
        sparse = P5CIDEngine(tiny_p5cid, sparse_head=True)
        dense = P5CIDEngine(tiny_p5cid, sparse_head=False)
        assert sparse.recommend_many(histories, top_k=5) == \
            dense.recommend_many(histories, top_k=5)

    @pytest.mark.parametrize("batch", [1, 4, 16])
    def test_tiger_engine_parity(self, tiny_tiger, tiny_dataset, batch):
        pool = tiny_dataset.split.test_histories
        histories = [list(pool[i % len(pool)]) for i in range(batch)]
        sparse = TIGEREngine(tiny_tiger, sparse_head=True)
        dense = TIGEREngine(tiny_tiger, sparse_head=False)
        ranked = sparse.recommend_many(histories, top_k=5)
        assert ranked == dense.recommend_many(histories, top_k=5)
        # And both match the single-request oracle loop.
        assert ranked == [tiny_tiger.recommend(h, top_k=5) for h in histories]


class TestStageTimings:
    def test_sync_flush_populates_stage_seconds(self, tiny_lcrec, tiny_dataset):
        history = list(tiny_dataset.split.test_histories[0])
        service = RecommendationService(LCRecEngine(tiny_lcrec, prefix_cache=False))
        pending = service.submit(history, top_k=3)
        service.flush()
        assert pending.result()
        stages = service.stats.stage_seconds()
        assert set(stages) == {"prefill", "step", "finalize"}
        assert stages["prefill"] > 0
        assert stages["step"] > 0
        assert stages["finalize"] >= 0

    def test_continuous_loop_populates_stage_seconds(self, tiny_lcrec, tiny_dataset):
        history = list(tiny_dataset.split.test_histories[0])
        with RecommendationService(
            LCRecEngine(tiny_lcrec, prefix_cache=False), mode="continuous"
        ) as service:
            assert service.submit(history, top_k=3).result(timeout=60.0)
            assert service.stats.prefill_seconds > 0
            assert service.stats.step_seconds > 0
