"""Cross-module property tests on core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.batching import pad_sequences
from repro.llm import LMConfig, TinyLlama, beam_search_items, sequence_logprob
from repro.quantization import IndexTrie


def make_model(vocab=24):
    return TinyLlama(LMConfig(vocab_size=vocab, dim=16, num_layers=1,
                              num_heads=2, ffn_hidden=24, max_seq_len=64,
                              seed=13))


class TestBeamSearchExactness:
    """A wide-enough beam must match exhaustive enumeration exactly."""

    def constrained_sequence_logprob(self, model, prompt, sequence, trie):
        """Summed per-level log-probs renormalised over the trie's allowed
        sets — the constrained-decoding semantics of beam_search_items."""
        full = np.asarray(list(prompt) + list(sequence), dtype=np.int64)[None, :]
        logits = model.forward(full).data[0]
        total = 0.0
        for level, token in enumerate(sequence):
            allowed = trie.allowed_tokens(tuple(sequence[:level]))
            raw = logits[len(prompt) - 1 + level, allowed]
            logp = raw - (raw.max() + np.log(np.exp(raw - raw.max()).sum()))
            total += float(logp[list(allowed).index(token)])
        return total

    def exhaustive_ranking(self, model, prompt, trie):
        scored = []
        for item, sequence in trie.all_sequences().items():
            logprob = self.constrained_sequence_logprob(model, prompt,
                                                        list(sequence), trie)
            scored.append((logprob, item))
        scored.sort(key=lambda pair: -pair[0])
        return [item for _, item in scored], [s for s, _ in scored]

    def test_wide_beam_equals_exhaustive(self):
        model = make_model()
        trie = IndexTrie({
            0: (10, 14), 1: (10, 15), 2: (11, 14), 3: (11, 16),
            4: (12, 14), 5: (12, 15),
        })
        prompt = [1, 2, 3]
        hypotheses = beam_search_items(model, prompt, trie, beam_size=100)
        beam_items = [h.item_id for h in hypotheses]
        beam_scores = [h.score for h in hypotheses]
        exact_items, exact_scores = self.exhaustive_ranking(model, prompt,
                                                            trie)
        assert beam_items == exact_items
        np.testing.assert_allclose(beam_scores, exact_scores, atol=1e-3)

    def test_narrow_beam_is_prefix_monotone(self):
        """A narrower beam returns a subset of a wider beam's top items."""
        model = make_model()
        trie = IndexTrie({
            i: (10 + i // 4, 15 + i % 4) for i in range(12)
        })
        wide = [h.item_id for h in
                beam_search_items(model, [1], trie, beam_size=50)]
        narrow = [h.item_id for h in
                  beam_search_items(model, [1], trie, beam_size=3)]
        assert narrow[0] == wide[0]  # greedy top-1 always agrees


class TestPaddingProperties:
    @given(st.lists(st.lists(st.integers(0, 9), max_size=12), min_size=1,
                    max_size=8), st.integers(1, 15))
    @settings(max_examples=40, deadline=None)
    def test_left_padding_preserves_suffixes(self, sequences, max_len):
        batch = pad_sequences(sequences, pad_value=-1, max_len=max_len)
        for row, seq in zip(batch, sequences):
            kept = [x for x in row if x != -1 or x in seq]
            trimmed = seq[-max_len:]
            # The non-pad tail of the row equals the recent suffix.
            non_pad = row[row != -1] if -1 not in trimmed else row
            assert list(non_pad[-len(trimmed):])[-len(trimmed):] == trimmed \
                or len(trimmed) == 0

    @given(st.lists(st.lists(st.integers(0, 9), min_size=1, max_size=6),
                    min_size=1, max_size=6))
    @settings(max_examples=40, deadline=None)
    def test_right_padding_preserves_prefixes(self, sequences):
        batch = pad_sequences(sequences, pad_value=-1, align="right")
        for row, seq in zip(batch, sequences):
            assert list(row[:len(seq)]) == seq


class TestVocabularyInvariants:
    def test_index_token_ids_stable_across_reregistration(self):
        from repro.text import WordTokenizer

        tokenizer = WordTokenizer(WordTokenizer.build_vocab(["hello"]))
        first = tokenizer.register_index_tokens(["<a_0>", "<a_1>"])
        second = tokenizer.register_index_tokens(["<a_0>", "<a_1>"])
        assert first == second

    def test_encoding_deterministic(self):
        from repro.text import WordTokenizer

        tokenizer = WordTokenizer(WordTokenizer.build_vocab(
            ["alpha beta gamma delta"]))
        text = "alpha <a_1> beta , gamma !"
        tokenizer.register_index_tokens(["<a_1>"])
        assert tokenizer.encode(text) == tokenizer.encode(text)


class TestDatasetDeterminism:
    def test_same_seed_same_dataset(self):
        from repro.data import build_dataset, preset_config

        a = build_dataset(preset_config("tiny"))
        b = build_dataset(preset_config("tiny"))
        assert a.sequences == b.sequences
        assert [i.title for i in a.catalog] == [i.title for i in b.catalog]

    def test_different_seed_different_interactions(self):
        from repro.data import build_dataset, preset_config

        a = build_dataset(preset_config("tiny", seed=1))
        b = build_dataset(preset_config("tiny", seed=2))
        assert a.sequences != b.sequences


class TestLogprobConsistency:
    def test_chain_rule_decomposition(self):
        """logp(ab) = logp(a) + logp(b | prompt+a)."""
        model = make_model()
        prompt = [1, 2]
        joint = sequence_logprob(model, prompt, [5, 6],
                                 length_normalize=False)
        first = sequence_logprob(model, prompt, [5], length_normalize=False)
        second = sequence_logprob(model, prompt + [5], [6],
                                  length_normalize=False)
        assert joint == pytest.approx(first + second, abs=1e-4)


# ----------------------------------------------------------------------
# Retrieval tier: the serving result contract, property-tested
# ----------------------------------------------------------------------
from repro.retrieval import (  # noqa: E402
    ClusteredKNNConfig,
    ClusteredKNNIndex,
    RetrievalRecommender,
    brute_force_topk,
)

_RETRIEVAL_VECTORS = np.random.default_rng(2024).standard_normal((48, 10)).astype(np.float32)
_RETRIEVAL_COUNTS = np.random.default_rng(7).integers(0, 12, 48)
RETRIEVER = RetrievalRecommender(
    ClusteredKNNIndex(_RETRIEVAL_VECTORS, ClusteredKNNConfig(n_clusters=6, n_probe=2)),
    popularity=_RETRIEVAL_COUNTS,
)


class TestRetrievalInvariants:
    """The contract that lets retrieval serve as the degradation lane:
    whatever the history (garbage ids included), every call returns
    exactly ``min(top_k, num_items)`` distinct in-catalog ids,
    deterministically."""

    @settings(max_examples=60, deadline=None)
    @given(history=st.lists(st.integers(min_value=-3, max_value=60), max_size=16),
           top_k=st.integers(min_value=1, max_value=60))
    def test_result_contract(self, history, top_k):
        ranked = RETRIEVER.recommend(history, top_k)
        assert len(ranked) == min(top_k, RETRIEVER.num_items)
        assert len(set(ranked)) == len(ranked)  # no duplicate item ids
        assert all(0 <= item < RETRIEVER.num_items for item in ranked)
        assert ranked == RETRIEVER.recommend(history, top_k)  # deterministic

    @settings(max_examples=40, deadline=None)
    @given(top_k=st.integers(min_value=1, max_value=48))
    def test_cold_start_is_the_popularity_ranking(self, top_k):
        """Empty histories rank by descending training count, ties by
        smaller item id — fixed at construction, never data-dependent."""
        ranked = RETRIEVER.recommend([], top_k)
        assert ranked == [int(item) for item in RETRIEVER.popularity_order[:top_k]]
        counts = _RETRIEVAL_COUNTS
        for a, b in zip(ranked, ranked[1:]):
            assert counts[a] > counts[b] or (counts[a] == counts[b] and a < b)

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000),
           top_k=st.integers(min_value=1, max_value=48))
    def test_full_probe_always_matches_brute_force(self, seed, top_k):
        query = np.random.default_rng(seed).standard_normal(10).astype(np.float32)
        exact = brute_force_topk(RETRIEVER.index.vectors, query, top_k)
        got = RETRIEVER.index.search(query, top_k, n_probe=RETRIEVER.index.num_clusters)
        assert got.tolist() == exact.tolist()
