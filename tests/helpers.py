"""Shared test utilities (configs and numerical gradient checking).

Imported absolutely (``from helpers import ...``): the tests directory is
not a package, so relative imports do not resolve here.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core import LCRecConfig
from repro.core.indexer import SemanticIndexerConfig
from repro.core.tasks import AlignmentTaskConfig
from repro.llm import PretrainConfig, TuningConfig
from repro.quantization import RQVAEConfig, RQVAETrainerConfig
from repro.tensor import Tensor


def small_lcrec_config(**overrides) -> LCRecConfig:
    """A fast LC-Rec configuration for tests."""
    config = LCRecConfig(
        pretrain=PretrainConfig(steps=80, batch_size=8, seq_len=48),
        indexer=SemanticIndexerConfig(
            rqvae=RQVAEConfig(codebook_size=8, latent_dim=16,
                              hidden_dims=(32,)),
            trainer=RQVAETrainerConfig(epochs=60, batch_size=64),
        ),
        tasks=AlignmentTaskConfig(seq_per_user=1, max_history=6),
        tuning=TuningConfig(epochs=1, batch_size=8, max_len=160),
        beam_size=10,
    )
    for key, value in overrides.items():
        setattr(config, key, value)
    return config


def numeric_grad(fn: Callable[[np.ndarray], float], x: np.ndarray,
                 eps: float = 1e-3) -> np.ndarray:
    """Central-difference gradient of a scalar function of ``x``."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = fn(x)
        flat[i] = original - eps
        minus = fn(x)
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


def check_gradient(build: Callable[[Tensor], Tensor], x_data: np.ndarray,
                   atol: float = 2e-2, rtol: float = 2e-2,
                   eps: float = 1e-3) -> None:
    """Assert analytic and numeric gradients of ``sum(build(x))`` agree."""
    x_data = np.asarray(x_data, dtype=np.float32)

    def scalar_fn(arr: np.ndarray) -> float:
        out = build(Tensor(arr.astype(np.float32)))
        return float(out.data.sum())

    x = Tensor(x_data.copy(), requires_grad=True)
    out = build(x)
    out.sum().backward()
    assert x.grad is not None, "no gradient propagated to input"
    numeric = numeric_grad(scalar_fn, x_data.copy().astype(np.float64), eps=eps)
    np.testing.assert_allclose(x.grad, numeric, atol=atol, rtol=rtol)
