"""Shared test utilities (numerical gradient checking)."""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.tensor import Tensor


def numeric_grad(fn: Callable[[np.ndarray], float], x: np.ndarray,
                 eps: float = 1e-3) -> np.ndarray:
    """Central-difference gradient of a scalar function of ``x``."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = fn(x)
        flat[i] = original - eps
        minus = fn(x)
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


def check_gradient(build: Callable[[Tensor], Tensor], x_data: np.ndarray,
                   atol: float = 2e-2, rtol: float = 2e-2,
                   eps: float = 1e-3) -> None:
    """Assert analytic and numeric gradients of ``sum(build(x))`` agree."""
    x_data = np.asarray(x_data, dtype=np.float32)

    def scalar_fn(arr: np.ndarray) -> float:
        out = build(Tensor(arr.astype(np.float32)))
        return float(out.data.sum())

    x = Tensor(x_data.copy(), requires_grad=True)
    out = build(x)
    out.sum().backward()
    assert x.grad is not None, "no gradient propagated to input"
    numeric = numeric_grad(scalar_fn, x_data.copy().astype(np.float64), eps=eps)
    np.testing.assert_allclose(x.grad, numeric, atol=atol, rtol=rtol)
