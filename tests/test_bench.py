"""Tests for the benchmark harness (scales, reporting, Table V choosers)."""

import numpy as np
import pytest

from repro.bench import bench_scale, report, scaled_dataset
from repro.bench.config import BenchScale
from repro.bench.reporting import results_dir
from repro.bench.table5 import (
    lcrec_index_chooser,
    lcrec_title_chooser,
    pretrained_lm_chooser,
    score_model_chooser,
)


class TestScales:
    def test_default_scale_small(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert bench_scale().name == "small"

    def test_env_selects_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "tiny")
        assert bench_scale().name == "tiny"

    def test_unknown_scale_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "huge")
        with pytest.raises(KeyError):
            bench_scale()

    def test_epochs_scaling_and_floor(self):
        scale = BenchScale("x", dataset_scale=1.0, epoch_scale=0.1,
                           max_eval_users=10)
        assert scale.epochs(30) == 3
        assert scale.epochs(2, minimum=5) == 5

    def test_scaled_dataset_small_vs_tiny(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "tiny")
        tiny = scaled_dataset("instruments")
        monkeypatch.setenv("REPRO_SCALE", "small")
        small = scaled_dataset("instruments")
        assert tiny.num_users < small.num_users


class TestReporting:
    def test_report_writes_file(self):
        path = report("unit_test_report", "hello table")
        assert path.read_text() == "hello table\n"
        path.unlink()

    def test_results_dir_under_repo(self):
        directory = results_dir()
        assert directory.name == "results"
        assert directory.exists()


class FakeScoreModel:
    """Prefers higher item ids."""

    def score_all(self, histories):
        return np.tile(np.arange(10, dtype=np.float32), (len(histories), 1))


class TestChoosers:
    def test_score_model_chooser(self):
        choose = score_model_chooser(FakeScoreModel())
        assert choose([0], 3, 7) == 7
        assert choose([0], 8, 2) == 8

    def test_lcrec_index_chooser_consistent(self, tiny_lcrec, tiny_dataset):
        choose = lcrec_index_chooser(tiny_lcrec)
        history = tiny_dataset.split.test_histories[0]
        first = choose(history, 1, 2)
        second = choose(history, 2, 1)  # order-invariant up to ties
        assert first in (1, 2)
        assert second in (1, 2)

    def test_lcrec_title_chooser_returns_candidate(self, tiny_lcrec,
                                                   tiny_dataset):
        choose = lcrec_title_chooser(tiny_lcrec)
        history = tiny_dataset.split.test_histories[0]
        assert choose(history, 3, 5) in (3, 5)

    def test_pretrained_lm_chooser(self, tiny_lcrec, tiny_dataset):
        lm = tiny_lcrec.pretrained_lm()
        choose = pretrained_lm_chooser(lm, tiny_lcrec.tokenizer,
                                       tiny_dataset.catalog)
        history = tiny_dataset.split.test_histories[0]
        assert choose(history, 0, 4) in (0, 4)

    def test_pretrained_lm_snapshot_excludes_index_tokens(self, tiny_lcrec):
        lm = tiny_lcrec.pretrained_lm()
        assert lm.vocab_size == tiny_lcrec.tokenizer.vocab.base_size
        assert tiny_lcrec.lm.vocab_size > lm.vocab_size
