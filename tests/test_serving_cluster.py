"""Multi-worker cluster serving: routing, admission control, shedding.

Acceptance contracts pinned here:

* a 1-worker cluster returns rankings bit-identical to a plain
  ``RecommendationService`` over the same engine (sync and async);
* rendezvous affinity is deterministic, balanced, and stable under
  worker-count changes (growing the fleet moves only the keys the new
  worker wins; shrinking it moves only the removed worker's keys);
* admission control sheds with typed ``Overloaded`` results — bounded
  backlogs at the front door, deadline expiry at the workers — and the
  deadline-vs-completion race resolves to exactly one outcome per handle;
* with a configured retrieval fallback, would-be-shed history requests
  are *served* degraded instead (flagged handles, counted separately
  from shedding), empty histories short-circuit to the cold-start lane,
  and intention/instruction submits keep their plain rejections;
* ``stop()`` drains every worker: all handles submitted before the call
  are resolved;
* engine replicas share weights but own their mutable serving state.
"""

import threading
import time

import numpy as np
import pytest

from repro.baselines import TIGER, TIGERConfig
from repro.core.indexer import build_random_index_set
from repro.serving import (
    AffinityRouter,
    ClusterStats,
    DegradedRecommendation,
    FallbackRecommender,
    GenerativeEngine,
    LCRecEngine,
    MicroBatcherConfig,
    Overloaded,
    PendingRecommendation,
    RecommendationClient,
    RecommendationHandle,
    RecommendationService,
    RejectedRecommendation,
    RequestQueue,
    RecommendRequest,
    ServingCluster,
    TIGEREngine,
    rendezvous_weight,
)

BATCHER = MicroBatcherConfig(max_batch_size=4)


def oracle(model, histories, top_k):
    return RecommendationService(
        LCRecEngine(model, prefix_cache=False), batcher=BATCHER
    ).recommend_many(histories, top_k=top_k)


class TestAffinityRouter:
    def test_deterministic_and_in_range(self):
        router = AffinityRouter(5)
        keys = [f"user:{i}" for i in range(200)]
        placed = [router.affine_worker(k) for k in keys]
        assert placed == [router.affine_worker(k) for k in keys]
        assert set(placed) <= set(range(5))
        # Every worker gets a usable share of 200 uniform keys.
        counts = np.bincount(placed, minlength=5)
        assert counts.min() > 0

    def test_ranked_is_a_permutation_led_by_affine(self):
        router = AffinityRouter(7)
        for key in ("a", "session:42", ""):
            order = router.ranked(key)
            assert sorted(order) == list(range(7))
            assert order[0] == router.affine_worker(key)

    def test_weight_is_pythonhashseed_independent(self):
        # Pinned value: a keyed BLAKE2b digest, not hash() — the same
        # session must map identically across interpreter restarts.
        assert rendezvous_weight("user:1", 0) == rendezvous_weight("user:1", 0)
        assert rendezvous_weight("user:1", 0) != rendezvous_weight("user:1", 1)
        assert rendezvous_weight("a\x000", 0) != rendezvous_weight("a", 0)

    def test_growing_fleet_moves_only_keys_the_new_worker_wins(self):
        keys = [f"user:{i}" for i in range(500)]
        before = {k: AffinityRouter(4).affine_worker(k) for k in keys}
        after = {k: AffinityRouter(5).affine_worker(k) for k in keys}
        moved = [k for k in keys if before[k] != after[k]]
        # Rendezvous property: a key moves only by being won by the new
        # worker — nothing reshuffles between surviving workers.
        assert all(after[k] == 4 for k in moved)
        # Expected moved fraction is 1/5; allow generous sampling slack.
        assert len(moved) / len(keys) < 0.35

    def test_shrinking_fleet_moves_only_the_removed_workers_keys(self):
        keys = [f"user:{i}" for i in range(500)]
        before = {k: AffinityRouter(5).affine_worker(k) for k in keys}
        after = {k: AffinityRouter(4).affine_worker(k) for k in keys}
        for key in keys:
            if before[key] != 4:  # survivors keep their placement
                assert after[key] == before[key]


class TestUnifiedClientSurface:
    def test_both_clients_speak_the_protocol(self, tiny_lcrec):
        service = RecommendationService(LCRecEngine(tiny_lcrec))
        cluster = ServingCluster(LCRecEngine(tiny_lcrec), num_workers=2)
        assert isinstance(service, RecommendationClient)
        assert isinstance(cluster, RecommendationClient)

    def test_handles_satisfy_the_protocol(self, tiny_lcrec, tiny_dataset):
        history = list(tiny_dataset.split.test_histories[0])
        service = RecommendationService(LCRecEngine(tiny_lcrec), batcher=BATCHER)
        handle = service.submit(history, top_k=3)
        assert isinstance(handle, RecommendationHandle)
        rejected = RejectedRecommendation(Overloaded("full"))
        assert isinstance(rejected, RecommendationHandle)
        assert rejected.done
        with pytest.raises(Overloaded):
            rejected.result()
        service.flush()
        assert handle.done and len(handle.result()) == 3


class TestEngineReplication:
    def test_replica_shares_weights_but_not_caches(self, tiny_lcrec):
        engine = LCRecEngine(tiny_lcrec, prefix_cache=True)
        replica = engine.replicate()
        assert replica is not engine
        assert replica.lm is not engine.lm
        # Weights shared by identity: replication must not copy arrays.
        assert replica.lm.lm_head.weight.data is engine.lm.lm_head.weight.data
        assert replica.lm.tok_embeddings is engine.lm.tok_embeddings
        # Mutable serving state private: memo and prefix cache.
        assert replica.lm._head_gather_cache is not engine.lm._head_gather_cache
        assert replica.prefix_cache is not engine.prefix_cache
        assert replica.prefix_cache.max_entries == engine.prefix_cache.max_entries
        assert replica.trie is engine.trie  # read-mostly, shared

    def test_cacheless_engine_replicates_cacheless(self, tiny_lcrec):
        replica = LCRecEngine(tiny_lcrec, prefix_cache=False).replicate()
        assert replica.prefix_cache is None

    def test_replica_rankings_identical(self, tiny_lcrec, tiny_dataset):
        histories = [list(h) for h in tiny_dataset.split.test_histories[:4]]
        engine = LCRecEngine(tiny_lcrec)
        assert engine.replicate().recommend_many(histories, top_k=5) == oracle(
            tiny_lcrec, histories, 5)

    def test_unreplicatable_engine_needs_a_factory(self, tiny_lcrec):
        class NoReplication(LCRecEngine):
            supports_replication = False

        with pytest.raises(ValueError, match="factory"):
            ServingCluster(NoReplication(tiny_lcrec), num_workers=2)
        # A factory provisions workers without replicate().
        cluster = ServingCluster(lambda: NoReplication(tiny_lcrec), num_workers=2)
        assert cluster.num_workers == 2

    def test_factory_must_return_engines(self):
        with pytest.raises(TypeError, match="GenerativeEngine"):
            ServingCluster(lambda: object(), num_workers=1)


class TestClusterParity:
    def test_single_worker_cluster_matches_service_sync(self, tiny_lcrec, tiny_dataset):
        histories = [list(h) for h in tiny_dataset.split.test_histories[:6]]
        cluster = ServingCluster(
            LCRecEngine(tiny_lcrec, prefix_cache=False), num_workers=1, batcher=BATCHER
        )
        assert cluster.recommend_many(histories, top_k=5) == oracle(tiny_lcrec, histories, 5)

    @pytest.mark.parametrize("mode", ["deadline", "continuous"])
    def test_multi_worker_cluster_matches_oracle_async(self, tiny_lcrec, tiny_dataset, mode):
        histories = [list(h) for h in tiny_dataset.split.test_histories[:8]]
        expected = oracle(tiny_lcrec, histories, 5)
        cluster = ServingCluster(
            LCRecEngine(tiny_lcrec), num_workers=3, batcher=BATCHER, mode=mode
        )
        with cluster:
            handles = [
                cluster.submit(h, top_k=5, session_key=f"user:{i}")
                for i, h in enumerate(histories)
            ]
            assert [h.result(timeout=60.0) for h in handles] == expected
        assert cluster.stats.submitted == len(histories)

    def test_tiger_fleet_parity(self, tiny_dataset):
        index_set = build_random_index_set(
            tiny_dataset.num_items, 3, 8, np.random.default_rng(0)
        )
        tiger = TIGER(index_set, TIGERConfig(epochs=2, dim=16, beam_size=10))
        tiger.fit(tiny_dataset)
        histories = [list(h) for h in tiny_dataset.split.test_histories[:6]]
        expected = [tiger.recommend(h, top_k=5) for h in histories]
        cluster = ServingCluster(TIGEREngine(tiger), num_workers=2, batcher=BATCHER)
        with cluster:
            handles = [
                cluster.submit(h, top_k=5, session_key=f"u{i}")
                for i, h in enumerate(histories)
            ]
            assert [h.result(timeout=60.0) for h in handles] == expected


class TestRoutingPolicies:
    def test_affine_requests_stick_to_one_worker(self, tiny_lcrec, tiny_dataset):
        history = list(tiny_dataset.split.test_histories[0])
        cluster = ServingCluster(LCRecEngine(tiny_lcrec), num_workers=4, batcher=BATCHER)
        with cluster:
            handles = [
                cluster.submit(history, top_k=3, session_key="user:7") for _ in range(6)
            ]
            for handle in handles:
                handle.result(timeout=60.0)
        assert cluster.stats.affine == 6 and cluster.stats.spilled == 0
        assert cluster.stats.affinity_hit_rate == 1.0
        served = [stats.requests for stats in cluster.worker_stats()]
        assert sorted(served) == [0, 0, 0, 6]  # one worker saw everything

    def test_keyless_requests_balance_least_loaded(self, tiny_lcrec, tiny_dataset):
        history = list(tiny_dataset.split.test_histories[0])
        cluster = ServingCluster(LCRecEngine(tiny_lcrec), num_workers=3, batcher=BATCHER)
        # Not started: backlogs grow as we submit, so least-loaded placement
        # must round-robin the fleet deterministically.
        handles = [cluster.submit(history, top_k=3) for _ in range(6)]
        assert cluster.stats.keyless == 6
        assert [cluster.workers[i].backlog for i in range(3)] == [2, 2, 2]
        cluster.flush()
        for handle in handles:
            assert len(handle.result()) == 3

    def test_random_routing_ignores_affinity(self, tiny_lcrec):
        cluster = ServingCluster(
            LCRecEngine(tiny_lcrec), num_workers=4, routing="random", seed=3
        )
        history = [0, 1]
        for _ in range(12):
            cluster.submit(history, top_k=3, session_key="user:7")
        assert cluster.stats.affine == 0
        assert len([w for w in range(4) if cluster.stats.per_worker.get(w)]) > 1
        cluster.flush()


class TestAdmissionControl:
    def test_spillover_when_affine_worker_saturated(self, tiny_lcrec, tiny_dataset):
        history = list(tiny_dataset.split.test_histories[0])
        cluster = ServingCluster(
            LCRecEngine(tiny_lcrec), num_workers=2, batcher=BATCHER, max_backlog=1
        )
        first = cluster.submit(history, top_k=3, session_key="user:1")
        second = cluster.submit(history, top_k=3, session_key="user:1")
        assert cluster.stats.affine == 1 and cluster.stats.spilled == 1
        third = cluster.submit(history, top_k=3, session_key="user:1")
        assert cluster.stats.rejected == 1
        assert isinstance(third, RejectedRecommendation)
        with pytest.raises(Overloaded, match="backlog") as shed:
            third.result()
        assert shed.value.reason == "queue_full"
        cluster.flush()
        assert first.result() == second.result()

    def test_no_spillover_mode_sheds_at_the_affine_worker(self, tiny_lcrec, tiny_dataset):
        history = list(tiny_dataset.split.test_histories[0])
        cluster = ServingCluster(
            LCRecEngine(tiny_lcrec),
            num_workers=2,
            batcher=BATCHER,
            max_backlog=1,
            spillover=False,
        )
        cluster.submit(history, top_k=3, session_key="user:1")
        rejected = cluster.submit(history, top_k=3, session_key="user:1")
        assert cluster.stats.rejected == 1
        with pytest.raises(Overloaded):
            rejected.result()
        cluster.flush()

    def test_shed_requests_counter_spans_all_guards(self, tiny_lcrec, tiny_dataset):
        history = list(tiny_dataset.split.test_histories[0])
        cluster = ServingCluster(
            LCRecEngine(tiny_lcrec), num_workers=1, batcher=BATCHER, max_backlog=2
        )
        cluster.submit(history, top_k=3, deadline_ms=0.01)
        cluster.submit(history, top_k=3)
        cluster.submit(history, top_k=3)  # over the backlog bound: rejected
        time.sleep(0.005)
        cluster.flush()
        assert cluster.stats.rejected == 1
        assert cluster.worker_stats()[0].shed_deadline == 1
        assert cluster.shed_requests == 2


class TestDeadlineShedding:
    def test_expired_while_queued_is_shed(self, tiny_lcrec, tiny_dataset):
        history = list(tiny_dataset.split.test_histories[0])
        service = RecommendationService(LCRecEngine(tiny_lcrec), batcher=BATCHER)
        handle = service.submit(history, top_k=3, deadline_ms=1.0)
        time.sleep(0.01)
        assert service.flush() == 0  # nothing live to decode
        with pytest.raises(Overloaded) as shed:
            handle.result(timeout=1.0)
        assert shed.value.reason == "deadline"
        assert service.stats.shed_deadline == 1

    def test_unexpired_deadline_completes_normally(self, tiny_lcrec, tiny_dataset):
        history = list(tiny_dataset.split.test_histories[0])
        service = RecommendationService(LCRecEngine(tiny_lcrec), batcher=BATCHER)
        handle = service.submit(history, top_k=3, deadline_ms=60_000.0)
        service.flush()
        assert len(handle.result()) == 3
        assert service.stats.shed_deadline == 0

    @pytest.mark.parametrize("mode", ["deadline", "continuous"])
    def test_race_resolves_to_exactly_one_outcome(self, tiny_lcrec, tiny_dataset, mode):
        """Deadlines racing completions: every handle resolves exactly once.

        Deadlines are drawn around the per-request service time, so some
        requests shed and some complete — but no handle may hang, raise
        *and* deliver, or deliver twice.
        """
        pool = tiny_dataset.split.test_histories
        histories = [list(pool[i % len(pool)]) for i in range(24)]
        service = RecommendationService(
            LCRecEngine(tiny_lcrec), batcher=BATCHER, deadline_ms=5.0, mode=mode
        )
        outcomes: list[str] = []
        with service:
            handles = [
                service.submit(h, top_k=3, deadline_ms=1.0 + 7.0 * (i % 4))
                for i, h in enumerate(histories)
            ]
            for handle in handles:
                try:
                    ranking = handle.result(timeout=60.0)
                    assert len(ranking) == 3
                    outcomes.append("served")
                except Overloaded as shed:
                    assert shed.reason == "deadline"
                    outcomes.append("shed")
        assert len(outcomes) == len(histories)
        assert service.stats.shed_deadline == outcomes.count("shed")
        assert service.stats.requests == outcomes.count("served")

    def test_deadline_validation(self, tiny_lcrec, tiny_dataset):
        history = list(tiny_dataset.split.test_histories[0])
        service = RecommendationService(LCRecEngine(tiny_lcrec))
        with pytest.raises(ValueError, match="deadline_ms"):
            service.submit(history, deadline_ms=0.0)


class TestBoundedQueue:
    def test_try_push_refuses_overflow(self):
        queue = RequestQueue(max_depth=2)
        assert queue.try_push(RecommendRequest(prompt_ids=[1]))
        assert queue.try_push(RecommendRequest(prompt_ids=[2]))
        assert not queue.try_push(RecommendRequest(prompt_ids=[3]))
        queue.drain(limit=1)
        assert queue.try_push(RecommendRequest(prompt_ids=[4]))

    def test_service_queue_depth_rejects_with_typed_handle(self, tiny_lcrec, tiny_dataset):
        history = list(tiny_dataset.split.test_histories[0])
        service = RecommendationService(
            LCRecEngine(tiny_lcrec), batcher=BATCHER, queue_depth=1
        )
        kept = service.submit(history, top_k=3)
        shed = service.submit(history, top_k=3)
        assert shed.done
        with pytest.raises(Overloaded) as err:
            shed.result()
        assert err.value.reason == "queue_full"
        assert service.stats.shed_queue_full == 1
        service.flush()
        assert len(kept.result()) == 3

    def test_depth_validation(self):
        with pytest.raises(ValueError, match="max_depth"):
            RequestQueue(max_depth=0)


class TestLifecycle:
    def test_stop_drains_all_workers(self, tiny_lcrec, tiny_dataset):
        pool = tiny_dataset.split.test_histories
        histories = [list(pool[i % len(pool)]) for i in range(12)]
        cluster = ServingCluster(
            LCRecEngine(tiny_lcrec), num_workers=3, batcher=BATCHER, deadline_ms=500.0
        )
        cluster.start()
        handles = [
            cluster.submit(h, top_k=3, session_key=f"user:{i}")
            for i, h in enumerate(histories)
        ]
        cluster.stop()  # drain=True: every submitted handle must resolve
        assert all(handle.done for handle in handles)
        assert [len(handle.result()) for handle in handles] == [3] * len(histories)
        assert not cluster.is_running
        cluster.stop()  # idempotent

    def test_concurrent_submitters_one_cluster(self, tiny_lcrec, tiny_dataset):
        pool = tiny_dataset.split.test_histories
        histories = [list(pool[i % len(pool)]) for i in range(16)]
        expected = oracle(tiny_lcrec, histories, 3)
        cluster = ServingCluster(LCRecEngine(tiny_lcrec), num_workers=2, batcher=BATCHER)
        results: list[list[int] | None] = [None] * len(histories)

        def submit_and_wait(index: int) -> None:
            handle = cluster.submit(
                histories[index], top_k=3, session_key=f"user:{index % 5}"
            )
            results[index] = handle.result(timeout=60.0)

        with cluster:
            threads = [
                threading.Thread(target=submit_and_wait, args=(i,))
                for i in range(len(histories))
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120.0)
        assert results == expected

    def test_worker_introspection(self, tiny_lcrec):
        cluster = ServingCluster(LCRecEngine(tiny_lcrec), num_workers=2)
        assert cluster.num_workers == 2
        assert len(cluster.workers) == 2
        assert cluster.backlog == 0
        assert isinstance(cluster.stats, ClusterStats)
        assert all(isinstance(w.engine, GenerativeEngine) for w in cluster.workers)
        # Worker 0 drives the original engine; worker 1 a replica.
        assert cluster.workers[0].engine.lm is not cluster.workers[1].engine.lm

    def test_cluster_validation(self, tiny_lcrec):
        engine = LCRecEngine(tiny_lcrec)
        with pytest.raises(ValueError, match="num_workers"):
            ServingCluster(engine, num_workers=0)
        with pytest.raises(ValueError, match="max_backlog"):
            ServingCluster(engine, num_workers=1, max_backlog=0)
        with pytest.raises(ValueError, match="routing"):
            ServingCluster(engine, num_workers=1, routing="round_robin")


class TestPendingHandleSurface:
    def test_pending_is_a_handle(self):
        assert issubclass(PendingRecommendation, object)
        assert isinstance(
            RejectedRecommendation(Overloaded("x", reason="deadline")), RecommendationHandle
        )

    def test_overloaded_reason_defaults(self):
        assert Overloaded("x").reason == "queue_full"
        assert Overloaded("x", reason="deadline").reason == "deadline"


class StubFallback:
    """A deterministic, call-counting retrieval fast lane for tests."""

    def __init__(self):
        self.calls = 0

    def recommend(self, history, top_k=10):
        self.calls += 1
        return list(range(top_k))


class TestDegradedFallback:
    """Shed-to-degraded: a configured fallback serves instead of rejecting."""

    def test_fallback_satisfies_the_protocol(self):
        assert isinstance(StubFallback(), FallbackRecommender)
        assert isinstance(
            DegradedRecommendation([1, 2], "queue_full"), RecommendationHandle
        )

    def test_degraded_handle_surface(self):
        handle = DegradedRecommendation([3, 1, 4], "cold_start", request_id=9)
        assert handle.done and handle.degraded
        assert handle.reason == "cold_start"
        assert handle.request_id == 9
        assert handle.result() == [3, 1, 4]
        handle.result().append(99)  # results are defensive copies
        assert handle.result() == [3, 1, 4]

    def test_queue_full_served_degraded(self, tiny_lcrec, tiny_dataset):
        history = list(tiny_dataset.split.test_histories[0])
        fallback = StubFallback()
        service = RecommendationService(
            LCRecEngine(tiny_lcrec), batcher=BATCHER, queue_depth=1, fallback=fallback
        )
        kept = service.submit(history, top_k=3)
        degraded = service.submit(history, top_k=3)
        assert degraded.done and degraded.degraded
        assert degraded.result() == [0, 1, 2]
        assert fallback.calls == 1
        # Served is not shed: the degraded counter moves, the shed one
        # does not.
        assert service.stats.degraded_queue_full == 1
        assert service.stats.shed_queue_full == 0
        service.flush()
        assert len(kept.result()) == 3 and not kept.degraded

    def test_deadline_expiry_served_degraded(self, tiny_lcrec, tiny_dataset):
        history = list(tiny_dataset.split.test_histories[0])
        fallback = StubFallback()
        service = RecommendationService(
            LCRecEngine(tiny_lcrec), batcher=BATCHER, fallback=fallback
        )
        handle = service.submit(history, top_k=4, deadline_ms=1.0)
        time.sleep(0.01)
        assert service.flush() == 0  # nothing decoded: served by fallback
        assert handle.result(timeout=1.0) == [0, 1, 2, 3]
        assert handle.degraded and handle.degraded_reason == "deadline"
        assert service.stats.degraded_deadline == 1
        assert service.stats.shed_deadline == 0

    def test_exactly_one_outcome_per_degraded_handle(self, tiny_lcrec, tiny_dataset):
        history = list(tiny_dataset.split.test_histories[0])
        service = RecommendationService(
            LCRecEngine(tiny_lcrec), batcher=BATCHER, fallback=StubFallback()
        )
        handle = service.submit(history, top_k=3, deadline_ms=1.0)
        time.sleep(0.01)
        service.flush()
        first = handle.result()
        service.flush()  # a later flush must not re-deliver or overwrite
        assert handle.result() == first
        assert service.stats.degraded_deadline == 1

    def test_intention_submits_keep_plain_rejection(self, tiny_lcrec, tiny_dataset):
        """No history, nothing to retrieve for: typed Overloaded as before."""
        history = list(tiny_dataset.split.test_histories[0])
        fallback = StubFallback()
        service = RecommendationService(
            LCRecEngine(tiny_lcrec), batcher=BATCHER, queue_depth=1, fallback=fallback
        )
        service.submit(history, top_k=3)
        shed = service.submit_intention("something comfortable")
        with pytest.raises(Overloaded):
            shed.result()
        assert not shed.degraded
        assert fallback.calls == 0
        assert service.stats.shed_queue_full == 1
        service.flush()

    def test_cluster_front_door_serves_degraded(self, tiny_lcrec, tiny_dataset):
        history = list(tiny_dataset.split.test_histories[0])
        fallback = StubFallback()
        cluster = ServingCluster(
            LCRecEngine(tiny_lcrec),
            num_workers=1,
            batcher=BATCHER,
            max_backlog=1,
            fallback=fallback,
        )
        kept = cluster.submit(history, top_k=3)
        degraded = cluster.submit(history, top_k=3)
        assert isinstance(degraded, DegradedRecommendation)
        assert degraded.reason == "queue_full"
        assert degraded.result() == [0, 1, 2]
        assert cluster.stats.degraded == 1
        assert cluster.stats.rejected == 0
        assert cluster.shed_requests == 0
        assert cluster.degraded_requests == 1
        cluster.flush()
        assert len(kept.result()) == 3

    def test_cluster_cold_start_lane(self, tiny_lcrec):
        fallback = StubFallback()
        cluster = ServingCluster(
            LCRecEngine(tiny_lcrec), num_workers=2, batcher=BATCHER, fallback=fallback
        )
        handle = cluster.submit([], top_k=5, session_key="user:new")
        assert isinstance(handle, DegradedRecommendation)
        assert handle.reason == "cold_start"
        assert handle.result() == [0, 1, 2, 3, 4]
        assert cluster.stats.cold_start == 1 and cluster.stats.degraded == 1
        # No worker saw the request.
        assert cluster.stats.per_worker == {}
        assert cluster.backlog == 0

    def test_retrieval_recommender_is_a_working_fallback(self, tiny_lcrec, tiny_dataset):
        """End-to-end with the shipped fast lane, not a stub."""
        from repro.retrieval import ClusteredKNNConfig, RetrievalRecommender

        retriever = RetrievalRecommender.from_lcrec(
            tiny_lcrec, ClusteredKNNConfig(n_clusters=4, n_probe=2)
        )
        history = list(tiny_dataset.split.test_histories[0])
        cluster = ServingCluster(
            LCRecEngine(tiny_lcrec),
            num_workers=1,
            batcher=BATCHER,
            max_backlog=1,
            fallback=retriever,
        )
        kept = cluster.submit(history, top_k=5)
        degraded = cluster.submit(history, top_k=5)
        assert degraded.degraded
        assert degraded.result() == retriever.recommend(history, 5)
        cluster.flush()
        assert len(kept.result()) == 5

    def test_no_fallback_means_pre_existing_shedding(self, tiny_lcrec, tiny_dataset):
        """fallback=None keeps the typed-rejection behaviour bit-for-bit."""
        history = list(tiny_dataset.split.test_histories[0])
        service = RecommendationService(
            LCRecEngine(tiny_lcrec), batcher=BATCHER, queue_depth=1
        )
        service.submit(history, top_k=3)
        shed = service.submit(history, top_k=3)
        with pytest.raises(Overloaded):
            shed.result()
        assert not shed.degraded
        assert service.stats.shed_queue_full == 1
        assert service.stats.degraded_queue_full == 0
        service.flush()
