"""Tests for constrained beam search, greedy decoding and scoring."""

import numpy as np
import pytest

from repro.llm import (
    LMConfig,
    TinyLlama,
    beam_search_items,
    greedy_generate,
    sequence_logprob,
)
from repro.quantization import IndexTrie


def make_model(vocab=30):
    return TinyLlama(LMConfig(vocab_size=vocab, dim=16, num_layers=1,
                              num_heads=2, ffn_hidden=24, max_seq_len=64,
                              seed=7))


def make_trie():
    # Items in token space 10..15, 3 levels.
    return IndexTrie({
        0: (10, 12, 14),
        1: (10, 12, 15),
        2: (10, 13, 14),
        3: (11, 12, 14),
        4: (11, 13, 15),
    })


class TestBeamSearch:
    def test_returns_only_legal_items(self):
        model = make_model()
        trie = make_trie()
        hypotheses = beam_search_items(model, [1, 2, 3], trie, beam_size=10)
        legal = set(trie.all_sequences().keys())
        for hypothesis in hypotheses:
            assert hypothesis.item_id in legal
            assert trie.item_at(hypothesis.token_ids) == hypothesis.item_id

    def test_scores_sorted_descending(self):
        model = make_model()
        hypotheses = beam_search_items(model, [1], make_trie(), beam_size=5)
        scores = [h.score for h in hypotheses]
        assert scores == sorted(scores, reverse=True)

    def test_beam_covers_all_items_when_wide(self):
        model = make_model()
        hypotheses = beam_search_items(model, [1], make_trie(), beam_size=50)
        assert {h.item_id for h in hypotheses} == {0, 1, 2, 3, 4}

    def test_beam_size_one_is_greedy_path(self):
        model = make_model()
        hypotheses = beam_search_items(model, [1], make_trie(), beam_size=1)
        assert len(hypotheses) == 1

    def test_beam_size_validated(self):
        with pytest.raises(ValueError):
            beam_search_items(make_model(), [1], make_trie(), beam_size=0)

    def test_scores_are_constrained_log_probabilities(self):
        """Beam score must equal the summed *constrained* token log-probs.

        Constrained decoding masks illegal tokens to -inf before the
        log-softmax (what a prefix_allowed_tokens_fn logits processor
        does), so each level's distribution renormalises over the tokens
        the trie allows for that prefix.
        """
        model = make_model()
        trie = make_trie()
        prompt = [1, 2]
        hypotheses = beam_search_items(model, prompt, trie, beam_size=50)
        best = hypotheses[0]
        full = np.asarray(prompt + list(best.token_ids), dtype=np.int64)[None, :]
        logits = model.forward(full).data[0]
        expected = 0.0
        for level, token in enumerate(best.token_ids):
            allowed = trie.allowed_tokens(best.token_ids[:level])
            raw = logits[len(prompt) - 1 + level, allowed]
            level_logp = raw - (raw.max() + np.log(np.exp(raw - raw.max()).sum()))
            expected += float(level_logp[list(allowed).index(token)])
        assert best.score == pytest.approx(expected, abs=1e-3)


class TestGreedyGenerate:
    def test_stops_at_eos(self):
        model = make_model()
        # Find what the model wants to generate, then ban everything else so
        # the second token is forced to be "eos".
        out = greedy_generate(model, [1, 2], max_new_tokens=5, eos_id=-1)
        assert len(out) == 5

    def test_eos_terminates(self):
        model = make_model()
        first = greedy_generate(model, [1, 2], max_new_tokens=5, eos_id=-1)[0]
        out = greedy_generate(model, [1, 2], max_new_tokens=5, eos_id=first)
        assert out == []

    def test_banned_ids_never_generated(self):
        model = make_model()
        free = greedy_generate(model, [1], max_new_tokens=6, eos_id=-1)
        banned = {free[0]}
        constrained = greedy_generate(model, [1], max_new_tokens=6, eos_id=-1,
                                      banned_ids=banned)
        assert banned.isdisjoint(constrained)


class TestSequenceLogprob:
    def test_is_negative(self):
        model = make_model()
        assert sequence_logprob(model, [1, 2], [3, 4]) < 0

    def test_length_normalization(self):
        model = make_model()
        raw = sequence_logprob(model, [1], [3, 3, 3], length_normalize=False)
        normalized = sequence_logprob(model, [1], [3, 3, 3])
        assert normalized == pytest.approx(raw / 3)

    def test_empty_continuation_rejected(self):
        with pytest.raises(ValueError):
            sequence_logprob(make_model(), [1], [])

    def test_higher_probability_for_trained_continuation(self):
        """After overfitting one pattern, its logprob should win."""
        from repro.tensor import Adam
        from repro.tensor import functional as F

        model = make_model()
        optimizer = Adam(model.parameters(), lr=0.01)
        sequence = np.array([[1, 5, 6, 7]])
        for _ in range(60):
            optimizer.zero_grad()
            loss = F.cross_entropy(model(sequence[:, :-1]), sequence[:, 1:])
            loss.backward()
            optimizer.step()
        model.eval()
        good = sequence_logprob(model, [1], [5, 6, 7])
        bad = sequence_logprob(model, [1], [9, 9, 9])
        assert good > bad
