"""Tests for index construction, conflict resolution and the trie."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quantization import (
    IndexConflictError,
    IndexTrie,
    ItemIndexSet,
    count_conflicts,
    resolve_conflicts_extra_level,
    resolve_conflicts_usm,
)
from repro.text import WordTokenizer


class TestItemIndexSet:
    def make(self):
        codes = np.array([[0, 1], [0, 2], [1, 0]])
        return ItemIndexSet(codes, [2, 3])

    def test_token_strings(self):
        index_set = self.make()
        assert index_set.token_strings(0) == ("<a_0>", "<b_1>")

    def test_index_text(self):
        assert self.make().index_text(2) == "<a_1><b_0>"

    def test_all_token_strings_cover_space(self):
        tokens = self.make().all_token_strings()
        assert tokens == ["<a_0>", "<a_1>", "<b_0>", "<b_1>", "<b_2>"]

    def test_uniqueness_check(self):
        assert self.make().is_unique()
        dupes = ItemIndexSet(np.array([[0, 1], [0, 1]]), [1, 2])
        assert not dupes.is_unique()

    def test_code_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            ItemIndexSet(np.array([[5]]), [3])

    def test_register_and_trie_roundtrip(self):
        index_set = self.make()
        tokenizer = WordTokenizer(WordTokenizer.build_vocab(["hello world"]))
        index_set.register(tokenizer)
        trie = index_set.build_trie(tokenizer)
        assert trie.num_items == 3
        for item in range(3):
            ids = index_set.token_ids(item, tokenizer)
            assert trie.item_at(ids) == item

    def test_token_ids_in_extension_region(self):
        index_set = self.make()
        tokenizer = WordTokenizer(WordTokenizer.build_vocab(["some text"]))
        index_set.register(tokenizer)
        for item in range(3):
            for token_id in index_set.token_ids(item, tokenizer):
                assert tokenizer.vocab.is_extension_id(token_id)


class TestConflictCounting:
    def test_counts_items_in_groups(self):
        codes = np.array([[0, 0], [0, 0], [0, 1], [1, 1], [1, 1], [1, 1]])
        assert count_conflicts(codes) == 5

    def test_zero_when_unique(self):
        assert count_conflicts(np.array([[0], [1], [2]])) == 0


class TestExtraLevelResolution:
    def test_appends_enumeration(self):
        codes = np.array([[0, 0], [0, 0], [1, 1]])
        resolved, extra_size = resolve_conflicts_extra_level(codes)
        assert resolved.shape == (3, 3)
        assert extra_size == 2
        assert count_conflicts(resolved) == 0

    def test_no_conflicts_yields_zero_level(self):
        codes = np.array([[0, 0], [0, 1]])
        resolved, extra_size = resolve_conflicts_extra_level(codes)
        assert extra_size == 1
        np.testing.assert_array_equal(resolved[:, -1], [0, 0])


def _fake_quantization(codes, latent_dim=4, seed=0):
    """Residuals/codebooks consistent with given greedy codes."""
    rng = np.random.default_rng(seed)
    n, levels = codes.shape
    codebooks = [rng.standard_normal((8, latent_dim)).astype(np.float32) * 2
                 for _ in range(levels)]
    level_residuals = rng.standard_normal((n, levels, latent_dim)).astype(
        np.float32)
    return level_residuals, codebooks


class TestUSMResolution:
    def test_resolves_simple_conflicts(self):
        codes = np.array([[0, 1, 2], [0, 1, 2], [0, 1, 3]])
        level_residuals, codebooks = _fake_quantization(codes)
        resolved = resolve_conflicts_usm(codes, level_residuals, codebooks)
        assert count_conflicts(resolved) == 0
        # Prefixes of non-spilled items stay intact.
        np.testing.assert_array_equal(resolved[:, :2], codes[:, :2])

    def test_untouched_when_no_conflicts(self):
        codes = np.array([[0, 1, 2], [0, 1, 3], [1, 0, 0]])
        level_residuals, codebooks = _fake_quantization(codes)
        resolved = resolve_conflicts_usm(codes, level_residuals, codebooks)
        np.testing.assert_array_equal(resolved, codes)

    def test_spills_when_bucket_overflows(self):
        # 10 items, all on the same 2-level prefix, last codebook size 8.
        codes = np.tile(np.array([[2, 3, 0]]), (10, 1))
        level_residuals, codebooks = _fake_quantization(codes, seed=3)
        resolved = resolve_conflicts_usm(codes, level_residuals, codebooks)
        assert count_conflicts(resolved) == 0

    def test_single_level_overflow_raises(self):
        codes = np.zeros((10, 1), dtype=np.int64)
        rng = np.random.default_rng(0)
        level_residuals = rng.standard_normal((10, 1, 4)).astype(np.float32)
        codebooks = [rng.standard_normal((4, 4)).astype(np.float32)]
        with pytest.raises(IndexConflictError):
            resolve_conflicts_usm(codes, level_residuals, codebooks)

    def test_keeps_nonconflicting_assignments(self):
        codes = np.array([[0, 0, 5], [0, 0, 5], [0, 0, 1]])
        level_residuals, codebooks = _fake_quantization(codes, seed=5)
        resolved = resolve_conflicts_usm(codes, level_residuals, codebooks)
        assert resolved[2, 2] == 1  # unique item untouched

    @given(st.integers(2, 40), st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_always_unique_after_resolution(self, n_items, seed):
        rng = np.random.default_rng(seed)
        codes = rng.integers(0, 3, size=(n_items, 3)).astype(np.int64)
        levels = codes.shape[1]
        codebooks = [rng.standard_normal((8, 4)).astype(np.float32)
                     for _ in range(levels)]
        level_residuals = rng.standard_normal((n_items, levels, 4)).astype(
            np.float32)
        resolved = resolve_conflicts_usm(codes, level_residuals, codebooks)
        assert count_conflicts(resolved) == 0
        assert (resolved[:, :2] <= 7).all()


class TestIndexTrie:
    def make(self):
        return IndexTrie({0: (10, 20), 1: (10, 21), 2: (11, 20)})

    def test_allowed_tokens_root(self):
        np.testing.assert_array_equal(self.make().allowed_tokens(()), [10, 11])

    def test_allowed_tokens_prefix(self):
        np.testing.assert_array_equal(self.make().allowed_tokens((10,)),
                                      [20, 21])

    def test_unknown_prefix_empty(self):
        assert len(self.make().allowed_tokens((99,))) == 0

    def test_item_lookup(self):
        assert self.make().item_at((11, 20)) == 2

    def test_item_lookup_missing(self):
        with pytest.raises(KeyError):
            self.make().item_at((11, 21))

    def test_items_under_prefix(self):
        assert sorted(self.make().items_under_prefix((10,))) == [0, 1]

    def test_duplicate_sequences_rejected(self):
        with pytest.raises(ValueError):
            IndexTrie({0: (1, 2), 1: (1, 2)})

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            IndexTrie({0: (1, 2), 1: (1,)})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            IndexTrie({})

    def test_contains_prefix(self):
        trie = self.make()
        assert trie.contains_prefix(())
        assert trie.contains_prefix((10,))
        assert trie.contains_prefix((10, 20))
        assert not trie.contains_prefix((12,))

    @given(st.sets(st.tuples(st.integers(0, 5), st.integers(0, 5),
                             st.integers(0, 5)), min_size=1, max_size=40))
    @settings(max_examples=30, deadline=None)
    def test_every_leaf_reachable_via_allowed_tokens(self, sequences):
        trie = IndexTrie({i: seq for i, seq in enumerate(sorted(sequences))})
        # Walk the trie depth-first using only allowed_tokens.
        found = set()
        stack = [()]
        while stack:
            prefix = stack.pop()
            if len(prefix) == trie.num_levels:
                found.add(trie.item_at(prefix))
                continue
            for token in trie.allowed_tokens(prefix):
                stack.append(prefix + (int(token),))
        assert found == set(range(len(sequences)))
