"""Tests for module weight persistence."""

import numpy as np
import pytest

from repro.llm import LMConfig, TinyLlama
from repro.tensor import MLP, Tensor
from repro.tensor.serialize import load_module, save_module


class TestSerialization:
    def test_roundtrip_mlp(self, tmp_path):
        source = MLP([4, 8, 2], rng=np.random.default_rng(1))
        target = MLP([4, 8, 2], rng=np.random.default_rng(2))
        path = save_module(source, tmp_path / "mlp")
        load_module(target, path)
        x = Tensor(np.random.default_rng(3).standard_normal((5, 4))
                   .astype(np.float32))
        np.testing.assert_allclose(source(x).data, target(x).data)

    def test_roundtrip_language_model(self, tmp_path):
        config = LMConfig(vocab_size=40, dim=16, num_layers=1, num_heads=2,
                          ffn_hidden=24)
        source = TinyLlama(config)
        target = TinyLlama(config)
        path = save_module(source, tmp_path / "lm.npz")
        load_module(target, path)
        tokens = np.array([[1, 2, 3]])
        np.testing.assert_allclose(source(tokens).data, target(tokens).data)

    def test_suffix_normalised(self, tmp_path):
        model = MLP([2, 2], rng=np.random.default_rng(0))
        path = save_module(model, tmp_path / "weights")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_mismatched_architecture_rejected(self, tmp_path):
        source = MLP([4, 8, 2], rng=np.random.default_rng(1))
        target = MLP([4, 4, 2], rng=np.random.default_rng(2))
        path = save_module(source, tmp_path / "mlp")
        with pytest.raises(ValueError):
            load_module(target, path)
