"""Tests for TIGER, P5-CID, DSSM and the generative machinery."""

import numpy as np
import pytest

from repro.baselines import (
    DSSM,
    DSSMConfig,
    IndexTokenSpace,
    P5CID,
    P5CIDConfig,
    TIGER,
    TIGERConfig,
    build_cooccurrence_matrix,
    collaborative_index_set,
    spectral_cluster,
)
from repro.baselines.generative import NUM_SPECIALS
from repro.core.indexer import build_random_index_set
from repro.data import IntentionGenerator


class TestIndexTokenSpace:
    def test_token_ids_disjoint_across_levels(self, rng):
        index_set = build_random_index_set(20, 3, 4, rng)
        space = IndexTokenSpace(index_set)
        level_ranges = []
        for level in range(3):
            offset = space.level_offsets[level]
            level_ranges.append(set(range(offset, offset + 4)))
        assert level_ranges[0].isdisjoint(level_ranges[1])
        assert level_ranges[1].isdisjoint(level_ranges[2])
        assert space.vocab_size == NUM_SPECIALS + 12

    def test_history_ids_concatenate(self, rng):
        index_set = build_random_index_set(20, 3, 4, rng)
        space = IndexTokenSpace(index_set)
        ids = space.history_ids([0, 1])
        assert ids == list(space.item_tokens(0)) + list(space.item_tokens(1))

    def test_trie_resolves_items(self, rng):
        index_set = build_random_index_set(20, 3, 4, rng)
        space = IndexTokenSpace(index_set)
        trie = space.build_trie()
        for item in range(20):
            assert trie.item_at(space.item_tokens(item)) == item

    def test_conflicting_index_set_rejected(self):
        from repro.quantization import ItemIndexSet

        dupes = ItemIndexSet(np.array([[0, 0], [0, 0]]), [1, 1])
        with pytest.raises(ValueError):
            IndexTokenSpace(dupes)


class TestCollaborativeIndexing:
    def test_cooccurrence_symmetry(self, tiny_dataset):
        matrix = build_cooccurrence_matrix(tiny_dataset)
        np.testing.assert_allclose(matrix, matrix.T)
        assert (np.diag(matrix) == 0).all()

    def test_spectral_cluster_labels(self, rng):
        # Two disconnected cliques should be separated.
        block = np.ones((5, 5)) - np.eye(5)
        adjacency = np.zeros((10, 10))
        adjacency[:5, :5] = block
        adjacency[5:, 5:] = block
        labels = spectral_cluster(adjacency, 2, rng)
        assert len(set(labels[:5])) == 1
        assert len(set(labels[5:])) == 1
        assert labels[0] != labels[5]

    def test_collaborative_index_unique(self, tiny_dataset):
        index_set = collaborative_index_set(tiny_dataset, num_levels=2,
                                            branch=4)
        assert index_set.is_unique()
        assert index_set.num_levels == 3  # 2 cluster levels + enumeration

    def test_cooccurring_items_share_prefix(self, tiny_dataset):
        """Items that co-occur heavily should land in the same top cluster
        more often than random pairs."""
        matrix = build_cooccurrence_matrix(tiny_dataset)
        index_set = collaborative_index_set(tiny_dataset, num_levels=2,
                                            branch=4, seed=1)
        level0 = index_set.codes[:, 0]
        strong_pairs = np.argwhere(matrix >= np.quantile(matrix[matrix > 0],
                                                         0.9))
        strong_same = np.mean([level0[a] == level0[b]
                               for a, b in strong_pairs])
        rng = np.random.default_rng(0)
        random_pairs = rng.integers(0, len(level0), size=(200, 2))
        random_same = np.mean([level0[a] == level0[b]
                               for a, b in random_pairs])
        assert strong_same > random_same


class TestTIGER:
    @pytest.fixture()
    def tiger(self, tiny_dataset, rng):
        index_set = build_random_index_set(tiny_dataset.num_items, 3, 8, rng)
        model = TIGER(index_set, TIGERConfig(epochs=3, dim=16, beam_size=10))
        model.fit(tiny_dataset)
        return model

    def test_recommend_legal_unique_items(self, tiger, tiny_dataset):
        ranked = tiger.recommend(tiny_dataset.split.test_histories[0],
                                 top_k=10)
        assert len(ranked) == len(set(ranked))
        assert all(0 <= i < tiny_dataset.num_items for i in ranked)

    def test_recommend_always_returns_top_k(self, tiger, tiny_dataset):
        """Regression: a beam that dedups short must be widened/backfilled
        so ranking metrics never see truncated lists."""
        num_items = tiny_dataset.num_items
        for top_k in (1, 10, num_items, num_items + 7):
            ranked = tiger.recommend(tiny_dataset.split.test_histories[0],
                                     top_k=top_k)
            assert len(ranked) == min(top_k, num_items)
            assert len(ranked) == len(set(ranked))
        # top_k beyond the catalog covers every item exactly once.
        everything = tiger.recommend(tiny_dataset.split.test_histories[0],
                                     top_k=num_items + 7)
        assert sorted(everything) == list(range(num_items))

    def test_training_loss_decreases(self, tiny_dataset, rng):
        index_set = build_random_index_set(tiny_dataset.num_items, 3, 8, rng)
        model = TIGER(index_set, TIGERConfig(epochs=6, dim=16))
        losses = model.fit(tiny_dataset)
        assert losses[-1] < losses[0]

    def test_score_all_not_supported(self, tiger):
        with pytest.raises(NotImplementedError):
            tiger.score_all([[0]])


class TestP5CID:
    @pytest.fixture(scope="class")
    def p5cid(self, tiny_dataset):
        model = P5CID(tiny_dataset, P5CIDConfig(epochs=3, dim=16,
                                                cluster_levels=2, branch=4,
                                                beam_size=10))
        model.losses = model.fit(tiny_dataset)
        return model

    def test_fit_and_recommend(self, p5cid, tiny_dataset):
        assert p5cid.losses[-1] < p5cid.losses[0]
        ranked = p5cid.recommend(tiny_dataset.split.test_histories[0],
                                 top_k=5)
        assert len(ranked) == 5
        assert all(0 <= i < tiny_dataset.num_items for i in ranked)

    def test_recommend_many_matches_per_request(self, p5cid, tiny_dataset):
        """The batched engine route returns per-request results verbatim."""
        histories = [list(h) for h in tiny_dataset.split.test_histories[:5]]
        batched = p5cid.recommend_many(histories, top_k=5)
        assert batched == [p5cid.recommend(h, top_k=5) for h in histories]

    def test_recommend_always_returns_top_k(self, p5cid, tiny_dataset):
        """Regression: short rankings are widened/backfilled to top_k."""
        num_items = tiny_dataset.num_items
        history = list(tiny_dataset.split.test_histories[0])
        for top_k in (1, 10, num_items, num_items + 3):
            ranked = p5cid.recommend(history, top_k=top_k)
            assert len(ranked) == min(top_k, num_items)
            assert len(ranked) == len(set(ranked))
        everything = p5cid.recommend(history, top_k=num_items + 3)
        assert sorted(everything) == list(range(num_items))


class TestDSSM:
    def test_retrieval_learns_text_matching(self, tiny_dataset):
        generator = IntentionGenerator(tiny_dataset.catalog,
                                       np.random.default_rng(3))
        train = generator.training_intentions(tiny_dataset, per_user=2)
        titles = [item.title for item in tiny_dataset.catalog]
        model = DSSM(titles, DSSMConfig(epochs=10, dim=24),
                     extra_texts=[e.text for e in train])
        model.fit(train)
        test = generator.test_intentions(tiny_dataset)[:30]
        hits = sum(1 for example in test
                   if example.item_id in model.retrieve(example.text, 10))
        # Random chance would be ~25% on 40 items; text matching much higher.
        assert hits / len(test) > 0.4

    def test_retrieve_returns_valid_ids(self, tiny_dataset):
        titles = [item.title for item in tiny_dataset.catalog]
        model = DSSM(titles, DSSMConfig(epochs=1))
        ranked = model.retrieve("anything at all", top_k=7)
        assert len(ranked) == 7
        assert all(0 <= i < len(titles) for i in ranked)

    def test_fit_requires_examples(self, tiny_dataset):
        titles = [item.title for item in tiny_dataset.catalog]
        model = DSSM(titles)
        with pytest.raises(ValueError):
            model.fit([])

    def test_item_vector_cache_invalidated_by_fit(self, tiny_dataset):
        generator = IntentionGenerator(tiny_dataset.catalog,
                                       np.random.default_rng(4))
        train = generator.training_intentions(tiny_dataset, per_user=1)
        titles = [item.title for item in tiny_dataset.catalog]
        model = DSSM(titles, DSSMConfig(epochs=1))
        model.retrieve("warm the cache", top_k=3)
        assert model._item_vectors is not None
        model.fit(train)
        assert model._item_vectors is None
