"""Tests for the TinyLlama language model."""

import numpy as np
import pytest

from repro.llm import LMConfig, TinyLlama
from repro.tensor import no_grad


def make_model(**kwargs):
    defaults = dict(vocab_size=50, dim=32, num_layers=2, num_heads=4,
                    ffn_hidden=48, max_seq_len=64, seed=5)
    defaults.update(kwargs)
    return TinyLlama(LMConfig(**defaults))


class TestTinyLlama:
    def test_logit_shape(self):
        model = make_model()
        tokens = np.zeros((2, 7), dtype=np.int64)
        assert model(tokens).shape == (2, 7, 50)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TinyLlama(LMConfig(dim=30, num_heads=4))  # not divisible
        with pytest.raises(ValueError):
            TinyLlama(LMConfig(dim=12, num_heads=4))  # odd head dim (3)
        with pytest.raises(ValueError):
            TinyLlama(LMConfig(vocab_size=2))

    def test_causality(self):
        model = make_model()
        model.eval()
        rng = np.random.default_rng(0)
        tokens = rng.integers(0, 50, size=(1, 6))
        with no_grad():
            base = model(tokens).data
            perturbed = tokens.copy()
            perturbed[0, -1] = (perturbed[0, -1] + 1) % 50
            changed = model(perturbed).data
        np.testing.assert_allclose(base[0, :5], changed[0, :5], atol=1e-4)

    def test_incremental_matches_full(self):
        model = make_model()
        model.eval()
        rng = np.random.default_rng(1)
        tokens = rng.integers(0, 50, size=(1, 8))
        with no_grad():
            full = model(tokens).data
            caches = model.new_caches()
            prefix_logits = model(tokens[:, :5], caches=caches).data
            step_outputs = [prefix_logits]
            for t in range(5, 8):
                step_outputs.append(model(tokens[:, t:t + 1],
                                          caches=caches).data)
        incremental = np.concatenate(step_outputs, axis=1)
        np.testing.assert_allclose(full, incremental, atol=1e-3)

    def test_extend_vocab_grows_both_ends(self):
        model = make_model()
        model.extend_vocab(10)
        assert model.vocab_size == 60
        tokens = np.array([[55, 59]])
        assert model(tokens).shape == (1, 2, 60)

    def test_extend_vocab_preserves_old_logits(self):
        model = make_model()
        model.eval()
        tokens = np.array([[1, 2, 3]])
        with no_grad():
            before = model(tokens).data
        model.extend_vocab(5)
        with no_grad():
            after = model(tokens).data
        np.testing.assert_allclose(before, after[:, :, :50], atol=1e-5)

    def test_extend_vocab_zero_is_noop(self):
        model = make_model()
        model.extend_vocab(0)
        assert model.vocab_size == 50

    def test_gradients_flow_everywhere(self):
        model = make_model(num_layers=1)
        from repro.tensor import functional as F

        tokens = np.random.default_rng(2).integers(0, 50, size=(2, 5))
        targets = np.random.default_rng(3).integers(0, 50, size=(2, 5))
        loss = F.cross_entropy(model(tokens), targets)
        loss.backward()
        for name, param in model.named_parameters():
            assert param.grad is not None, f"no grad: {name}"

    def test_cache_reorder_for_beams(self):
        model = make_model()
        model.eval()
        with no_grad():
            caches = model.new_caches()
            tokens = np.array([[1, 2], [3, 4]])
            model(tokens, caches=caches)
            model.reorder_caches(caches, np.array([1, 0]))
            assert caches[0].keys.shape[0] == 2

    def test_hidden_states_shape(self):
        model = make_model()
        hidden = model.hidden_states(np.zeros((3, 4), dtype=np.int64))
        assert hidden.shape == (3, 4, 32)
