"""Tests for multi-head attention, RoPE and the KV cache."""

import numpy as np

from repro.tensor import (
    KVCache,
    MultiHeadAttention,
    RotaryEmbedding,
    Tensor,
    causal_mask,
    no_grad,
)

from helpers import check_gradient


def rng():
    return np.random.default_rng(3)


class TestCausalMask:
    def test_square(self):
        mask = causal_mask(3, 3)
        expected = np.array(
            [[False, True, True], [False, False, True], [False, False, False]]
        )
        np.testing.assert_array_equal(mask, expected)

    def test_offset_decodes_one_step(self):
        # A single query at absolute position 2 may see keys 0..2 of 4.
        mask = causal_mask(1, 4, offset=2)
        np.testing.assert_array_equal(mask, [[False, False, False, True]])


class TestRotaryEmbedding:
    def test_rotation_preserves_norm(self):
        rope = RotaryEmbedding(head_dim=8, max_positions=32)
        x = Tensor(rng().standard_normal((2, 2, 5, 8)).astype(np.float32))
        out = rope.apply(x)
        np.testing.assert_allclose(
            np.linalg.norm(out.data, axis=-1),
            np.linalg.norm(x.data, axis=-1),
            rtol=1e-4,
        )

    def test_position_zero_is_identity(self):
        rope = RotaryEmbedding(head_dim=8)
        x = Tensor(rng().standard_normal((1, 1, 1, 8)).astype(np.float32))
        np.testing.assert_allclose(rope.apply(x, offset=0).data, x.data, atol=1e-6)

    def test_relative_property(self):
        # <rope(q, m), rope(k, n)> depends only on m - n.
        rope = RotaryEmbedding(head_dim=8, max_positions=64)
        q = rng().standard_normal((1, 1, 1, 8)).astype(np.float32)
        k = rng().standard_normal((1, 1, 1, 8)).astype(np.float32)

        def score(m, n):
            qr = rope.apply(Tensor(q), offset=m).data
            kr = rope.apply(Tensor(k), offset=n).data
            return float((qr * kr).sum())

        assert abs(score(3, 1) - score(10, 8)) < 1e-4

    def test_odd_dim_rejected(self):
        try:
            RotaryEmbedding(head_dim=7)
        except ValueError:
            return
        raise AssertionError("expected ValueError for odd head_dim")

    def test_gradient_through_rope(self):
        rope = RotaryEmbedding(head_dim=4, max_positions=8)
        check_gradient(
            lambda x: rope.apply(x, offset=1),
            rng().standard_normal((1, 1, 3, 4)).astype(np.float32),
        )


class TestMultiHeadAttention:
    def make(self, dim=16, heads=4, rope=False):
        rope_obj = RotaryEmbedding(dim // heads) if rope else None
        return MultiHeadAttention(dim, heads, rope=rope_obj, rng=rng())

    def test_output_shape(self):
        attn = self.make()
        x = Tensor(rng().standard_normal((2, 5, 16)).astype(np.float32))
        assert attn(x).shape == (2, 5, 16)

    def test_cross_attention_shape(self):
        attn = self.make()
        x = Tensor(rng().standard_normal((2, 3, 16)).astype(np.float32))
        ctx = Tensor(rng().standard_normal((2, 7, 16)).astype(np.float32))
        assert attn(x, context=ctx).shape == (2, 3, 16)

    def test_causal_masking_blocks_future(self):
        attn = self.make()
        x_data = rng().standard_normal((1, 4, 16)).astype(np.float32)
        mask = causal_mask(4, 4)
        out_full = attn(Tensor(x_data), attn_mask=mask).data
        # Perturb the last position: earlier outputs must not change.
        x_perturbed = x_data.copy()
        x_perturbed[0, -1] += 10.0
        out_perturbed = attn(Tensor(x_perturbed), attn_mask=mask).data
        np.testing.assert_allclose(out_full[0, :3], out_perturbed[0, :3], atol=1e-5)
        assert not np.allclose(out_full[0, 3], out_perturbed[0, 3])

    def test_kv_cache_matches_full_forward(self):
        attn = self.make(rope=True)
        attn.eval()
        x_data = rng().standard_normal((2, 6, 16)).astype(np.float32)
        full_mask = causal_mask(6, 6)
        with no_grad():
            full = attn(Tensor(x_data), attn_mask=full_mask).data
            cache = KVCache()
            stepwise = []
            for t in range(6):
                step_mask = causal_mask(1, t + 1, offset=t)
                out = attn(Tensor(x_data[:, t:t + 1]), attn_mask=step_mask,
                           cache=cache).data
                stepwise.append(out)
            incremental = np.concatenate(stepwise, axis=1)
        np.testing.assert_allclose(full, incremental, atol=1e-4)

    def test_kv_cache_reorder(self):
        cache = KVCache()
        cache.append(np.arange(8.0).reshape(2, 1, 2, 2),
                     np.arange(8.0).reshape(2, 1, 2, 2))
        cache.reorder(np.array([1, 0]))
        assert cache.keys[0, 0, 0, 0] == 4.0

    def test_gradients_flow_to_all_projections(self):
        attn = self.make()
        x = Tensor(rng().standard_normal((2, 4, 16)).astype(np.float32))
        attn(x, attn_mask=causal_mask(4, 4)).sum().backward()
        for name, param in attn.named_parameters():
            assert param.grad is not None, f"no grad for {name}"

    def test_input_gradient(self):
        attn = self.make()
        attn.eval()
        check_gradient(
            lambda x: attn(x),
            rng().standard_normal((1, 3, 16)).astype(np.float32),
            atol=3e-2,
            rtol=3e-2,
        )

    def test_dim_head_divisibility_validated(self):
        try:
            MultiHeadAttention(10, 3)
        except ValueError:
            return
        raise AssertionError("expected ValueError")
