"""Tests for the RQ-VAE model and its training dynamics."""

import numpy as np
import pytest

from repro.quantization import (
    RQVAE,
    RQVAEConfig,
    RQVAETrainer,
    RQVAETrainerConfig,
    kmeans,
    nearest_code,
    pairwise_sq_distances,
)
from repro.tensor import Tensor


def clustered_embeddings(n=60, dim=8, clusters=4, seed=0):
    rng = np.random.default_rng(seed)
    centers = rng.standard_normal((clusters, dim)) * 3
    labels = rng.integers(clusters, size=n)
    data = centers[labels] + rng.standard_normal((n, dim)) * 0.3
    return data.astype(np.float32), labels


class TestCodebookUtils:
    def test_pairwise_distances_match_naive(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal((5, 3))
        c = rng.standard_normal((4, 3))
        fast = pairwise_sq_distances(x, c)
        naive = ((x[:, None, :] - c[None, :, :]) ** 2).sum(axis=2)
        np.testing.assert_allclose(fast, naive, atol=1e-5)

    def test_nearest_code(self):
        centers = np.array([[0.0, 0.0], [10.0, 10.0]])
        x = np.array([[1.0, 1.0], [9.0, 9.0]])
        np.testing.assert_array_equal(nearest_code(x, centers), [0, 1])

    def test_kmeans_recovers_clusters(self):
        data, labels = clustered_embeddings()
        centers = kmeans(data, 4, np.random.default_rng(2))
        assigned = nearest_code(data, centers)
        # Same-cluster points should share kmeans labels (up to permutation).
        for cluster in range(4):
            members = assigned[labels == cluster]
            values, counts = np.unique(members, return_counts=True)
            assert counts.max() / counts.sum() > 0.9

    def test_kmeans_handles_fewer_points_than_k(self):
        data = np.random.default_rng(3).standard_normal((3, 4)).astype(np.float32)
        centers = kmeans(data, 8, np.random.default_rng(4))
        assert centers.shape == (8, 4)

    def test_kmeans_validates(self):
        with pytest.raises(ValueError):
            kmeans(np.empty((0, 3)), 2, np.random.default_rng(0))
        with pytest.raises(ValueError):
            kmeans(np.ones((3, 3)), 0, np.random.default_rng(0))


class TestRQVAEModel:
    def make(self, **kwargs):
        defaults = dict(input_dim=8, latent_dim=4, hidden_dims=(16,),
                        num_levels=3, codebook_size=6)
        defaults.update(kwargs)
        return RQVAE(RQVAEConfig(**defaults))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            RQVAE(RQVAEConfig(num_levels=0))
        with pytest.raises(ValueError):
            RQVAE(RQVAEConfig(codebook_size=1))
        with pytest.raises(ValueError):
            RQVAE(RQVAEConfig(beta=-1))

    def test_forward_returns_losses_and_codes(self):
        model = self.make()
        data, _ = clustered_embeddings(n=20, dim=8)
        total, parts, codes = model(Tensor(data))
        assert set(parts) == {"recon", "rq", "total"}
        assert codes.shape == (20, 3)
        assert total.item() > 0

    def test_quantize_shapes(self):
        model = self.make()
        data, _ = clustered_embeddings(n=15, dim=8)
        result = model.quantize(data)
        assert result.codes.shape == (15, 3)
        assert result.level_residuals.shape == (15, 3, 4)
        assert result.quantized.shape == (15, 4)

    def test_residual_identity(self):
        """level_residual[h+1] = level_residual[h] - chosen codebook vector."""
        model = self.make()
        data, _ = clustered_embeddings(n=10, dim=8)
        result = model.quantize(data)
        for h in range(2):
            book = model.codebooks[h].vectors.data
            expected = result.level_residuals[:, h] - book[result.codes[:, h]]
            np.testing.assert_allclose(result.level_residuals[:, h + 1],
                                       expected, atol=1e-5)

    def test_quantized_is_sum_of_codebook_vectors(self):
        model = self.make()
        data, _ = clustered_embeddings(n=10, dim=8)
        result = model.quantize(data)
        total = np.zeros_like(result.quantized)
        for h in range(3):
            total += model.codebooks[h].vectors.data[result.codes[:, h]]
        np.testing.assert_allclose(result.quantized, total, atol=1e-5)

    def test_gradients_reach_encoder_decoder_codebooks(self):
        model = self.make()
        data, _ = clustered_embeddings(n=12, dim=8)
        total, _, _ = model(Tensor(data))
        total.backward()
        grouped = {"encoder": False, "decoder": False, "codebooks": False}
        for name, param in model.named_parameters():
            if param.grad is not None and np.abs(param.grad).sum() > 0:
                for key in grouped:
                    if name.startswith(key):
                        grouped[key] = True
        assert all(grouped.values()), f"missing gradients: {grouped}"

    def test_kmeans_init_reduces_quantisation_error(self):
        model = self.make()
        data, _ = clustered_embeddings(n=40, dim=8)
        before = model.quantize(data)
        error_before = np.abs(before.level_residuals[:, -1]).mean()
        model.init_codebooks_kmeans(data)
        after = model.quantize(data)
        error_after = np.abs(after.level_residuals[:, -1]).mean()
        assert error_after < error_before


class TestRQVAETraining:
    def test_reconstruction_loss_decreases(self):
        # Note: the *total* loss is not monotone early in training (the
        # commitment term grows while the encoder drifts from the k-means
        # initialised codebooks); reconstruction is the meaningful signal.
        data, _ = clustered_embeddings(n=50, dim=8)
        model = RQVAE(RQVAEConfig(input_dim=8, latent_dim=4,
                                  hidden_dims=(16,), num_levels=3,
                                  codebook_size=6))
        trainer = RQVAETrainer(model, RQVAETrainerConfig(epochs=40,
                                                         batch_size=25))
        history = trainer.fit(data)
        assert history[-1]["recon"] < history[0]["recon"]

    def test_reconstruction_quality_improves(self):
        data, _ = clustered_embeddings(n=50, dim=8)
        model = RQVAE(RQVAEConfig(input_dim=8, latent_dim=4,
                                  hidden_dims=(16,), num_levels=3,
                                  codebook_size=6))
        error_before = np.abs(model.reconstruct(data) - data).mean()
        RQVAETrainer(model, RQVAETrainerConfig(epochs=60,
                                               batch_size=25)).fit(data)
        error_after = np.abs(model.reconstruct(data) - data).mean()
        assert error_after < error_before

    def test_dim_mismatch_rejected(self):
        model = RQVAE(RQVAEConfig(input_dim=8))
        trainer = RQVAETrainer(model, RQVAETrainerConfig(epochs=1))
        with pytest.raises(ValueError):
            trainer.fit(np.zeros((10, 5), dtype=np.float32))

    def test_similar_items_share_prefix_codes(self):
        """Items from the same cluster should share the level-0 code."""
        data, labels = clustered_embeddings(n=60, dim=8, clusters=4)
        model = RQVAE(RQVAEConfig(input_dim=8, latent_dim=4,
                                  hidden_dims=(16,), num_levels=3,
                                  codebook_size=8, usm_last_level=True))
        RQVAETrainer(model, RQVAETrainerConfig(epochs=80,
                                               batch_size=60)).fit(data)
        codes = model.quantize(data).codes
        agreements = 0
        total = 0
        for cluster in range(4):
            members = codes[labels == cluster, 0]
            values, counts = np.unique(members, return_counts=True)
            agreements += counts.max()
            total += counts.sum()
        assert agreements / total > 0.7
