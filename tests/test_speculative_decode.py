"""Two-level speculative trie decode and the quantized GEMM paths.

Contracts pinned here:

* **Parity** — with a ``spec_budget``, rankings and scores are identical
  to the sequential one-level-per-forward stepper, across batch sizes,
  beam widths, the prefix cache, narrowing, joins and mid-decode
  retirement, for the raw stepper and every engine adapter.
* **Forwards accounting** — ``DecodeState.forwards`` counts transformer
  forwards; speculation never increases it, and strictly lowers it
  whenever a two-level window fires on a non-forced path.
* **Budget gate edges** — a window fires iff the two-level candidate
  fan-out product is ``<= spec_budget``, never across non-uniform levels,
  and never when every (beam, candidate) child set is a singleton (the
  forced fast path already makes the next level free).
* **Quantized kernels** — fp16/int8 emulation matches its arithmetic
  definition exactly (including the float64 fallback past
  ``INT8_EXACT_DEPTH``), is memoized without serving stale weights
  across training, and passes the top-k-overlap tolerance gates on every
  engine (quantization changes values, so the gate is overlap, not bit
  parity — see docs/performance.md).
"""

import numpy as np
import pytest

from repro.baselines import P5CID, P5CIDConfig, TIGER, TIGERConfig
from repro.core.indexer import build_random_index_set
from repro.llm import (
    DEFAULT_SPEC_BUDGET,
    LMConfig,
    PrefixKVCache,
    TinyLlama,
    beam_search_items_batched,
    decode_finish,
    decode_join,
    decode_prefill,
    decode_retire,
    decode_step,
)
from repro.quantization import IndexTrie
from repro.serving import (
    ContinuousScheduler,
    LCRecEngine,
    P5CIDEngine,
    RecommendRequest,
    TIGEREngine,
    TrieDecoderEngine,
)
from repro.tensor import (
    INT8_EXACT_DEPTH,
    Int8Weight,
    fp16_activations,
    fp16_weight,
    int8_matmul,
    precision_token,
    quantize_weight_int8,
    validate_precision,
)


def make_model(vocab=60, seed=7, num_layers=1):
    model = TinyLlama(LMConfig(vocab_size=vocab, dim=16, num_layers=num_layers,
                               num_heads=2, ffn_hidden=24, max_seq_len=64,
                               seed=seed))
    model.eval()
    return model


def make_trie():
    """3 levels; level-2 child sets mix singletons and pairs."""
    return IndexTrie({
        0: (10, 12, 14),
        1: (10, 12, 15),
        2: (10, 13, 14),
        3: (11, 12, 14),
        4: (11, 13, 15),
    })


def make_deep_trie():
    """5 levels, full binary: every prefix has exactly two children."""
    return IndexTrie({
        i: (10 + (i & 1), 20 + (i >> 1 & 1), 30 + (i >> 2 & 1),
            40 + (i >> 3 & 1), 50 + (i >> 4 & 1))
        for i in range(32)
    })


def make_forced_child_trie():
    """4 levels where level 2 is forced: one child per (L0, L1) prefix."""
    items = {}
    for a in (10, 11):
        for b in (20, 21):
            for d in (40, 41):
                items[len(items)] = (a, b, 30 + (b - 20), d)
    return IndexTrie(items)


MIXED_PROMPTS = [[1, 2, 3], [4, 5], [1], [2, 2, 6, 7], [3, 3, 3]]


def prompts_of(batch):
    return [MIXED_PROMPTS[i % len(MIXED_PROMPTS)] + [i % 7] for i in range(batch)]


def assert_same_hypotheses(got, expected, rtol=1e-5, atol=1e-6):
    assert [h.item_id for h in got] == [h.item_id for h in expected]
    assert [h.token_ids for h in got] == [h.token_ids for h in expected]
    np.testing.assert_allclose([h.score for h in got],
                               [h.score for h in expected],
                               rtol=rtol, atol=atol)


def run_stepper(model, prompts, trie, beam_size, **kwargs):
    state = decode_prefill(model, prompts, trie, beam_size=beam_size, **kwargs)
    while not state.done:
        decode_step(state)
    return decode_finish(state), state.forwards


# ----------------------------------------------------------------------
# Parity: speculative == sequential, everywhere
# ----------------------------------------------------------------------
class TestSpeculativeParity:
    @pytest.mark.parametrize("batch", [1, 4, 16])
    @pytest.mark.parametrize("beam", [1, 4, 16])
    def test_matches_sequential(self, batch, beam):
        model, trie = make_model(), make_trie()
        prompts = prompts_of(batch)
        spec, _ = run_stepper(model, prompts, trie, beam, spec_budget=64)
        seq, _ = run_stepper(model, prompts, trie, beam, spec_budget=0)
        for a, b in zip(spec, seq):
            assert_same_hypotheses(a, b)

    @pytest.mark.parametrize("beam", [1, 4])
    def test_deep_trie_matches_sequential(self, beam):
        model, trie = make_model(), make_deep_trie()
        prompts = prompts_of(4)
        spec, f_spec = run_stepper(model, prompts, trie, beam, spec_budget=64)
        seq, f_seq = run_stepper(model, prompts, trie, beam, spec_budget=0)
        for a, b in zip(spec, seq):
            assert_same_hypotheses(a, b)
        # Full binary: no forced levels, so every window is a real saving.
        # prefill + 2 speculative steps vs prefill + 4 sequential steps.
        assert (f_spec, f_seq) == (3, 5)

    def test_prefix_cache_parity(self):
        model, trie = make_model(), make_trie()
        prompts = prompts_of(4)
        expected, _ = run_stepper(model, prompts, trie, 4, spec_budget=0)
        cache = PrefixKVCache(max_entries=8)
        cold, _ = run_stepper(model, prompts, trie, 4,
                              spec_budget=64, prefix_cache=cache)
        warm, _ = run_stepper(model, prompts, trie, 4,
                              spec_budget=64, prefix_cache=cache)
        for got in (cold, warm):
            for a, b in zip(got, expected):
                assert_same_hypotheses(a, b)

    @pytest.mark.parametrize("trie_factory", [make_trie, make_deep_trie])
    def test_narrowed_speculative_steps(self, trie_factory):
        model, trie = make_model(), trie_factory()
        narrow = trie.subtrie([0, 2, 4])
        prompts = prompts_of(3)
        spec, _ = run_stepper(model, prompts, trie, 4,
                              spec_budget=64, narrow=narrow)
        seq, _ = run_stepper(model, prompts, trie, 4,
                             spec_budget=0, narrow=narrow)
        for a, b in zip(spec, seq):
            assert_same_hypotheses(a, b)
        # Narrowing selects, never rescores: any item the narrowed and
        # full decodes both surface carries the same path and score.
        full, _ = run_stepper(model, prompts, trie, 20, spec_budget=64)
        allowed = {0, 2, 4}
        for narrowed, unrestricted in zip(spec, full):
            assert {h.item_id for h in narrowed} <= allowed
            by_item = {h.item_id: h for h in unrestricted}
            for hyp in narrowed:
                if hyp.item_id in by_item:
                    assert hyp.token_ids == by_item[hyp.item_id].token_ids
                    np.testing.assert_allclose(
                        hyp.score, by_item[hyp.item_id].score,
                        rtol=1e-5, atol=1e-6,
                    )

    def test_one_shot_wrapper_parity(self):
        model, trie = make_model(), make_deep_trie()
        spec = beam_search_items_batched(model, MIXED_PROMPTS, trie,
                                         beam_size=5, spec_budget=64)
        seq = beam_search_items_batched(model, MIXED_PROMPTS, trie,
                                        beam_size=5, spec_budget=0)
        for a, b in zip(spec, seq):
            assert_same_hypotheses(a, b)


# ----------------------------------------------------------------------
# Forwards accounting
# ----------------------------------------------------------------------
class TestForwardsAccounting:
    def test_strictly_fewer_forwards_when_window_fires(self):
        model, trie = make_model(), make_trie()
        _, f_spec = run_stepper(model, prompts_of(2), trie, 5, spec_budget=64)
        _, f_seq = run_stepper(model, prompts_of(2), trie, 5, spec_budget=0)
        # 3 levels: prefill + 1 speculative step vs prefill + 2 steps.
        assert (f_spec, f_seq) == (2, 3)

    @pytest.mark.parametrize("beam", [1, 4, 16])
    @pytest.mark.parametrize("trie_factory",
                             [make_trie, make_deep_trie, make_forced_child_trie])
    def test_never_more_forwards(self, beam, trie_factory):
        model, trie = make_model(), trie_factory()
        _, f_spec = run_stepper(model, prompts_of(3), trie, beam, spec_budget=64)
        _, f_seq = run_stepper(model, prompts_of(3), trie, beam, spec_budget=0)
        assert f_spec <= f_seq

    def test_join_accumulates_incoming_forwards(self):
        model, trie = make_model(), make_deep_trie()
        state = decode_prefill(model, prompts_of(2), trie, beam_size=4,
                               spec_budget=64)
        decode_step(state)
        before = state.forwards
        incoming = decode_prefill(model, [[8, 8]], trie, beam_size=4,
                                  spec_budget=64)
        decode_join(state, incoming)
        assert state.forwards == before + incoming.forwards == before + 1


# ----------------------------------------------------------------------
# Budget gate edges
# ----------------------------------------------------------------------
class TestSpeculativeGate:
    def test_budget_exactly_at_product_fires(self):
        # make_trie at the first step: candidate union {12, 13} x level-2
        # union {14, 15} -> fan-out product exactly 4.
        model, trie = make_model(), make_trie()
        results, forwards = {}, {}
        for budget in (4, 3, 0):
            results[budget], forwards[budget] = run_stepper(
                model, prompts_of(2), trie, 5, spec_budget=budget
            )
        assert forwards[4] == 2  # fired: prefill + one two-level step
        assert forwards[3] == forwards[0] == 3  # one over budget: sequential
        for budget in (4, 3):
            for a, b in zip(results[budget], results[0]):
                assert_same_hypotheses(a, b)

    def test_all_singleton_children_close_the_window(self):
        # Level 2 is forced everywhere: speculation could only "save" a
        # forward the forced fast path already skips, so the gate must
        # stay closed and the costs must come out identical.
        model, trie = make_model(), make_forced_child_trie()
        spec, f_spec = run_stepper(model, prompts_of(2), trie, 4, spec_budget=64)
        seq, f_seq = run_stepper(model, prompts_of(2), trie, 4, spec_budget=0)
        for a, b in zip(spec, seq):
            assert_same_hypotheses(a, b)
        # 4 levels: prefill + level-1 forward + forced level 2 (free) +
        # combined flush-and-score forward at level 3 == sequential.
        # The level-1 window is closed (forced children); the level-2
        # window then fires for levels (2, 3) on the speculative path.
        assert f_spec <= f_seq == 3

    def test_non_uniform_levels_step_sequentially(self):
        model, trie = make_model(), make_deep_trie()
        state = decode_prefill(model, prompts_of(2), trie, beam_size=4,
                               spec_budget=64)
        decode_step(state)  # speculative: both rows at level 3
        assert state.levels.tolist() == [3, 3]
        incoming = decode_prefill(model, [[8, 8]], trie, beam_size=4,
                                  spec_budget=64)
        decode_join(state, incoming)
        assert state.levels.tolist() == [3, 3, 1]
        decode_step(state)  # mixed levels: the window must not open
        assert state.levels.tolist() == [4, 4, 2]

    def test_mid_window_retire_between_speculative_steps(self):
        model, trie = make_model(), make_deep_trie()
        reference = {
            tuple(p): beam_search_items_batched(model, [p], trie, beam_size=4,
                                                spec_budget=0)[0]
            for p in prompts_of(2) + [[8, 8]]
        }
        state = decode_prefill(model, prompts_of(2), trie, beam_size=4,
                               tags=["a", "b"], spec_budget=64)
        decode_step(state)  # speculative window #1: levels 1 -> 3
        incoming = decode_prefill(model, [[8, 8]], trie, beam_size=4,
                                  tags=["c"], spec_budget=64)
        decode_join(state, incoming)
        while not state.finished_rows():
            decode_step(state)
        assert state.levels.tolist() == [5, 5, 3]
        retired = decode_retire(state, state.finished_rows())
        assert_same_hypotheses(retired[0], reference[tuple(prompts_of(2)[0])])
        assert_same_hypotheses(retired[1], reference[tuple(prompts_of(2)[1])])
        # The surviving row is uniform again: the next step is a window.
        before = state.forwards
        decode_step(state)
        assert state.levels.tolist() == [5]
        assert state.forwards == before + 1
        assert_same_hypotheses(decode_finish(state)[0], reference[(8, 8)])

    def test_raw_stepper_defaults_to_no_speculation(self):
        model, trie = make_model(), make_trie()
        state = decode_prefill(model, prompts_of(1), trie, beam_size=4)
        assert state.spec_budget == 0
        decode_step(state)
        assert state.levels.tolist() == [2]


# ----------------------------------------------------------------------
# Speculation under the continuous-batching scheduler
# ----------------------------------------------------------------------
class TestSpeculativeContinuous:
    def test_scheduler_joins_and_parity_with_speculation(self):
        model, trie = make_model(), make_deep_trie()
        reference = {
            tuple(p): beam_search_items_batched(model, [p], trie, beam_size=5,
                                                spec_budget=0)[0]
            for p in MIXED_PROMPTS
        }
        engine = TrieDecoderEngine(model, trie)  # speculation on by default
        assert engine.spec_budget == DEFAULT_SPEC_BUDGET
        scheduler = ContinuousScheduler(engine, max_width=8)
        requests = [RecommendRequest(prompt_ids=list(p), top_k=3, beam_size=5)
                    for p in MIXED_PROMPTS]
        scheduler.admit(requests[:2])
        delivered = scheduler.step()
        scheduler.admit(requests[2:])
        while not scheduler.idle:
            delivered.extend(scheduler.step())
        assert scheduler.joins >= 1
        assert len(delivered) == len(requests)
        for req, hyps in delivered:
            assert_same_hypotheses(hyps, reference[tuple(req.prompt_ids)])

    def test_dense_head_engine_disables_speculation(self):
        model, trie = make_model(), make_trie()
        engine = TrieDecoderEngine(model, trie, sparse_head=False)
        assert engine.spec_budget == 0


# ----------------------------------------------------------------------
# Quantized kernels
# ----------------------------------------------------------------------
class TestQuantizedKernels:
    def test_validate_precision(self):
        for precision in ("fp32", "fp16", "int8"):
            assert validate_precision(precision) == precision
        with pytest.raises(ValueError, match="unknown precision"):
            validate_precision("fp8")

    def test_precision_tokens_are_interned_and_distinct(self):
        assert precision_token("int8") is precision_token("int8")
        assert precision_token("fp16") is not precision_token("int8")

    def test_fp16_rounds_through_half_precision(self):
        x = np.array([[1.0, 1e-9, 65519.0]], dtype=np.float32)
        for fn in (fp16_weight, fp16_activations):
            got = fn(x)
            assert got.dtype == np.float32
            np.testing.assert_array_equal(
                got, x.astype(np.float16).astype(np.float32)
            )

    def test_quantize_weight_int8_definition(self, rng):
        weight = rng.normal(size=(16, 8)).astype(np.float32)
        weight[:, 3] = 0.0  # an all-zero output channel
        q = quantize_weight_int8(weight)
        assert isinstance(q, Int8Weight) and q.out_features == 8
        expected_scales = np.abs(weight).max(axis=0) / 127.0
        expected_scales[3] = 1.0
        np.testing.assert_allclose(q.scales, expected_scales, rtol=1e-6)
        assert np.abs(q.qweight).max() <= 127
        assert np.all(q.qweight == np.rint(q.qweight))  # true code points
        # Dequantization error is bounded by half a quantization step.
        np.testing.assert_allclose(q.qweight * q.scales[None, :], weight,
                                   atol=float(expected_scales.max()) / 2 + 1e-7)
        with pytest.raises(ValueError, match="2-D"):
            quantize_weight_int8(np.zeros(4, dtype=np.float32))

    def test_int8_matmul_matches_arithmetic_definition(self, rng):
        x = rng.normal(size=(5, 32)).astype(np.float32)
        x[2] = 0.0  # an all-zero row must not divide by zero
        weight = quantize_weight_int8(rng.normal(size=(32, 6)).astype(np.float32))
        got = int8_matmul(x, weight)
        row_scales = np.abs(x).max(axis=-1, keepdims=True) / 127.0
        row_scales = np.where(row_scales > 0, row_scales, 1.0)
        codes = np.clip(np.rint(x / row_scales), -127, 127)
        expected = (codes @ weight.qweight) * row_scales * weight.scales[None, :]
        np.testing.assert_array_equal(got, expected.astype(np.float32))
        # ... and is close to the fp32 product it emulates.
        dense = x @ (weight.qweight * weight.scales[None, :])
        np.testing.assert_allclose(got, dense, atol=np.abs(dense).max() * 0.02)

    def test_int8_matmul_batch_shape_invariance(self, rng):
        x = rng.normal(size=(6, 16)).astype(np.float32)
        weight = quantize_weight_int8(rng.normal(size=(16, 4)).astype(np.float32))
        whole = int8_matmul(x, weight)
        rows = np.concatenate([int8_matmul(x[i:i + 1], weight) for i in range(6)])
        np.testing.assert_array_equal(whole, rows)  # bit-identical, not close

    def test_int8_matmul_out_buffer(self, rng):
        x = rng.normal(size=(3, 8)).astype(np.float32)
        weight = quantize_weight_int8(rng.normal(size=(8, 4)).astype(np.float32))
        out = np.empty((3, 4), dtype=np.float32)
        got = int8_matmul(x, weight, out=out)
        assert got is out
        np.testing.assert_array_equal(out, int8_matmul(x, weight))

    def test_deep_reduction_uses_float64_fallback(self, rng):
        depth = INT8_EXACT_DEPTH + 1
        x = rng.normal(size=(2, depth)).astype(np.float32)
        weight = quantize_weight_int8(rng.normal(size=(depth, 3)).astype(np.float32))
        got = int8_matmul(x, weight)
        row_scales = np.abs(x).max(axis=-1, keepdims=True) / 127.0
        codes = np.clip(np.rint(x / row_scales), -127, 127)
        acc = codes.astype(np.float64) @ weight.qweight.astype(np.float64)
        expected = (acc * row_scales * weight.scales[None, :]).astype(np.float32)
        np.testing.assert_array_equal(got, expected)


# ----------------------------------------------------------------------
# Quantized decode paths: tolerance gates, staleness, config plumbing
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def tiny_p5cid(tiny_dataset):
    model = P5CID(tiny_dataset, P5CIDConfig(epochs=2, seed=3))
    model.fit(tiny_dataset)
    return model


@pytest.fixture(scope="module")
def tiny_tiger(tiny_dataset):
    index_set = build_random_index_set(tiny_dataset.num_items, 3, 8,
                                       np.random.default_rng(3))
    model = TIGER(index_set, TIGERConfig(epochs=2, seed=3))
    model.fit(tiny_dataset)
    return model


class TestQuantizedDecode:
    @pytest.mark.parametrize("precision", ["fp16", "int8"])
    def test_stepper_speculative_and_sequential_agree(self, precision):
        # Quantization changes values vs fp32, but the speculative path
        # must still rank identically to the sequential path *at the same
        # precision* — both run the same quantized GEMMs.
        model, trie = make_model(), make_deep_trie()
        spec, _ = run_stepper(model, prompts_of(3), trie, 4,
                              spec_budget=64, precision=precision)
        seq, _ = run_stepper(model, prompts_of(3), trie, 4,
                             spec_budget=0, precision=precision)
        for a, b in zip(spec, seq):
            assert_same_hypotheses(a, b)

    @pytest.mark.parametrize("precision", ["fp16", "int8"])
    def test_stepper_topk_overlap_gate(self, precision):
        model, trie = make_model(), make_trie()
        base, _ = run_stepper(model, prompts_of(4), trie, 3, precision="fp32")
        quant, _ = run_stepper(model, prompts_of(4), trie, 3,
                               precision=precision)
        for a, b in zip(quant, base):
            got = {h.item_id for h in a}
            expected = {h.item_id for h in b}
            assert len(got & expected) >= 2  # top-3 overlap gate

    def test_join_rejects_mixed_precisions(self):
        model, trie = make_model(), make_trie()
        state = decode_prefill(model, prompts_of(2), trie, beam_size=4,
                               precision="fp32")
        incoming = decode_prefill(model, [[8, 8]], trie, beam_size=4,
                                  precision="int8")
        with pytest.raises(ValueError, match="precision"):
            decode_join(state, incoming)

    def test_quantized_head_sees_weight_updates_across_training(self):
        from repro.tensor import Adam
        from repro.tensor import functional as F

        model, trie = make_model(seed=21), make_trie()
        before = beam_search_items_batched(model, [[1, 2]], trie, beam_size=5,
                                           precision="int8")
        optimizer = Adam(model.parameters(), lr=0.05)
        sequence = np.array([[1, 10, 12, 14]])
        model.train()
        for _ in range(30):
            optimizer.zero_grad()
            loss = F.cross_entropy(model(sequence[:, :-1]), sequence[:, 1:])
            loss.backward()
            optimizer.step()
        model.eval()
        after = beam_search_items_batched(model, [[1, 2]], trie, beam_size=5,
                                          precision="int8")
        fresh = TinyLlama(model.config)
        fresh.load_state_dict(model.state_dict())
        fresh.eval()
        expected = beam_search_items_batched(fresh, [[1, 2]], trie, beam_size=5,
                                             precision="int8")
        # Same weights quantized fresh must reproduce the memoized path
        # bit for bit — a stale quantized memo would fail this.
        assert_same_hypotheses(after[0], expected[0])
        assert [h.score for h in after[0]] != [h.score for h in before[0]]

    @pytest.mark.parametrize("precision", ["fp16", "int8"])
    def test_lcrec_engine_overlap_gate(self, tiny_lcrec, tiny_dataset, precision):
        self._engine_overlap_gate(LCRecEngine, tiny_lcrec, tiny_dataset, precision)

    @pytest.mark.parametrize("precision", ["fp16", "int8"])
    def test_p5cid_engine_overlap_gate(self, tiny_p5cid, tiny_dataset, precision):
        self._engine_overlap_gate(P5CIDEngine, tiny_p5cid, tiny_dataset, precision)

    @pytest.mark.parametrize("precision", ["fp16", "int8"])
    def test_tiger_engine_overlap_gate(self, tiny_tiger, tiny_dataset, precision):
        self._engine_overlap_gate(TIGEREngine, tiny_tiger, tiny_dataset, precision)

    @staticmethod
    def _engine_overlap_gate(engine_cls, model, dataset, precision):
        pool = dataset.split.test_histories
        histories = [list(pool[i % len(pool)]) for i in range(8)]
        base = engine_cls(model, precision="fp32").recommend_many(histories, top_k=5)
        quant = engine_cls(model, precision=precision).recommend_many(
            histories, top_k=5
        )
        overlaps = [len(set(a) & set(b)) for a, b in zip(base, quant)]
        assert min(overlaps) >= 4  # every request keeps >= 4 of its top 5
        assert float(np.mean(overlaps)) >= 4.5

    def test_engine_rejects_unknown_precision(self, tiny_tiger):
        with pytest.raises(ValueError, match="unknown precision"):
            TIGEREngine(tiny_tiger, precision="bf16")


# ----------------------------------------------------------------------
# Engine adapters: speculative parity across backends
# ----------------------------------------------------------------------
class TestEngineSpeculativeParity:
    @pytest.mark.parametrize("batch", [1, 4, 16])
    def test_lcrec_engine_parity(self, tiny_lcrec, tiny_dataset, batch):
        pool = tiny_dataset.split.test_histories
        histories = [list(pool[i % len(pool)]) for i in range(batch)]
        spec = LCRecEngine(tiny_lcrec, prefix_cache=False)
        seq = LCRecEngine(tiny_lcrec, prefix_cache=False, spec_budget=0)
        assert spec.spec_budget == DEFAULT_SPEC_BUDGET
        assert spec.recommend_many(histories, top_k=5) == \
            seq.recommend_many(histories, top_k=5)

    def test_lcrec_engine_parity_with_prefix_cache(self, tiny_lcrec, tiny_dataset):
        pool = tiny_dataset.split.test_histories
        histories = [list(pool[i % len(pool)]) for i in range(4)]
        spec = LCRecEngine(tiny_lcrec, prefix_cache=True)
        seq = LCRecEngine(tiny_lcrec, prefix_cache=False, spec_budget=0)
        expected = seq.recommend_many(histories, top_k=5)
        assert spec.recommend_many(histories, top_k=5) == expected  # cold
        assert spec.recommend_many(histories, top_k=5) == expected  # warm

    def test_lcrec_narrowed_engine_parity(self, tiny_lcrec, tiny_dataset):
        pool = tiny_dataset.split.test_histories
        histories = [list(pool[i % len(pool)]) for i in range(3)]
        candidates = list(range(0, tiny_dataset.num_items, 2))
        spec = LCRecEngine(tiny_lcrec, prefix_cache=False).narrowed(candidates)
        seq = LCRecEngine(tiny_lcrec, prefix_cache=False,
                          spec_budget=0).narrowed(candidates)
        assert spec.recommend_many(histories, top_k=5) == \
            seq.recommend_many(histories, top_k=5)

    @pytest.mark.parametrize("batch", [1, 4, 16])
    def test_p5cid_engine_parity(self, tiny_p5cid, tiny_dataset, batch):
        pool = tiny_dataset.split.test_histories
        histories = [list(pool[i % len(pool)]) for i in range(batch)]
        spec = P5CIDEngine(tiny_p5cid)
        seq = P5CIDEngine(tiny_p5cid, spec_budget=0)
        assert spec.recommend_many(histories, top_k=5) == \
            seq.recommend_many(histories, top_k=5)

    @pytest.mark.parametrize("batch", [1, 4, 16])
    def test_tiger_engine_parity(self, tiny_tiger, tiny_dataset, batch):
        pool = tiny_dataset.split.test_histories
        histories = [list(pool[i % len(pool)]) for i in range(batch)]
        spec = TIGEREngine(tiny_tiger)
        seq = TIGEREngine(tiny_tiger, spec_budget=0)
        ranked = spec.recommend_many(histories, top_k=5)
        assert ranked == seq.recommend_many(histories, top_k=5)
        assert ranked == [tiny_tiger.recommend(h, top_k=5) for h in histories]

    def test_tiger_engine_saves_forwards(self, tiny_tiger, tiny_dataset):
        pool = tiny_dataset.split.test_histories
        histories = [list(pool[i % len(pool)]) for i in range(4)]
        forwards = {}
        for label, budget in (("spec", DEFAULT_SPEC_BUDGET), ("seq", 0)):
            engine = TIGEREngine(tiny_tiger, spec_budget=budget)
            requests = [RecommendRequest(prompt_ids=engine.encode_history(h),
                                         top_k=5, beam_size=5)
                        for h in histories]
            state = engine.prefill(requests)
            while not state.done:
                engine.step(state)
            engine.finish(state)
            forwards[label] = state.forwards
        assert forwards["spec"] <= forwards["seq"]
