"""Unit tests for the sampling logit filters (pure functions)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.llm.sampling import _filter_top_k, _filter_top_p


class TestTopKFilter:
    def test_keeps_exactly_k(self):
        logits = np.array([1.0, 5.0, 3.0, 2.0])
        filtered = _filter_top_k(logits, 2)
        assert np.isfinite(filtered).sum() == 2
        assert np.isfinite(filtered[[1, 2]]).all()

    def test_k_zero_is_identity(self):
        logits = np.array([1.0, 2.0])
        np.testing.assert_array_equal(_filter_top_k(logits, 0), logits)

    def test_k_larger_than_vocab_is_identity(self):
        logits = np.array([1.0, 2.0])
        np.testing.assert_array_equal(_filter_top_k(logits, 10), logits)

    @given(arrays(np.float64, 12, elements=st.floats(-5, 5,
                                                     allow_nan=False)),
           st.integers(1, 12))
    @settings(max_examples=40, deadline=None)
    def test_surviving_entries_are_the_largest(self, logits, k):
        filtered = _filter_top_k(logits, k)
        kept = np.flatnonzero(np.isfinite(filtered))
        assert len(kept) >= min(k, len(logits))
        if len(kept) < len(logits):
            dropped_max = logits[~np.isfinite(filtered)].max()
            assert logits[kept].min() >= dropped_max


class TestTopPFilter:
    def test_always_keeps_argmax(self):
        logits = np.array([0.0, 10.0, 0.0])
        filtered = _filter_top_p(logits, 0.01)
        assert np.isfinite(filtered[1])
        assert np.isfinite(filtered).sum() == 1

    def test_p_one_is_identity(self):
        logits = np.array([1.0, 2.0, 3.0])
        np.testing.assert_array_equal(_filter_top_p(logits, 1.0), logits)

    def test_mass_threshold(self):
        # Uniform logits: top-p 0.5 keeps about half the tokens.
        logits = np.zeros(10)
        filtered = _filter_top_p(logits, 0.5)
        kept = np.isfinite(filtered).sum()
        assert 4 <= kept <= 6

    @given(arrays(np.float64, 10, elements=st.floats(-3, 3,
                                                     allow_nan=False)),
           st.floats(0.05, 0.99))
    @settings(max_examples=40, deadline=None)
    def test_kept_mass_at_least_p_or_single_token(self, logits, p):
        filtered = _filter_top_p(logits, p)
        kept = np.isfinite(filtered)
        probs = np.exp(logits - logits.max())
        probs /= probs.sum()
        assert kept.sum() >= 1
        # Removing any kept token (other than the smallest) would drop the
        # cumulative mass below p, by construction of the nucleus.
        if kept.sum() > 1:
            kept_mass = probs[kept].sum()
            smallest_kept = probs[kept].min()
            assert kept_mass - smallest_kept <= p + 1e-9
