"""Shared fixtures: tiny dataset and a small pre-built LC-Rec model.

The expensive fixtures are session-scoped so the integration tests share
one build.
"""

from __future__ import annotations

import numpy as np
import pytest
from helpers import small_lcrec_config

from repro.core import LCRec
from repro.data import build_dataset, preset_config


@pytest.fixture(scope="session")
def tiny_dataset():
    return build_dataset(preset_config("tiny"))


@pytest.fixture(scope="session")
def tiny_lcrec(tiny_dataset):
    """A fully built (briefly tuned) LC-Rec on the tiny dataset."""
    return LCRec(tiny_dataset, small_lcrec_config()).build()


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)
