"""Shared fixtures: tiny dataset and a small pre-built LC-Rec model.

The expensive fixtures are session-scoped so the integration tests share
one build.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import LCRec, LCRecConfig
from repro.core.indexer import SemanticIndexerConfig
from repro.core.tasks import AlignmentTaskConfig
from repro.data import build_dataset, preset_config
from repro.llm import PretrainConfig, TuningConfig
from repro.quantization import RQVAEConfig, RQVAETrainerConfig


@pytest.fixture(scope="session")
def tiny_dataset():
    return build_dataset(preset_config("tiny"))


def small_lcrec_config(**overrides) -> LCRecConfig:
    """A fast LC-Rec configuration for tests."""
    config = LCRecConfig(
        pretrain=PretrainConfig(steps=80, batch_size=8, seq_len=48),
        indexer=SemanticIndexerConfig(
            rqvae=RQVAEConfig(codebook_size=8, latent_dim=16,
                              hidden_dims=(32,)),
            trainer=RQVAETrainerConfig(epochs=60, batch_size=64),
        ),
        tasks=AlignmentTaskConfig(seq_per_user=1, max_history=6),
        tuning=TuningConfig(epochs=1, batch_size=8, max_len=160),
        beam_size=10,
    )
    for key, value in overrides.items():
        setattr(config, key, value)
    return config


@pytest.fixture(scope="session")
def tiny_lcrec(tiny_dataset):
    """A fully built (briefly tuned) LC-Rec on the tiny dataset."""
    return LCRec(tiny_dataset, small_lcrec_config()).build()


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)
