"""Tests for hard-negative mining and pairwise accuracy (Table V)."""

import numpy as np
import pytest

from repro.eval import (
    mine_random_negatives,
    mine_similar_negatives,
    pairwise_choice_accuracy,
)


class TestSimilarNegatives:
    def test_picks_nearest_neighbour(self):
        embeddings = np.array([
            [1.0, 0.0],
            [0.9, 0.1],   # closest to item 0
            [0.0, 1.0],
        ])
        samples = mine_similar_negatives(embeddings, targets=[0])
        assert samples[0].negative == 1

    def test_negative_never_equals_target(self):
        rng = np.random.default_rng(0)
        embeddings = rng.standard_normal((20, 8))
        samples = mine_similar_negatives(embeddings, targets=list(range(20)))
        assert all(s.negative != s.target for s in samples)

    def test_one_sample_per_user(self):
        rng = np.random.default_rng(1)
        embeddings = rng.standard_normal((10, 4))
        samples = mine_similar_negatives(embeddings, targets=[3, 7, 7])
        assert [s.user_id for s in samples] == [0, 1, 2]


class TestRandomNegatives:
    def test_never_target(self, rng):
        samples = mine_random_negatives(5, [0, 1, 2, 3, 4], rng)
        assert all(s.negative != s.target for s in samples)

    def test_requires_two_items(self, rng):
        with pytest.raises(ValueError):
            mine_random_negatives(1, [0], rng)


class TestPairwiseAccuracy:
    def test_oracle_scores_full_accuracy(self, rng):
        samples = mine_random_negatives(10, [1, 2, 3], rng)
        histories = [[0]] * 3
        accuracy = pairwise_choice_accuracy(
            samples, histories, choose=lambda h, a, b: a)
        assert accuracy == 1.0

    def test_adversary_scores_zero(self, rng):
        samples = mine_random_negatives(10, [1, 2, 3], rng)
        accuracy = pairwise_choice_accuracy(
            samples, [[0]] * 3, choose=lambda h, a, b: b)
        assert accuracy == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            pairwise_choice_accuracy([], [], choose=lambda h, a, b: a)
