"""Vocabulary with special tokens and out-of-vocabulary extension.

LC-Rec appends all item-index tokens (``<a_12>`` etc.) to the LLaMA
tokenizer as OOV tokens (paper Sec. IV-A4).  :class:`Vocabulary` supports
exactly that: a frozen *base* vocabulary learned from text, plus an
extension region for index tokens whose ids start at ``base_size``.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable

__all__ = ["Vocabulary", "PAD", "BOS", "EOS", "UNK", "SPECIAL_TOKENS"]

PAD = "<pad>"
BOS = "<bos>"
EOS = "<eos>"
UNK = "<unk>"
SPECIAL_TOKENS = (PAD, BOS, EOS, UNK)


class Vocabulary:
    """Bidirectional token/id mapping.

    The first four ids are the special tokens.  ``freeze_base`` marks the
    end of the language vocabulary; tokens added afterwards (item-index
    tokens) live in the *extension* region ``[base_size, size)``.
    """

    def __init__(self):
        self._token_to_id: dict[str, int] = {}
        self._id_to_token: list[str] = []
        self._base_size: int | None = None
        for token in SPECIAL_TOKENS:
            self.add_token(token)

    # ------------------------------------------------------------------
    def add_token(self, token: str) -> int:
        """Add ``token`` if absent; return its id."""
        existing = self._token_to_id.get(token)
        if existing is not None:
            return existing
        token_id = len(self._id_to_token)
        self._token_to_id[token] = token_id
        self._id_to_token.append(token)
        return token_id

    def add_tokens(self, tokens: Iterable[str]) -> list[int]:
        return [self.add_token(token) for token in tokens]

    @classmethod
    def from_counter(
        cls, counts: Counter, min_count: int = 1, max_size: int | None = None
    ) -> "Vocabulary":
        """Build a base vocabulary from token counts (most frequent first)."""
        vocab = cls()
        ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
        for token, count in ranked:
            if count < min_count:
                continue
            if max_size is not None and len(vocab) >= max_size:
                break
            vocab.add_token(token)
        vocab.freeze_base()
        return vocab

    # ------------------------------------------------------------------
    def freeze_base(self) -> None:
        """Mark the current size as the end of the language vocabulary."""
        self._base_size = len(self._id_to_token)

    @property
    def base_size(self) -> int:
        """Size of the language vocabulary (before index-token extension)."""
        if self._base_size is None:
            return len(self._id_to_token)
        return self._base_size

    def is_extension_id(self, token_id: int) -> bool:
        """True if ``token_id`` belongs to the index-token extension region."""
        return token_id >= self.base_size

    # ------------------------------------------------------------------
    def token_to_id(self, token: str) -> int:
        return self._token_to_id.get(token, self._token_to_id[UNK])

    def id_to_token(self, token_id: int) -> str:
        return self._id_to_token[token_id]

    def __contains__(self, token: str) -> bool:
        return token in self._token_to_id

    def __len__(self) -> int:
        return len(self._id_to_token)

    @property
    def pad_id(self) -> int:
        return self._token_to_id[PAD]

    @property
    def bos_id(self) -> int:
        return self._token_to_id[BOS]

    @property
    def eos_id(self) -> int:
        return self._token_to_id[EOS]

    @property
    def unk_id(self) -> int:
        return self._token_to_id[UNK]

    def tokens(self) -> list[str]:
        """All tokens in id order (a copy)."""
        return list(self._id_to_token)
