"""Word-level tokenizer that treats item-index tokens as atomic units.

The real LC-Rec uses the LLaMA sentencepiece tokenizer and *appends* the
item-index tokens (``<a_12>``) as additional atomic tokens.  Our tiny LM
uses a word-level tokenizer, but the contract is identical: index tokens
never get split, and they map to ids in the vocabulary extension region.
"""

from __future__ import annotations

import re
from collections import Counter
from typing import Iterable, Sequence

from .vocab import Vocabulary

__all__ = ["WordTokenizer", "INDEX_TOKEN_PATTERN"]

# Matches index tokens such as <a_12> or <d_205>.
INDEX_TOKEN_PATTERN = re.compile(r"<[a-z]_\d+>")
# Words, numbers, or single punctuation marks.
_WORD_PATTERN = re.compile(r"[a-z0-9]+(?:'[a-z]+)?|[^\sa-z0-9]")


class WordTokenizer:
    """Lower-cases text, splits words/punctuation, keeps index tokens whole."""

    def __init__(self, vocab: Vocabulary):
        self.vocab = vocab

    # ------------------------------------------------------------------
    @staticmethod
    def text_to_tokens(text: str) -> list[str]:
        """Split ``text`` into word/punct tokens, preserving index tokens."""
        tokens: list[str] = []
        cursor = 0
        lowered = text.lower()
        for match in INDEX_TOKEN_PATTERN.finditer(lowered):
            before = lowered[cursor:match.start()]
            tokens.extend(_WORD_PATTERN.findall(before))
            tokens.append(match.group())
            cursor = match.end()
        tokens.extend(_WORD_PATTERN.findall(lowered[cursor:]))
        return tokens

    @classmethod
    def build_vocab(cls, texts: Iterable[str], min_count: int = 1,
                    max_size: int | None = None) -> Vocabulary:
        """Count word tokens over ``texts`` and build a frozen base vocab."""
        counts: Counter = Counter()
        for text in texts:
            counts.update(cls.text_to_tokens(text))
        return Vocabulary.from_counter(counts, min_count=min_count, max_size=max_size)

    # ------------------------------------------------------------------
    def encode(self, text: str, add_bos: bool = False, add_eos: bool = False) -> list[int]:
        ids = [self.vocab.token_to_id(t) for t in self.text_to_tokens(text)]
        if add_bos:
            ids.insert(0, self.vocab.bos_id)
        if add_eos:
            ids.append(self.vocab.eos_id)
        return ids

    def decode(self, ids: Sequence[int], skip_special: bool = True) -> str:
        specials = {self.vocab.pad_id, self.vocab.bos_id, self.vocab.eos_id}
        tokens = []
        for token_id in ids:
            if skip_special and token_id in specials:
                continue
            tokens.append(self.vocab.id_to_token(int(token_id)))
        return " ".join(tokens)

    # ------------------------------------------------------------------
    def register_index_tokens(self, tokens: Sequence[str]) -> list[int]:
        """Append index tokens to the vocabulary extension region.

        Mirrors ``tokenizer.add_tokens`` + ``model.resize_token_embeddings``
        in the official implementation.  Returns the new token ids.
        """
        for token in tokens:
            if not INDEX_TOKEN_PATTERN.fullmatch(token):
                raise ValueError(f"not a valid index token: {token!r}")
        return self.vocab.add_tokens(tokens)

    @property
    def vocab_size(self) -> int:
        return len(self.vocab)
