"""Tokenisation and vocabulary management."""

from .tokenizer import INDEX_TOKEN_PATTERN, WordTokenizer
from .vocab import BOS, EOS, PAD, SPECIAL_TOKENS, UNK, Vocabulary

__all__ = [
    "Vocabulary",
    "WordTokenizer",
    "INDEX_TOKEN_PATTERN",
    "PAD",
    "BOS",
    "EOS",
    "UNK",
    "SPECIAL_TOKENS",
]
