"""Command-line entry point: ``python -m repro``.

Subcommands:

* ``info``       — package, configuration and preset overview;
* ``stats``      — Table II-style statistics for a preset;
* ``demo``       — build a miniature LC-Rec and print one recommendation;
* ``experiment`` — run a config-driven scenario-matrix experiment
  (``experiment run <config.json|.yaml>``) or list the available
  scenarios and backends (``experiment scenarios``).
"""

from __future__ import annotations

import argparse
import sys


def _cmd_info(_args) -> int:
    import repro
    from repro.data import PRESETS

    print(f"repro {repro.__version__} — LC-Rec (ICDE 2024) reproduction")
    print("presets:", ", ".join(sorted(PRESETS)))
    print(
        "subpackages: tensor, text, data, llm, quantization, core, "
        "baselines, eval, analysis, bench"
    )
    return 0


def _cmd_stats(args) -> int:
    from repro.data import build_dataset, dataset_statistics, format_table2_row, preset_config

    dataset = build_dataset(preset_config(args.preset, scale=args.scale))
    print(format_table2_row(dataset_statistics(dataset)))
    return 0


def _cmd_demo(args) -> int:
    from repro.core import LCRec, LCRecConfig
    from repro.core.indexer import SemanticIndexerConfig
    from repro.core.tasks import AlignmentTaskConfig
    from repro.data import build_dataset, preset_config
    from repro.llm import PretrainConfig, TuningConfig
    from repro.quantization import RQVAEConfig, RQVAETrainerConfig

    dataset = build_dataset(preset_config(args.preset, scale=0.15))
    config = LCRecConfig(
        pretrain=PretrainConfig(steps=120, batch_size=8),
        indexer=SemanticIndexerConfig(
            rqvae=RQVAEConfig(latent_dim=16, hidden_dims=(48,), codebook_size=12),
            trainer=RQVAETrainerConfig(epochs=80, batch_size=256),
        ),
        tasks=AlignmentTaskConfig(seq_per_user=2, max_history=6),
        tuning=TuningConfig(epochs=2, batch_size=8),
        beam_size=10,
    )
    model = LCRec(dataset, config).build()
    history = dataset.split.test_histories[0]
    print("history:")
    for item_id in history[-4:]:
        print("  -", dataset.catalog[item_id].title, model.index_set.index_text(item_id))
    print("recommendations:")
    for item_id in model.recommend(history, top_k=5):
        print("  *", dataset.catalog[item_id].title)
    return 0


def _cmd_experiment_run(args) -> int:
    from repro.experiments import (
        ExperimentConfig,
        ExperimentConfigError,
        ExperimentError,
        ExperimentRunner,
    )

    try:
        config = ExperimentConfig.from_file(args.config)
        if args.scale:
            config = ExperimentConfig.from_dict({**config.to_dict(), "scale": args.scale})
    except ExperimentConfigError as exc:
        print(exc)
        return 2
    runner = ExperimentRunner(config, write=not args.no_write)
    try:
        result = runner.run()
    except ExperimentError as exc:
        print(exc)
        return 1
    for record in result["records"]:
        if not record["supported"]:
            print(f"{record['name']:<36} skipped: {record['reason']}")
            continue
        quality = record["quality"]
        metrics = " ".join(
            f"{key}={quality[key]:.4f}" for key in sorted(quality) if key != "evaluated"
        )
        print(
            f"{record['name']:<36} served={record['served']} shed={record['shed']} "
            f"degraded={record['degraded']} cold={record['cold_start']} {metrics}"
        )
    if result["path"]:
        print(f"wrote {result['path']}")
    return 0


def _cmd_experiment_scenarios(_args) -> int:
    from repro.experiments import known_backends, known_scenarios

    print("scenarios (kind: default parameters):")
    for kind, defaults in sorted(known_scenarios().items()):
        rendered = ", ".join(f"{key}={value}" for key, value in sorted(defaults.items()))
        print(f"  {kind:<16} {rendered}")
    print("backends:", ", ".join(known_backends()))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description="LC-Rec reproduction command line")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("info", help="package overview").set_defaults(func=_cmd_info)
    stats = sub.add_parser("stats", help="dataset statistics (Table II)")
    stats.add_argument("preset", choices=["instruments", "arts", "games", "tiny"])
    stats.add_argument("--scale", type=float, default=1.0)
    stats.set_defaults(func=_cmd_stats)
    demo = sub.add_parser("demo", help="tiny end-to-end demonstration")
    demo.add_argument(
        "preset", nargs="?", default="tiny", choices=["instruments", "arts", "games", "tiny"]
    )
    demo.set_defaults(func=_cmd_demo)
    experiment = sub.add_parser("experiment", help="config-driven experiment harness")
    experiment_sub = experiment.add_subparsers(dest="experiment_command", required=True)
    run = experiment_sub.add_parser("run", help="execute a scenario-matrix config")
    run.add_argument("config", help="path to a .json (or .yaml, with PyYAML) config")
    run.add_argument(
        "--scale", choices=["tiny", "small", "full"], help="override the config's scale"
    )
    run.add_argument("--no-write", action="store_true", help="skip benchmark_results/ output")
    run.set_defaults(func=_cmd_experiment_run)
    scenarios = experiment_sub.add_parser("scenarios", help="list scenarios and backends")
    scenarios.set_defaults(func=_cmd_experiment_scenarios)
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
