"""The experiment runner: config → backends → cells → JSON records.

:class:`ExperimentRunner` executes the full (scenario × backend) matrix
of an :class:`~repro.experiments.ExperimentConfig`.  Each *cell* builds
the scenario's serving topology (a :class:`repro.serving.RecommendationService`
or :class:`repro.serving.ServingCluster` over the backend's engine),
replays the scenario's deterministic event plan through the one
:class:`repro.serving.RecommendationClient` surface, and distils the
outcome into one schema'd record: admission counters (served / shed /
degraded / cold-start), quality metrics over the held-out targets the
plan carried, scenario-specific extras, expectation outcomes, and a
``timing`` block that is the *only* place wall-clock appears.

Records are written through :func:`repro.bench.report_json`, so an
experiment run lands in ``benchmark_results/`` with exactly the payload
shape CI already validates for the ad-hoc benches — one ``results``
entry per cell instead of per bench table row.

Reproducibility contract: two runs of the same config at the same seed
produce identical records after dropping each record's ``timing`` block
(:func:`strip_timing`).  Open-loop cells lean on the serving stack's
placement/batching invariance; closed-loop cells (burst overload,
catalog churn) submit with the background loops stopped so admission
outcomes are a pure function of submission order.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from ..bench import bench_scale, report_json, scaled_dataset
from ..bench.runners import build_lcrec_model
from ..eval.metrics import hit_ratio_at_k, ndcg_at_k
from ..eval.popularity import item_popularity
from ..serving import (
    LCRecEngine,
    MicroBatcherConfig,
    Overloaded,
    P5CIDEngine,
    PrefixKVCache,
    RecommendationService,
    ServingCluster,
    TIGEREngine,
)
from ..tensor import validate_precision
from .config import (
    ExperimentConfig,
    ExperimentConfigError,
    apply_sweep,
    cell_name,
    ordered_cells,
    sweep_combinations,
    sweep_suffix,
)
from .scenarios import (
    BarrierEvent,
    IngestEvent,
    ScenarioPlan,
    SubmitEvent,
    build_plan,
)

__all__ = [
    "ExperimentError",
    "ExperimentRunner",
    "PopularityFallback",
    "known_backends",
    "run_experiment",
    "strip_timing",
    "validate_backend",
]

_RESULT_TIMEOUT_S = 300.0
_CACHE_ENTRIES = 32


class ExperimentError(RuntimeError):
    """A finished run violated its declared expectations."""


# ----------------------------------------------------------------------
# Backends
# ----------------------------------------------------------------------
# Parameter name → expected type.  ``precision``/``spec_budget`` reach
# the engine adapter; ``epochs``/``dim`` reach the model builder (so
# they participate in the runtime cache key — see ``_runtime``).
_ENGINE_PARAMS = {"precision": str, "spec_budget": int}
_BACKEND_PARAMS = {
    "lcrec": dict(_ENGINE_PARAMS),
    "tiger": {"epochs": int, "dim": int, **_ENGINE_PARAMS},
    "p5cid": {"epochs": int, "dim": int, **_ENGINE_PARAMS},
}


def known_backends() -> tuple[str, ...]:
    return tuple(sorted(_BACKEND_PARAMS))


def validate_backend(name: str, params: Mapping, where: str) -> None:
    if name not in _BACKEND_PARAMS:
        raise ExperimentConfigError(
            f"{where}: unknown backend {name!r}; one of {sorted(_BACKEND_PARAMS)}"
        )
    allowed = _BACKEND_PARAMS[name]
    unknown = set(params) - set(allowed)
    if unknown:
        raise ExperimentConfigError(
            f"{where}: unknown parameters {sorted(unknown)} for backend "
            f"{name!r}; allowed: {sorted(allowed) or '(none)'}"
        )
    for key, value in params.items():
        expected = allowed[key]
        if expected is int and (not isinstance(value, int) or isinstance(value, bool)):
            raise ExperimentConfigError(
                f"{where}: parameter {key!r} must be an int, got {value!r}"
            )
        if expected is str and not isinstance(value, str):
            raise ExperimentConfigError(
                f"{where}: parameter {key!r} must be a string, got {value!r}"
            )
    if "precision" in params:
        try:
            validate_precision(params["precision"])
        except ValueError as exc:
            raise ExperimentConfigError(f"{where}: {exc}") from None
    if "spec_budget" in params and params["spec_budget"] < 0:
        raise ExperimentConfigError(
            f"{where}: spec_budget must be >= 0, got {params['spec_budget']}"
        )


class PopularityFallback:
    """A vector-free :class:`repro.serving.FallbackRecommender`.

    Backends without item embeddings (TIGER, P5-CID) cannot stand a
    retrieval tier, but the degraded/cold-start lanes still need *some*
    deterministic ranking — this one serves training popularity order,
    history items excluded.
    """

    def __init__(self, dataset):
        counts = item_popularity(dataset.split.train_sequences, dataset.num_items)
        self.order = np.lexsort((np.arange(len(counts)), -counts))

    def recommend(self, history: Sequence[int], top_k: int = 10) -> list[int]:
        seen = {int(item) for item in history}
        ranked: list[int] = []
        for item in self.order:
            if int(item) not in seen:
                ranked.append(int(item))
                if len(ranked) == top_k:
                    break
        return ranked


@dataclass
class _BackendRuntime:
    """One built backend: model + engine/fallback factories."""

    name: str
    model: object
    dataset: object
    supports_continuous: bool
    supports_language: bool
    _fallback: object = field(default=None, repr=False)

    def make_engine(self, prefix_cache: bool, params: Mapping | None = None):
        cache = PrefixKVCache(max_entries=_CACHE_ENTRIES) if prefix_cache else None
        kwargs = {
            key: value
            for key, value in (params or {}).items()
            if key in _ENGINE_PARAMS
        }
        if self.name == "lcrec":
            return LCRecEngine(
                self.model, prefix_cache=cache if prefix_cache else False, **kwargs
            )
        if self.name == "p5cid":
            return P5CIDEngine(self.model, prefix_cache=cache, **kwargs)
        return TIGEREngine(self.model, **kwargs)

    def make_fallback(self):
        if self._fallback is None:
            if self.name == "lcrec":
                from ..retrieval import RetrievalRecommender

                self._fallback = RetrievalRecommender.from_lcrec(self.model)
            else:
                self._fallback = PopularityFallback(self.dataset)
        return self._fallback

    @property
    def has_rqvae(self) -> bool:
        return getattr(self.model, "rqvae", None) is not None


def _build_backend(spec, dataset, scale, seed: int, model=None) -> _BackendRuntime:
    if model is None:
        if spec.name == "lcrec":
            model = build_lcrec_model(dataset, scale, tasks=("seq",), seed=seed)
        elif spec.name == "tiger":
            from ..baselines.tiger import TIGER, TIGERConfig
            from ..core import build_random_index_set

            index_set = build_random_index_set(
                dataset.num_items, 3, 8, np.random.default_rng(seed)
            )
            model = TIGER(
                index_set,
                TIGERConfig(
                    dim=spec.params.get("dim", 48),
                    epochs=spec.params.get("epochs", scale.epochs(6, minimum=2)),
                    seed=seed,
                ),
            )
            model.fit(dataset)
        else:  # p5cid — spec names are validated at config load
            from ..baselines.p5cid import P5CID, P5CIDConfig

            model = P5CID(
                dataset,
                P5CIDConfig(
                    dim=spec.params.get("dim", 48),
                    epochs=spec.params.get("epochs", scale.epochs(6, minimum=2)),
                    seed=seed,
                ),
            )
            model.fit(dataset)
    return _BackendRuntime(
        name=spec.name,
        model=model,
        dataset=dataset,
        supports_continuous=spec.name != "tiger",
        supports_language=spec.name == "lcrec",
    )


# ----------------------------------------------------------------------
# Record post-processing
# ----------------------------------------------------------------------
def strip_timing(record: Mapping) -> dict:
    """A record without its wall-clock block — the determinism view."""
    return {key: value for key, value in record.items() if key != "timing"}


def _percentiles(latencies_ms: list[float]) -> tuple[float, float]:
    if not latencies_ms:
        return 0.0, 0.0
    array = np.asarray(latencies_ms)
    return float(np.percentile(array, 50)), float(np.percentile(array, 95))


# ----------------------------------------------------------------------
# Runner
# ----------------------------------------------------------------------
class ExperimentRunner:
    """Execute one :class:`ExperimentConfig` and emit its JSON record.

    ``dataset`` and ``models`` (backend name → already-built model)
    inject pre-built state — tests reuse session fixtures instead of
    retraining, and the records stay honest because builders are pure
    functions of (config, seed) anyway.  ``write=False`` skips the
    ``benchmark_results/`` file and just returns the payload.
    """

    def __init__(
        self,
        config: ExperimentConfig,
        dataset=None,
        models: Mapping[str, object] | None = None,
        write: bool = True,
    ):
        self.config = config
        self.scale = bench_scale(config.scale)
        if dataset is None:
            dataset = scaled_dataset(config.preset, scale=self.scale)
        self.dataset = dataset
        self._injected = dict(models or {})
        self.write = write
        self._runtimes: dict[tuple, _BackendRuntime] = {}

    # -- backends ------------------------------------------------------
    def _runtime(self, spec) -> _BackendRuntime:
        # Keyed by the *model-building* params only: engine params
        # (precision, spec_budget) never force a retrain, so sweep
        # points over them share one built model.
        key = (spec.name, spec.params.get("epochs"), spec.params.get("dim"))
        if key not in self._runtimes:
            self._runtimes[key] = _build_backend(
                spec,
                self.dataset,
                self.scale,
                self.config.seed,
                model=self._injected.get(spec.name),
            )
        return self._runtimes[key]

    # -- cell plumbing -------------------------------------------------
    def _cell_mode(self, plan: ScenarioPlan, runtimes: list[_BackendRuntime]) -> str:
        if self.config.mode == "continuous" and all(
            runtime.supports_continuous for runtime in runtimes
        ):
            return "continuous"
        return "deadline"

    def _fleet_order(self, plan: ScenarioPlan, cell_runtime, cell_spec):
        """(runtime, spec) pairs behind this cell's cluster, worker 0 first."""
        if plan.kind != "mixed_fleet":
            return [(cell_runtime, cell_spec)]
        others = [
            (self._runtime(spec), spec)
            for spec in self.config.backends
            if spec.name != cell_runtime.name
        ]
        return [(cell_runtime, cell_spec)] + (others or [(cell_runtime, cell_spec)])

    def _build_client(self, plan: ScenarioPlan, runtime: _BackendRuntime, spec):
        """The scenario's client plus per-cell context for the record."""
        batcher = MicroBatcherConfig(max_batch_size=self.config.batch_width)
        fallback = runtime.make_fallback() if plan.use_fallback else None
        context: dict = {}
        if plan.client == "service":
            if plan.kind == "catalog_churn":
                catalog = runtime.model.live_catalog(retrieval=True)
                engine = runtime.make_engine(plan.prefix_cache, spec.params)
                engine.attach_catalog(catalog)
                # Deliberately the *version-0* tier object: the ingest
                # refresh hook must swap it, and the record's candidate
                # rate proves it did.
                fallback = catalog.version.retrieval
                context["catalog"] = catalog
            else:
                engine = runtime.make_engine(plan.prefix_cache, spec.params)
            mode = self._cell_mode(plan, [runtime])
            client = RecommendationService(
                engine,
                batcher=batcher,
                deadline_ms=self.config.deadline_flush_ms,
                mode=mode,
                fallback=fallback,
            )
        else:
            fleet = self._fleet_order(plan, runtime, spec)
            mode = self._cell_mode(plan, [member for member, _ in fleet])
            workers = plan.num_workers
            cursor = iter(range(10**9))

            def engine_factory():
                member, member_spec = fleet[next(cursor) % len(fleet)]
                return member.make_engine(plan.prefix_cache, member_spec.params)

            client = ServingCluster(
                engine_factory,
                num_workers=workers,
                batcher=batcher,
                deadline_ms=self.config.deadline_flush_ms,
                mode=mode,
                max_backlog=plan.max_backlog,
                routing=plan.routing,
                seed=self.config.seed,
                fallback=fallback,
            )
            if plan.kind == "mixed_fleet":
                context["fleet"] = [
                    fleet[worker % len(fleet)][0].name for worker in range(workers)
                ]
        context["mode"] = mode
        return client, context

    # -- event replay --------------------------------------------------
    def _replay(self, plan: ScenarioPlan, client, rng) -> dict:
        """Run the plan's events; returns outcomes + raw latency samples."""
        submitted: list[tuple[SubmitEvent, object]] = []
        latencies: list[float] = []
        resolved = 0

        def submit(event: SubmitEvent):
            if event.kind == "intention":
                return client.submit_intention(
                    event.text, top_k=self.config.top_k, session_key=event.session
                )
            if event.kind == "instruction":
                return client.submit_instruction(
                    event.text, top_k=self.config.top_k, session_key=event.session
                )
            return client.submit(
                list(event.history),
                top_k=self.config.top_k,
                session_key=event.session,
            )

        def ingest(event: IngestEvent):
            dim = client_embedding_dim(client)
            item = client.ingest_item(embedding=rng.normal(size=dim))
            if item.item_id != event.item_id:
                raise RuntimeError(
                    f"planned ingest id {event.item_id} but catalog assigned "
                    f"{item.item_id}"
                )

        start = time.perf_counter()
        if plan.closed_loop:
            # Loops stay stopped: admission is a pure function of
            # submission order, and flush barriers serve synchronously.
            segment: list[object] = []
            for event in plan.events:
                if isinstance(event, SubmitEvent):
                    handle = submit(event)
                    submitted.append((event, handle))
                    segment.append(handle)
                elif isinstance(event, BarrierEvent):
                    flush_start = time.perf_counter()
                    served = client.flush()
                    flush_ms = (time.perf_counter() - flush_start) * 1000.0
                    if served:
                        latencies.extend([flush_ms / served] * served)
                    segment = []
                elif isinstance(event, IngestEvent):
                    ingest(event)
        else:
            client.start()
            try:
                submit_times: list[float] = []
                for event in plan.events:
                    if isinstance(event, SubmitEvent):
                        submit_times.append(time.perf_counter())
                        handle = submit(event)
                        submitted.append((event, handle))
                    elif isinstance(event, BarrierEvent):
                        while resolved < len(submitted):
                            _, handle = submitted[resolved]
                            _observe(handle)
                            latencies.append(
                                (time.perf_counter() - submit_times[resolved]) * 1000.0
                            )
                            resolved += 1
                    elif isinstance(event, IngestEvent):
                        ingest(event)
                while resolved < len(submitted):
                    _, handle = submitted[resolved]
                    _observe(handle)
                    latencies.append(
                        (time.perf_counter() - submit_times[resolved]) * 1000.0
                    )
                    resolved += 1
            finally:
                client.stop(drain=True)
        wall_s = time.perf_counter() - start

        outcomes = []
        for event, handle in submitted:
            try:
                ranking = handle.result(timeout=_RESULT_TIMEOUT_S)
            except Overloaded as exc:
                outcomes.append(
                    {"event": event, "ranking": None, "shed": getattr(exc, "reason", "shed")}
                )
                continue
            reason = None
            if getattr(handle, "degraded", False):
                # PendingRecommendation spells it degraded_reason; the
                # front door's DegradedRecommendation spells it reason.
                reason = getattr(handle, "degraded_reason", None) or getattr(
                    handle, "reason", None
                )
            outcomes.append(
                {"event": event, "ranking": ranking, "shed": None, "degraded_reason": reason}
            )
        return {"outcomes": outcomes, "latencies": latencies, "wall_s": wall_s}

    # -- metrics -------------------------------------------------------
    def _quality(self, outcomes: list[dict]) -> dict:
        rankings, targets = [], []
        for outcome in outcomes:
            event = outcome["event"]
            if outcome["ranking"] is not None and event.target is not None:
                rankings.append(outcome["ranking"])
                targets.append(event.target)
        quality: dict = {"evaluated": len(rankings)}
        for key in self.config.metric_keys():
            metric, cutoff = key.split("@")
            fn = hit_ratio_at_k if metric == "HR" else ndcg_at_k
            quality[key] = (
                round(fn(rankings, targets, int(cutoff)), 6) if rankings else 0.0
            )
        return quality

    def _churn_extras(self, plan: ScenarioPlan, client, context: dict) -> dict:
        """Post-run bookkeeping proving ingests reached every tier."""
        ingested = plan.extra.get("ingested_ids", [])
        catalog = context.get("catalog")
        extras: dict = {"catalog_items": catalog.num_items if catalog else None}
        if not ingested:
            extras["new_item_in_tier_rate"] = None
            return extras
        # The tier can build a profile from the new item iff the client's
        # fallback was refreshed past the ingest — the stale version-0
        # tier ignores unknown ids entirely (profile None → popularity).
        fallback = getattr(client, "fallback", None)
        hits = sum(
            int(
                item_id < getattr(fallback, "num_items", 0)
                and fallback.profile([item_id]) is not None
            )
            for item_id in ingested
        )
        extras["new_item_in_tier_rate"] = round(hits / len(ingested), 6)
        return extras

    # -- one cell ------------------------------------------------------
    def _run_cell(self, spec, backend_spec, rng, sweep: Mapping | None = None) -> dict:
        runtime = self._runtime(backend_spec)
        plan = build_plan(self.dataset, self.scale, self.config, spec)
        base = {
            "name": cell_name(spec, backend_spec) + sweep_suffix(sweep or {}),
            "scenario": spec.label,
            "scenario_kind": spec.kind,
            "backend": backend_spec.name,
            "seed": self.config.seed,
        }
        if sweep:
            base["sweep"] = dict(sweep)
        if "rqvae" in plan.requires and not runtime.has_rqvae:
            return {
                **base,
                "supported": False,
                "reason": f"{spec.kind} needs an RQ-VAE-indexed backend, "
                f"{backend_spec.name} has none",
            }
        if "language" in plan.requires and not runtime.supports_language:
            return {
                **base,
                "supported": False,
                "reason": f"{spec.kind} needs intention/instruction encoding, "
                f"{backend_spec.name} has none",
            }

        client, context = self._build_client(plan, runtime, backend_spec)
        replay = self._replay(plan, client, rng)
        outcomes = replay["outcomes"]

        served = sum(1 for o in outcomes if o["ranking"] is not None)
        shed = sum(1 for o in outcomes if o["ranking"] is None)
        cold = sum(
            1 for o in outcomes if o.get("degraded_reason") == "cold_start"
        )
        degraded = sum(
            1
            for o in outcomes
            if o.get("degraded_reason") not in (None, "cold_start")
        )
        p50, p95 = _percentiles(replay["latencies"])
        record = {
            **base,
            "supported": True,
            "client": plan.client,
            "mode": context["mode"],
            "num_workers": plan.num_workers if plan.client == "cluster" else 1,
            "closed_loop": plan.closed_loop,
            "requests": len(outcomes),
            "served": served,
            "shed": shed,
            "degraded": degraded,
            "cold_start": cold,
            "quality": self._quality(outcomes),
            "extra": {
                key: value
                for key, value in plan.extra.items()
                if key != "ingested_ids"
            },
        }
        if plan.kind == "mixed_fleet":
            record["extra"]["fleet"] = context.get("fleet")
        if plan.kind == "catalog_churn":
            record["extra"].update(self._churn_extras(plan, client, context))
            record["extra"]["ingested"] = len(plan.extra.get("ingested_ids", []))
        checked, failed = [], []
        for expectation in spec.expect:
            holds, observed = expectation.check(record)
            checked.append(
                {**expectation.to_dict(), "observed": observed, "holds": holds}
            )
            if not holds:
                failed.append(
                    f"{record['name']}: {expectation.metric} {expectation.op} "
                    f"{expectation.value} (observed {observed!r})"
                )
        record["expectations"] = {"checked": checked, "failed": failed}
        wall = replay["wall_s"]
        record["timing"] = {
            "wall_s": round(wall, 4),
            "requests_per_second": round(len(outcomes) / wall, 2) if wall else 0.0,
            "p50_ms": round(p50, 3),
            "p95_ms": round(p95, 3),
        }
        return record

    # -- the matrix ----------------------------------------------------
    def _at_sweep_point(self, combo: Mapping) -> "ExperimentRunner":
        """A runner for one sweep point, sharing this runner's models."""
        if not combo:
            return self
        variant = ExperimentRunner(
            apply_sweep(self.config, combo),
            dataset=self.dataset,
            models=self._injected,
            write=False,
        )
        variant._runtimes = self._runtimes  # built models are shared
        return variant

    def run(self) -> dict:
        """Execute every cell; returns ``{records, failed, path}``.

        With a ``sweep``, the whole (scenario × backend) matrix runs
        once per combination — the per-cell RNG depends only on the
        cell's position, so every sweep point replays identical traffic
        and the records differ only where the swept knob matters.

        Raises :class:`ExperimentError` after writing the record file if
        any cell's expectations failed — results land on disk either
        way, so a red run is still inspectable.
        """
        records, failed = [], []
        for combo in sweep_combinations(self.config):
            runner = self._at_sweep_point(combo)
            for scenario_index, (spec, backend_spec) in enumerate(
                ordered_cells(runner.config)
            ):
                rng = np.random.default_rng(
                    [max(self.config.seed, 0), scenario_index]
                )
                record = runner._run_cell(spec, backend_spec, rng, sweep=combo)
                records.append(record)
                failed.extend(record.get("expectations", {}).get("failed", []))
        path = None
        if self.write:
            path = report_json(
                f"experiment_{self.config.name}",
                config=self.config.to_dict(),
                results=records,
            )
        if failed:
            raise ExperimentError(
                "experiment expectations failed:\n  " + "\n  ".join(failed)
            )
        return {"records": records, "failed": failed, "path": path}


def run_experiment(
    config: ExperimentConfig | Mapping,
    dataset=None,
    models: Mapping[str, object] | None = None,
    write: bool = True,
) -> dict:
    """One-call convenience: dict/config in, records out."""
    if not isinstance(config, ExperimentConfig):
        config = ExperimentConfig.from_dict(config)
    return ExperimentRunner(config, dataset=dataset, models=models, write=write).run()


def client_embedding_dim(client) -> int:
    """The input dimension catalog ingests must match for this client."""
    catalog = None
    engine = getattr(client, "engine", None)
    if engine is not None:
        catalog = getattr(engine, "catalog", None)
    if catalog is None:
        raise RuntimeError("client has no live catalog attached; cannot ingest")
    return int(catalog.rqvae.config.input_dim)


def _observe(handle) -> None:
    """Wait for a handle without consuming its outcome (shed is fine)."""
    try:
        handle.result(timeout=_RESULT_TIMEOUT_S)
    except Overloaded:
        pass
