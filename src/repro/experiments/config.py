"""Declarative experiment configuration: one dict/YAML → one reproducible run.

An :class:`ExperimentConfig` is the single declaration the harness needs:
*what* to measure (backends × scenarios, metric/cutoff lists), *at which
size* (dataset preset and :class:`repro.bench.BenchScale` name — settable
here programmatically, with the ``REPRO_SCALE`` environment variable only
as the fallback), and *under which identity* (seed, run id).  Everything
downstream — workload generation, serving wiring, metric computation and
the JSON record — is a pure function of this object, which is what makes
two runs of the same config at the same seed emit identical records
modulo timings.

Configs load from plain dicts, from JSON files, or from YAML files when
PyYAML is installed (YAML is optional sugar — the harness itself never
imports it unless asked to read a ``.yaml``).  Validation is strict and
early: unknown keys, unknown scenario kinds, unknown backends, malformed
expectations and out-of-range values all raise
:class:`ExperimentConfigError` before any model is built.
"""

from __future__ import annotations

import itertools
import json
import pathlib
from dataclasses import dataclass, field, replace
from typing import Mapping, Sequence

__all__ = [
    "BackendSpec",
    "Expectation",
    "ExperimentConfig",
    "ExperimentConfigError",
    "ScenarioSpec",
    "apply_sweep",
    "sweep_combinations",
    "sweep_suffix",
]

KNOWN_METRICS = ("hr", "ndcg")
KNOWN_MODES = ("deadline", "continuous")

_EXPECT_OPS = {
    "gt": lambda a, b: a > b,
    "ge": lambda a, b: a >= b,
    "lt": lambda a, b: a < b,
    "le": lambda a, b: a <= b,
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
}


class ExperimentConfigError(ValueError):
    """A config failed validation; the message says which field and why."""


def _require_type(value, types, what: str):
    if not isinstance(value, types):
        names = (
            "/".join(t.__name__ for t in types)
            if isinstance(types, tuple)
            else types.__name__
        )
        raise ExperimentConfigError(
            f"{what} must be {names}, got {type(value).__name__}: {value!r}"
        )
    return value


@dataclass(frozen=True)
class Expectation:
    """One per-cell assertion: ``metric`` (dotted path into the record)
    compared against ``value`` with ``op`` (gt/ge/lt/le/eq/ne).

    This is how a ported ad-hoc benchmark keeps its assertions: the
    harness evaluates every expectation against the finished cell record,
    writes the outcomes into the record, and the run fails loudly if any
    expectation does not hold.
    """

    metric: str
    op: str
    value: float

    @classmethod
    def from_dict(cls, raw: Mapping, where: str) -> "Expectation":
        _require_type(raw, dict, f"{where} expectation")
        unknown = set(raw) - {"metric", "op", "value"}
        if unknown:
            raise ExperimentConfigError(
                f"{where} expectation has unknown keys {sorted(unknown)}; "
                "allowed: metric, op, value"
            )
        for key in ("metric", "op", "value"):
            if key not in raw:
                raise ExperimentConfigError(f"{where} expectation is missing {key!r}")
        op = raw["op"]
        if op not in _EXPECT_OPS:
            raise ExperimentConfigError(
                f"{where} expectation op {op!r} unknown; one of {sorted(_EXPECT_OPS)}"
            )
        metric = _require_type(raw["metric"], str, f"{where} expectation metric")
        value = raw["value"]
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ExperimentConfigError(
                f"{where} expectation value must be a number, got {value!r}"
            )
        return cls(metric=metric, op=op, value=float(value))

    def check(self, record: Mapping) -> tuple[bool, object]:
        """(holds, observed) against one cell record; missing paths fail."""
        node: object = record
        for part in self.metric.split("."):
            if not isinstance(node, Mapping) or part not in node:
                return False, None
            node = node[part]
        if not isinstance(node, (int, float)) or isinstance(node, bool):
            return False, node
        return _EXPECT_OPS[self.op](node, self.value), node

    def to_dict(self) -> dict:
        return {"metric": self.metric, "op": self.op, "value": self.value}


@dataclass(frozen=True)
class ScenarioSpec:
    """One scenario cell row: a registered kind plus its parameters.

    ``label`` names the row in records and must be unique within a config
    (it defaults to ``kind``, so listing the same kind twice — say, a
    burst with and without a fallback — needs explicit labels).
    """

    kind: str
    label: str
    params: dict = field(default_factory=dict)
    expect: tuple[Expectation, ...] = ()

    @classmethod
    def from_raw(cls, raw, index: int) -> "ScenarioSpec":
        where = f"scenarios[{index}]"
        if isinstance(raw, str):
            raw = {"kind": raw}
        _require_type(raw, dict, where)
        if "kind" not in raw:
            raise ExperimentConfigError(f"{where} is missing 'kind'")
        kind = _require_type(raw["kind"], str, f"{where}.kind")
        label = _require_type(raw.get("label", kind), str, f"{where}.label")
        expect = tuple(
            Expectation.from_dict(entry, f"{where} ({label})")
            for entry in _require_type(raw.get("expect", []), list, f"{where}.expect")
        )
        params = {
            key: value
            for key, value in raw.items()
            if key not in ("kind", "label", "expect")
        }
        from .scenarios import validate_scenario  # late: avoids an import cycle

        validate_scenario(kind, params, where)
        return cls(kind=kind, label=label, params=params, expect=expect)

    def to_dict(self) -> dict:
        payload: dict = {"kind": self.kind, "label": self.label, **self.params}
        if self.expect:
            payload["expect"] = [expectation.to_dict() for expectation in self.expect]
        return payload


@dataclass(frozen=True)
class BackendSpec:
    """One backend column: a registered name plus builder overrides
    (currently ``epochs``, forwarded to the backend's trainer)."""

    name: str
    params: dict = field(default_factory=dict)

    @classmethod
    def from_raw(cls, raw, index: int) -> "BackendSpec":
        where = f"backends[{index}]"
        if isinstance(raw, str):
            raw = {"name": raw}
        _require_type(raw, dict, where)
        if "name" not in raw:
            raise ExperimentConfigError(f"{where} is missing 'name'")
        name = _require_type(raw["name"], str, f"{where}.name").lower()
        params = {key: value for key, value in raw.items() if key != "name"}
        from .runner import validate_backend  # late: avoids an import cycle

        validate_backend(name, params, where)
        return cls(name=name, params=params)

    def to_dict(self) -> dict:
        return {"name": self.name, **self.params}


_TOP_LEVEL_KEYS = {
    "name",
    "seed",
    "preset",
    "scale",
    "backends",
    "scenarios",
    "metrics",
    "cutoffs",
    "top_k",
    "num_workers",
    "batch_width",
    "deadline_flush_ms",
    "mode",
    "run_id",
    "sweep",
}

# Top-level config fields a sweep axis may range over.  Anything else in
# a sweep must be a parameter every configured backend accepts (e.g.
# ``precision`` / ``spec_budget``) — that path is validated per backend.
_SWEEPABLE_TOP_LEVEL = ("batch_width", "num_workers", "top_k", "mode")


def _validate_sweep(raw_sweep, backends: Sequence["BackendSpec"]):
    """Parse ``sweep`` into a canonical ``((key, (values, ...)), ...)``."""
    _require_type(raw_sweep, dict, "sweep")
    axes = []
    for key, values in raw_sweep.items():
        key = _require_type(key, str, "sweep axis name")
        values = _require_type(values, list, f"sweep.{key}")
        if not values:
            raise ExperimentConfigError(f"sweep.{key} must list at least one value")
        if len(set(values)) != len(values):
            raise ExperimentConfigError(f"sweep.{key} has duplicate values: {values}")
        if key in _SWEEPABLE_TOP_LEVEL:
            for value in values:
                if key == "mode":
                    if value not in KNOWN_MODES:
                        raise ExperimentConfigError(
                            f"sweep.mode value must be one of {KNOWN_MODES}, got {value!r}"
                        )
                elif not isinstance(value, int) or isinstance(value, bool) or value < 1:
                    raise ExperimentConfigError(
                        f"sweep.{key} values must be positive ints, got {value!r}"
                    )
        else:
            # A backend-parameter axis: every configured backend must
            # accept every value, so one sweep point stays one matrix.
            from .runner import validate_backend  # late: avoids an import cycle

            for spec in backends:
                for value in values:
                    validate_backend(
                        spec.name,
                        {**spec.params, key: value},
                        f"sweep.{key} (backend {spec.name!r})",
                    )
        axes.append((key, tuple(values)))
    return tuple(axes)


@dataclass(frozen=True)
class ExperimentConfig:
    """The full declaration of one experiment run.

    ``scale`` selects the :class:`repro.bench.BenchScale` by name
    (``tiny``/``small``/``full``); ``None`` falls back to the
    ``REPRO_SCALE`` environment variable exactly like the ad-hoc benches
    — but a config that pins ``scale`` is self-contained and needs no
    environment setup (and no monkeypatching in tests).

    ``sweep`` turns one config into a grid: each axis maps a sweepable
    top-level key (``batch_width``/``num_workers``/``top_k``/``mode``)
    or a backend parameter shared by every configured backend
    (``precision``, ``spec_budget``, …) to a value list.  The runner
    replays the whole (scenario × backend) matrix once per combination
    — same traffic at every sweep point — and suffixes cell names with
    ``@key=value,…`` (see :func:`sweep_combinations` /
    :func:`apply_sweep`).
    """

    name: str
    backends: tuple[BackendSpec, ...]
    scenarios: tuple[ScenarioSpec, ...]
    seed: int = 0
    preset: str = "instruments"
    scale: str | None = None
    metrics: tuple[str, ...] = ("hr", "ndcg")
    cutoffs: tuple[int, ...] = (5, 10)
    top_k: int = 10
    num_workers: int = 2
    batch_width: int = 4
    deadline_flush_ms: float = 10.0
    mode: str = "deadline"
    run_id: str | None = None
    sweep: tuple[tuple[str, tuple], ...] = ()

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, raw: Mapping) -> "ExperimentConfig":
        _require_type(raw, dict, "experiment config")
        unknown = set(raw) - _TOP_LEVEL_KEYS
        if unknown:
            raise ExperimentConfigError(
                f"unknown config keys {sorted(unknown)}; "
                f"allowed: {sorted(_TOP_LEVEL_KEYS)}"
            )
        for key in ("name", "backends", "scenarios"):
            if key not in raw:
                raise ExperimentConfigError(f"config is missing required key {key!r}")
        name = _require_type(raw["name"], str, "name")
        if not name or any(c in name for c in "/\\ "):
            raise ExperimentConfigError(
                f"name must be a non-empty path-safe token, got {name!r}"
            )
        backends = tuple(
            BackendSpec.from_raw(entry, index)
            for index, entry in enumerate(_require_type(raw["backends"], list, "backends"))
        )
        if not backends:
            raise ExperimentConfigError("backends must name at least one backend")
        if len({spec.name for spec in backends}) != len(backends):
            raise ExperimentConfigError("backend names must be unique")
        scenarios = tuple(
            ScenarioSpec.from_raw(entry, index)
            for index, entry in enumerate(
                _require_type(raw["scenarios"], list, "scenarios")
            )
        )
        if not scenarios:
            raise ExperimentConfigError("scenarios must name at least one scenario")
        labels = [spec.label for spec in scenarios]
        if len(set(labels)) != len(labels):
            raise ExperimentConfigError(
                f"scenario labels must be unique, got {labels}; "
                "give repeated kinds an explicit 'label'"
            )
        metrics = tuple(
            _require_type(m, str, "metrics entry").lower()
            for m in _require_type(raw.get("metrics", list(cls.metrics)), list, "metrics")
        )
        for metric in metrics:
            if metric not in KNOWN_METRICS:
                raise ExperimentConfigError(
                    f"unknown metric {metric!r}; one of {sorted(KNOWN_METRICS)}"
                )
        cutoffs = tuple(
            _require_type(k, int, "cutoffs entry")
            for k in _require_type(raw.get("cutoffs", list(cls.cutoffs)), list, "cutoffs")
        )
        if not cutoffs or any(k < 1 for k in cutoffs):
            raise ExperimentConfigError(f"cutoffs must be positive ints, got {cutoffs}")
        scale = raw.get("scale")
        if scale is not None:
            from ..bench import bench_scale

            scale = _require_type(scale, str, "scale").lower()
            bench_scale(scale)  # raises KeyError on unknown names
        mode = _require_type(raw.get("mode", cls.mode), str, "mode")
        if mode not in KNOWN_MODES:
            raise ExperimentConfigError(f"mode must be one of {KNOWN_MODES}, got {mode!r}")
        config = cls(
            name=name,
            backends=backends,
            scenarios=scenarios,
            seed=_require_type(raw.get("seed", cls.seed), int, "seed"),
            preset=_require_type(raw.get("preset", cls.preset), str, "preset"),
            scale=scale,
            metrics=metrics,
            cutoffs=cutoffs,
            top_k=_require_type(raw.get("top_k", cls.top_k), int, "top_k"),
            num_workers=_require_type(raw.get("num_workers", cls.num_workers), int, "num_workers"),
            batch_width=_require_type(raw.get("batch_width", cls.batch_width), int, "batch_width"),
            deadline_flush_ms=float(raw.get("deadline_flush_ms", cls.deadline_flush_ms)),
            mode=mode,
            run_id=raw.get("run_id"),
            sweep=_validate_sweep(raw.get("sweep", {}), backends),
        )
        if config.top_k < 1:
            raise ExperimentConfigError(f"top_k must be positive, got {config.top_k}")
        if config.num_workers < 1:
            raise ExperimentConfigError(
                f"num_workers must be positive, got {config.num_workers}"
            )
        if config.batch_width < 1:
            raise ExperimentConfigError(
                f"batch_width must be positive, got {config.batch_width}"
            )
        if config.deadline_flush_ms <= 0:
            raise ExperimentConfigError(
                f"deadline_flush_ms must be positive, got {config.deadline_flush_ms}"
            )
        return config

    @classmethod
    def from_file(cls, path: str | pathlib.Path) -> "ExperimentConfig":
        """Load a config from ``.json`` or (with PyYAML installed) ``.yaml``."""
        path = pathlib.Path(path)
        if not path.exists():
            raise ExperimentConfigError(f"config file not found: {path}")
        text = path.read_text()
        if path.suffix in (".yaml", ".yml"):
            try:
                import yaml
            except ImportError as exc:  # pragma: no cover - env-dependent
                raise ExperimentConfigError(
                    f"{path} is YAML but PyYAML is not installed; "
                    "use a .json config or install pyyaml"
                ) from exc
            raw = yaml.safe_load(text)
        elif path.suffix == ".json":
            raw = json.loads(text)
        else:
            raise ExperimentConfigError(
                f"config file must be .json or .yaml, got {path.suffix!r} ({path})"
            )
        return cls.from_dict(raw)

    # ------------------------------------------------------------------
    # Serialisation (the record's config block)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "seed": self.seed,
            "preset": self.preset,
            "scale": self.scale,
            "backends": [spec.to_dict() for spec in self.backends],
            "scenarios": [spec.to_dict() for spec in self.scenarios],
            "metrics": list(self.metrics),
            "cutoffs": list(self.cutoffs),
            "top_k": self.top_k,
            "num_workers": self.num_workers,
            "batch_width": self.batch_width,
            "deadline_flush_ms": self.deadline_flush_ms,
            "mode": self.mode,
            "run_id": self.run_id,
            "sweep": {key: list(values) for key, values in self.sweep},
        }

    def metric_keys(self) -> list[str]:
        """The quality-metric labels, e.g. ``["HR@5", "NDCG@10"]``."""
        keys = []
        for metric in self.metrics:
            for cutoff in self.cutoffs:
                if metric == "ndcg" and cutoff <= 1:
                    continue  # NDCG@1 degenerates to HR@1
                keys.append(f"{metric.upper()}@{cutoff}")
        return keys


def cell_name(scenario: ScenarioSpec | str, backend: BackendSpec | str) -> str:
    """The canonical ``<scenario>x<backend>`` cell id used in records."""
    scenario_label = scenario if isinstance(scenario, str) else scenario.label
    backend_name = backend if isinstance(backend, str) else backend.name
    return f"{scenario_label}x{backend_name}"


def ordered_cells(
    config: ExperimentConfig,
) -> Sequence[tuple[ScenarioSpec, BackendSpec]]:
    """The (scenario × backend) matrix in deterministic row-major order."""
    return [
        (scenario, backend)
        for scenario in config.scenarios
        for backend in config.backends
    ]


def sweep_combinations(config: ExperimentConfig) -> list[dict]:
    """Every sweep point as ``{axis: value}``, row-major in axis order.

    A config without a sweep yields the single empty combination, so
    callers can always loop over the result.
    """
    if not config.sweep:
        return [{}]
    keys = [key for key, _ in config.sweep]
    return [
        dict(zip(keys, values))
        for values in itertools.product(*(values for _, values in config.sweep))
    ]


def sweep_suffix(combo: Mapping) -> str:
    """The cell-name suffix for one sweep point (empty for no sweep)."""
    if not combo:
        return ""
    return "@" + ",".join(f"{key}={value}" for key, value in combo.items())


def apply_sweep(config: ExperimentConfig, combo: Mapping) -> ExperimentConfig:
    """The concrete config at one sweep point.

    Top-level axes override the config field; backend-parameter axes
    merge into every backend's params.  The result carries no ``sweep``
    of its own — it is one fully resolved run declaration.
    """
    top = {key: value for key, value in combo.items() if key in _SWEEPABLE_TOP_LEVEL}
    backend_params = {key: value for key, value in combo.items() if key not in top}
    backends = config.backends
    if backend_params:
        backends = tuple(
            replace(spec, params={**spec.params, **backend_params})
            for spec in backends
        )
    return replace(config, backends=backends, sweep=(), **top)
