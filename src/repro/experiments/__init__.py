"""Config-driven experiment harness: one declaration → a reproducible
(scenario × backend) matrix of quality + serving measurements.

The ad-hoc benchmarks under ``benchmarks/`` each hand-roll the same
skeleton: build a model, shape some traffic, drive the serving client,
assert, report.  This package factors that skeleton into three pieces:

* :class:`ExperimentConfig` (``config``) — the declarative input: seeds,
  backends, scenarios, metric/cutoff lists, scale, expectations.  Loads
  from dicts, JSON files, or YAML files (when PyYAML is available).
* the scenario matrix (``scenarios``) — deterministic workload
  generators (cold-start, long-history, session-refresh, catalog-churn,
  burst-overload, mixed-fleet, …) compiled into event plans any backend
  can replay.
* :class:`ExperimentRunner` (``runner``) — builds each backend once,
  runs every cell through the one :class:`repro.serving.RecommendationClient`
  surface, and emits one schema'd JSON record per cell via
  :func:`repro.bench.report_json` into ``benchmark_results/``.

Same config + same seed → identical records modulo each record's
``timing`` block (see :func:`strip_timing`).  Run from the CLI with
``python -m repro experiment run <config.json|.yaml>``, or in code::

    from repro.experiments import run_experiment

    run_experiment({
        "name": "smoke",
        "scale": "tiny",
        "backends": ["lcrec", "tiger"],
        "scenarios": ["steady_state", {"kind": "burst_overload", "fallback": False}],
    })

``docs/experiments.md`` is the full reference.
"""

from .config import (
    BackendSpec,
    Expectation,
    ExperimentConfig,
    ExperimentConfigError,
    ScenarioSpec,
    apply_sweep,
    cell_name,
    ordered_cells,
    sweep_combinations,
    sweep_suffix,
)
from .runner import (
    ExperimentError,
    ExperimentRunner,
    PopularityFallback,
    known_backends,
    run_experiment,
    strip_timing,
)
from .scenarios import (
    BarrierEvent,
    IngestEvent,
    ScenarioPlan,
    SubmitEvent,
    build_plan,
    known_scenarios,
)

__all__ = [
    "BackendSpec",
    "BarrierEvent",
    "Expectation",
    "ExperimentConfig",
    "ExperimentConfigError",
    "ExperimentError",
    "ExperimentRunner",
    "IngestEvent",
    "PopularityFallback",
    "ScenarioPlan",
    "ScenarioSpec",
    "SubmitEvent",
    "apply_sweep",
    "build_plan",
    "cell_name",
    "known_backends",
    "known_scenarios",
    "ordered_cells",
    "run_experiment",
    "strip_timing",
    "sweep_combinations",
    "sweep_suffix",
]
