"""The scenario matrix: composable workload generators for one experiment.

A *scenario* is a deterministic function from ``(dataset, scale, config,
spec)`` to a :class:`ScenarioPlan` — an ordered event list (submits,
flush barriers, catalog ingests) plus the serving wiring the events
assume (service vs cluster, worker count, backlog bound, fallback lane,
prefix cache).  The runner replays the plan against any backend; the
plan itself never touches a model, which is why every (scenario ×
backend) cell of a matrix serves the *same* traffic.

Determinism is the design constraint.  Open-loop scenarios (steady
state, cold start, long history, session refresh, mixed fleet) rely on
the serving stack's guarantee that batching and placement change cost,
never math.  Scenarios whose *counters* are the point — burst overload
shedding, catalog churn — run closed-loop: every submit lands while the
background loop is stopped, so admission-control outcomes are a pure
function of submission order, and ``flush()`` barriers serve the
backlog synchronously.  Wall-clock only ever shows up in the record's
``timing`` block.

Scenario kinds and their parameters (defaults in parentheses):

``steady_state``
    Round-robin over held-out users with full histories.  ``requests``
    (24).
``cold_start``
    Histories truncated to ``prefix_len`` (2) items, every
    ``1/empty_fraction`` (0.25) request fully emptied — the cluster's
    cold-start lane and the fallback's popularity ranking carry those.
    ``requests`` (24).
``long_history``
    The users with the longest histories, longest first — the padding /
    bucketing stress case.  ``requests`` (16).
``session_refresh``
    ``sessions`` (6) users each re-requesting ``refresh`` (4) times
    under one session key — the affinity + prefix-cache case.
``burst_overload``
    Closed-loop: ``requests`` (36) back-to-back submits against
    ``max_backlog`` (2) per worker.  With ``fallback`` (true) the
    overflow degrades to retrieval; without it, it sheds.
``catalog_churn``
    Closed-loop, single service, LC-Rec only (needs the RQ-VAE): one
    :meth:`repro.core.LiveCatalog.ingest` every ``ingest_every`` (6)
    requests, interleaved with decodes via flush barriers.  After the
    run, the record's ``new_item_in_tier_rate`` probes the client's
    fallback tier with each ingested id — 1.0 iff the ingestion-
    triggered retrieval refresh repointed the tier at the new catalog
    version (a stale tier does not know the ids).  ``requests`` (24).
``mixed_fleet``
    Every configured backend behind one :class:`ServingCluster` (the
    cell's backend on worker 0, the rest cycling), affinity-routed.
    ``requests`` (24).
``intention_traffic``
    Sequential submits with every ``intention_every`` (2)-th request an
    intention query (``submit_intention`` with deterministic free text
    anchored on the user's last item).  Language engines only — other
    backends record an unsupported cell.  ``requests`` (16).
``instruction_traffic``
    Every request an already-rendered instruction (``submit_instruction``)
    paraphrasing the sequential task from the last ``history_tail`` (5)
    items.  Language engines only.  ``requests`` (16).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

from .config import ExperimentConfigError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..bench import BenchScale
    from ..core.chat import SequentialDataset  # noqa: F401
    from .config import ExperimentConfig, ScenarioSpec

__all__ = [
    "BarrierEvent",
    "IngestEvent",
    "ScenarioPlan",
    "SubmitEvent",
    "build_plan",
    "known_scenarios",
    "validate_scenario",
]


@dataclass(frozen=True)
class SubmitEvent:
    """One recommendation request: who asks, with what history, and the
    held-out target (``None`` when the request has no quality label).

    ``kind`` selects the client surface: ``"seq"`` submits the history,
    ``"intention"``/``"instruction"`` submit ``text`` through
    ``submit_intention``/``submit_instruction`` (language engines only —
    the plan carries ``requires=("language",)`` in that case)."""

    session: str
    history: tuple[int, ...]
    target: int | None
    kind: str = "seq"
    text: str | None = None


@dataclass(frozen=True)
class BarrierEvent:
    """A synchronisation point.

    Closed-loop runs ``flush()`` here (serving everything queued so
    far); open-loop runs resolve every outstanding handle.  Either way,
    events after the barrier observe the effects of events before it.
    """


@dataclass(frozen=True)
class IngestEvent:
    """One catalog ingest.  The runner draws the embedding from the
    cell's seeded RNG; ``item_id`` is the id the item *will* receive
    (catalog ids are dense, so the plan can reference it in later
    submits before the item exists)."""

    item_id: int


@dataclass(frozen=True)
class ScenarioPlan:
    """A scenario compiled against one dataset: events + serving wiring."""

    kind: str
    label: str
    events: tuple
    closed_loop: bool = False
    client: str = "cluster"  # "service" | "cluster"
    num_workers: int = 1
    max_backlog: int | None = None
    routing: str = "affinity"
    use_fallback: bool = False
    prefix_cache: bool = False
    requires: tuple[str, ...] = ()
    extra: dict = field(default_factory=dict)

    @property
    def num_submits(self) -> int:
        return sum(1 for event in self.events if isinstance(event, SubmitEvent))


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------
def _eval_pairs(dataset, scale: "BenchScale") -> list[tuple[tuple[int, ...], int]]:
    """The held-out (history, target) pool, bounded by the scale."""
    limit = min(scale.max_eval_users, len(dataset.split.test_targets))
    pairs = [
        (tuple(int(i) for i in history), int(target))
        for history, target in zip(
            dataset.split.test_histories[:limit], dataset.split.test_targets[:limit]
        )
    ]
    if not pairs:
        raise ValueError("dataset has no held-out users to build scenarios from")
    return pairs


def _int_param(params: Mapping, key: str, default: int) -> int:
    return int(params.get(key, default))


# ----------------------------------------------------------------------
# Generators
# ----------------------------------------------------------------------
def _plan_steady_state(dataset, scale, config, spec) -> ScenarioPlan:
    pairs = _eval_pairs(dataset, scale)
    requests = _int_param(spec.params, "requests", 24)
    events = tuple(
        SubmitEvent(f"user:{i % len(pairs)}", *pairs[i % len(pairs)])
        for i in range(requests)
    )
    return ScenarioPlan(
        kind=spec.kind,
        label=spec.label,
        events=events,
        num_workers=config.num_workers,
    )


def _plan_cold_start(dataset, scale, config, spec) -> ScenarioPlan:
    pairs = _eval_pairs(dataset, scale)
    requests = _int_param(spec.params, "requests", 24)
    prefix_len = _int_param(spec.params, "prefix_len", 2)
    empty_fraction = float(spec.params.get("empty_fraction", 0.25))
    if not 0.0 <= empty_fraction <= 1.0:
        raise ValueError(f"empty_fraction must be in [0, 1], got {empty_fraction}")
    stride = int(round(1.0 / empty_fraction)) if empty_fraction > 0 else 0
    events = []
    empty = 0
    for i in range(requests):
        history, target = pairs[i % len(pairs)]
        if stride and i % stride == 0:
            history, empty = (), empty + 1
        else:
            history = history[-prefix_len:]
        events.append(SubmitEvent(f"user:{i % len(pairs)}", history, target))
    return ScenarioPlan(
        kind=spec.kind,
        label=spec.label,
        events=tuple(events),
        num_workers=config.num_workers,
        use_fallback=True,
        extra={"empty_histories": empty, "prefix_len": prefix_len},
    )


def _plan_long_history(dataset, scale, config, spec) -> ScenarioPlan:
    pairs = _eval_pairs(dataset, scale)
    requests = _int_param(spec.params, "requests", 16)
    # Longest histories first; ties keep dataset order (stable sort).
    ranked = sorted(range(len(pairs)), key=lambda i: -len(pairs[i][0]))
    picks = [ranked[i % len(ranked)] for i in range(requests)]
    events = tuple(SubmitEvent(f"user:{i}", *pairs[i]) for i in picks)
    lengths = [len(pairs[i][0]) for i in picks]
    return ScenarioPlan(
        kind=spec.kind,
        label=spec.label,
        events=events,
        num_workers=config.num_workers,
        extra={"max_history_len": max(lengths), "min_history_len": min(lengths)},
    )


def _plan_session_refresh(dataset, scale, config, spec) -> ScenarioPlan:
    pairs = _eval_pairs(dataset, scale)
    sessions = min(_int_param(spec.params, "sessions", 6), len(pairs))
    refresh = _int_param(spec.params, "refresh", 4)
    events = tuple(
        SubmitEvent(f"user:{s}", *pairs[s])
        for _ in range(refresh)
        for s in range(sessions)
    )
    return ScenarioPlan(
        kind=spec.kind,
        label=spec.label,
        events=events,
        num_workers=config.num_workers,
        prefix_cache=True,
        extra={"sessions": sessions, "refresh": refresh},
    )


def _plan_burst_overload(dataset, scale, config, spec) -> ScenarioPlan:
    pairs = _eval_pairs(dataset, scale)
    requests = _int_param(spec.params, "requests", 36)
    max_backlog = _int_param(spec.params, "max_backlog", 2)
    use_fallback = bool(spec.params.get("fallback", True))
    events = tuple(
        SubmitEvent(f"user:{i % len(pairs)}", *pairs[i % len(pairs)])
        for i in range(requests)
    ) + (BarrierEvent(),)
    capacity = config.num_workers * max_backlog
    return ScenarioPlan(
        kind=spec.kind,
        label=spec.label,
        events=events,
        closed_loop=True,
        num_workers=config.num_workers,
        max_backlog=max_backlog,
        use_fallback=use_fallback,
        extra={"backlog_capacity": capacity},
    )


def _plan_catalog_churn(dataset, scale, config, spec) -> ScenarioPlan:
    pairs = _eval_pairs(dataset, scale)
    requests = _int_param(spec.params, "requests", 24)
    ingest_every = max(_int_param(spec.params, "ingest_every", 6), 1)
    events: list = []
    ingested: list[int] = []
    next_id = dataset.num_items  # catalog ids are dense: ingest k → num_items + k
    for i in range(requests):
        if i and i % ingest_every == 0:
            events.append(BarrierEvent())
            events.append(IngestEvent(item_id=next_id))
            ingested.append(next_id)
            next_id += 1
        history, target = pairs[i % len(pairs)]
        events.append(SubmitEvent(f"user:{i % len(pairs)}", history, target))
    events.append(BarrierEvent())
    return ScenarioPlan(
        kind=spec.kind,
        label=spec.label,
        events=tuple(events),
        closed_loop=True,
        client="service",
        use_fallback=True,
        requires=("rqvae",),
        extra={"ingested_ids": ingested, "ingest_every": ingest_every},
    )


def _plan_intention_traffic(dataset, scale, config, spec) -> ScenarioPlan:
    """Sequential submits with every ``intention_every``-th request an
    intention query — the Fig. 3-style free-text path.  Intention events
    carry no quality target (there is no held-out answer to a free-text
    ask), so ``quality.evaluated`` counts only the seq submits."""
    pairs = _eval_pairs(dataset, scale)
    requests = _int_param(spec.params, "requests", 16)
    intention_every = max(_int_param(spec.params, "intention_every", 2), 1)
    events = []
    intentions = 0
    for i in range(requests):
        history, target = pairs[i % len(pairs)]
        session = f"user:{i % len(pairs)}"
        if i % intention_every == 0:
            anchor = history[-1] if history else target
            events.append(
                SubmitEvent(
                    session,
                    (),
                    None,
                    kind="intention",
                    text=f"something that pairs well with item {anchor}",
                )
            )
            intentions += 1
        else:
            events.append(SubmitEvent(session, history, target))
    return ScenarioPlan(
        kind=spec.kind,
        label=spec.label,
        events=tuple(events),
        num_workers=config.num_workers,
        requires=("language",),
        extra={"intention_requests": intentions},
    )


def _plan_instruction_traffic(dataset, scale, config, spec) -> ScenarioPlan:
    """Every request an already-rendered free-form instruction built from
    the user's history.  Targets are kept: the instruction paraphrases
    the sequential task, so the quality block stays meaningful (if
    template-shifted)."""
    pairs = _eval_pairs(dataset, scale)
    requests = _int_param(spec.params, "requests", 16)
    tail = max(_int_param(spec.params, "history_tail", 5), 1)
    events = []
    for i in range(requests):
        history, target = pairs[i % len(pairs)]
        recent = ", ".join(str(item) for item in history[-tail:])
        events.append(
            SubmitEvent(
                f"user:{i % len(pairs)}",
                history,
                target,
                kind="instruction",
                text=f"The user recently interacted with items {recent}. "
                "Predict the next item they will interact with.",
            )
        )
    return ScenarioPlan(
        kind=spec.kind,
        label=spec.label,
        events=tuple(events),
        num_workers=config.num_workers,
        requires=("language",),
        extra={"history_tail": tail},
    )


def _plan_mixed_fleet(dataset, scale, config, spec) -> ScenarioPlan:
    pairs = _eval_pairs(dataset, scale)
    requests = _int_param(spec.params, "requests", 24)
    events = tuple(
        SubmitEvent(f"user:{i % len(pairs)}", *pairs[i % len(pairs)])
        for i in range(requests)
    )
    fleet = max(len(config.backends), 2)
    return ScenarioPlan(
        kind=spec.kind,
        label=spec.label,
        events=events,
        num_workers=fleet,
        requires=("fleet",),
        extra={"fleet_size": fleet},
    )


_SCENARIOS = {
    "steady_state": (_plan_steady_state, {"requests": 24}),
    "cold_start": (
        _plan_cold_start,
        {"requests": 24, "prefix_len": 2, "empty_fraction": 0.25},
    ),
    "long_history": (_plan_long_history, {"requests": 16}),
    "session_refresh": (_plan_session_refresh, {"sessions": 6, "refresh": 4}),
    "burst_overload": (
        _plan_burst_overload,
        {"requests": 36, "max_backlog": 2, "fallback": True},
    ),
    "catalog_churn": (_plan_catalog_churn, {"requests": 24, "ingest_every": 6}),
    "mixed_fleet": (_plan_mixed_fleet, {"requests": 24}),
    "intention_traffic": (
        _plan_intention_traffic,
        {"requests": 16, "intention_every": 2},
    ),
    "instruction_traffic": (
        _plan_instruction_traffic,
        {"requests": 16, "history_tail": 5},
    ),
}


def known_scenarios() -> dict[str, dict]:
    """Scenario kind → default parameters (the registry, read-only)."""
    return {kind: dict(defaults) for kind, (_, defaults) in _SCENARIOS.items()}


def validate_scenario(kind: str, params: Mapping, where: str) -> None:
    """Reject unknown kinds and unknown/ill-typed parameters early."""
    if kind not in _SCENARIOS:
        raise ExperimentConfigError(
            f"{where}: unknown scenario kind {kind!r}; one of {sorted(_SCENARIOS)}"
        )
    _, defaults = _SCENARIOS[kind]
    unknown = set(params) - set(defaults)
    if unknown:
        raise ExperimentConfigError(
            f"{where}: unknown parameters {sorted(unknown)} for scenario "
            f"{kind!r}; allowed: {sorted(defaults)}"
        )
    for key, value in params.items():
        if isinstance(defaults[key], bool):
            if not isinstance(value, bool):
                raise ExperimentConfigError(
                    f"{where}: parameter {key!r} must be a bool, got {value!r}"
                )
        elif not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ExperimentConfigError(
                f"{where}: parameter {key!r} must be a number, got {value!r}"
            )


def build_plan(
    dataset,
    scale: "BenchScale",
    config: "ExperimentConfig",
    spec: "ScenarioSpec",
) -> ScenarioPlan:
    """Compile one scenario spec into its deterministic event plan."""
    builder, _ = _SCENARIOS[spec.kind]
    return builder(dataset, scale, config, spec)
