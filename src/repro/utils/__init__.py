"""Shared utilities: seeded RNG streams and lightweight logging."""

from .rng import SeedSequenceFactory, rng_from_seed
from .logging import get_logger

__all__ = ["SeedSequenceFactory", "rng_from_seed", "get_logger"]
