"""Library logging configuration (stdlib logging, null handler by default)."""

from __future__ import annotations

import logging

__all__ = ["get_logger"]

_ROOT_NAME = "repro"
logging.getLogger(_ROOT_NAME).addHandler(logging.NullHandler())


def get_logger(name: str) -> logging.Logger:
    """Return a logger under the ``repro`` namespace."""
    if name.startswith(_ROOT_NAME):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")
