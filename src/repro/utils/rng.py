"""Deterministic random-number-stream management.

Every stochastic component in the library (data simulator, weight init,
dropout, template sampling, beam tie-breaking) draws from its own named
stream derived from one experiment seed, so runs are exactly reproducible
and components can be re-seeded independently.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["rng_from_seed", "SeedSequenceFactory"]


def rng_from_seed(seed: int) -> np.random.Generator:
    """A fresh PCG64 generator for ``seed``."""
    return np.random.default_rng(seed)


class SeedSequenceFactory:
    """Derive independent named RNG streams from a single root seed.

    >>> factory = SeedSequenceFactory(42)
    >>> a = factory.rng("catalog")
    >>> b = factory.rng("users")

    Streams for distinct names are statistically independent, and the same
    name always yields the same stream.
    """

    def __init__(self, root_seed: int):
        self.root_seed = int(root_seed)

    def child_seed(self, name: str) -> int:
        digest = hashlib.sha256(f"{self.root_seed}:{name}".encode()).digest()
        return int.from_bytes(digest[:8], "little")

    def rng(self, name: str) -> np.random.Generator:
        return np.random.default_rng(self.child_seed(name))
