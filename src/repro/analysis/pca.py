"""Principal component analysis via SVD (for Fig. 4's 2-D projections)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PCA", "fit_pca"]


@dataclass
class PCA:
    """A fitted PCA projection."""

    mean: np.ndarray
    components: np.ndarray          # (n_components, dim)
    explained_variance: np.ndarray  # (n_components,)

    def transform(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        return (x - self.mean) @ self.components.T

    @property
    def explained_variance_ratio(self) -> np.ndarray:
        total = self.explained_variance.sum()
        if total <= 0:
            return np.zeros_like(self.explained_variance)
        return self.explained_variance / total


def fit_pca(x: np.ndarray, n_components: int = 2) -> PCA:
    """Fit PCA by singular value decomposition of the centred data."""
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 2:
        raise ValueError("x must be 2-D")
    n, dim = x.shape
    if n_components > min(n, dim):
        raise ValueError("n_components larger than data rank bound")
    mean = x.mean(axis=0)
    centred = x - mean
    _, singular_values, v_t = np.linalg.svd(centred, full_matrices=False)
    components = v_t[:n_components]
    explained = (singular_values[:n_components] ** 2) / max(n - 1, 1)
    return PCA(mean=mean, components=components, explained_variance=explained)
