"""Analysis tools: PCA, embedding integration, index-semantics studies."""

from .index_semantics import (
    LevelChangeReport,
    PrefixGeneration,
    count_level_changes,
    generate_from_prefixes,
)
from .pca import PCA, fit_pca
from .visualization import SeparationReport, ascii_scatter, embedding_separation

__all__ = [
    "PCA",
    "fit_pca",
    "SeparationReport",
    "embedding_separation",
    "ascii_scatter",
    "PrefixGeneration",
    "generate_from_prefixes",
    "LevelChangeReport",
    "count_level_changes",
]
