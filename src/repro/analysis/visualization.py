"""Embedding-space integration diagnostics and terminal plots (Fig. 4).

The paper's Fig. 4 is a qualitative PCA scatter: without alignment tuning
the item-index token embeddings form a cluster *separate* from the item
text tokens; with LC-Rec's alignment tasks they mix into the language
space.  We quantify that with a separation score (distance between group
centroids normalised by within-group spread) plus an ASCII scatter for
eyeballing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .pca import fit_pca

__all__ = ["SeparationReport", "embedding_separation", "ascii_scatter"]


@dataclass
class SeparationReport:
    """Separation between two embedding groups in PCA space."""

    centroid_distance: float
    within_spread: float

    @property
    def separation(self) -> float:
        """>1 means the groups are further apart than their own spread."""
        return self.centroid_distance / max(self.within_spread, 1e-12)


def embedding_separation(
    group_a: np.ndarray, group_b: np.ndarray, n_components: int = 2
) -> SeparationReport:
    """PCA-project both groups jointly and measure their separation."""
    stacked = np.concatenate([group_a, group_b], axis=0)
    pca = fit_pca(stacked, n_components=n_components)
    projected_a = pca.transform(group_a)
    projected_b = pca.transform(group_b)
    centroid_a = projected_a.mean(axis=0)
    centroid_b = projected_b.mean(axis=0)
    distance = float(np.linalg.norm(centroid_a - centroid_b))
    spread_a = float(np.linalg.norm(projected_a - centroid_a, axis=1).mean())
    spread_b = float(np.linalg.norm(projected_b - centroid_b, axis=1).mean())
    return SeparationReport(
        centroid_distance=distance,
        within_spread=0.5 * (spread_a + spread_b),
    )


def ascii_scatter(groups: dict[str, np.ndarray], width: int = 60, height: int = 20) -> str:
    """Render 2-D point groups as a text scatter plot.

    Each group gets the first letter of its name as the marker; overlapping
    cells show ``*``.
    """
    if not groups:
        raise ValueError("no groups to plot")
    all_points = np.concatenate(list(groups.values()), axis=0)
    if all_points.shape[1] != 2:
        raise ValueError("points must be 2-D (run PCA first)")
    x_min, y_min = all_points.min(axis=0)
    x_max, y_max = all_points.max(axis=0)
    x_span = max(x_max - x_min, 1e-9)
    y_span = max(y_max - y_min, 1e-9)
    canvas = [[" "] * width for _ in range(height)]
    for name, points in groups.items():
        marker = name[0]
        for x, y in points:
            col = int((x - x_min) / x_span * (width - 1))
            row = int((1.0 - (y - y_min) / y_span) * (height - 1))
            cell = canvas[row][col]
            canvas[row][col] = marker if cell in (" ", marker) else "*"
    legend = "  ".join(f"{name[0]}={name}" for name in groups)
    return "\n".join("".join(row) for row in canvas) + "\n" + legend
