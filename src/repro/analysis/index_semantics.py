"""Index-semantics case studies (Figs. 5 and 6).

Fig. 5(a): generate an item's title from progressively longer index
prefixes — content should converge to the ground truth coarse-to-fine.
Fig. 6: count, for each level transition, how often adding the next index
token *changes* the generated content; the proportion should fall with
depth (coarse-to-fine quantisation).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.lcrec import LCRec

__all__ = ["PrefixGeneration", "generate_from_prefixes", "LevelChangeReport", "count_level_changes"]

_PREFIX_PROMPT = (
    "please tell me what item {index} is called , along with a "
    "brief description of it ."
)


@dataclass
class PrefixGeneration:
    """Generated text per prefix length for one item."""

    item_id: int
    true_title: str
    generations: list[str]  # index 0 = one-level prefix, etc.


def generate_from_prefixes(
    model: LCRec, item_id: int, max_new_tokens: int = 16
) -> PrefixGeneration:
    """Generate item text from each index prefix of the item (Fig. 5a)."""
    tokens = model.index_set.token_strings(item_id)
    generations = []
    for depth in range(1, len(tokens) + 1):
        prefix = "".join(tokens[:depth])
        instruction = _PREFIX_PROMPT.format(index=prefix)
        generations.append(model.generate_text(instruction, max_new_tokens=max_new_tokens))
    return PrefixGeneration(
        item_id=item_id,
        true_title=model.dataset.catalog[item_id].title,
        generations=generations,
    )


@dataclass
class LevelChangeReport:
    """Fig. 6 statistics: content changes caused by each added level."""

    transitions: list[str]      # e.g. ["1->2", "2->3", "3->4"]
    change_counts: list[int]
    total_items: int

    @property
    def change_proportions(self) -> list[float]:
        return [count / max(self.total_items, 1)
                for count in self.change_counts]


def count_level_changes(generations: list[PrefixGeneration]) -> LevelChangeReport:
    """Aggregate how often each added index level changed the output."""
    if not generations:
        raise ValueError("no generations")
    num_levels = len(generations[0].generations)
    if num_levels < 2:
        raise ValueError("need at least two levels to measure changes")
    counts = [0] * (num_levels - 1)
    for generation in generations:
        outputs = generation.generations
        for level in range(num_levels - 1):
            if outputs[level + 1] != outputs[level]:
                counts[level] += 1
    transitions = [f"{i + 1}->{i + 2}" for i in range(num_levels - 1)]
    return LevelChangeReport(
        transitions=transitions,
        change_counts=counts,
        total_items=len(generations),
    )
