"""Item text embeddings from the language model.

Paper Sec. IV-A4: "we utilize LLaMA to encode the title and description of
the item as its embedding and use mean pooling to aggregate multiple token
representations."  These embeddings are the RQ-VAE input.
"""

from __future__ import annotations

import numpy as np

from ..tensor import no_grad
from ..text import WordTokenizer
from .model import TinyLlama

__all__ = ["encode_texts", "encode_items"]


def encode_texts(
    model: TinyLlama,
    tokenizer: WordTokenizer,
    texts: list[str],
    batch_size: int = 32,
    max_len: int = 64,
) -> np.ndarray:
    """Mean-pooled final hidden states for each text ``(N, dim)``."""
    if not texts:
        raise ValueError("no texts to encode")
    pad_id = tokenizer.vocab.pad_id
    encoded = [[tokenizer.vocab.bos_id] + tokenizer.encode(text)[: max_len - 1] for text in texts]
    outputs = np.zeros((len(texts), model.config.dim), dtype=np.float32)
    model.eval()
    with no_grad():
        for start in range(0, len(encoded), batch_size):
            chunk = encoded[start : start + batch_size]
            width = max(len(ids) for ids in chunk)
            batch = np.full((len(chunk), width), pad_id, dtype=np.int64)
            mask = np.zeros((len(chunk), width), dtype=np.float32)
            for row, ids in enumerate(chunk):
                batch[row, : len(ids)] = ids
                mask[row, : len(ids)] = 1.0
            hidden = model.hidden_states(batch).data
            pooled = (hidden * mask[:, :, None]).sum(axis=1)
            pooled /= mask.sum(axis=1, keepdims=True)
            outputs[start : start + len(chunk)] = pooled
    return outputs


def encode_items(
    model: TinyLlama,
    tokenizer: WordTokenizer,
    item_texts: list[str],
    batch_size: int = 32,
    max_len: int = 64,
) -> np.ndarray:
    """Alias of :func:`encode_texts` with item-centric naming."""
    return encode_texts(model, tokenizer, item_texts, batch_size=batch_size, max_len=max_len)
