"""Causal language-model pretraining on the item-text corpus.

The real LC-Rec starts from a pretrained LLaMA-7B whose embeddings already
carry language semantics.  Our tiny substitute acquires its "language
semantics" by next-token pretraining over all item titles, descriptions
and instruction-template prose, so that (a) mean-pooled hidden states form
meaningful item text embeddings for the RQ-VAE, and (b) the Fig. 4 contrast
between text-token and index-token embeddings is real.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..tensor import AdamW, CosineWarmup, clip_grad_norm
from ..tensor import functional as F
from ..text import WordTokenizer
from ..utils.logging import get_logger
from .model import TinyLlama

__all__ = ["PretrainConfig", "pretrain_lm", "build_corpus_stream"]

logger = get_logger(__name__)


@dataclass
class PretrainConfig:
    steps: int = 300
    batch_size: int = 16
    seq_len: int = 64
    lr: float = 3e-3
    weight_decay: float = 0.01
    warmup_frac: float = 0.1
    clip_norm: float = 1.0
    seed: int = 0
    log_every: int = 100


def build_corpus_stream(tokenizer: WordTokenizer, texts: list[str]) -> np.ndarray:
    """Concatenate tokenised texts separated by EOS into one id stream."""
    stream: list[int] = []
    eos = tokenizer.vocab.eos_id
    for text in texts:
        stream.extend(tokenizer.encode(text))
        stream.append(eos)
    if not stream:
        raise ValueError("empty corpus")
    return np.array(stream, dtype=np.int64)


def pretrain_lm(
    model: TinyLlama, tokenizer: WordTokenizer, texts: list[str], config: PretrainConfig
) -> list[float]:
    """Train ``model`` as a causal LM over random corpus windows."""
    stream = build_corpus_stream(tokenizer, texts)
    seq_len = min(config.seq_len, model.config.max_seq_len)
    if len(stream) <= seq_len + 1:
        # Tile tiny corpora so windows can always be sampled.
        reps = (seq_len + 2) // len(stream) + 1
        stream = np.tile(stream, reps)
    rng = np.random.default_rng(config.seed)
    optimizer = AdamW(model.parameters(), lr=config.lr, weight_decay=config.weight_decay)
    schedule = CosineWarmup(
        config.lr,
        warmup_steps=int(config.steps * config.warmup_frac),
        total_steps=config.steps,
    )
    losses: list[float] = []
    model.train()
    max_start = len(stream) - seq_len - 1
    for step in range(config.steps):
        schedule.apply(optimizer, step)
        starts = rng.integers(0, max_start + 1, size=config.batch_size)
        batch = np.stack([stream[s : s + seq_len + 1] for s in starts])
        inputs, targets = batch[:, :-1], batch[:, 1:]
        optimizer.zero_grad()
        logits = model(inputs)
        loss = F.cross_entropy(logits, targets)
        loss.backward()
        clip_grad_norm(model.parameters(), config.clip_norm)
        optimizer.step()
        losses.append(loss.item())
        if (step + 1) % config.log_every == 0:
            logger.info("pretrain step %d: loss=%.4f", step + 1, losses[-1])
    return losses
