"""Instruction-tuning trainer (paper Sec. IV-A4).

Reproduces the fine-tuning recipe: AdamW with weight decay, a cosine
schedule with warmup, gradient clipping, and the paper's template-sampling
strategy — during each epoch every datum appears exactly once with one
randomly sampled instruction template ("repeating data may lead to
overfitting").  Template sampling happens in :mod:`repro.core.tasks`; this
trainer consumes already-rendered examples per epoch via a callback.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..tensor import AdamW, CosineWarmup, clip_grad_norm
from ..tensor import functional as F
from ..text import WordTokenizer
from ..utils.logging import get_logger
from .instruction import InstructionExample, collate_batch, encode_example
from .model import TinyLlama

__all__ = ["TuningConfig", "InstructionTuner"]

logger = get_logger(__name__)

ExampleSampler = Callable[[int], Sequence[InstructionExample]]


@dataclass
class TuningConfig:
    epochs: int = 4
    batch_size: int = 16
    lr: float = 3e-3
    weight_decay: float = 0.01
    warmup_frac: float = 0.05
    clip_norm: float = 1.0
    max_len: int = 200
    seed: int = 0
    log_every: int = 200
    # Optional early stopping: keep the weights of the epoch with the best
    # held-out loss (requires ``validation_examples`` passed to ``tune``).
    early_stopping_patience: int | None = None


class InstructionTuner:
    """Fine-tunes a :class:`TinyLlama` on instruction/response pairs."""

    def __init__(self, model: TinyLlama, tokenizer: WordTokenizer, config: TuningConfig):
        self.model = model
        self.tokenizer = tokenizer
        self.config = config

    def tune(
        self,
        sampler: ExampleSampler,
        validation_examples: Sequence[InstructionExample] | None = None,
    ) -> list[float]:
        """Run tuning; ``sampler(epoch)`` yields that epoch's examples.

        When ``validation_examples`` is given and
        ``config.early_stopping_patience`` is set, the held-out loss is
        evaluated after every epoch; training stops once it fails to
        improve for ``patience`` consecutive epochs and the best epoch's
        weights are restored.

        Returns the per-step loss history.
        """
        config = self.config
        early_stopping = (
            config.early_stopping_patience is not None and validation_examples is not None
        )
        best_val = float("inf")
        best_state = None
        bad_epochs = 0
        rng = np.random.default_rng(config.seed)
        optimizer = AdamW(self.model.parameters(), lr=config.lr, weight_decay=config.weight_decay)

        first_epoch = list(sampler(0))
        if not first_epoch:
            raise ValueError("sampler produced no examples")
        steps_per_epoch = int(np.ceil(len(first_epoch) / config.batch_size))
        total_steps = steps_per_epoch * config.epochs
        schedule = CosineWarmup(
            config.lr,
            warmup_steps=int(total_steps * config.warmup_frac),
            total_steps=total_steps,
        )
        losses: list[float] = []
        step = 0
        self.model.train()
        for epoch in range(config.epochs):
            examples = first_epoch if epoch == 0 else list(sampler(epoch))
            encoded = [encode_example(self.tokenizer, ex, config.max_len) for ex in examples]
            # Length-bucketed shuffling: randomise, then sort within chunks
            # so batches have similar lengths (less padding waste).
            order = rng.permutation(len(encoded))
            chunk = config.batch_size * 8
            bucketed: list[int] = []
            for start in range(0, len(order), chunk):
                block = sorted(order[start : start + chunk], key=lambda i: len(encoded[i]))
                bucketed.extend(block)
            for start in range(0, len(bucketed), config.batch_size):
                batch = [encoded[i] for i in bucketed[start : start + config.batch_size]]
                input_ids, labels = collate_batch(batch, pad_id=self.tokenizer.vocab.pad_id)
                schedule.apply(optimizer, step)
                optimizer.zero_grad()
                logits = self.model(input_ids[:, :-1])
                loss = F.cross_entropy(logits, labels[:, 1:], ignore_index=-100)
                loss.backward()
                clip_grad_norm(self.model.parameters(), config.clip_norm)
                optimizer.step()
                losses.append(loss.item())
                step += 1
                if step % config.log_every == 0:
                    logger.info("tune step %d/%d: loss=%.4f", step, total_steps, losses[-1])
            if early_stopping:
                val_loss = self.evaluate_loss(validation_examples)
                self.model.train()
                if val_loss < best_val - 1e-6:
                    best_val = val_loss
                    best_state = self.model.state_dict()
                    bad_epochs = 0
                else:
                    bad_epochs += 1
                    if bad_epochs >= config.early_stopping_patience:
                        logger.info(
                            "early stop after epoch %d (best val=%.4f)", epoch + 1, best_val
                        )
                        break
        if early_stopping and best_state is not None:
            self.model.load_state_dict(best_state)
        self.model.eval()
        return losses

    def evaluate_loss(self, examples: Sequence[InstructionExample]) -> float:
        """Mean response-token cross-entropy on held-out examples."""
        from ..tensor import no_grad

        encoded = [encode_example(self.tokenizer, ex, self.config.max_len) for ex in examples]
        total, count = 0.0, 0
        self.model.eval()
        with no_grad():
            for start in range(0, len(encoded), self.config.batch_size):
                batch = encoded[start : start + self.config.batch_size]
                input_ids, labels = collate_batch(batch, pad_id=self.tokenizer.vocab.pad_id)
                logits = self.model(input_ids[:, :-1])
                loss = F.cross_entropy(logits, labels[:, 1:], ignore_index=-100)
                total += loss.item() * len(batch)
                count += len(batch)
        return total / max(count, 1)
