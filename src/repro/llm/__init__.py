"""Tiny LLaMA-style language model, generation and instruction tuning."""

from .config import LMConfig
from .embedding import encode_items, encode_texts
from .generation import (
    BeamHypothesis,
    beam_search_items,
    beam_search_items_batched,
    beam_search_items_single,
    greedy_generate,
    left_pad_prompts,
    ranked_item_ids,
    sequence_logprob,
)
from .instruction import (
    IGNORE_INDEX,
    EncodedExample,
    InstructionExample,
    collate_batch,
    encode_example,
    prompt_ids,
)
from .model import SwiGLU, TinyLlama, TransformerBlock
from .prefix_cache import PrefixCacheStats, PrefixKVCache, PrefixMatch
from .pretrain import PretrainConfig, build_corpus_stream, pretrain_lm
from .sampling import sample_generate
from .trainer import InstructionTuner, TuningConfig

__all__ = [
    "LMConfig",
    "TinyLlama",
    "TransformerBlock",
    "SwiGLU",
    "PretrainConfig",
    "pretrain_lm",
    "build_corpus_stream",
    "encode_texts",
    "encode_items",
    "InstructionExample",
    "EncodedExample",
    "encode_example",
    "collate_batch",
    "prompt_ids",
    "IGNORE_INDEX",
    "InstructionTuner",
    "TuningConfig",
    "BeamHypothesis",
    "beam_search_items",
    "beam_search_items_batched",
    "beam_search_items_single",
    "PrefixKVCache",
    "PrefixMatch",
    "PrefixCacheStats",
    "left_pad_prompts",
    "ranked_item_ids",
    "greedy_generate",
    "sequence_logprob",
    "sample_generate",
]
