"""Tiny LLaMA-style language model, generation and instruction tuning."""

from .config import LMConfig
from .embedding import encode_items, encode_texts
from .generation import (
    DEFAULT_SPEC_BUDGET,
    BeamHypothesis,
    DecodeState,
    backfill_items,
    backfill_ranked_item_ids,
    beam_search_items,
    beam_search_items_batched,
    beam_search_items_single,
    decode_finish,
    decode_join,
    decode_prefill,
    decode_retire,
    decode_step,
    greedy_generate,
    left_pad_prompts,
    masked_log_softmax,
    ranked_item_ids,
    sequence_logprob,
)
from .instruction import (
    IGNORE_INDEX,
    EncodedExample,
    InstructionExample,
    collate_batch,
    encode_example,
    prompt_ids,
)
from .model import SwiGLU, TinyLlama, TransformerBlock
from .prefix_cache import PrefixCacheStats, PrefixKVCache, PrefixMatch
from .pretrain import PretrainConfig, build_corpus_stream, pretrain_lm
from .sampling import sample_generate
from .trainer import InstructionTuner, TuningConfig

__all__ = [
    "DEFAULT_SPEC_BUDGET",
    "LMConfig",
    "TinyLlama",
    "TransformerBlock",
    "SwiGLU",
    "PretrainConfig",
    "pretrain_lm",
    "build_corpus_stream",
    "encode_texts",
    "encode_items",
    "InstructionExample",
    "EncodedExample",
    "encode_example",
    "collate_batch",
    "prompt_ids",
    "IGNORE_INDEX",
    "InstructionTuner",
    "TuningConfig",
    "BeamHypothesis",
    "DecodeState",
    "backfill_items",
    "backfill_ranked_item_ids",
    "beam_search_items",
    "beam_search_items_batched",
    "beam_search_items_single",
    "decode_prefill",
    "decode_step",
    "decode_join",
    "decode_retire",
    "decode_finish",
    "PrefixKVCache",
    "PrefixMatch",
    "PrefixCacheStats",
    "left_pad_prompts",
    "masked_log_softmax",
    "ranked_item_ids",
    "greedy_generate",
    "sequence_logprob",
    "sample_generate",
]
