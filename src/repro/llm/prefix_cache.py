"""Cross-request prompt-prefix KV cache for the batched serving engine.

LC-Rec renders every serving instruction from a handful of prompt
templates, so concurrent requests share long identical prompt prefixes:
every sequential-recommendation prompt for template 0 starts with the same
~10 tokens, a returning user's prompts share the template head *plus* most
of their interaction history, and a repeated query is a whole-prompt
duplicate.  Re-running the transformer over those shared tokens is pure
waste — key/value tensors at position ``i`` depend only on tokens ``<= i``,
so the K/V of any previously decoded prompt prefix can be reused verbatim.

:class:`PrefixKVCache` stores per-layer prompt K/V keyed by token-id
sequence in a trie:

* ``insert(prompt_ids, layer_kvs)`` files the full prompt's K/V under its
  token sequence.  Every trie node along the path remembers one *donor*
  entry passing through it.
* ``match(prompt_ids)`` walks the trie as deep as the query agrees with any
  stored sequence and returns that donor's K/V sliced to the matched depth
  — so a stored prompt serves exact repeats, grown-session prompts (shared
  history prefix), and unrelated requests from the same template (shared
  template head) with a single entry.

The decode integration lives in
:func:`repro.llm.generation.beam_search_items_batched`: matched rows skip
the transformer for their cached prefix (the K/V is seeded straight into
the :class:`repro.tensor.BeamKVCache` via ``seed_prompt``) and only the
per-row suffix is forwarded.

Thread safety: all public methods take an internal lock, and stored K/V
arrays are copied on insert and marked read-only, so a
:class:`PrefixMatch` handed to one decode thread is never mutated by
another thread's insert or eviction.  Invalidation: entries are keyed by
token ids under *fixed* model weights — call :meth:`clear` after any
weight update (further tuning, vocabulary extension) or when switching
models.

Catalog versioning: prompt K/V depends on the token sequence and the
weights only — *not* on the decoding trie — so a pure item ingestion
(new trie leaves, no vocabulary or weight change) stales **nothing**
here.  That is the whole point of the version-scoped contract: the cache
carries a catalog-version stamp (:meth:`sync_catalog`), and a version
swap drops only entries containing the swap's *stale tokens* (re-encoded
items, remapped ids — empty for plain ingestion), via
:meth:`invalidate_tokens`, instead of flushing a warm cache.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

__all__ = ["PrefixCacheStats", "PrefixMatch", "PrefixKVCache"]


@dataclass
class PrefixCacheStats:
    """Counters a long-running service (and the benchmark) reads.

    ``token_hit_rate`` is the load-bearing number: the fraction of prompt
    tokens whose transformer forward pass was skipped.
    """

    lookups: int = 0
    hits: int = 0
    inserts: int = 0
    evictions: int = 0
    prompt_tokens: int = 0
    reused_tokens: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that matched a non-empty prefix."""
        return self.hits / self.lookups if self.lookups else 0.0

    @property
    def token_hit_rate(self) -> float:
        """Fraction of looked-up prompt tokens served from the cache."""
        return self.reused_tokens / self.prompt_tokens if self.prompt_tokens else 0.0


@dataclass
class _Entry:
    """One stored prompt: its token key and per-layer K/V arrays."""

    key: tuple[int, ...]
    layer_kvs: list[tuple[np.ndarray, np.ndarray]]


class _TrieNode:
    """Token-trie node; ``donor`` is any stored entry passing through it."""

    __slots__ = ("children", "donor")

    def __init__(self) -> None:
        self.children: dict[int, _TrieNode] = {}
        self.donor: _Entry | None = None


@dataclass(frozen=True)
class PrefixMatch:
    """A successful lookup: reusable K/V for the first ``length`` tokens.

    ``layer_kvs[i]`` is the layer-``i`` ``(keys, values)`` pair, each of
    shape ``(1, heads, length, head_dim)``.  The arrays are read-only views
    of cache-owned storage — consume them (seed a decode cache, which
    copies on first append) without writing into them.
    """

    length: int
    layer_kvs: tuple[tuple[np.ndarray, np.ndarray], ...] = field(repr=False)


class PrefixKVCache:
    """Trie-keyed LRU cache of prompt-prefix K/V tensors.

    Parameters
    ----------
    max_entries:
        LRU capacity in stored prompts.  Sized for a template-driven
        workload: one entry per hot template rendering plus headroom for
        per-user session prompts.
    min_prefix_len:
        Shortest prefix worth reusing (and shortest prompt worth storing).
        Matching only ``<bos>`` saves nothing, so tiny matches are reported
        as misses.

    All methods are safe to call from multiple threads; see the module
    docstring for the invalidation contract.
    """

    def __init__(self, max_entries: int = 64, min_prefix_len: int = 4):
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        if min_prefix_len < 1:
            raise ValueError("min_prefix_len must be positive")
        self.max_entries = max_entries
        self.min_prefix_len = min_prefix_len
        self.stats = PrefixCacheStats()
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple[int, ...], _Entry] = OrderedDict()
        self._root = _TrieNode()
        # Catalog version this cache was last synced to (None = unversioned).
        self.catalog_version: int | None = None

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def match(self, prompt_ids: list[int], max_len: int | None = None) -> PrefixMatch | None:
        """Longest cached prefix of ``prompt_ids``, or None.

        ``max_len`` caps the matched length (decoding needs at least one
        real suffix token to forward, so callers pass ``len(prompt) - 1``).
        Matches shorter than ``min_prefix_len`` count as misses.
        """
        with self._lock:
            self.stats.lookups += 1
            self.stats.prompt_tokens += len(prompt_ids)
            limit = len(prompt_ids) if max_len is None else min(max_len, len(prompt_ids))
            node = self._root
            depth = 0
            donor: _Entry | None = None
            for token in prompt_ids[:limit]:
                child = node.children.get(int(token))
                if child is None:
                    break
                node = child
                depth += 1
                donor = node.donor
            if donor is None or depth < self.min_prefix_len:
                return None
            self._entries.move_to_end(donor.key)  # LRU touch
            self.stats.hits += 1
            self.stats.reused_tokens += depth
            layer_kvs = tuple(
                (keys[:, :, :depth, :], values[:, :, :depth, :])
                for keys, values in donor.layer_kvs
            )
            return PrefixMatch(length=depth, layer_kvs=layer_kvs)

    def probe(self, prompt_ids: Sequence[int], max_len: int | None = None) -> int:
        """Matched prefix length a :meth:`match` would return — no side effects.

        Unlike ``match`` this records no stats, touches no LRU order, and
        builds no views; the micro-batcher uses it to group requests by
        *effective* (post-cache) prompt length, so near-full hits are not
        co-batched with misses whose long suffixes would dictate the padded
        forward width anyway.
        """
        with self._lock:
            limit = len(prompt_ids) if max_len is None else min(max_len, len(prompt_ids))
            node = self._root
            depth = 0
            matched = 0
            for token in prompt_ids[:limit]:
                child = node.children.get(int(token))
                if child is None:
                    break
                node = child
                depth += 1
                if node.donor is not None:
                    matched = depth
            return matched if matched >= self.min_prefix_len else 0

    # ------------------------------------------------------------------
    # Insertion and eviction
    # ------------------------------------------------------------------
    def insert(self, prompt_ids: list[int], layer_kvs: list[tuple[np.ndarray, np.ndarray]]) -> bool:
        """Store a decoded prompt's per-layer K/V under its token sequence.

        ``layer_kvs[i]`` must be ``(keys, values)`` of shape
        ``(1, heads, len(prompt_ids), head_dim)``.  The arrays are copied
        and frozen, so callers may hand in views of live decode caches.
        Returns False (and stores nothing) for prompts shorter than
        ``min_prefix_len`` or already stored.
        """
        key = tuple(int(t) for t in prompt_ids)
        if len(key) < self.min_prefix_len:
            return False
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                return False
            stored = []
            for keys, values in layer_kvs:
                if keys.shape[2] != len(key):
                    raise ValueError(f"K/V length {keys.shape[2]} != prompt length {len(key)}")
                keys = np.array(keys, copy=True)  # never alias live caches
                values = np.array(values, copy=True)
                keys.flags.writeable = False
                values.flags.writeable = False
                stored.append((keys, values))
            entry = _Entry(key=key, layer_kvs=stored)
            self._entries[key] = entry
            self._index(entry)
            self.stats.inserts += 1
            if len(self._entries) > self.max_entries:
                # Evict a batch of cold entries (1/4 of capacity) so the
                # trie rebuild amortizes over many inserts instead of
                # running once per overflow.
                drop = max(1, self.max_entries // 4)
                for _ in range(drop):
                    self._entries.popitem(last=False)
                    self.stats.evictions += 1
                self._rebuild_trie()
            return True

    def _index(self, entry: _Entry) -> None:
        node = self._root
        for token in entry.key:
            node = node.children.setdefault(token, _TrieNode())
            node.donor = entry

    def _rebuild_trie(self) -> None:
        # Eviction is rare (LRU overflow only) and entries are few, so a
        # rebuild beats reference-counted donor bookkeeping on every node.
        self._root = _TrieNode()
        for entry in self._entries.values():
            self._index(entry)

    def clear(self) -> None:
        """Drop every entry (required after any model-weight change)."""
        with self._lock:
            self._entries.clear()
            self._root = _TrieNode()

    def invalidate_tokens(self, tokens: Sequence[int]) -> int:
        """Drop every entry whose key contains any of ``tokens``.

        The scoped invalidation of a catalog version swap: only prompts
        that *mention* a stale token (a re-encoded item's old index
        tokens, say) can serve wrong K/V — everything else stays warm.
        Returns the number of entries dropped.
        """
        stale = {int(t) for t in tokens}
        if not stale:
            return 0
        with self._lock:
            doomed = [key for key in self._entries if stale.intersection(key)]
            for key in doomed:
                del self._entries[key]
                self.stats.evictions += 1
            if doomed:
                self._rebuild_trie()
            return len(doomed)

    def sync_catalog(self, version: int, stale_tokens: Sequence[int] = ()) -> int:
        """Advance the cache to catalog ``version``, scoped-invalidation only.

        Idempotent per version: the first call after a swap drops the
        entries containing ``stale_tokens`` (none, for a pure item
        ingestion — prompt K/V does not depend on the trie) and stamps
        the cache; repeat calls with the same version are no-ops, so the
        serving engine can sync on every prefill for free.  Returns the
        number of entries dropped.
        """
        with self._lock:
            if self.catalog_version is not None and version <= self.catalog_version:
                return 0
            self.catalog_version = version
        return self.invalidate_tokens(stale_tokens)

    def __contains__(self, prompt_ids: Sequence[int]) -> bool:
        """Whether the *exact* prompt is stored (not merely matchable)."""
        key = tuple(int(t) for t in prompt_ids)
        with self._lock:
            return key in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
