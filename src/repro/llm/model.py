"""TinyLLaMA: a scaled-down LLaMA-architecture decoder-only transformer.

Faithful to the LLaMA design the paper builds on (Touvron et al. 2023):
pre-normalisation with RMSNorm, SwiGLU feed-forward, rotary position
embeddings, causal self-attention with a KV cache for incremental decoding.
Only the scale differs (the mechanism, not the capacity, is what the
reproduction exercises — see DESIGN.md).
"""

from __future__ import annotations

import copy

import numpy as np

from ..tensor import (
    BeamKVCache,
    Dropout,
    Embedding,
    KVCache,
    Linear,
    Module,
    ModuleList,
    MultiHeadAttention,
    RMSNorm,
    RotaryEmbedding,
    StepWorkspace,
    Tensor,
    WeightMemo,
    causal_mask,
    fp16_activations,
    fp16_weight,
    int8_matmul,
    precision_token,
    quantize_weight_int8,
    validate_precision,
)
from .config import LMConfig

__all__ = ["TinyLlama", "TransformerBlock", "SwiGLU"]


class SwiGLU(Module):
    """LLaMA feed-forward: ``down( silu(gate(x)) * up(x) )``."""

    def __init__(self, dim: int, hidden: int, rng: np.random.Generator):
        super().__init__()
        self.gate_proj = Linear(dim, hidden, bias=False, rng=rng)
        self.up_proj = Linear(dim, hidden, bias=False, rng=rng)
        self.down_proj = Linear(hidden, dim, bias=False, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.down_proj(self.gate_proj(x).silu() * self.up_proj(x))


class TransformerBlock(Module):
    """Pre-norm attention + SwiGLU block with residual connections."""

    def __init__(self, config: LMConfig, rope: RotaryEmbedding, rng: np.random.Generator):
        super().__init__()
        self.attn_norm = RMSNorm(config.dim, eps=config.norm_eps)
        self.attention = MultiHeadAttention(
            config.dim,
            config.num_heads,
            rope=rope,
            dropout=config.dropout,
            rng=rng,
        )
        self.ffn_norm = RMSNorm(config.dim, eps=config.norm_eps)
        self.feed_forward = SwiGLU(config.dim, config.ffn_hidden, rng)
        self.dropout = Dropout(config.dropout, rng=rng)

    def forward(
        self,
        x: Tensor,
        attn_mask: np.ndarray | None,
        cache: KVCache | None = None,
        rope_offset: int | np.ndarray | None = None,
        workspace: StepWorkspace | None = None,
        precision: str = "fp32",
    ) -> Tensor:
        x = x + self.dropout(
            self.attention(
                self.attn_norm(x),
                attn_mask=attn_mask,
                cache=cache,
                rope_offset=rope_offset,
                workspace=workspace,
                precision=precision,
            )
        )
        x = x + self.dropout(self.feed_forward(self.ffn_norm(x)))
        return x


class TinyLlama(Module):
    """Decoder-only language model with an extendable vocabulary.

    ``extend_vocab`` mirrors ``model.resize_token_embeddings`` after adding
    the item-index tokens to the tokenizer (paper Sec. IV-A4).
    """

    def __init__(self, config: LMConfig):
        super().__init__()
        config.validate()
        rng = np.random.default_rng(config.seed)
        self.config = config
        self.rope = RotaryEmbedding(
            config.dim // config.num_heads,
            max_positions=config.max_seq_len,
            base=config.rope_base,
        )
        self.tok_embeddings = Embedding(config.vocab_size, config.dim, rng=rng)
        self.blocks = ModuleList(
            [TransformerBlock(config, self.rope, rng) for _ in range(config.num_layers)]
        )
        self.final_norm = RMSNorm(config.dim, eps=config.norm_eps)
        self.lm_head = Linear(config.dim, config.vocab_size, bias=False, rng=rng)
        # Cleared on every train()/eval() transition by Module.train.
        self._head_gather_cache = WeightMemo()

    # ------------------------------------------------------------------
    @property
    def vocab_size(self) -> int:
        return self.tok_embeddings.num_embeddings

    def serving_replica(self) -> "TinyLlama":
        """A shallow copy for concurrent serving: shared weights, private memo.

        Multi-worker serving runs one decode thread per engine replica
        over the *same* parameter arrays (reads only — serving decodes
        run under ``no_grad``), but the gathered-head
        :class:`~repro.tensor.WeightMemo` is a mutable per-decode cache
        and must not be shared across threads; each replica gets a fresh
        one.  Everything else (blocks, embeddings, rope tables) is the
        identical module graph, so a replica costs no weight memory and
        its outputs are bit-identical to the original's.
        """
        replica = copy.copy(self)
        replica._head_gather_cache = WeightMemo()
        return replica

    def extend_vocab(self, extra_tokens: int, rng: np.random.Generator | None = None) -> None:
        """Grow the embedding table and output head by ``extra_tokens`` rows."""
        if extra_tokens <= 0:
            return
        rng = rng or np.random.default_rng(self.config.seed + 1)
        self.tok_embeddings.extend(extra_tokens, rng=rng)
        new_cols = (rng.standard_normal((self.config.dim, extra_tokens)) * 0.02).astype(np.float32)
        self.lm_head.weight.data = np.concatenate([self.lm_head.weight.data, new_cols], axis=1)
        self.lm_head.weight.grad = None
        self.lm_head.out_features += extra_tokens
        self._head_gather_cache.clear()

    # ------------------------------------------------------------------
    def hidden_states(
        self,
        tokens: np.ndarray,
        caches: list[KVCache] | None = None,
        pad_lengths: np.ndarray | None = None,
        pad_columns: np.ndarray | None = None,
        workspace: StepWorkspace | None = None,
        extra_mask: np.ndarray | None = None,
        position_deltas: np.ndarray | None = None,
        precision: str = "fp32",
    ) -> Tensor:
        """Final-norm hidden states ``(B, T, dim)`` for ``tokens``.

        ``pad_lengths[b]`` counts *left* pads in row ``b`` of a padded batch.
        Pad positions are masked out as attention keys and real tokens keep
        their unpadded RoPE positions, so the hidden states of real tokens
        match an unpadded per-row forward pass (exactly in exact arithmetic;
        to float rounding under BLAS, whose accumulation order varies with
        batch shape).

        ``pad_columns`` generalises ``pad_lengths`` to pads at arbitrary key
        columns: a boolean ``(B, C)`` map (``C <= cache length + T``; missing
        trailing columns are real) that is True at pad positions.  The
        cached-prefix decode path needs this because its pads sit *between*
        the per-row cached prefix and the left-padded suffix, not at column
        zero.  Real tokens still keep unpadded RoPE positions: row ``b`` of
        the new tokens is offset by the cache length minus its total pad
        count.  At most one of ``pad_lengths`` / ``pad_columns`` may be
        given.

        ``extra_mask`` is an optional boolean ``(T, key_len)`` map OR-ed
        into the causal mask (True disallows), shared by every row.
        Speculative decoding uses it as a *tree mask*: sibling candidate
        tokens appended in one forward must not attend to each other.
        ``position_deltas`` (``(T,)`` ints) places new token ``t`` at RoPE
        position ``row_offset + position_deltas[t]`` instead of
        ``row_offset + t`` — sibling candidates all sit at the same next
        position.  ``precision`` selects the fused-QKV GEMM precision on
        the cached decode path (see :mod:`repro.tensor.quantized`).
        """
        tokens = np.asarray(tokens)
        seq_len = tokens.shape[1]
        offset = caches[0].length if caches else 0
        key_len = offset + seq_len
        mask = causal_mask(seq_len, key_len, offset=offset)
        if extra_mask is not None:
            if extra_mask.shape != mask.shape:
                raise ValueError(
                    f"extra_mask shape {extra_mask.shape} != causal shape {mask.shape}"
                )
            mask = mask | extra_mask
        rope_offset: int | np.ndarray = offset
        if pad_lengths is not None and pad_columns is not None:
            raise ValueError("pass pad_lengths or pad_columns, not both")
        if pad_lengths is not None and np.any(pad_lengths):
            pad_lengths = np.asarray(pad_lengths, dtype=np.int64)
            pad_keys = np.arange(key_len)[None, :] < pad_lengths[:, None]
            mask = mask[None, None, :, :] | pad_keys[:, None, None, :]
            rope_offset = offset - pad_lengths
        elif pad_columns is not None and np.any(pad_columns):
            pad_columns = np.asarray(pad_columns, dtype=bool)
            pad_keys = np.zeros((pad_columns.shape[0], key_len), dtype=bool)
            pad_keys[:, : pad_columns.shape[1]] = pad_columns
            mask = mask[None, None, :, :] | pad_keys[:, None, None, :]
            rope_offset = offset - pad_columns.sum(axis=1)
        if position_deltas is not None:
            deltas = np.asarray(position_deltas, dtype=np.int64)
            if deltas.shape != (seq_len,):
                raise ValueError(f"position_deltas must be ({seq_len},), got {deltas.shape}")
            # Absolute (B, T) positions: per-row base offset + per-column
            # delta (RotaryEmbedding treats a 2-D offset as absolute).
            base = np.atleast_1d(np.asarray(rope_offset, dtype=np.int64))
            rope_offset = base[:, None] + deltas[None, :]
        x = self.tok_embeddings(tokens)
        for layer_index, block in enumerate(self.blocks):
            cache = caches[layer_index] if caches else None
            x = block(
                x,
                attn_mask=mask,
                cache=cache,
                rope_offset=rope_offset,
                workspace=workspace,
                precision=precision,
            )
        return self.final_norm(x)

    def forward(
        self,
        tokens: np.ndarray,
        caches: list[KVCache] | None = None,
        pad_lengths: np.ndarray | None = None,
        pad_columns: np.ndarray | None = None,
        last_only: bool = False,
        workspace: StepWorkspace | None = None,
    ) -> Tensor:
        """Next-token logits ``(B, T, vocab)``.

        ``last_only`` applies the output head to the final position only
        (returning ``(B, 1, vocab)``): prompt prefill needs just the
        next-token logits, and the head matmul over every prompt column is
        otherwise the single largest wasted cost of a batched decode.
        """
        hidden = self.hidden_states(
            tokens,
            caches=caches,
            pad_lengths=pad_lengths,
            pad_columns=pad_columns,
            workspace=workspace,
        )
        if last_only:
            hidden = hidden[:, -1:, :]
        return self.lm_head(hidden)

    # ------------------------------------------------------------------
    # Sparse (candidate-only) output head
    # ------------------------------------------------------------------
    def lm_head_gather(
        self,
        hidden: np.ndarray,
        token_ids: np.ndarray,
        workspace: StepWorkspace | None = None,
        precision: str = "fp32",
    ) -> np.ndarray:
        """Logits for ``token_ids`` only: ``hidden @ W[:, token_ids]``.

        The trie-constrained decode only ever *reads* the logits of tokens
        the current trie level allows — a few dozen candidates out of the
        whole vocabulary — so the full-vocabulary head GEMM computes mostly
        discarded columns.  This gathers the candidate columns once
        (memoized against the candidate array's identity, which the trie
        keeps stable per level) and runs the GEMM over them alone.  Each
        computed column is the same dot product the dense head performs,
        so candidate logits match the dense head's columns exactly.

        ``precision`` selects the GEMM kernel: ``"fp16"``/``"int8"`` run
        the gathered head through :mod:`repro.tensor.quantized` with the
        quantized gathered weight memoized alongside the fp32 slice (same
        union-identity key, same invalidation).  Quantized logits match
        fp32 to a grid-rounding tolerance, not bit-for-bit.

        ``hidden`` is ``(rows, dim)`` float32; returns ``(rows,
        len(token_ids))``.
        """
        out = (
            workspace.take("sparse_logits", (hidden.shape[0], len(token_ids)))
            if workspace is not None
            else None
        )
        if precision == "fp32":
            return np.matmul(hidden, self._gathered_head_weight(token_ids), out=out)
        if validate_precision(precision) == "fp16":
            sub = self._quantized_head_weight(token_ids, "fp16")
            return np.matmul(fp16_activations(hidden), sub, out=out)
        return int8_matmul(hidden, self._quantized_head_weight(token_ids, "int8"), out=out)

    def _gathered_head_weight(self, token_ids: np.ndarray) -> np.ndarray:
        """Memoized contiguous column gather ``W[:, token_ids]``.

        Keyed on the identity of ``token_ids`` (the trie memoizes one array
        per level union, so a decode hits this cache every step); staleness
        guards live in :class:`repro.tensor.WeightMemo`.
        """
        weight = self.lm_head.weight.data
        return self._head_gather_cache.get(
            (token_ids, weight),
            (self.lm_head.weight,),
            lambda: np.ascontiguousarray(weight[:, np.asarray(token_ids, dtype=np.int64)]),
        )

    def _quantized_head_weight(self, token_ids: np.ndarray, precision: str):
        """The gathered head slice quantized to ``precision`` (memoized).

        Lives in the same :class:`~repro.tensor.WeightMemo` as the fp32
        slice, keyed by the union's identity plus the precision's interned
        sentinel — so catalog swaps (new union arrays), optimizer steps
        (grad gate) and train()/eval() transitions invalidate every
        precision at once.
        """
        weight = self.lm_head.weight.data
        sources = (token_ids, weight, precision_token(precision))
        params = (self.lm_head.weight,)
        if precision == "fp16":
            return self._head_gather_cache.get(
                sources, params, lambda: fp16_weight(self._gathered_head_weight(token_ids))
            )
        return self._head_gather_cache.get(
            sources,
            params,
            lambda: quantize_weight_int8(self._gathered_head_weight(token_ids)),
        )

    def new_caches(self) -> list[KVCache]:
        """Fresh per-layer KV caches for incremental decoding."""
        return [KVCache() for _ in range(self.config.num_layers)]

    def new_beam_caches(self) -> list[BeamKVCache]:
        """Per-layer beam caches sharing the prompt across hypotheses."""
        return [BeamKVCache() for _ in range(self.config.num_layers)]

    def fan_out_caches(self, caches: list[BeamKVCache], beams: int) -> None:
        """Declare ``beams`` hypotheses per request on every layer cache."""
        for cache in caches:
            cache.fan_out(beams)

    def reorder_caches(self, caches: list[KVCache], beam_indices: np.ndarray) -> None:
        """Reindex every layer cache; supports a flattened ``B*K`` beam axis."""
        for cache in caches:
            cache.reorder(beam_indices)

    def gather_cache_columns(self, caches: list[BeamKVCache], columns: np.ndarray) -> None:
        """Per-row column gather on every layer cache's append-target region.

        Speculative decoding appends a window of sibling candidate K/V
        columns in one forward and then keeps, per beam, only the column
        of the token that beam committed (see
        :meth:`repro.tensor.KVCache.gather_columns`).
        """
        for cache in caches:
            cache.gather_columns(columns)

    def join_caches(
        self, caches: list[BeamKVCache], incoming: list[BeamKVCache]
    ) -> tuple[int, int]:
        """Merge ``incoming``'s request rows into ``caches``, layer by layer.

        Returns the ``(pad_self, pad_other)`` prompt-column padding reported
        by :meth:`repro.tensor.BeamKVCache.join` (identical on every layer);
        the caller must mask those columns out of attention.
        """
        pads = (0, 0)
        for cache, inc in zip(caches, incoming):
            pads = cache.join(inc)
        return pads

    def evict_cache_rows(self, caches: list[BeamKVCache], keep: np.ndarray) -> None:
        """Keep only request rows ``keep`` on every layer cache."""
        for cache in caches:
            cache.select_requests(keep)
