"""Decoding: greedy generation, constrained beam search, sequence scoring.

Implements the paper's inference procedure (Sec. III-D2): "the decoder
module performs a beam search across the index tokens ... the probabilities
of tokens that may result in illegal item indices will be assigned as 0",
using the index trie built from the learned item indices.

Two constrained-decoding paths are provided:

* :func:`beam_search_items_batched` — the serving engine: decodes ``B``
  prompts × ``K`` beams per step in a single ``model.forward`` over a
  flattened ``B*K`` batch axis, with the trie constraint applied as one
  vectorized mask.  Prompts of mixed length are left-padded; pad positions
  are masked out of attention and real tokens keep their unpadded RoPE
  positions, so padding changes nothing mathematically: rankings are
  identical to per-request decoding and scores agree to float rounding
  (BLAS accumulation order varies with batch shape).  With a
  :class:`PrefixKVCache` the engine additionally skips re-running prompt
  prefixes it has decoded before (template heads, grown session histories,
  repeated queries): cached K/V is seeded into the decode caches and only
  each request's unseen suffix is forwarded.
* :func:`beam_search_items_single` — the original per-hypothesis reference
  loop, kept as the parity/throughput baseline.

:func:`beam_search_items` keeps the old single-request signature but runs
on the batched engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..quantization.trie import IndexTrie
from ..tensor import BeamKVCache, no_grad
from .model import TinyLlama
from .prefix_cache import PrefixKVCache, PrefixMatch

__all__ = [
    "BeamHypothesis",
    "beam_search_items",
    "beam_search_items_batched",
    "beam_search_items_single",
    "left_pad_prompts",
    "ranked_item_ids",
    "greedy_generate",
    "sequence_logprob",
]


def _log_softmax_np(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=-1, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=-1, keepdims=True))


def _topk_desc(scores: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
    """Per-row top-``k`` of a 2-D array: descending score, ties by index.

    ``argpartition`` + a sort of only ``k`` winners per row, instead of a
    full ``O(n log n)`` argsort over every candidate.
    """
    if k < scores.shape[1]:
        part = np.argpartition(-scores, kth=k - 1, axis=1)[:, :k]
    else:
        part = np.broadcast_to(np.arange(scores.shape[1]), scores.shape)
    part_scores = np.take_along_axis(scores, part, axis=1)
    order = np.lexsort((part, -part_scores), axis=1)
    top = np.take_along_axis(part, order, axis=1)
    return top, np.take_along_axis(part_scores, order, axis=1)


@dataclass
class BeamHypothesis:
    """One completed beam: an index-token id sequence and its log prob."""

    token_ids: tuple[int, ...]
    score: float
    item_id: int


def left_pad_prompts(
    prompts: Sequence[Sequence[int]], pad_id: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """Left-pad ``prompts`` to a rectangle.

    Returns ``(tokens, pad_lengths)`` where ``tokens`` is ``(B, max_len)``
    int64 and ``pad_lengths[b]`` counts the pads prepended to row ``b``.
    Left-padding keeps every prompt's *last* token in the final column, so
    next-token logits for all rows come from one slice.
    """
    if not prompts:
        raise ValueError("need at least one prompt")
    if any(len(p) == 0 for p in prompts):
        raise ValueError("prompts must be non-empty")
    max_len = max(len(p) for p in prompts)
    tokens = np.full((len(prompts), max_len), pad_id, dtype=np.int64)
    pad_lengths = np.zeros(len(prompts), dtype=np.int64)
    for row, prompt in enumerate(prompts):
        pad_lengths[row] = max_len - len(prompt)
        tokens[row, pad_lengths[row] :] = np.asarray(prompt, dtype=np.int64)
    return tokens, pad_lengths


def ranked_item_ids(hypotheses: Sequence[BeamHypothesis], top_k: int) -> list[int]:
    """Unique item ids of score-sorted ``hypotheses``, best first."""
    ranked: list[int] = []
    for hypothesis in hypotheses:
        if hypothesis.item_id not in ranked:
            ranked.append(hypothesis.item_id)
        if len(ranked) == top_k:
            break
    return ranked


def _seed_prefix_region(
    caches: list[BeamKVCache],
    matches: list[PrefixMatch | None],
    prefix_width: int,
) -> None:
    """Seed every layer cache with the matched prefix K/V, right-aligned.

    The cached region is one rectangle of ``prefix_width`` columns shared by
    the whole batch; rows with shorter (or no) matches are left-padded
    inside it and those columns are masked as pads by the caller.
    """
    first = next(m for m in matches if m is not None)
    batch = len(matches)
    for layer, cache in enumerate(caches):
        ref = first.layer_kvs[layer][0]
        _, heads, _, head_dim = ref.shape
        keys = np.zeros((batch, heads, prefix_width, head_dim), dtype=ref.dtype)
        values = np.zeros_like(keys)
        for row, match in enumerate(matches):
            if match is not None:
                k, v = match.layer_kvs[layer]
                keys[row, :, prefix_width - match.length :, :] = k[0]
                values[row, :, prefix_width - match.length :, :] = v[0]
        cache.seed_prompt(keys, values)


def _store_prompts(
    prompts: list[list[int]],
    caches: list[BeamKVCache],
    cached_lens: np.ndarray,
    prefix_width: int,
    suffix_pads: np.ndarray,
    prefix_cache: PrefixKVCache,
) -> None:
    """File each row's full-prompt K/V back into the prefix cache.

    Row ``b``'s prompt K/V sits right-aligned in two rectangles of the
    decode cache — the seeded prefix region and the forwarded suffix region
    — so its pad-free concatenation is exactly the unpadded prompt K/V
    (pads influence nothing: they are masked out of attention and K/V at
    position ``i`` depends only on tokens ``<= i``).
    """
    for row, prompt in enumerate(prompts):
        if len(prompt) < prefix_cache.min_prefix_len or prompt in prefix_cache:
            continue
        layer_kvs = []
        for cache in caches:
            kp, vp = cache.prompt.keys, cache.prompt.values
            row_slice = slice(row, row + 1)
            prefix_cols = slice(prefix_width - int(cached_lens[row]), prefix_width)
            suffix_cols = slice(prefix_width + int(suffix_pads[row]), kp.shape[2])
            keys = np.concatenate(
                [kp[row_slice, :, prefix_cols, :], kp[row_slice, :, suffix_cols, :]], axis=2
            )
            values = np.concatenate(
                [vp[row_slice, :, prefix_cols, :], vp[row_slice, :, suffix_cols, :]], axis=2
            )
            layer_kvs.append((keys, values))
        prefix_cache.insert(prompt, layer_kvs)


def _prefill_prompts(
    model: TinyLlama,
    prompts: list[list[int]],
    caches: list[BeamKVCache],
    pad_id: int,
    prefix_cache: PrefixKVCache | None,
) -> tuple[np.ndarray, np.ndarray]:
    """Run the prompt phase of a batched decode through ``caches``.

    With a prefix cache, each row is independently matched against it: the
    matched K/V is seeded into the caches (skipping the transformer for
    those tokens) and only the per-row unseen suffix is forwarded.  Newly
    decoded prompts are stored back, so repeated templates, grown session
    histories, and duplicate queries hit on later batches.

    Returns ``(last_logits, pad_columns)``: the next-token logits ``(B, V)``
    and the boolean per-row pad-column map over all prompt columns, which
    every subsequent decode step must pass back to ``model.forward``.
    """
    matches: list[PrefixMatch | None] = [None] * len(prompts)
    if prefix_cache is not None:
        matches = [prefix_cache.match(p, max_len=len(p) - 1) for p in prompts]
    cached_lens = np.array([m.length if m else 0 for m in matches], dtype=np.int64)
    prefix_width = int(cached_lens.max())
    if prefix_width:
        _seed_prefix_region(caches, matches, prefix_width)
    remainders = [p[int(c) :] for p, c in zip(prompts, cached_lens)]
    tokens, suffix_pads = left_pad_prompts(remainders, pad_id=pad_id)
    prefix_pad = np.arange(prefix_width)[None, :] < (prefix_width - cached_lens)[:, None]
    suffix_pad = np.arange(tokens.shape[1])[None, :] < suffix_pads[:, None]
    pad_columns = np.concatenate([prefix_pad, suffix_pad], axis=1)
    logits = model.forward(
        tokens, caches=caches, pad_columns=pad_columns, last_only=True
    ).data[:, -1, :]
    if prefix_cache is not None:
        _store_prompts(prompts, caches, cached_lens, prefix_width, suffix_pads, prefix_cache)
    return logits, pad_columns


def beam_search_items_batched(
    model: TinyLlama,
    prompts: Sequence[Sequence[int]],
    trie: IndexTrie,
    beam_size: int = 20,
    pad_id: int = 0,
    prefix_cache: PrefixKVCache | None = None,
) -> list[list[BeamHypothesis]]:
    """Batched trie-constrained beam search (the serving engine).

    Decodes all ``len(prompts)`` requests together: each step is a single
    ``model.forward`` over the flattened ``B*K`` hypothesis axis with one
    vectorized trie mask, instead of per-request forwards and
    per-hypothesis Python loops.  Returns one score-sorted hypothesis list
    per prompt with the same rankings as running each prompt through the
    single-request path alone.

    ``prefix_cache`` enables cross-request prompt K/V reuse: prompt
    prefixes this cache has seen before (in this batch's predecessors) are
    not re-forwarded — their cached K/V is seeded directly into the decode
    caches and only each row's unseen suffix runs through the model.
    Rankings are unaffected (the K/V of a prompt prefix is identical
    whenever the tokens and weights are identical); see
    :class:`repro.llm.PrefixKVCache` for the invalidation contract.

    Requests with fewer than ``K`` legal hypotheses at some level carry
    ``-inf``-scored filler beams to keep the batch rectangular; fillers are
    dropped from the results.
    """
    if beam_size < 1:
        raise ValueError("beam_size must be positive")
    prompts = [list(map(int, p)) for p in prompts]
    if not prompts:
        return []
    num_requests = len(prompts)
    vocab_size = model.vocab_size
    num_beams = min(beam_size, trie.num_items, vocab_size)
    with no_grad():
        # Shared-prompt beam caches: prompt K/V stays at B rows for the
        # whole decode; only per-beam suffix tokens live on the B*K axis.
        caches = model.new_beam_caches()
        logits, pad_columns = _prefill_prompts(model, prompts, caches, pad_id, prefix_cache)
        log_probs = _log_softmax_np(logits)  # (B, V)

        # Level 0: expand every prompt to its top-K legal first tokens.
        root_mask = trie.allowed_token_mask([()], vocab_size)
        scores = np.where(root_mask, log_probs, -np.inf)
        order, top_scores = _topk_desc(scores, num_beams)
        # Scores accumulate in float64, matching the reference path.
        beam_scores = top_scores.astype(np.float64)  # (B, K)
        beam_tokens = [[(int(token),) for token in row] for row in order]
        model.fan_out_caches(caches, num_beams)
        flat_pad_columns = None
        if np.any(pad_columns):
            flat_pad_columns = np.repeat(pad_columns, num_beams, axis=0)

        for _ in range(1, trie.num_levels):
            last = np.array(
                [prefix[-1] for row in beam_tokens for prefix in row],
                dtype=np.int64,
            )[:, None]
            step_logits = model.forward(
                last, caches=caches, pad_columns=flat_pad_columns
            ).data[:, -1, :]
            step_logp = _log_softmax_np(step_logits)  # (B*K, V)
            states = [prefix for row in beam_tokens for prefix in row]
            mask = trie.allowed_token_mask(states, vocab_size)
            candidates = np.where(mask, step_logp.astype(np.float64), -np.inf)
            candidates += beam_scores.reshape(-1, 1)
            candidates = candidates.reshape(num_requests, num_beams * vocab_size)
            order, beam_scores = _topk_desc(candidates, num_beams)
            origin = order // vocab_size  # per-request beam index
            token = order % vocab_size
            beam_tokens = [
                [
                    beam_tokens[b][int(origin[b, k])] + (int(token[b, k]),)
                    for k in range(num_beams)
                ]
                for b in range(num_requests)
            ]
            flat_origin = (np.arange(num_requests)[:, None] * num_beams + origin).reshape(-1)
            model.reorder_caches(caches, flat_origin)

    results: list[list[BeamHypothesis]] = []
    for b in range(num_requests):
        hypotheses = [
            BeamHypothesis(prefix, float(score), trie.item_at(prefix))
            for prefix, score in zip(beam_tokens[b], beam_scores[b])
            if np.isfinite(score)
        ]
        hypotheses.sort(key=lambda h: -h.score)
        results.append(hypotheses)
    return results


def beam_search_items(
    model: TinyLlama, prompt_ids: list[int], trie: IndexTrie, beam_size: int = 20
) -> list[BeamHypothesis]:
    """Constrained beam search over the item-index trie.

    Returns hypotheses sorted by descending log probability.  Every
    hypothesis is a *legal* complete item index (illegal continuations are
    masked to ``-inf`` at every level), so each maps to exactly one item.
    Runs on the batched engine with a batch of one.
    """
    return beam_search_items_batched(model, [prompt_ids], trie, beam_size=beam_size)[0]


def beam_search_items_single(
    model: TinyLlama, prompt_ids: list[int], trie: IndexTrie, beam_size: int = 20
) -> list[BeamHypothesis]:
    """Reference single-request beam search (pre-batching implementation).

    Kept verbatim as the parity oracle for the batched engine and as the
    baseline for ``benchmarks/bench_serving_throughput.py``.
    """
    if beam_size < 1:
        raise ValueError("beam_size must be positive")
    num_levels = trie.num_levels
    with no_grad():
        caches = model.new_caches()
        prompt = np.asarray(prompt_ids, dtype=np.int64)[None, :]
        logits = model.forward(prompt, caches=caches).data[:, -1, :]

        # Level 0 expansion from the single prompt beam.
        log_probs = _log_softmax_np(logits)[0]
        allowed = trie.allowed_tokens(())
        scores = log_probs[allowed]
        k = min(beam_size, len(allowed))
        top = np.argsort(-scores)[:k]
        beam_tokens = [(int(allowed[i]),) for i in top]
        beam_scores = scores[top].astype(np.float64)
        model.reorder_caches(caches, np.zeros(k, dtype=np.int64))

        for _ in range(1, num_levels):
            last = np.array([t[-1] for t in beam_tokens], dtype=np.int64)[:, None]
            step_logits = model.forward(last, caches=caches).data[:, -1, :]
            step_logp = _log_softmax_np(step_logits)

            candidate_scores: list[float] = []
            candidate_origin: list[int] = []
            candidate_token: list[int] = []
            for beam_index, prefix in enumerate(beam_tokens):
                allowed = trie.allowed_tokens(prefix)
                for token in allowed:
                    candidate_scores.append(beam_scores[beam_index] + step_logp[beam_index, token])
                    candidate_origin.append(beam_index)
                    candidate_token.append(int(token))
            order = np.argsort(-np.asarray(candidate_scores))[:beam_size]
            beam_tokens = [beam_tokens[candidate_origin[i]] + (candidate_token[i],) for i in order]
            beam_scores = np.asarray([candidate_scores[i] for i in order])
            origins = np.asarray([candidate_origin[i] for i in order])
            model.reorder_caches(caches, origins)

    hypotheses = []
    for tokens, score in zip(beam_tokens, beam_scores):
        item_id = trie.item_at(tokens)
        hypotheses.append(BeamHypothesis(tokens, float(score), item_id))
    hypotheses.sort(key=lambda h: -h.score)
    return hypotheses


def greedy_generate(
    model: TinyLlama,
    prompt_ids: list[int],
    max_new_tokens: int,
    eos_id: int,
    banned_ids: set[int] | None = None,
) -> list[int]:
    """Greedy free-text generation (used by the Fig. 5 case study)."""
    banned = banned_ids or set()
    with no_grad():
        caches = model.new_caches()
        tokens = np.asarray(prompt_ids, dtype=np.int64)[None, :]
        logits = model.forward(tokens, caches=caches).data[:, -1, :]
        generated: list[int] = []
        for _ in range(max_new_tokens):
            row = logits[0].copy()
            for token_id in banned:
                row[token_id] = -np.inf
            next_id = int(row.argmax())
            if next_id == eos_id:
                break
            generated.append(next_id)
            step = np.asarray([[next_id]], dtype=np.int64)
            logits = model.forward(step, caches=caches).data[:, -1, :]
    return generated


def sequence_logprob(
    model: TinyLlama,
    prompt_ids: list[int],
    continuation_ids: list[int],
    length_normalize: bool = True,
) -> float:
    """Log probability of ``continuation_ids`` given ``prompt_ids``.

    Used for the Table V pairwise discrimination task: the model "chooses"
    whichever candidate response it assigns the higher (length-normalised)
    log likelihood.
    """
    if not continuation_ids:
        raise ValueError("continuation must be non-empty")
    full = np.asarray(prompt_ids + continuation_ids, dtype=np.int64)[None, :]
    with no_grad():
        logits = model.forward(full).data[0]
    log_probs = _log_softmax_np(logits)
    start = len(prompt_ids) - 1
    total = 0.0
    for offset, token in enumerate(continuation_ids):
        total += float(log_probs[start + offset, token])
    if length_normalize:
        total /= len(continuation_ids)
    return total
