"""Decoding: greedy generation, constrained beam search, sequence scoring.

Implements the paper's inference procedure (Sec. III-D2): "the decoder
module performs a beam search across the index tokens ... the probabilities
of tokens that may result in illegal item indices will be assigned as 0",
using the index trie built from the learned item indices.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..quantization.trie import IndexTrie
from ..tensor import no_grad
from .model import TinyLlama

__all__ = ["BeamHypothesis", "beam_search_items", "greedy_generate",
           "sequence_logprob"]


def _log_softmax_np(logits: np.ndarray) -> np.ndarray:
    shifted = logits - logits.max(axis=-1, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=-1, keepdims=True))


@dataclass
class BeamHypothesis:
    """One completed beam: an index-token id sequence and its log prob."""

    token_ids: tuple[int, ...]
    score: float
    item_id: int


def beam_search_items(model: TinyLlama, prompt_ids: list[int], trie: IndexTrie,
                      beam_size: int = 20) -> list[BeamHypothesis]:
    """Constrained beam search over the item-index trie.

    Returns hypotheses sorted by descending log probability.  Every
    hypothesis is a *legal* complete item index (illegal continuations are
    masked to ``-inf`` at every level), so each maps to exactly one item.
    """
    if beam_size < 1:
        raise ValueError("beam_size must be positive")
    num_levels = trie.num_levels
    with no_grad():
        caches = model.new_caches()
        prompt = np.asarray(prompt_ids, dtype=np.int64)[None, :]
        logits = model.forward(prompt, caches=caches).data[:, -1, :]

        # Level 0 expansion from the single prompt beam.
        log_probs = _log_softmax_np(logits)[0]
        allowed = trie.allowed_tokens(())
        scores = log_probs[allowed]
        k = min(beam_size, len(allowed))
        top = np.argsort(-scores)[:k]
        beam_tokens = [(int(allowed[i]),) for i in top]
        beam_scores = scores[top].astype(np.float64)
        model.reorder_caches(caches, np.zeros(k, dtype=np.int64))

        for _ in range(1, num_levels):
            last = np.array([t[-1] for t in beam_tokens], dtype=np.int64)[:, None]
            step_logits = model.forward(last, caches=caches).data[:, -1, :]
            step_logp = _log_softmax_np(step_logits)

            candidate_scores: list[float] = []
            candidate_origin: list[int] = []
            candidate_token: list[int] = []
            for beam_index, prefix in enumerate(beam_tokens):
                allowed = trie.allowed_tokens(prefix)
                for token in allowed:
                    candidate_scores.append(
                        beam_scores[beam_index] + step_logp[beam_index, token]
                    )
                    candidate_origin.append(beam_index)
                    candidate_token.append(int(token))
            order = np.argsort(-np.asarray(candidate_scores))[:beam_size]
            beam_tokens = [
                beam_tokens[candidate_origin[i]] + (candidate_token[i],)
                for i in order
            ]
            beam_scores = np.asarray([candidate_scores[i] for i in order])
            origins = np.asarray([candidate_origin[i] for i in order])
            model.reorder_caches(caches, origins)

    hypotheses = []
    for tokens, score in zip(beam_tokens, beam_scores):
        item_id = trie.item_at(tokens)
        hypotheses.append(BeamHypothesis(tokens, float(score), item_id))
    hypotheses.sort(key=lambda h: -h.score)
    return hypotheses


def greedy_generate(model: TinyLlama, prompt_ids: list[int],
                    max_new_tokens: int, eos_id: int,
                    banned_ids: set[int] | None = None) -> list[int]:
    """Greedy free-text generation (used by the Fig. 5 case study)."""
    banned = banned_ids or set()
    with no_grad():
        caches = model.new_caches()
        tokens = np.asarray(prompt_ids, dtype=np.int64)[None, :]
        logits = model.forward(tokens, caches=caches).data[:, -1, :]
        generated: list[int] = []
        for _ in range(max_new_tokens):
            row = logits[0].copy()
            for token_id in banned:
                row[token_id] = -np.inf
            next_id = int(row.argmax())
            if next_id == eos_id:
                break
            generated.append(next_id)
            step = np.asarray([[next_id]], dtype=np.int64)
            logits = model.forward(step, caches=caches).data[:, -1, :]
    return generated


def sequence_logprob(model: TinyLlama, prompt_ids: list[int],
                     continuation_ids: list[int],
                     length_normalize: bool = True) -> float:
    """Log probability of ``continuation_ids`` given ``prompt_ids``.

    Used for the Table V pairwise discrimination task: the model "chooses"
    whichever candidate response it assigns the higher (length-normalised)
    log likelihood.
    """
    if not continuation_ids:
        raise ValueError("continuation must be non-empty")
    full = np.asarray(prompt_ids + continuation_ids, dtype=np.int64)[None, :]
    with no_grad():
        logits = model.forward(full).data[0]
    log_probs = _log_softmax_np(logits)
    start = len(prompt_ids) - 1
    total = 0.0
    for offset, token in enumerate(continuation_ids):
        total += float(log_probs[start + offset, token])
    if length_normalize:
        total /= len(continuation_ids)
    return total
