"""Decoding: greedy generation, constrained beam search, sequence scoring.

Implements the paper's inference procedure (Sec. III-D2): "the decoder
module performs a beam search across the index tokens ... the probabilities
of tokens that may result in illegal item indices will be assigned as 0",
using the index trie built from the learned item indices.

Two constrained-decoding paths are provided:

* the batched serving engine — decodes ``B`` prompts × ``K`` beams per
  step in a single ``model.forward`` over a flattened ``B*K`` batch axis,
  with the trie constraint applied as one vectorized mask.  Prompts of
  mixed length are left-padded; pad positions are masked out of attention
  and real tokens keep their unpadded RoPE positions, so padding changes
  nothing mathematically: rankings are identical to per-request decoding
  and scores agree to float rounding (BLAS accumulation order varies with
  batch shape).  With a :class:`PrefixKVCache` the engine additionally
  skips re-running prompt prefixes it has decoded before (template heads,
  grown session histories, repeated queries): cached K/V is seeded into
  the decode caches and only each request's unseen suffix is forwarded.
* :func:`beam_search_items_single` — the original per-hypothesis reference
  loop, kept as the parity/throughput baseline.

The batched engine is a resumable stepper built around
:class:`DecodeState`: :func:`decode_prefill` runs the prompt phase and
level-0 beam expansion, :func:`decode_step` advances every in-flight row
by one trie level, :func:`decode_join` merges freshly prefilled rows into
a live decode at a level boundary (continuous batching's admission
primitive), :func:`decode_retire` pops finished rows as soon as they reach
the final level, and :func:`decode_finish` harvests everything.
:func:`beam_search_items_batched` is the one-shot wrapper (prefill, step
to depth, finish) and :func:`beam_search_items` keeps the old
single-request signature on top of it.

Scoring semantics: hypothesis scores are *constrained* log-probabilities —
at every level the disallowed logits are set to ``-inf`` **before** the
log-softmax, so each step's distribution renormalises over the tokens the
trie allows (exactly what a ``prefix_allowed_tokens_fn`` logits processor
does in the reference implementations).  This is what makes the decode
*sparse*: only the logits of the current trie level's candidate union ever
enter the math, so the engine computes just those columns via a gathered
output-head GEMM (``TinyLlama.lm_head_gather``) and a candidate-only
log-softmax — identical scores, a vocabulary-sized factor less work.  It
also makes levels where every live beam has exactly one legal continuation
*free*: a singleton allowed set renormalises to log-probability 0.0, so
the **forced-token fast path** appends those tokens without any model
forward and the consecutive forced levels are flushed through the
transformer in one combined multi-token forward when (and if) a later
level actually needs logits.  ``sparse=False`` keeps the dense full-vocab
head as the measurable baseline; rankings and scores agree to float
rounding (the reduction order over candidates differs).

**Two-level speculative decoding** (``spec_budget``): index tries are
shallow and their per-level candidate unions tiny, so when every row sits
at one level ``i`` and ``|union_i| * |union_{i+1}|`` fits the budget,
:func:`decode_step` scores levels ``i`` and ``i+1`` from a *single*
transformer forward.  Every beam's level-``i`` candidates are appended as
sibling columns of one forward — tree-masked so siblings never attend
each other and RoPE-placed at the same next position — which makes column
``c``'s hidden state exactly what a sequential decode would compute
*after* committing ``c``.  One gathered-head GEMM over the two levels'
token union then yields both levels' logits, and selection runs the same
two sequential ``select_beams`` passes a two-forward decode runs (the
level-``i+1`` pass slices the committed candidate's logits row), so the
chosen hypotheses and their rankings are identical — **not** a joint
top-``K`` over pairs, which is a different (wrong) algorithm.  Afterwards
each beam keeps only its committed candidate's K/V column
(:meth:`~repro.tensor.KVCache.gather_columns`), leaving caches
bit-identical to the sequential path's.  The budget bounds the extra
sibling columns; a level whose fan-out product exceeds it simply steps
sequentially, and windows where every child set is a singleton are
skipped (the forced fast path already makes level ``i+1`` free).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..quantization.trie import IndexTrie, SparseCandidates
from ..tensor import BeamKVCache, StepWorkspace, no_grad, validate_precision
from .model import TinyLlama
from .prefix_cache import PrefixKVCache, PrefixMatch

__all__ = [
    "DEFAULT_SPEC_BUDGET",
    "BeamHypothesis",
    "DecodeState",
    "backfill_items",
    "backfill_ranked_item_ids",
    "beam_search_items",
    "beam_search_items_batched",
    "beam_search_items_single",
    "constrained_log_probs",
    "decode_finish",
    "decode_join",
    "decode_prefill",
    "decode_retire",
    "decode_step",
    "left_pad_prompts",
    "log_softmax_np",
    "masked_log_softmax",
    "ranked_item_ids",
    "select_beams",
    "topk_desc",
    "greedy_generate",
    "sequence_logprob",
]

# Default fan-out-product budget for the two-level speculative decode:
# a window over levels (i, i+1) opens when |union_i| * |union_i+1| stays
# within it.  The engine adapters enable speculation with this budget by
# default; the raw stepper keeps it off (spec_budget=0) so callers that
# count levels per decode_step call see exactly one.
DEFAULT_SPEC_BUDGET = 64


def log_softmax_np(logits: np.ndarray) -> np.ndarray:
    """Row-wise log-softmax over the last axis (numerically stabilized)."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=-1, keepdims=True))


def masked_log_softmax(logits: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """Constrained log-softmax: ``-inf`` outside ``mask``, renormalised inside.

    Row ``i``'s distribution is the softmax of ``logits[i]`` restricted to
    the columns where ``mask[i]`` is True (``mask`` may broadcast over
    rows).  This is the trie-constrained decoding rule: illegal tokens get
    probability 0 and the remaining mass renormalises over the legal set.
    A row with no True column comes back all ``-inf`` (a dead beam).  The
    same function serves the dense (full-vocabulary) and sparse
    (candidate-union) heads — only the number of columns differs.
    """
    if mask.all():
        # Every column legal (the root-union prefill expansion, window
        # rows whose prefixes share a full level): a plain log-softmax is
        # bit-identical and skips the mask machinery entirely.
        return log_softmax_np(logits)
    masked = np.where(mask, logits, -np.inf)
    peak = masked.max(axis=-1, keepdims=True)
    peak = np.where(np.isfinite(peak), peak, 0.0)
    shifted = masked - peak
    with np.errstate(divide="ignore", invalid="ignore"):
        normalizer = np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
        return np.where(mask, shifted - normalizer, -np.inf)


def topk_desc(scores: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
    """Per-row top-``k`` of a 2-D array: descending score, ties by index.

    ``argpartition`` + a sort of only ``k`` winners per row, instead of a
    full ``O(n log n)`` argsort over every candidate.
    """
    if k < scores.shape[1]:
        part = np.argpartition(-scores, kth=k - 1, axis=1)[:, :k]
    else:
        part = np.broadcast_to(np.arange(scores.shape[1]), scores.shape)
    part_scores = np.take_along_axis(scores, part, axis=1)
    order = np.lexsort((part, -part_scores), axis=1)
    top = np.take_along_axis(part, order, axis=1)
    return top, np.take_along_axis(part_scores, order, axis=1)


def select_beams(
    step_logp: np.ndarray,
    beam_scores: np.ndarray,
    num_beams: int,
    width: int,
    union: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Top-``K`` beam continuation selection, shared by every stepper.

    ``step_logp`` is the per-hypothesis constrained log-softmax ``(B*K,
    width)`` — over the full vocabulary (dense) or the candidate union
    (sparse, with ``union`` mapping columns back to token ids); this one
    place owns the score accumulation, the flattened per-request top-k,
    and the origin/token decomposition, so the decoder-only stepper
    (:func:`decode_step`) and the TIGER engine cannot drift apart.
    Returns ``(origin, token, new_scores)``, each ``(B, K)``.
    """
    candidates = step_logp.astype(np.float64)
    candidates += beam_scores.reshape(-1, 1)
    candidates = candidates.reshape(-1, num_beams * width)
    order, new_scores = topk_desc(candidates, num_beams)
    origin = order // width
    token = order % width
    if union is not None:
        token = union[token]
    return origin, token, new_scores


@dataclass
class BeamHypothesis:
    """One completed beam: an index-token id sequence and its log prob."""

    token_ids: tuple[int, ...]
    score: float
    item_id: int


def left_pad_prompts(
    prompts: Sequence[Sequence[int]], pad_id: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """Left-pad ``prompts`` to a rectangle.

    Returns ``(tokens, pad_lengths)`` where ``tokens`` is ``(B, max_len)``
    int64 and ``pad_lengths[b]`` counts the pads prepended to row ``b``.
    Left-padding keeps every prompt's *last* token in the final column, so
    next-token logits for all rows come from one slice.
    """
    if not prompts:
        raise ValueError("need at least one prompt")
    if any(len(p) == 0 for p in prompts):
        raise ValueError("prompts must be non-empty")
    max_len = max(len(p) for p in prompts)
    tokens = np.full((len(prompts), max_len), pad_id, dtype=np.int64)
    pad_lengths = np.zeros(len(prompts), dtype=np.int64)
    for row, prompt in enumerate(prompts):
        pad_lengths[row] = max_len - len(prompt)
        tokens[row, pad_lengths[row] :] = np.asarray(prompt, dtype=np.int64)
    return tokens, pad_lengths


def ranked_item_ids(hypotheses: Sequence[BeamHypothesis], top_k: int) -> list[int]:
    """Unique item ids of score-sorted ``hypotheses``, best first."""
    ranked: list[int] = []
    for hypothesis in hypotheses:
        if hypothesis.item_id not in ranked:
            ranked.append(hypothesis.item_id)
        if len(ranked) == top_k:
            break
    return ranked


def backfill_items(ranked: list[int], top_k: int, num_items: int) -> list[int]:
    """Pad a deduped ranking to ``top_k`` ids, deterministically.

    The tail is filled with the smallest catalog item ids not already
    ranked; only a catalog smaller than ``top_k`` yields a shorter list.
    """
    if len(ranked) >= min(top_k, num_items):
        return ranked
    seen = set(ranked)
    for item in range(num_items):
        if item not in seen:
            ranked.append(item)
            if len(ranked) == top_k:
                break
    return ranked


def backfill_ranked_item_ids(
    hypotheses: Sequence[BeamHypothesis], top_k: int, num_items: int
) -> list[int]:
    """:func:`ranked_item_ids`, padded to ``top_k`` ids when the beam is short.

    Constrained decoding can surface fewer than ``top_k`` unique items — a
    narrow trie level starves the beam mid-search, or ``top_k`` exceeds
    what the beam width can enumerate — and ranking metrics (HR@k, NDCG@k)
    treat a short list as misses at the missing ranks; see
    :func:`backfill_items` for the fill policy.
    """
    return backfill_items(ranked_item_ids(hypotheses, top_k), top_k, num_items)


def _seed_prefix_region(
    caches: list[BeamKVCache],
    matches: list[PrefixMatch | None],
    prefix_width: int,
) -> None:
    """Seed every layer cache with the matched prefix K/V, right-aligned.

    The cached region is one rectangle of ``prefix_width`` columns shared by
    the whole batch; rows with shorter (or no) matches are left-padded
    inside it and those columns are masked as pads by the caller.
    """
    first = next(m for m in matches if m is not None)
    batch = len(matches)
    for layer, cache in enumerate(caches):
        ref = first.layer_kvs[layer][0]
        _, heads, _, head_dim = ref.shape
        keys = np.zeros((batch, heads, prefix_width, head_dim), dtype=ref.dtype)
        values = np.zeros_like(keys)
        for row, match in enumerate(matches):
            if match is not None:
                k, v = match.layer_kvs[layer]
                keys[row, :, prefix_width - match.length :, :] = k[0]
                values[row, :, prefix_width - match.length :, :] = v[0]
        cache.seed_prompt(keys, values)


def _store_prompts(
    prompts: list[list[int]],
    caches: list[BeamKVCache],
    cached_lens: np.ndarray,
    prefix_width: int,
    suffix_pads: np.ndarray,
    prefix_cache: PrefixKVCache,
) -> None:
    """File each row's full-prompt K/V back into the prefix cache.

    Row ``b``'s prompt K/V sits right-aligned in two rectangles of the
    decode cache — the seeded prefix region and the forwarded suffix region
    — so its pad-free concatenation is exactly the unpadded prompt K/V
    (pads influence nothing: they are masked out of attention and K/V at
    position ``i`` depends only on tokens ``<= i``).
    """
    for row, prompt in enumerate(prompts):
        if len(prompt) < prefix_cache.min_prefix_len or prompt in prefix_cache:
            continue
        layer_kvs = []
        for cache in caches:
            kp, vp = cache.prompt.keys, cache.prompt.values
            row_slice = slice(row, row + 1)
            prefix_cols = slice(prefix_width - int(cached_lens[row]), prefix_width)
            suffix_cols = slice(prefix_width + int(suffix_pads[row]), kp.shape[2])
            keys = np.concatenate(
                [kp[row_slice, :, prefix_cols, :], kp[row_slice, :, suffix_cols, :]], axis=2
            )
            values = np.concatenate(
                [vp[row_slice, :, prefix_cols, :], vp[row_slice, :, suffix_cols, :]], axis=2
            )
            layer_kvs.append((keys, values))
        prefix_cache.insert(prompt, layer_kvs)


def _prefill_prompts(
    model: TinyLlama,
    prompts: list[list[int]],
    caches: list[BeamKVCache],
    pad_id: int,
    prefix_cache: PrefixKVCache | None,
    workspace: StepWorkspace | None = None,
    precision: str = "fp32",
) -> tuple[np.ndarray, np.ndarray]:
    """Run the prompt phase of a batched decode through ``caches``.

    With a prefix cache, each row is independently matched against it: the
    matched K/V is seeded into the caches (skipping the transformer for
    those tokens) and only the per-row unseen suffix is forwarded.  Newly
    decoded prompts are stored back, so repeated templates, grown session
    histories, and duplicate queries hit on later batches.

    Returns ``(last_hidden, pad_columns)``: the final-norm hidden state of
    every row's last prompt token ``(B, dim)`` — the output head (dense or
    candidate-gathered) is the caller's choice — and the boolean per-row
    pad-column map over all prompt columns, which every subsequent decode
    step must pass back to the model.
    """
    matches: list[PrefixMatch | None] = [None] * len(prompts)
    if prefix_cache is not None:
        matches = [prefix_cache.match(p, max_len=len(p) - 1) for p in prompts]
    cached_lens = np.array([m.length if m else 0 for m in matches], dtype=np.int64)
    prefix_width = int(cached_lens.max())
    if prefix_width:
        _seed_prefix_region(caches, matches, prefix_width)
    remainders = [p[int(c) :] for p, c in zip(prompts, cached_lens)]
    tokens, suffix_pads = left_pad_prompts(remainders, pad_id=pad_id)
    prefix_pad = np.arange(prefix_width)[None, :] < (prefix_width - cached_lens)[:, None]
    suffix_pad = np.arange(tokens.shape[1])[None, :] < suffix_pads[:, None]
    pad_columns = np.concatenate([prefix_pad, suffix_pad], axis=1)
    hidden = model.hidden_states(
        tokens, caches=caches, pad_columns=pad_columns, workspace=workspace, precision=precision
    ).data[:, -1, :]
    if prefix_cache is not None:
        _store_prompts(prompts, caches, cached_lens, prefix_width, suffix_pads, prefix_cache)
    return hidden, pad_columns


def _narrow_positions(union: np.ndarray, allowed: np.ndarray) -> np.ndarray:
    """Positions of ``allowed`` inside the sorted ``union`` (validated).

    Raises if the narrowing trie allows a token the full trie's candidate
    union does not — the narrow trie must be a subtrie of the decode trie
    (:meth:`IndexTrie.subtrie`), otherwise selection and renormalisation
    would disagree about the legal token set.
    """
    positions = np.searchsorted(union, allowed)
    if allowed.size and (
        int(positions[-1]) >= union.shape[0]
        or not np.array_equal(union[positions], allowed)
    ):
        raise ValueError("narrow trie allows tokens the full trie does not")
    return positions


def _narrowed_step_candidates(
    candidates_info: SparseCandidates,
    narrow: IndexTrie,
    prefixes: list[tuple[int, ...]],
    alive: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Candidate union, normalisation mask, selection mask of a narrowed step.

    A narrowed decode only ever keeps candidate-path beams alive, so the
    gathered-head union can shrink from the whole trie level's union to the
    union of the *alive* rows' full-trie allowed sets.  The normalisation
    mask stays the full trie's per-row allowed sets — scores renormalise
    exactly as an unnarrowed decode would — while the selection mask
    restricts the beam argmax to the narrow trie's continuations.  Dead and
    filler rows get all-False rows in both masks (they stay ``-inf``).
    """
    rows = len(prefixes)
    live: list[np.ndarray | None] = [
        ids if alive[row] and ids.size else None
        for row, ids in enumerate(candidates_info.per_row)
    ]
    parts = [ids for ids in live if ids is not None]
    if not parts:
        raise RuntimeError("no live hypotheses to step in a narrowed decode")
    union = np.unique(np.concatenate(parts))
    norm_mask = np.zeros((rows, union.shape[0]), dtype=bool)
    keep = np.zeros_like(norm_mask)
    for row, ids in enumerate(live):
        if ids is None:
            continue
        norm_mask[row, np.searchsorted(union, ids)] = True
        narrowed = narrow.allowed_tokens(prefixes[row])
        if narrowed.size:
            keep[row, _narrow_positions(union, narrowed)] = True
    return union, norm_mask, keep


@dataclass
class DecodeState:
    """Resumable state of a batched trie-constrained beam decode.

    Produced by :func:`decode_prefill`, advanced one trie level at a time
    by :func:`decode_step`, grown by :func:`decode_join` and harvested by
    :func:`decode_retire`/:func:`decode_finish`.  Rows may sit at
    *different* trie levels — requests admitted at different level
    boundaries — and the per-row pad bookkeeping (``prompt_pads`` over the
    shared prompt region, ``suffix_pads`` counting suffix columns that
    predate each row's admission) keeps every row's attention inputs and
    RoPE positions identical to decoding it alone.  That invariant is what
    makes continuous admission ranking-preserving rather than an
    approximation.

    ``tags`` carries one caller-opaque object per row (the serving layer
    stores its :class:`RecommendRequest` there) and follows rows through
    joins and retirements.

    ``pending`` holds the tokens already appended to every beam but not
    yet forwarded through the model: always the latest chosen token, plus
    — after forced-token fast-path levels — the forced tokens accumulated
    since the last real forward.  The next step that needs logits (or a
    :func:`decode_join` flush) runs all pending columns through the
    transformer in one combined forward.  ``sparse`` selects the
    candidate-only output head and enables the forced fast path;
    ``workspace`` is the step-scratch arena (cleared whenever the row
    count changes).

    ``narrow`` optionally restricts beam *selection* to a candidate
    subtrie (:meth:`IndexTrie.subtrie`) while scores keep renormalising
    over the full trie: tokens outside the narrow trie are set to ``-inf``
    *after* the constrained log-softmax, so the surviving hypotheses carry
    exactly the scores a full decode would give them and the ranking over
    the candidate set is identical to a full decode filtered post hoc.
    With the sparse head, narrowing also shrinks the gathered candidate
    union to the alive rows' allowed sets — fewer output-head columns.

    ``spec_budget`` enables the two-level speculative fast path (sparse
    head only): when every row sits at one level ``i`` and the product of
    the next two levels' candidate-union sizes is within the budget,
    :func:`decode_step` scores both levels from a *single* forward — the
    level-``i`` candidates ride along as tree-masked sibling columns, the
    gathered head runs once over the two levels' union, and the
    constrained log-softmax is factored per level, so rankings are
    bit-identical to two sequential steps (see the module docstring).
    ``0`` (the default) disables speculation: each ``decode_step``
    advances exactly one level.  ``precision`` selects the decode GEMM
    precision (gathered head + fused QKV; see
    :mod:`repro.tensor.quantized`) — quantized runs trade bit parity for
    smaller kernels and are gated by tolerance/top-k-overlap suites, not
    exactness.  ``forwards`` counts the transformer forwards this state
    has run (prefill, steps, pending flushes) — the speculative and
    forced fast paths exist to push it below one-per-level.
    """

    model: TinyLlama
    trie: IndexTrie
    num_beams: int
    pad_id: int
    caches: list[BeamKVCache]
    beam_tokens: list[list[tuple[int, ...]]]  # (B rows) x (K prefixes)
    beam_scores: np.ndarray  # (B, K) float64
    prompt_pads: np.ndarray  # (B, W) bool: pad columns in the prompt region
    suffix_pads: np.ndarray  # (B,) int64: suffix columns predating each row
    tags: list[object]
    pending: np.ndarray = field(default_factory=lambda: np.empty((0, 1), dtype=np.int64))
    sparse: bool = True
    workspace: StepWorkspace | None = None
    narrow: IndexTrie | None = None
    spec_budget: int = 0
    precision: str = "fp32"
    forwards: int = 0

    @property
    def num_rows(self) -> int:
        """Requests currently in flight."""
        return len(self.beam_tokens)

    @property
    def levels(self) -> np.ndarray:
        """Per-row decoded depth (number of index tokens chosen so far)."""
        return np.array([len(row[0]) for row in self.beam_tokens], dtype=np.int64)

    @property
    def done(self) -> bool:
        """Whether every in-flight row has reached the final trie level."""
        depth = self.trie.num_levels
        return all(len(row[0]) == depth for row in self.beam_tokens)

    def finished_rows(self) -> list[int]:
        """Row indices that have reached the final trie level."""
        depth = self.trie.num_levels
        return [b for b, row in enumerate(self.beam_tokens) if len(row[0]) == depth]

    def flat_pad_columns(self) -> np.ndarray | None:
        """Per-hypothesis pad map over all current key columns (or None).

        Covers the prompt region (left-padding and cached-prefix padding)
        plus, for rows admitted mid-decode, the suffix columns written
        before they joined.  Recomputed per step because joins change it.
        """
        full = self.prompt_pads
        suffix_len = self.caches[0].suffix.length
        if suffix_len:
            suffix_map = np.arange(suffix_len)[None, :] < self.suffix_pads[:, None]
            full = np.concatenate([full, suffix_map], axis=1)
        if not np.any(full):
            return None
        return np.repeat(full, self.num_beams, axis=0)


def decode_prefill(
    model: TinyLlama,
    prompts: Sequence[Sequence[int]],
    trie: IndexTrie,
    beam_size: int = 20,
    pad_id: int = 0,
    prefix_cache: PrefixKVCache | None = None,
    tags: Sequence[object] | None = None,
    sparse: bool = True,
    narrow: IndexTrie | None = None,
    spec_budget: int = 0,
    precision: str = "fp32",
) -> DecodeState:
    """Run the prompt phase and level-0 beam expansion for ``prompts``.

    Returns a :class:`DecodeState` with every row holding its top-``K``
    legal first index tokens; :func:`decode_step` advances it one trie
    level per call (or two, with a ``spec_budget`` — see
    :class:`DecodeState`).  ``prefix_cache`` enables cross-request prompt
    K/V reuse exactly as in :func:`beam_search_items_batched`.  ``tags``
    optionally attaches one opaque object per prompt (defaults to the
    prompt's position).  ``sparse`` (default) computes logits for the
    trie's candidate union only — see the module docstring; ``False``
    keeps the dense full-vocabulary head as the measurable baseline
    (rankings identical, scores to float rounding).  ``narrow``
    optionally restricts beam selection to a candidate subtrie of
    ``trie`` (see :class:`DecodeState`): ranking over the candidate set
    matches a full decode filtered post hoc.  ``precision`` selects the
    decode GEMM precision (``"fp32"``/``"fp16"``/``"int8"``).
    """
    if beam_size < 1:
        raise ValueError("beam_size must be positive")
    validate_precision(precision)
    if narrow is not None and narrow.num_levels != trie.num_levels:
        raise ValueError(
            f"narrow trie depth {narrow.num_levels} does not match "
            f"decode trie depth {trie.num_levels}"
        )
    prompts = [list(map(int, p)) for p in prompts]
    if not prompts:
        raise ValueError("need at least one prompt")
    for row, prompt in enumerate(prompts):
        if not prompt:
            raise ValueError(f"prompt {row} is empty: every request needs at least one token")
    if tags is None:
        tags = list(range(len(prompts)))
    elif len(tags) != len(prompts):
        raise ValueError("tags must match prompts one-to-one")
    vocab_size = model.vocab_size
    num_beams = min(beam_size, trie.num_items, vocab_size)
    workspace = StepWorkspace() if sparse else None
    with no_grad():
        # Shared-prompt beam caches: prompt K/V stays at B rows for the
        # whole decode; only per-beam suffix tokens live on the B*K axis.
        caches = model.new_beam_caches()
        hidden, pad_columns = _prefill_prompts(
            model, prompts, caches, pad_id, prefix_cache, workspace, precision=precision
        )

        # Level 0: expand every prompt to its top-K legal first tokens
        # under the constrained (renormalised-over-legal) distribution.
        if sparse:
            root = trie.allowed_token_ids([()])
            logits = model.lm_head_gather(
                hidden, root.union, workspace=workspace, precision=precision
            )
            scores = masked_log_softmax(logits, root.mask)  # (B, U)
            # Candidate-aware top-k: rank only the real union columns and
            # pad the remaining beam slots afterwards, instead of
            # argpartitioning over -inf filler columns.  Equivalent to the
            # old filler-concat path bit for bit: the fillers scored -inf
            # and mapped to ``union[width - 1]``, exactly what the pad
            # slots carry, and -inf ties order real columns before fillers
            # in both formulations.  A narrowed prefill extends the same
            # idea to the selection mask: renormalisation stays over the
            # full root union (the gather above cannot shrink — every
            # candidate's logit enters the softmax), but ranking runs over
            # the narrow trie's root candidates alone instead of
            # -inf-scanning the columns narrowing excluded.
            if narrow is None:
                selectable = None
                width = root.num_candidates
            else:
                selectable = _narrow_positions(root.union, narrow.allowed_tokens(()))
                scores = scores[:, selectable]
                width = int(selectable.size)
            order, top_scores = topk_desc(scores, min(num_beams, width))
            if num_beams > width:
                # Fewer legal first tokens than beams: -inf pad slots keep
                # every row carrying num_beams slots.
                rows = scores.shape[0]
                pad_order = np.full((rows, num_beams - width), width - 1, dtype=order.dtype)
                pad_scores = np.full((rows, num_beams - width), -np.inf, dtype=top_scores.dtype)
                order = np.concatenate([order, pad_order], axis=1)
                top_scores = np.concatenate([top_scores, pad_scores], axis=1)
            if selectable is not None:
                order = selectable[order]
        else:
            logits = np.matmul(hidden, model.lm_head.weight.data)  # (B, V)
            scores = masked_log_softmax(logits, trie.root_token_mask(vocab_size))
            if narrow is not None:
                scores = np.where(narrow.root_token_mask(vocab_size), scores, -np.inf)
            order, top_scores = topk_desc(scores, num_beams)
        # Scores accumulate in float64, matching the reference path.
        beam_scores = top_scores.astype(np.float64)  # (B, K)
        if sparse:
            # Map union positions back to token ids; -inf pad slots carry
            # an arbitrary legal token (they are dropped at retirement).
            token_ids = root.union[order]
        else:
            token_ids = order
        beam_tokens = [[(int(token),) for token in row] for row in token_ids]
        model.fan_out_caches(caches, num_beams)
    return DecodeState(
        model=model,
        trie=trie,
        num_beams=num_beams,
        pad_id=pad_id,
        caches=caches,
        beam_tokens=beam_tokens,
        beam_scores=beam_scores,
        prompt_pads=pad_columns,
        suffix_pads=np.zeros(len(prompts), dtype=np.int64),
        tags=list(tags),
        pending=token_ids.reshape(-1, 1).astype(np.int64, copy=False),
        sparse=sparse,
        workspace=workspace,
        narrow=narrow,
        spec_budget=spec_budget,
        precision=precision,
        forwards=1,  # the prompt-phase forward in _prefill_prompts
    )


def decode_step(state: DecodeState) -> DecodeState:
    """Advance every in-flight row by one trie level (two, speculatively).

    Rows at different levels step together: the vectorized trie constraint
    is built from each hypothesis's own prefix, so depth never has to be
    uniform across the batch.  Rows already at the final level must be
    retired (:func:`decode_retire`) before stepping.  Returns ``state``
    (mutated in place) for chaining.  With a positive ``spec_budget`` a
    step may advance *two* levels from one forward when the speculative
    window opens (see :class:`DecodeState`); drive the stepper with
    ``while not state.done`` rather than a fixed level count.

    Two fast paths apply when ``state.sparse`` (the default):

    * **Forced tokens** — when every live beam's allowed set is a
      singleton (deduplication levels, thin trie branches), the forced
      tokens are appended with *no model forward at all*: under the
      constrained distribution a singleton renormalises to
      log-probability exactly 0.0, so scores and rankings are untouched.
      The skipped tokens accumulate in ``state.pending`` and run through
      the transformer in one combined forward at the next level that
      needs logits — or never, if the trie ends first.
    * **Candidate-only head** — logits are computed for the trie level's
      candidate union only (``TinyLlama.lm_head_gather``) and the
      log-softmax renormalises over candidates, replacing the full
      vocabulary GEMM + softmax with one a vocabulary-sized factor
      smaller.
    """
    if state.num_rows == 0:
        raise RuntimeError("cannot step an empty decode state")
    if state.finished_rows():
        raise RuntimeError("retire finished rows before stepping")
    model, trie = state.model, state.trie
    num_requests, num_beams = state.num_rows, state.num_beams
    vocab_size = model.vocab_size
    beam_tokens = state.beam_tokens
    prefixes = [prefix for row in beam_tokens for prefix in row]
    candidates_info = trie.allowed_token_ids(prefixes) if state.sparse else None
    if state.sparse:
        alive = np.isfinite(state.beam_scores).reshape(-1)
        if candidates_info.is_forced(alive):
            # Every live hypothesis is forced: append without a forward
            # (log-probability 0.0 each), defer the KV update to the next
            # level that needs logits.
            forced = candidates_info.forced_tokens(state.pad_id)
            state.beam_tokens = [
                [prefix + (int(forced[b * num_beams + k]),) for k, prefix in enumerate(row)]
                for b, row in enumerate(beam_tokens)
            ]
            state.pending = np.concatenate([state.pending, forced[:, None]], axis=1)
            return state
        if state.spec_budget > 1 and _speculative_window_open(
            trie, state.spec_budget, state.levels, candidates_info, alive, prefixes
        ):
            return _speculative_step(state, candidates_info, alive, prefixes)
    with no_grad():
        hidden = model.hidden_states(
            state.pending,
            caches=state.caches,
            pad_columns=state.flat_pad_columns(),
            workspace=state.workspace,
            precision=state.precision,
        ).data[:, -1, :]
        state.forwards += 1
        if state.sparse:
            if state.narrow is None:
                union = candidates_info.union
                width = candidates_info.num_candidates
                logits = model.lm_head_gather(
                    hidden, union, workspace=state.workspace, precision=state.precision
                )
                step_logp = masked_log_softmax(logits, candidates_info.mask)  # (B*K, U)
            else:
                union, norm_mask, keep = _narrowed_step_candidates(
                    candidates_info, state.narrow, prefixes, alive
                )
                width = int(union.shape[0])
                logits = model.lm_head_gather(
                    hidden, union, workspace=state.workspace, precision=state.precision
                )
                step_logp = np.where(keep, masked_log_softmax(logits, norm_mask), -np.inf)
        else:
            union = None
            width = vocab_size
            logits = np.matmul(hidden, model.lm_head.weight.data)  # (B*K, V)
            mask = trie.allowed_token_mask(prefixes, vocab_size)
            step_logp = masked_log_softmax(logits, mask)
            if state.narrow is not None:
                keep = state.narrow.allowed_token_mask(prefixes, vocab_size)
                step_logp = np.where(keep, step_logp, -np.inf)
        origin, token, state.beam_scores = select_beams(
            step_logp, state.beam_scores, num_beams, width, union
        )
        state.beam_tokens = [
            [beam_tokens[b][int(origin[b, k])] + (int(token[b, k]),) for k in range(num_beams)]
            for b in range(num_requests)
        ]
        flat_origin = (np.arange(num_requests)[:, None] * num_beams + origin).reshape(-1)
        model.reorder_caches(state.caches, flat_origin)
        state.pending = token.reshape(-1, 1).astype(np.int64, copy=False)
    return state


def _speculative_window_open(
    trie: IndexTrie,
    spec_budget: int,
    levels: np.ndarray,
    candidates_info: SparseCandidates,
    alive: np.ndarray,
    prefixes: list[tuple[int, ...]],
) -> bool:
    """Whether this step may score two trie levels in one forward.

    Requires every row to sit at the same level ``i`` with at least two
    levels left, the fan-out product ``|union_i| * |union_{i+1}|`` within
    ``spec_budget``, and at least one live (beam, candidate) child set
    with a real choice — when every child is a singleton, the forced fast
    path makes level ``i+1`` free and speculation would only widen the
    forward without saving one.  Shared by the :class:`DecodeState`
    stepper and the TIGER engine's speculative step.
    """
    level = int(levels[0])
    if not np.all(levels == level):
        return False
    if level + 2 > trie.num_levels:
        return False
    fan_out = candidates_info.num_candidates * int(trie.level_union(level + 1).shape[0])
    if fan_out > spec_budget:
        return False
    per_row = candidates_info.per_row
    for row, prefix in enumerate(prefixes):
        if not alive[row]:
            continue
        for token in per_row[row]:
            if trie.allowed_tokens(prefix + (int(token),)).size > 1:
                return True
    return False


def _speculative_step(
    state: DecodeState,
    candidates_info: SparseCandidates,
    alive: np.ndarray,
    prefixes: list[tuple[int, ...]],
) -> DecodeState:
    """Advance two trie levels with a single transformer forward.

    See the module docstring for the algorithm.  Mechanics, in order:

    1. Forward ``pending + candidate window``: each beam row runs its
       pending tokens plus its level-``i`` candidates (padded to the batch
       max ``n_max``) as sibling columns — tree-masked via ``extra_mask``,
       all at RoPE position ``m`` via ``position_deltas``.
    2. One gathered-head GEMM over the two levels' token union; slice
       per-level columns out of it for each of the two selection passes.
    3. Level-``i`` ``select_beams`` from the last pending column's hidden
       state — identical inputs to a sequential step's.
    4. Commit: reorder caches to the chosen origins, then keep exactly one
       candidate K/V column per beam (the committed token's), leaving the
       caches as a sequential step + flush would.
    5. Level-``i+1`` ``select_beams`` from each committed candidate's
       sibling-column hidden state — identical to what a second forward
       over the committed token would produce, because that column already
       attended prefix + pending + itself at the right position.

    Dead (``-inf``) rows may carry tokens outside their origin's candidate
    list; their ``chosen`` index clamps into range, which is harmless —
    attention is row-independent and dead rows never revive, so the
    gathered filler column is never read by a live hypothesis.
    """
    model, trie = state.model, state.trie
    num_requests, num_beams = state.num_rows, state.num_beams
    beam_tokens = state.beam_tokens
    level = len(prefixes[0])
    per_row = candidates_info.per_row
    flat_rows = len(prefixes)
    n_max = max(ids.size for ids in per_row)
    m = state.pending.shape[1]
    seq_len = m + n_max

    cand_tokens = np.full((flat_rows, n_max), state.pad_id, dtype=np.int64)
    for row, ids in enumerate(per_row):
        if ids.size:
            cand_tokens[row, : ids.size] = ids
    tokens = np.concatenate([state.pending, cand_tokens], axis=1)

    with no_grad():
        key_len = state.caches[0].length + seq_len
        offset = key_len - seq_len
        # Tree mask: candidate columns must not attend their siblings —
        # only the shared prefix, the pending tokens and themselves.
        extra = np.zeros((seq_len, key_len), dtype=bool)
        extra[m:, offset + m :] = True
        diag = np.arange(n_max)
        extra[m + diag, offset + m + diag] = False
        # All candidates sit at the *same* next position: the one the
        # committed token will occupy.
        deltas = np.concatenate(
            [np.arange(m, dtype=np.int64), np.full(n_max, m, dtype=np.int64)]
        )
        hidden_full = model.hidden_states(
            tokens,
            caches=state.caches,
            pad_columns=state.flat_pad_columns(),
            workspace=state.workspace,
            extra_mask=extra,
            position_deltas=deltas,
            precision=state.precision,
        ).data
        state.forwards += 1

        # One gathered-head GEMM over both levels' union: row layout is
        # (flat_rows, 1 + n_max) — the last pending column (level-i head
        # input) followed by the n_max candidate columns (level-i+1).
        pair_union = trie.union_for_levels((level, level + 1))
        head_in = hidden_full[:, m - 1 :, :].reshape(-1, hidden_full.shape[-1])
        logits_all = model.lm_head_gather(
            head_in, pair_union, workspace=state.workspace, precision=state.precision
        ).reshape(flat_rows, 1 + n_max, pair_union.shape[0])

        # --- Level-i selection (identical to a sequential step's) ---
        if state.narrow is None:
            union0 = candidates_info.union
            width0 = candidates_info.num_candidates
            logits0 = logits_all[:, 0, np.searchsorted(pair_union, union0)]
            step_logp0 = masked_log_softmax(logits0, candidates_info.mask)
        else:
            union0, norm_mask0, keep0 = _narrowed_step_candidates(
                candidates_info, state.narrow, prefixes, alive
            )
            width0 = int(union0.shape[0])
            logits0 = logits_all[:, 0, np.searchsorted(pair_union, union0)]
            step_logp0 = np.where(keep0, masked_log_softmax(logits0, norm_mask0), -np.inf)
        origin1, token1, mid_scores = select_beams(
            step_logp0, state.beam_scores, num_beams, width0, union0
        )
        mid_tokens = [
            [beam_tokens[b][int(origin1[b, k])] + (int(token1[b, k]),) for k in range(num_beams)]
            for b in range(num_requests)
        ]
        flat_origin1 = (np.arange(num_requests)[:, None] * num_beams + origin1).reshape(-1)
        model.reorder_caches(state.caches, flat_origin1)

        # Which sibling column each new beam committed (window-local).
        token1_flat = token1.reshape(-1)
        chosen = np.zeros(flat_rows, dtype=np.int64)
        for i, src in enumerate(flat_origin1):
            ids = per_row[int(src)]
            if ids.size:
                chosen[i] = min(int(np.searchsorted(ids, token1_flat[i])), ids.size - 1)
        # Keep every pre-window column plus the committed candidate's: the
        # caches end up exactly as a sequential step + flush leaves them.
        cache0 = state.caches[0]
        region = cache0.suffix if cache0.fanned else cache0.prompt
        base = region.length - n_max
        keep_cols = np.empty((flat_rows, base + 1), dtype=np.int64)
        keep_cols[:, :base] = np.arange(base)[None, :]
        keep_cols[:, base] = base + chosen
        model.gather_cache_columns(state.caches, keep_cols)

        # --- Level-i+1 selection from the committed columns' hidden ---
        new_prefixes = [prefix for row in mid_tokens for prefix in row]
        mid_alive = np.isfinite(mid_scores).reshape(-1)
        candidates_next = trie.allowed_token_ids(new_prefixes)
        row_logits = logits_all[flat_origin1, 1 + chosen]  # (flat_rows, |pair|)
        if state.narrow is None:
            union1 = candidates_next.union
            width1 = candidates_next.num_candidates
            logits1 = row_logits[:, np.searchsorted(pair_union, union1)]
            step_logp1 = masked_log_softmax(logits1, candidates_next.mask)
        else:
            union1, norm_mask1, keep1 = _narrowed_step_candidates(
                candidates_next, state.narrow, new_prefixes, mid_alive
            )
            width1 = int(union1.shape[0])
            logits1 = row_logits[:, np.searchsorted(pair_union, union1)]
            step_logp1 = np.where(keep1, masked_log_softmax(logits1, norm_mask1), -np.inf)
        origin2, token2, state.beam_scores = select_beams(
            step_logp1, mid_scores, num_beams, width1, union1
        )
        state.beam_tokens = [
            [mid_tokens[b][int(origin2[b, k])] + (int(token2[b, k]),) for k in range(num_beams)]
            for b in range(num_requests)
        ]
        flat_origin2 = (np.arange(num_requests)[:, None] * num_beams + origin2).reshape(-1)
        model.reorder_caches(state.caches, flat_origin2)
        state.pending = token2.reshape(-1, 1).astype(np.int64, copy=False)
    return state


def _pad_left_columns(pads: np.ndarray, extra: int) -> np.ndarray:
    """Prepend ``extra`` all-pad columns to a boolean ``(B, W)`` pad map."""
    if not extra:
        return pads
    return np.pad(pads, ((0, 0), (extra, 0)), constant_values=True)


def _flush_pending(state: DecodeState) -> None:
    """Run all but the newest pending token through the model (KV only).

    Forced-token levels append to ``state.pending`` without a forward;
    before a join the accumulated columns (except the newest token, which
    the next :func:`decode_step` forwards for its logits) must be flushed
    into the KV caches so every row of the merged batch carries the same
    pending width.  One combined multi-token forward, no output head.
    """
    if state.pending.shape[1] <= 1:
        return
    with no_grad():
        state.model.hidden_states(
            state.pending[:, :-1],
            caches=state.caches,
            pad_columns=state.flat_pad_columns(),
            workspace=state.workspace,
            precision=state.precision,
        )
    state.forwards += 1
    state.pending = state.pending[:, -1:]


def decode_join(state: DecodeState, incoming: DecodeState) -> DecodeState:
    """Merge ``incoming``'s freshly prefilled rows into a live decode.

    The continuous-batching admission primitive: between two trie levels
    the engine's state is just per-row beams plus K/V caches, so new
    requests prefilled on the side (:func:`decode_prefill`) can join the
    in-flight batch axis.  ``incoming`` must share ``state``'s model, trie,
    pad id and effective beam width, and must not have stepped yet —
    admission happens at a level boundary, straight out of prefill.  The
    incoming rows' pad maps are extended over the columns they must ignore
    (width-alignment pads and the live batch's existing suffix columns),
    which is why joining changes no row's rankings.  ``incoming`` is
    consumed: its rows now live in ``state``.
    """
    if incoming is state:
        raise ValueError("cannot join a decode state with itself")
    if incoming.model is not state.model or incoming.trie is not state.trie:
        raise ValueError("joined decodes must share one model and trie")
    if incoming.num_beams != state.num_beams:
        raise ValueError(f"beam width mismatch: {incoming.num_beams} != {state.num_beams}")
    if state.num_beams == 1:
        # A width-1 decode never fans out, so its suffix tokens share the
        # prompt cache region; there is no suffix axis to join onto.
        raise ValueError("cannot join width-1 beam decodes; decode them separately")
    if incoming.pad_id != state.pad_id:
        raise ValueError("joined decodes must share a pad id")
    if incoming.sparse != state.sparse:
        raise ValueError("joined decodes must share the sparse-head setting")
    if incoming.narrow is not state.narrow:
        raise ValueError("joined decodes must share one narrowing trie")
    if incoming.precision != state.precision:
        raise ValueError(
            f"joined decodes must share one precision: "
            f"{incoming.precision!r} != {state.precision!r}"
        )
    if incoming.num_rows == 0:
        raise ValueError("incoming state has no rows")
    if incoming.caches[0].suffix.length or incoming.pending.shape[1] != 1:
        raise ValueError("incoming state must be freshly prefilled (no steps yet)")
    if state.num_rows == 0:
        raise RuntimeError("cannot join into an empty decode state")
    # Forced levels may have left unforwarded tokens on the live rows; the
    # merged batch must share one pending width, so catch the KV up first.
    _flush_pending(state)
    suffix_len = state.caches[0].suffix.length
    pad_state, pad_incoming = state.model.join_caches(state.caches, incoming.caches)
    state.prompt_pads = np.concatenate(
        [
            _pad_left_columns(state.prompt_pads, pad_state),
            _pad_left_columns(incoming.prompt_pads, pad_incoming),
        ],
        axis=0,
    )
    state.suffix_pads = np.concatenate(
        [state.suffix_pads, np.full(incoming.num_rows, suffix_len, dtype=np.int64)]
    )
    state.beam_tokens.extend(incoming.beam_tokens)
    state.beam_scores = np.concatenate([state.beam_scores, incoming.beam_scores], axis=0)
    state.tags.extend(incoming.tags)
    state.pending = np.concatenate([state.pending, incoming.pending], axis=0)
    state.forwards += incoming.forwards
    if state.workspace is not None:
        state.workspace.clear()  # row count changed: step scratch resizes
    # Consume the incoming state so a stray step/retire on it cannot
    # corrupt the caches it no longer owns.
    incoming.caches = []
    incoming.beam_tokens = []
    incoming.beam_scores = incoming.beam_scores[:0]
    incoming.prompt_pads = incoming.prompt_pads[:0]
    incoming.suffix_pads = incoming.suffix_pads[:0]
    incoming.tags = []
    incoming.pending = incoming.pending[:0]
    return state


def decode_retire(state: DecodeState, rows: Sequence[int]) -> list[list[BeamHypothesis]]:
    """Pop the given finished rows, returning one hypothesis list per row.

    Every row must be at the final trie level.  Remaining rows keep
    decoding in a smaller batch: the layer caches are compacted (prompt
    and suffix rows evicted) so later forwards pay only for live requests.
    Results are in the order of ``rows``; ``-inf`` filler beams are
    dropped, as in :func:`beam_search_items_batched`.
    """
    rows = [int(row) for row in rows]
    if len(set(rows)) != len(rows):
        raise ValueError("duplicate rows in retirement")
    depth = state.trie.num_levels
    results: list[list[BeamHypothesis]] = []
    for row in rows:
        if not 0 <= row < state.num_rows:
            raise IndexError(f"row {row} out of range for {state.num_rows} rows")
        if len(state.beam_tokens[row][0]) != depth:
            raise ValueError(f"row {row} has not reached the final trie level")
        hypotheses = [
            BeamHypothesis(prefix, float(score), state.trie.item_at(prefix))
            for prefix, score in zip(state.beam_tokens[row], state.beam_scores[row])
            if np.isfinite(score)
        ]
        hypotheses.sort(key=lambda h: -h.score)
        results.append(hypotheses)
    if rows:
        retired = set(rows)
        keep = [b for b in range(state.num_rows) if b not in retired]
        keep_array = np.asarray(keep, dtype=np.int64)
        state.model.evict_cache_rows(state.caches, keep_array)
        state.beam_tokens = [state.beam_tokens[b] for b in keep]
        state.beam_scores = state.beam_scores[keep]
        state.prompt_pads = state.prompt_pads[keep]
        state.suffix_pads = state.suffix_pads[keep]
        state.tags = [state.tags[b] for b in keep]
        flat_keep = (
            keep_array[:, None] * state.num_beams + np.arange(state.num_beams)
        ).reshape(-1)
        state.pending = state.pending[flat_keep]
        if state.workspace is not None:
            # Trim the step scratch: surviving rows re-size it next step,
            # so retired requests never pin peak-width buffers.
            state.workspace.clear()
        _trim_all_pad_prompt_columns(state)
    return results


def _trim_all_pad_prompt_columns(state: DecodeState) -> None:
    """Drop prompt columns every surviving row masks as padding.

    Retiring a long-prompt row can leave the joined prompt region wider
    than any remaining request needs: columns that were real tokens only
    for the retired rows are now all-pad, yet every later forward still
    pays attention width for them.  Those columns are masked out of
    attention for every surviving row, so removing them (from each layer
    cache and the pad map alike) changes no scores, ranks, or RoPE
    positions — real tokens keep their unpadded positions because per-row
    pad counts shrink by exactly the columns dropped.
    """
    if state.num_rows == 0:
        return
    all_pad = state.prompt_pads.all(axis=0)
    if not all_pad.any():
        return
    keep = np.flatnonzero(~all_pad)
    for cache in state.caches:
        cache.prompt.take_columns(keep)
    state.prompt_pads = state.prompt_pads[:, keep]


def decode_finish(state: DecodeState) -> list[list[BeamHypothesis]]:
    """Retire every row (all must be at the final level), in row order."""
    return decode_retire(state, range(state.num_rows))


def beam_search_items_batched(
    model: TinyLlama,
    prompts: Sequence[Sequence[int]],
    trie: IndexTrie,
    beam_size: int = 20,
    pad_id: int = 0,
    prefix_cache: PrefixKVCache | None = None,
    sparse: bool = True,
    narrow: IndexTrie | None = None,
    spec_budget: int = 0,
    precision: str = "fp32",
) -> list[list[BeamHypothesis]]:
    """Batched trie-constrained beam search (the serving engine).

    Decodes all ``len(prompts)`` requests together: each step is a single
    ``model.forward`` over the flattened ``B*K`` hypothesis axis with one
    vectorized trie mask, instead of per-request forwards and
    per-hypothesis Python loops.  Returns one score-sorted hypothesis list
    per prompt with the same rankings as running each prompt through the
    single-request path alone.

    ``prefix_cache`` enables cross-request prompt K/V reuse: prompt
    prefixes this cache has seen before (in this batch's predecessors) are
    not re-forwarded — their cached K/V is seeded directly into the decode
    caches and only each row's unseen suffix runs through the model.
    Rankings are unaffected (the K/V of a prompt prefix is identical
    whenever the tokens and weights are identical); see
    :class:`repro.llm.PrefixKVCache` for the invalidation contract.

    Requests with fewer than ``K`` legal hypotheses at some level carry
    ``-inf``-scored filler beams to keep the batch rectangular; fillers are
    dropped from the results.

    This is the one-shot wrapper over the resumable stepper
    (:func:`decode_prefill` → :func:`decode_step` × levels →
    :func:`decode_finish`); the continuous-batching scheduler drives the
    same stepper with admissions and retirements between levels.
    ``spec_budget``/``precision`` configure the two-level speculative fast
    path and the decode GEMM precision — see :class:`DecodeState`.
    """
    if beam_size < 1:
        raise ValueError("beam_size must be positive")
    if not list(prompts):
        return []
    state = decode_prefill(
        model,
        prompts,
        trie,
        beam_size=beam_size,
        pad_id=pad_id,
        prefix_cache=prefix_cache,
        sparse=sparse,
        narrow=narrow,
        spec_budget=spec_budget,
        precision=precision,
    )
    while not state.done:
        decode_step(state)
    return decode_finish(state)


def beam_search_items(
    model: TinyLlama, prompt_ids: list[int], trie: IndexTrie, beam_size: int = 20
) -> list[BeamHypothesis]:
    """Constrained beam search over the item-index trie.

    Returns hypotheses sorted by descending log probability.  Every
    hypothesis is a *legal* complete item index (illegal continuations are
    masked to ``-inf`` at every level), so each maps to exactly one item.
    Runs on the batched engine with a batch of one.
    """
    return beam_search_items_batched(model, [prompt_ids], trie, beam_size=beam_size)[0]


def constrained_log_probs(logits_row: np.ndarray, allowed: np.ndarray) -> np.ndarray:
    """Per-beam constrained log-softmax over the allowed token ids only.

    The scalar (one-beam) form of :func:`masked_log_softmax`, shared by
    the single-request oracles (here and in ``TIGER._beam_search``) so a
    numerics change to the constrained-scoring semantics cannot diverge
    between them.
    """
    raw = logits_row[allowed]
    shifted = raw - raw.max()
    return shifted - np.log(np.exp(shifted).sum())


def beam_search_items_single(
    model: TinyLlama, prompt_ids: list[int], trie: IndexTrie, beam_size: int = 20
) -> list[BeamHypothesis]:
    """Reference single-request beam search (pre-batching implementation).

    Kept as the parity oracle for the batched engine and as the baseline
    for ``benchmarks/bench_serving_throughput.py``.  Scores follow the
    constrained-log-softmax semantics of the module docstring: each level
    renormalises over the tokens the trie allows for that beam, which is
    what a ``prefix_allowed_tokens_fn`` logits processor computes in the
    reference implementations.
    """
    if beam_size < 1:
        raise ValueError("beam_size must be positive")
    num_levels = trie.num_levels
    with no_grad():
        caches = model.new_caches()
        prompt = np.asarray(prompt_ids, dtype=np.int64)[None, :]
        logits = model.forward(prompt, caches=caches).data[:, -1, :]

        # Level 0 expansion from the single prompt beam.
        allowed = trie.allowed_tokens(())
        scores = constrained_log_probs(logits[0], allowed)
        k = min(beam_size, len(allowed))
        top = np.argsort(-scores)[:k]
        beam_tokens = [(int(allowed[i]),) for i in top]
        beam_scores = scores[top].astype(np.float64)
        model.reorder_caches(caches, np.zeros(k, dtype=np.int64))

        for _ in range(1, num_levels):
            last = np.array([t[-1] for t in beam_tokens], dtype=np.int64)[:, None]
            step_logits = model.forward(last, caches=caches).data[:, -1, :]

            candidate_scores: list[float] = []
            candidate_origin: list[int] = []
            candidate_token: list[int] = []
            for beam_index, prefix in enumerate(beam_tokens):
                allowed = trie.allowed_tokens(prefix)
                step_logp = constrained_log_probs(step_logits[beam_index], allowed)
                for token, token_logp in zip(allowed, step_logp):
                    candidate_scores.append(beam_scores[beam_index] + token_logp)
                    candidate_origin.append(beam_index)
                    candidate_token.append(int(token))
            order = np.argsort(-np.asarray(candidate_scores))[:beam_size]
            beam_tokens = [beam_tokens[candidate_origin[i]] + (candidate_token[i],) for i in order]
            beam_scores = np.asarray([candidate_scores[i] for i in order])
            origins = np.asarray([candidate_origin[i] for i in order])
            model.reorder_caches(caches, origins)

    hypotheses = []
    for tokens, score in zip(beam_tokens, beam_scores):
        item_id = trie.item_at(tokens)
        hypotheses.append(BeamHypothesis(tokens, float(score), item_id))
    hypotheses.sort(key=lambda h: -h.score)
    return hypotheses


def greedy_generate(
    model: TinyLlama,
    prompt_ids: list[int],
    max_new_tokens: int,
    eos_id: int,
    banned_ids: set[int] | None = None,
) -> list[int]:
    """Greedy free-text generation (used by the Fig. 5 case study)."""
    banned = banned_ids or set()
    with no_grad():
        caches = model.new_caches()
        tokens = np.asarray(prompt_ids, dtype=np.int64)[None, :]
        logits = model.forward(tokens, caches=caches).data[:, -1, :]
        generated: list[int] = []
        for _ in range(max_new_tokens):
            row = logits[0].copy()
            for token_id in banned:
                row[token_id] = -np.inf
            next_id = int(row.argmax())
            if next_id == eos_id:
                break
            generated.append(next_id)
            step = np.asarray([[next_id]], dtype=np.int64)
            logits = model.forward(step, caches=caches).data[:, -1, :]
    return generated


def sequence_logprob(
    model: TinyLlama,
    prompt_ids: list[int],
    continuation_ids: list[int],
    length_normalize: bool = True,
) -> float:
    """Log probability of ``continuation_ids`` given ``prompt_ids``.

    Used for the Table V pairwise discrimination task: the model "chooses"
    whichever candidate response it assigns the higher (length-normalised)
    log likelihood.
    """
    if not continuation_ids:
        raise ValueError("continuation must be non-empty")
    full = np.asarray(prompt_ids + continuation_ids, dtype=np.int64)[None, :]
    with no_grad():
        logits = model.forward(full).data[0]
    log_probs = log_softmax_np(logits)
    start = len(prompt_ids) - 1
    total = 0.0
    for offset, token in enumerate(continuation_ids):
        total += float(log_probs[start + offset, token])
    if length_normalize:
        total /= len(continuation_ids)
    return total
