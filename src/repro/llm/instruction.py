"""Instruction formatting for alignment tuning.

Tuning tasks are conditional generation pairs (Eq. 7): the loss is the
negative log-likelihood of the response tokens only.  ``encode_example``
renders ``<bos> instruction 'answer :' response <eos>`` and labels prompt
positions with ``IGNORE_INDEX`` so they contribute no loss.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..text import WordTokenizer

__all__ = [
    "InstructionExample",
    "EncodedExample",
    "encode_example",
    "collate_batch",
    "prompt_ids",
    "IGNORE_INDEX",
]

IGNORE_INDEX = -100
_ANSWER_MARKER = "answer :"


@dataclass(frozen=True)
class InstructionExample:
    """One instruction-tuning pair with its originating task tag."""

    instruction: str
    response: str
    task: str


@dataclass
class EncodedExample:
    """Token ids plus per-position labels (``IGNORE_INDEX`` on the prompt)."""

    input_ids: np.ndarray
    labels: np.ndarray

    def __len__(self) -> int:
        return len(self.input_ids)


def encode_example(
    tokenizer: WordTokenizer, example: InstructionExample, max_len: int = 256
) -> EncodedExample:
    """Tokenise one example, truncating the *prompt side* if too long."""
    vocab = tokenizer.vocab
    marker_ids = tokenizer.encode(_ANSWER_MARKER)
    response_ids = tokenizer.encode(example.response) + [vocab.eos_id]
    prompt_budget = max_len - len(marker_ids) - len(response_ids) - 1
    if prompt_budget < 1:
        raise ValueError(f"max_len {max_len} too small for response of {len(response_ids)} tokens")
    instruction_ids = tokenizer.encode(example.instruction)[:prompt_budget]
    prompt = [vocab.bos_id] + instruction_ids + marker_ids
    input_ids = np.array(prompt + response_ids, dtype=np.int64)
    labels = np.concatenate(
        [
            np.full(len(prompt), IGNORE_INDEX, dtype=np.int64),
            np.array(response_ids, dtype=np.int64),
        ]
    )
    return EncodedExample(input_ids=input_ids, labels=labels)


def prompt_ids(tokenizer: WordTokenizer, instruction: str, max_len: int = 256) -> list[int]:
    """Inference-side prompt encoding matching ``encode_example``."""
    vocab = tokenizer.vocab
    marker_ids = tokenizer.encode(_ANSWER_MARKER)
    budget = max_len - len(marker_ids) - 1
    instruction_ids = tokenizer.encode(instruction)[:budget]
    return [vocab.bos_id] + instruction_ids + marker_ids


def collate_batch(examples: list[EncodedExample], pad_id: int) -> tuple[np.ndarray, np.ndarray]:
    """Right-pad a batch; padded label positions are ``IGNORE_INDEX``."""
    if not examples:
        raise ValueError("empty batch")
    max_len = max(len(e) for e in examples)
    input_ids = np.full((len(examples), max_len), pad_id, dtype=np.int64)
    labels = np.full((len(examples), max_len), IGNORE_INDEX, dtype=np.int64)
    for row, example in enumerate(examples):
        input_ids[row, : len(example)] = example.input_ids
        labels[row, : len(example)] = example.labels
    return input_ids, labels
