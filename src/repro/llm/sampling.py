"""Stochastic decoding: temperature, top-k and nucleus (top-p) sampling.

The paper decodes with beam search; sampling decoders are provided for
the conversational extensions (preference narration, explanations), where
diverse generations are preferable to the single mode.
"""

from __future__ import annotations

import numpy as np

from ..tensor import no_grad
from .model import TinyLlama

__all__ = ["sample_generate"]


def _filter_top_k(logits: np.ndarray, top_k: int) -> np.ndarray:
    if top_k <= 0 or top_k >= logits.size:
        return logits
    cutoff = np.partition(logits, -top_k)[-top_k]
    filtered = np.where(logits < cutoff, -np.inf, logits)
    return filtered


def _filter_top_p(logits: np.ndarray, top_p: float) -> np.ndarray:
    if top_p >= 1.0:
        return logits
    order = np.argsort(-logits)
    sorted_logits = logits[order]
    probs = np.exp(sorted_logits - sorted_logits.max())
    probs /= probs.sum()
    cumulative = np.cumsum(probs)
    # Keep the smallest prefix with mass >= top_p (always >= 1 token).
    keep = cumulative <= top_p
    keep[0] = True
    filtered = np.full_like(logits, -np.inf)
    filtered[order[keep]] = logits[order[keep]]
    return filtered


def sample_generate(
    model: TinyLlama,
    prompt_ids: list[int],
    max_new_tokens: int,
    eos_id: int,
    rng: np.random.Generator,
    temperature: float = 1.0,
    top_k: int = 0,
    top_p: float = 1.0,
    banned_ids: set[int] | None = None,
) -> list[int]:
    """Sample a continuation with temperature / top-k / nucleus filtering."""
    if temperature <= 0:
        raise ValueError("temperature must be positive")
    banned = banned_ids or set()
    with no_grad():
        caches = model.new_caches()
        tokens = np.asarray(prompt_ids, dtype=np.int64)[None, :]
        logits = model.forward(tokens, caches=caches).data[0, -1, :]
        generated: list[int] = []
        for _ in range(max_new_tokens):
            row = logits.astype(np.float64) / temperature
            for token_id in banned:
                row[token_id] = -np.inf
            row = _filter_top_k(row, top_k)
            row = _filter_top_p(row, top_p)
            row -= row.max()
            probs = np.exp(row)
            probs /= probs.sum()
            next_id = int(rng.choice(len(probs), p=probs))
            if next_id == eos_id:
                break
            generated.append(next_id)
            step = np.asarray([[next_id]], dtype=np.int64)
            logits = model.forward(step, caches=caches).data[0, -1, :]
    return generated
