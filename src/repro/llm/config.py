"""Configuration for the tiny LLaMA-style language model."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["LMConfig"]


@dataclass
class LMConfig:
    """Architecture hyperparameters.

    The defaults give a few-hundred-thousand-parameter decoder-only model:
    the smallest LM that still exhibits the paper's mechanism (language
    semantics in token embeddings + OOV index tokens to integrate).
    """

    vocab_size: int = 1024
    dim: int = 64
    num_layers: int = 2
    num_heads: int = 4
    ffn_hidden: int = 176
    max_seq_len: int = 256
    dropout: float = 0.0
    rope_base: float = 10000.0
    norm_eps: float = 1e-6
    seed: int = 0

    def validate(self) -> None:
        if self.dim % self.num_heads != 0:
            raise ValueError("dim must be divisible by num_heads")
        if (self.dim // self.num_heads) % 2 != 0:
            raise ValueError("head dim must be even for RoPE")
        if self.vocab_size < 5:
            raise ValueError("vocab too small")
