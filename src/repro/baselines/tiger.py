"""TIGER (Rajput et al. 2023): generative retrieval with semantic IDs.

An encoder-decoder transformer trained from scratch: the encoder reads the
history as a sequence of semantic-ID tokens (RQ-VAE codes with the
*extra-level* dedup — TIGER predates USM), the decoder autoregressively
generates the target item's semantic ID, and inference is trie-constrained
beam search.  No natural-language pretraining anywhere — the contrast with
LC-Rec the paper draws in Table I.

Two inference routes share one set of weights: :meth:`TIGER.recommend`, the
per-request reference loop kept as the parity oracle, and
:meth:`TIGER.recommend_many`, which decodes whole batches through the
serving stack's :class:`repro.serving.TIGEREngine` (encode once per batch,
``B×K`` decoder beams per forward).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

import numpy as np

from ..data import SequentialDataset
from ..data.batching import iterate_minibatches
from ..llm import backfill_items
from ..llm.generation import constrained_log_probs
from ..quantization.indexing import ItemIndexSet
from ..tensor import (
    Adam,
    Dropout,
    Embedding,
    LayerNorm,
    Module,
    ModuleList,
    Tensor,
    WeightMemo,
    causal_mask,
    clip_grad_norm,
    fp16_activations,
    fp16_weight,
    int8_matmul,
    no_grad,
    precision_token,
    quantize_weight_int8,
    validate_precision,
)
from ..tensor import functional as F
from ..utils.logging import get_logger
from .generative import BOS_ID, PAD_ID, IndexTokenSpace
from .layers import TransformerEncoderLayer

__all__ = ["TIGER", "TIGERConfig"]

logger = get_logger(__name__)


@dataclass
class TIGERConfig:
    dim: int = 64
    num_heads: int = 2
    encoder_layers: int = 2
    decoder_layers: int = 2
    dropout: float = 0.1
    max_history: int = 10
    epochs: int = 30
    batch_size: int = 64
    lr: float = 1e-3
    clip_norm: float = 5.0
    beam_size: int = 20
    seed: int = 0


class TIGER(Module):
    """Encoder-decoder generative recommender over semantic-ID tokens."""

    name = "TIGER"

    def __init__(self, index_set: ItemIndexSet, config: TIGERConfig | None = None):
        super().__init__()
        self.config = config or TIGERConfig()
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        self.space = IndexTokenSpace(index_set)
        self.trie = self.space.build_trie()
        self.num_levels = index_set.num_levels
        max_src = cfg.max_history * self.num_levels
        self.token_embeddings = Embedding(self.space.vocab_size, cfg.dim, rng=rng)
        self.encoder_positions = Embedding(max_src + 1, cfg.dim, rng=rng)
        self.decoder_positions = Embedding(self.num_levels + 1, cfg.dim, rng=rng)
        self.encoder_layers = ModuleList(
            [
                TransformerEncoderLayer(cfg.dim, cfg.num_heads, cfg.dim * 2, cfg.dropout, rng)
                for _ in range(cfg.encoder_layers)
            ]
        )
        self.decoder_layers = ModuleList(
            [
                TransformerEncoderLayer(
                    cfg.dim, cfg.num_heads, cfg.dim * 2, cfg.dropout, rng, with_cross_attention=True
                )
                for _ in range(cfg.decoder_layers)
            ]
        )
        self.encoder_norm = LayerNorm(cfg.dim)
        self.decoder_norm = LayerNorm(cfg.dim)
        self.dropout = Dropout(cfg.dropout, rng=rng)
        self._max_src = max_src
        self._engine = None  # lazily built serving adapter (TIGEREngine)
        # Cleared on every train()/eval() transition by Module.train.
        self._head_gather_cache = WeightMemo()

    def serving_replica(self) -> "TIGER":
        """A shallow copy for concurrent serving: shared weights, private memo.

        Same contract as :meth:`repro.llm.TinyLlama.serving_replica` —
        the module graph (and so every parameter array) is shared, while
        the gathered-head :class:`~repro.tensor.WeightMemo` and the lazy
        engine slot are private to the replica, so cluster workers can
        decode concurrently without racing each other's caches.
        """
        replica = copy.copy(self)
        replica._head_gather_cache = WeightMemo()
        replica._engine = None
        return replica

    # ------------------------------------------------------------------
    def _pad_histories(self, histories: list[list[int]]) -> np.ndarray:
        rows = []
        for history in histories:
            ids = self.space.history_ids(list(history)[-self.config.max_history :])
            rows.append(ids[-self._max_src :])
        width = max(len(r) for r in rows)
        batch = np.full((len(rows), width), PAD_ID, dtype=np.int64)
        for i, row in enumerate(rows):
            batch[i, : len(row)] = row
        return batch

    def encode(self, source: np.ndarray) -> tuple[Tensor, np.ndarray]:
        """Bidirectional encoding; returns memory and the key padding mask."""
        positions = np.arange(source.shape[1])
        x = self.token_embeddings(source) + self.encoder_positions(positions)
        x = self.dropout(x)
        pad_mask = (source == PAD_ID)[:, None, None, :]
        for layer in self.encoder_layers:
            x = layer(x, attn_mask=pad_mask)
        return self.encoder_norm(x), pad_mask

    def decode_hidden(
        self, memory: Tensor, memory_mask: np.ndarray, decoder_input: np.ndarray
    ) -> Tensor:
        """Causal decoding with cross-attention; returns hidden states.

        The output head (tied to the token embeddings) is applied by the
        caller — densely via :meth:`head_logits`, or for a candidate union
        only via :meth:`head_gather` (the trie-aware sparse decode).
        """
        seq_len = decoder_input.shape[1]
        positions = np.arange(seq_len)
        x = self.token_embeddings(decoder_input)
        x = x + self.decoder_positions(positions)
        x = self.dropout(x)
        self_mask = causal_mask(seq_len, seq_len)
        cross_mask = memory_mask  # (B, 1, 1, S) broadcasts over query length
        for layer in self.decoder_layers:
            x = layer(x, attn_mask=self_mask, context=memory, context_mask=cross_mask)
        return self.decoder_norm(x)

    def decode(self, memory: Tensor, memory_mask: np.ndarray, decoder_input: np.ndarray) -> Tensor:
        """Causal decoding with cross-attention; returns token logits."""
        hidden = self.decode_hidden(memory, memory_mask, decoder_input)
        return hidden @ self.token_embeddings.weight.transpose(1, 0)

    def head_logits(self, hidden: np.ndarray) -> np.ndarray:
        """Dense output head over already-computed hidden states ``(R, dim)``."""
        return np.matmul(hidden, self.token_embeddings.weight.data.T)

    def head_gather(
        self, hidden: np.ndarray, token_ids: np.ndarray, precision: str = "fp32"
    ) -> np.ndarray:
        """Logits for ``token_ids`` only: ``hidden @ W[token_ids].T``.

        The sparse counterpart of :meth:`head_logits` for trie-constrained
        decoding: each computed column is the same embedding dot product
        the dense head performs, just restricted to the candidate union.
        The gathered rows are memoized against the candidate array's
        identity (the trie keeps one stable array per level); staleness
        guards live in :class:`repro.tensor.WeightMemo`.  ``precision``
        selects the GEMM kernel exactly as in
        :meth:`repro.llm.TinyLlama.lm_head_gather`: quantized gathered
        weights share the memo (keyed by the union's identity plus the
        precision's interned sentinel) and its invalidation.
        """
        weight = self.token_embeddings.weight
        sub = self._head_gather_cache.get(
            (token_ids, weight.data),
            (weight,),
            lambda: np.ascontiguousarray(weight.data[np.asarray(token_ids, dtype=np.int64)].T),
        )
        if precision == "fp32":
            return np.matmul(hidden, sub)
        sources = (token_ids, weight.data, precision_token(precision))
        if validate_precision(precision) == "fp16":
            qsub = self._head_gather_cache.get(sources, (weight,), lambda: fp16_weight(sub))
            return np.matmul(fp16_activations(hidden), qsub)
        qsub = self._head_gather_cache.get(
            sources, (weight,), lambda: quantize_weight_int8(sub)
        )
        return int8_matmul(hidden, qsub)

    def forward(self, source: np.ndarray, decoder_input: np.ndarray) -> Tensor:
        memory, mask = self.encode(source)
        return self.decode(memory, mask, decoder_input)

    # ------------------------------------------------------------------
    def fit(self, dataset: SequentialDataset) -> list[float]:
        cfg = self.config
        histories, targets = [], []
        for seq in dataset.split.train_sequences:
            for t in range(1, len(seq)):
                histories.append(seq[max(0, t - cfg.max_history) : t])
                targets.append(seq[t])
        if not histories:
            raise ValueError("no training pairs")
        source = self._pad_histories(histories)
        target_tokens = np.array([self.space.item_tokens(item) for item in targets], dtype=np.int64)
        decoder_input = np.concatenate(
            [np.full((len(targets), 1), BOS_ID, dtype=np.int64), target_tokens[:, :-1]],
            axis=1,
        )
        rng = np.random.default_rng(cfg.seed)
        optimizer = Adam(self.parameters(), lr=cfg.lr)
        losses = []
        self.train()
        for epoch in range(cfg.epochs):
            epoch_loss, batches = 0.0, 0
            for batch_idx in iterate_minibatches(len(histories), cfg.batch_size, rng=rng):
                optimizer.zero_grad()
                logits = self.forward(source[batch_idx], decoder_input[batch_idx])
                loss = F.cross_entropy(logits, target_tokens[batch_idx])
                loss.backward()
                clip_grad_norm(self.parameters(), cfg.clip_norm)
                optimizer.step()
                epoch_loss += loss.item()
                batches += 1
            losses.append(epoch_loss / max(batches, 1))
            if (epoch + 1) % 10 == 0:
                logger.info("TIGER epoch %d: loss=%.4f", epoch + 1, losses[-1])
        self.eval()
        return losses

    # ------------------------------------------------------------------
    def _beam_search(
        self, memory: Tensor, memory_mask: np.ndarray, beam_size: int
    ) -> list[tuple[tuple[int, ...], float]]:
        """Trie-constrained beam expansion over one encoded history.

        Scores are constrained log-probabilities: each level renormalises
        over the tokens the trie allows for that beam (what a
        ``prefix_allowed_tokens_fn`` logits processor computes), matching
        the serving engine's sparse candidate-only log-softmax.
        """
        beams: list[tuple[tuple[int, ...], float]] = [((), 0.0)]
        for _ in range(self.num_levels):
            # Re-decode the full (short) prefix for every beam.
            prefixes = [beam[0] for beam in beams]
            decoder_input = np.array([(BOS_ID,) + prefix for prefix in prefixes], dtype=np.int64)
            batch = len(beams)
            memory_b = Tensor(np.repeat(memory.data, batch, axis=0))
            mask_b = np.repeat(memory_mask, batch, axis=0)
            logits = self.decode(memory_b, mask_b, decoder_input).data
            step_logits = logits[:, -1, :]
            candidates = []
            for beam_index, (prefix, score) in enumerate(beams):
                allowed = self.trie.allowed_tokens(prefix)
                step_logp = constrained_log_probs(step_logits[beam_index], allowed)
                for token, token_logp in zip(allowed, step_logp):
                    candidates.append((prefix + (int(token),), score + float(token_logp)))
            candidates.sort(key=lambda c: -c[1])
            beams = candidates[:beam_size]
        return beams

    def _ranked(self, beams: list[tuple[tuple[int, ...], float]], top_k: int) -> list[int]:
        ranked: list[int] = []
        for prefix, _ in beams:
            item = self.trie.item_at(prefix)
            if item not in ranked:
                ranked.append(item)
            if len(ranked) == top_k:
                break
        return ranked

    def recommend(self, history: list[int], top_k: int = 10) -> list[int]:
        """Trie-constrained beam search over semantic IDs (reference loop).

        Always returns ``top_k`` item ids (catalog permitting): a beam that
        dedups to fewer unique items — narrow trie levels starve the beam
        mid-search — is re-run once at full-catalog width, and any residual
        shortfall is backfilled deterministically with the smallest unused
        item ids, so ranking metrics never see truncated lists.

        This is the single-request parity oracle; serving and batched
        evaluation go through :meth:`recommend_many` instead.
        """
        beam_size = max(self.config.beam_size, top_k)
        num_items = self.trie.num_items
        with no_grad():
            source = self._pad_histories([list(history)])
            memory, mask = self.encode(source)
            beams = self._beam_search(memory, mask, beam_size)
            ranked = self._ranked(beams, top_k)
            if len(ranked) < min(top_k, num_items) and beam_size < num_items:
                beams = self._beam_search(memory, mask, num_items)
                ranked = self._ranked(beams, top_k)
        return backfill_items(ranked, top_k, num_items)

    def recommend_many(self, histories: list[list[int]], top_k: int = 10) -> list[list[int]]:
        """Batched :meth:`recommend`: all histories decoded together.

        Routes through the serving stack's :class:`repro.serving.TIGEREngine`
        — the whole batch is encoded in one encoder forward and expanded
        ``B×K`` decoder beams per trie level — instead of the per-request
        Python loop.  Rankings match :meth:`recommend` request-for-request,
        including the widen-to-catalog retry and deterministic backfill.
        """
        # Lazy import: the serving package depends on repro.llm, not the
        # other way around; baselines must stay importable without it.
        from ..serving import TIGEREngine

        if self._engine is None:
            self._engine = TIGEREngine(self)
        return self._engine.recommend_many(histories, top_k=top_k)

    def score_all(self, histories):  # pragma: no cover - guard
        raise NotImplementedError("TIGER is generative; use recommend()")
