"""Shared neural blocks for the baseline models."""

from __future__ import annotations

import numpy as np

from ..tensor import (
    Dropout,
    LayerNorm,
    Linear,
    Module,
    MultiHeadAttention,
    Tensor,
)

__all__ = ["PointwiseFeedForward", "TransformerEncoderLayer"]


class PointwiseFeedForward(Module):
    """Two-layer position-wise FFN with ReLU."""

    def __init__(self, dim: int, hidden: int, dropout: float, rng: np.random.Generator):
        super().__init__()
        self.fc1 = Linear(dim, hidden, rng=rng)
        self.fc2 = Linear(hidden, dim, rng=rng)
        self.dropout = Dropout(dropout, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.fc2(self.dropout(self.fc1(x).relu()))


class TransformerEncoderLayer(Module):
    """Pre-norm transformer layer with optional cross-attention.

    Used by SASRec / BERT4Rec / FDSA / S3-Rec (self-attention only) and by
    the TIGER encoder-decoder (decoder layers pass ``context``).
    """

    def __init__(
        self,
        dim: int,
        num_heads: int,
        ffn_hidden: int,
        dropout: float,
        rng: np.random.Generator,
        with_cross_attention: bool = False,
    ):
        super().__init__()
        self.self_norm = LayerNorm(dim)
        self.self_attn = MultiHeadAttention(dim, num_heads, dropout=dropout, rng=rng)
        self.with_cross_attention = with_cross_attention
        if with_cross_attention:
            self.cross_norm = LayerNorm(dim)
            self.cross_attn = MultiHeadAttention(dim, num_heads, dropout=dropout, rng=rng)
        self.ffn_norm = LayerNorm(dim)
        self.ffn = PointwiseFeedForward(dim, ffn_hidden, dropout, rng)
        self.dropout = Dropout(dropout, rng=rng)

    def forward(
        self,
        x: Tensor,
        attn_mask: np.ndarray | None = None,
        context: Tensor | None = None,
        context_mask: np.ndarray | None = None,
        cache=None,
    ) -> Tensor:
        x = x + self.dropout(self.self_attn(self.self_norm(x), attn_mask=attn_mask, cache=cache))
        if self.with_cross_attention:
            if context is None:
                raise ValueError("cross-attention layer needs a context")
            x = x + self.dropout(
                self.cross_attn(self.cross_norm(x), context=context, attn_mask=context_mask)
            )
        x = x + self.dropout(self.ffn(self.ffn_norm(x)))
        return x
