"""GRU4Rec (Hidasi et al. 2016): RNN-based sequential recommendation."""

from __future__ import annotations

import numpy as np

from ..tensor import Dropout, GRU, Tensor
from .base import SequentialRecommender

__all__ = ["GRU4Rec"]


class GRU4Rec(SequentialRecommender):
    """Item embeddings encoded by a (stacked) GRU; tied output weights."""

    name = "GRU4Rec"
    training_mode = "causal"

    def __init__(
        self,
        num_items: int,
        dim: int = 64,
        max_len: int = 20,
        num_layers: int = 1,
        dropout: float = 0.1,
        seed: int = 0,
    ):
        rng = np.random.default_rng(seed)
        super().__init__(num_items, dim, max_len, rng)
        self.gru = GRU(dim, dim, num_layers=num_layers, rng=rng)
        self.dropout = Dropout(dropout, rng=rng)

    def sequence_output(self, padded: np.ndarray) -> Tensor:
        embedded = self.dropout(self.item_embeddings(padded))
        return self.gru(embedded)
