"""SASRec (Kang & McAuley 2018): unidirectional transformer recommender.

Also exposes its trained item-embedding table, which Table V uses to mine
"collaboratively similar" negatives.
"""

from __future__ import annotations

import numpy as np

from ..tensor import Dropout, Embedding, LayerNorm, ModuleList, Tensor, causal_mask
from .base import SequentialRecommender
from .layers import TransformerEncoderLayer

__all__ = ["SASRec"]


class SASRec(SequentialRecommender):
    """Causal self-attention over the item sequence; tied output weights."""

    name = "SASRec"
    training_mode = "causal"

    def __init__(
        self,
        num_items: int,
        dim: int = 64,
        max_len: int = 20,
        num_layers: int = 2,
        num_heads: int = 2,
        dropout: float = 0.2,
        seed: int = 0,
    ):
        rng = np.random.default_rng(seed)
        super().__init__(num_items, dim, max_len, rng)
        self.position_embeddings = Embedding(max_len + 1, dim, rng=rng)
        self.layers = ModuleList(
            [
                TransformerEncoderLayer(dim, num_heads, dim * 2, dropout, rng)
                for _ in range(num_layers)
            ]
        )
        self.final_norm = LayerNorm(dim)
        self.dropout = Dropout(dropout, rng=rng)

    def sequence_output(self, padded: np.ndarray) -> Tensor:
        seq_len = padded.shape[1]
        positions = np.arange(seq_len)
        x = self.item_embeddings(padded) + self.position_embeddings(positions)
        x = self.dropout(x)
        mask = causal_mask(seq_len, seq_len)
        for layer in self.layers:
            x = layer(x, attn_mask=mask)
        return self.final_norm(x)

    def item_embedding_matrix(self) -> np.ndarray:
        """Trained item embeddings (collaborative space, used by Table V)."""
        return self.item_embeddings.weight.data[: self.num_items].copy()
