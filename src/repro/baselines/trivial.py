"""Trivial reference recommenders: popularity and random.

Not in the paper's baseline table, but indispensable sanity floors: any
model scoring below :class:`PopularityRecommender` has learned nothing
beyond the marginal item distribution.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..data import SequentialDataset

__all__ = ["PopularityRecommender", "RandomRecommender"]


class PopularityRecommender:
    """Scores every item by its training interaction count."""

    name = "Popularity"

    def __init__(self, num_items: int):
        self.num_items = num_items
        self._scores = np.zeros(num_items, dtype=np.float32)

    def fit(self, dataset: SequentialDataset) -> "PopularityRecommender":
        for seq in dataset.split.train_sequences:
            for item in seq:
                self._scores[item] += 1.0
        return self

    def score_all(self, histories: Sequence[Sequence[int]]) -> np.ndarray:
        return np.tile(self._scores, (len(histories), 1))

    def recommend(self, history: Sequence[int], top_k: int = 10) -> list[int]:
        order = np.argsort(-self._scores, kind="stable")
        return order[:top_k].tolist()


class RandomRecommender:
    """Uniform random scores (a fixed permutation per call batch)."""

    name = "Random"

    def __init__(self, num_items: int, seed: int = 0):
        self.num_items = num_items
        self._rng = np.random.default_rng(seed)

    def fit(self, dataset: SequentialDataset) -> "RandomRecommender":
        return self

    def score_all(self, histories: Sequence[Sequence[int]]) -> np.ndarray:
        return self._rng.random((len(histories), self.num_items)).astype(np.float32)

    def recommend(self, history: Sequence[int], top_k: int = 10) -> list[int]:
        return self._rng.permutation(self.num_items)[:top_k].tolist()
