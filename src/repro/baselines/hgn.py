"""HGN (Ma et al. 2019): hierarchical gating networks.

Feature gating selects salient embedding dimensions per item, instance
gating weighs whole items in the window, and an item-item aggregation term
(the average of raw embeddings) preserves untransformed co-occurrence
signal.  Per the sequential-recommendation setting used in the paper's
comparison, the user-specific gate input is omitted.
"""

from __future__ import annotations

import numpy as np

from ..tensor import Dropout, Linear, Parameter, Tensor
from ..tensor.init import xavier_uniform
from .base import SequentialRecommender

__all__ = ["HGN"]


class HGN(SequentialRecommender):
    """Feature gating -> instance gating -> average aggregation."""

    name = "HGN"
    training_mode = "pointwise"

    def __init__(
        self, num_items: int, dim: int = 64, max_len: int = 20, dropout: float = 0.2, seed: int = 0
    ):
        rng = np.random.default_rng(seed)
        super().__init__(num_items, dim, max_len, rng)
        self.feature_gate = Linear(dim, dim, rng=rng)
        self.instance_gate = Parameter(xavier_uniform(rng, (dim, 1)))
        self.dropout = Dropout(dropout, rng=rng)

    def user_representation(self, padded: np.ndarray, lengths: np.ndarray) -> Tensor:
        x = self.item_embeddings(padded)  # (B, L, d)
        real = (padded != self.pad_id).astype(np.float32)[:, :, None]
        x = x * real  # zero out padding rows
        counts = np.maximum(real.sum(axis=1), 1.0)  # (B, 1)

        gated = x * self.feature_gate(x).sigmoid()  # feature-level gate
        weights = (gated @ self.instance_gate).sigmoid() * real
        instance = (gated * weights).sum(axis=1) / counts

        item_item = x.sum(axis=1) / counts  # raw aggregation term
        return self.dropout(instance + item_item)

    def sequence_output(self, padded: np.ndarray) -> Tensor:
        raise NotImplementedError("HGN is a pointwise model")
