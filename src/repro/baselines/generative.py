"""Shared machinery for the generative baselines (TIGER, P5-CID).

Both baselines speak a *private* token vocabulary containing only special
tokens and item-index tokens (no natural language — that is exactly the
paper's point about them: "only establishes collaborative semantics
between item IDs and is independent of language semantics").

Also implements P5-CID's collaborative indexing: recursive spectral
clustering of the item co-occurrence graph (Hua et al. 2023), yielding
tree-structured collaborative IDs.
"""

from __future__ import annotations

import numpy as np

from ..data import SequentialDataset
from ..quantization.indexing import ItemIndexSet
from ..quantization.trie import IndexTrie

__all__ = [
    "IndexTokenSpace",
    "build_cooccurrence_matrix",
    "collaborative_index_set",
    "spectral_cluster",
]

PAD_ID = 0
BOS_ID = 1
SEP_ID = 2
NUM_SPECIALS = 3


class IndexTokenSpace:
    """Maps an :class:`ItemIndexSet` into a compact token-id space.

    Token ids: ``0=pad, 1=bos, 2=sep``; level ``h`` code ``c`` maps to
    ``3 + sum(level_sizes[:h]) + c``.
    """

    def __init__(self, index_set: ItemIndexSet):
        if not index_set.is_unique():
            raise ValueError("index set must be conflict-free")
        self.index_set = index_set
        self.level_offsets = [NUM_SPECIALS]
        for size in index_set.level_sizes[:-1]:
            self.level_offsets.append(self.level_offsets[-1] + size)
        self.vocab_size = NUM_SPECIALS + sum(index_set.level_sizes)

    def item_tokens(self, item_id: int) -> tuple[int, ...]:
        codes = self.index_set.codes[item_id]
        return tuple(
            self.level_offsets[level] + int(code) for level, code in enumerate(codes)
        )

    def history_ids(self, history: list[int]) -> list[int]:
        ids: list[int] = []
        for item in history:
            ids.extend(self.item_tokens(item))
        return ids

    def build_trie(self) -> IndexTrie:
        return IndexTrie(
            {item: self.item_tokens(item) for item in range(self.index_set.num_items)}
        )


# ----------------------------------------------------------------------
def build_cooccurrence_matrix(dataset: SequentialDataset, window: int = 3) -> np.ndarray:
    """Symmetric item co-occurrence counts within a sliding window."""
    num_items = dataset.num_items
    matrix = np.zeros((num_items, num_items), dtype=np.float64)
    for seq in dataset.split.train_sequences:
        for i, item_a in enumerate(seq):
            for j in range(i + 1, min(i + 1 + window, len(seq))):
                item_b = seq[j]
                if item_a != item_b:
                    matrix[item_a, item_b] += 1.0
                    matrix[item_b, item_a] += 1.0
    return matrix


def spectral_cluster(
    adjacency: np.ndarray, num_clusters: int, rng: np.random.Generator
) -> np.ndarray:
    """Normalised spectral clustering into at most ``num_clusters`` groups."""
    n = adjacency.shape[0]
    k = min(num_clusters, n)
    if k <= 1:
        return np.zeros(n, dtype=np.int64)
    degree = adjacency.sum(axis=1)
    inv_sqrt = 1.0 / np.sqrt(np.maximum(degree, 1e-9))
    laplacian = np.eye(n) - (inv_sqrt[:, None] * adjacency * inv_sqrt[None, :])
    eigenvalues, eigenvectors = np.linalg.eigh(laplacian)
    embedding = eigenvectors[:, :k]
    norms = np.linalg.norm(embedding, axis=1, keepdims=True)
    embedding = embedding / np.maximum(norms, 1e-9)
    from ..quantization.codebook import kmeans, nearest_code

    centers = kmeans(embedding.astype(np.float32), k, rng, num_iters=25)
    return nearest_code(embedding.astype(np.float32), centers)


def collaborative_index_set(
    dataset: SequentialDataset, num_levels: int = 3, branch: int = 8, seed: int = 0
) -> ItemIndexSet:
    """P5-CID collaborative indexing by recursive spectral clustering.

    Levels ``0..num_levels-1`` come from recursively bisecting the
    co-occurrence graph into ``branch`` clusters; a final enumeration level
    disambiguates items inside each leaf cluster (as in the original
    collaborative-indexing scheme, leaf tokens are unique per item).
    """
    rng = np.random.default_rng(seed)
    adjacency = build_cooccurrence_matrix(dataset)
    num_items = dataset.num_items
    codes = np.zeros((num_items, num_levels + 1), dtype=np.int64)

    groups: list[np.ndarray] = [np.arange(num_items)]
    for level in range(num_levels):
        next_groups: list[np.ndarray] = []
        for group in groups:
            if len(group) <= 1:
                codes[group, level] = 0
                next_groups.append(group)
                continue
            sub = adjacency[np.ix_(group, group)]
            labels = spectral_cluster(sub, branch, rng)
            codes[group, level] = labels
            for cluster in np.unique(labels):
                next_groups.append(group[labels == cluster])
        groups = next_groups

    max_leaf = 0
    for group in groups:
        for rank, item in enumerate(group):
            codes[item, num_levels] = rank
        max_leaf = max(max_leaf, len(group))

    level_sizes = [branch] * num_levels + [max(max_leaf, 1)]
    return ItemIndexSet(codes, level_sizes)
