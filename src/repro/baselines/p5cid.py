"""P5-CID (Geng et al. 2022; Hua et al. 2023): generative recommendation
with collaborative indexing.

P5 casts recommendation as text-to-text generation; the CID variant builds
item identifiers by hierarchical spectral clustering of the co-occurrence
graph so that related items share prefixes.  Substitution note (DESIGN.md):
the original uses a pretrained T5-220M; offline we train a small
decoder-only transformer from scratch on the same token streams, which
preserves the defining property the paper contrasts with LC-Rec — the
identifiers carry *collaborative* structure but no language semantics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data import SequentialDataset
from ..data.batching import iterate_minibatches
from ..llm import LMConfig, TinyLlama
from ..tensor import Adam, clip_grad_norm
from ..tensor import functional as F
from ..utils.logging import get_logger
from .generative import BOS_ID, PAD_ID, SEP_ID, IndexTokenSpace, collaborative_index_set

__all__ = ["P5CID", "P5CIDConfig"]

logger = get_logger(__name__)

IGNORE = -100


@dataclass
class P5CIDConfig:
    dim: int = 64
    num_layers: int = 2
    num_heads: int = 2
    ffn_hidden: int = 128
    cluster_levels: int = 3
    branch: int = 8
    max_history: int = 10
    epochs: int = 30
    batch_size: int = 64
    lr: float = 1e-3
    clip_norm: float = 5.0
    beam_size: int = 20
    seed: int = 0


class P5CID:
    """Decoder-only generative recommender over collaborative IDs."""

    name = "P5-CID"

    def __init__(self, dataset: SequentialDataset, config: P5CIDConfig | None = None):
        self.config = config or P5CIDConfig()
        cfg = self.config
        self.index_set = collaborative_index_set(
            dataset, num_levels=cfg.cluster_levels, branch=cfg.branch, seed=cfg.seed
        )
        self.space = IndexTokenSpace(self.index_set)
        self.trie = self.space.build_trie()
        self.num_levels = self.index_set.num_levels
        max_seq = (cfg.max_history + 1) * self.num_levels + 4
        self.lm = TinyLlama(
            LMConfig(
                vocab_size=self.space.vocab_size,
                dim=cfg.dim,
                num_layers=cfg.num_layers,
                num_heads=cfg.num_heads,
                ffn_hidden=cfg.ffn_hidden,
                max_seq_len=max_seq,
                seed=cfg.seed,
            )
        )
        self._engine = None  # lazily built serving adapter (P5CIDEngine)

    # ------------------------------------------------------------------
    def _example(self, history: list[int], target: int | None) -> tuple[list[int], list[int]]:
        """(input ids, labels) — labels ignore everything but the target."""
        prompt = (
            [BOS_ID] + self.space.history_ids(list(history)[-self.config.max_history :]) + [SEP_ID]
        )
        if target is None:
            return prompt, []
        target_ids = list(self.space.item_tokens(target))
        input_ids = prompt + target_ids
        labels = [IGNORE] * len(prompt) + target_ids
        return input_ids, labels

    def fit(self, dataset: SequentialDataset) -> list[float]:
        cfg = self.config
        inputs, labels = [], []
        for seq in dataset.split.train_sequences:
            for t in range(1, len(seq)):
                ids, labs = self._example(seq[max(0, t - cfg.max_history) : t], seq[t])
                inputs.append(ids)
                labels.append(labs)
        if not inputs:
            raise ValueError("no training pairs")
        width = max(len(ids) for ids in inputs)
        input_matrix = np.full((len(inputs), width), PAD_ID, dtype=np.int64)
        label_matrix = np.full((len(inputs), width), IGNORE, dtype=np.int64)
        for row, (ids, labs) in enumerate(zip(inputs, labels)):
            input_matrix[row, : len(ids)] = ids
            label_matrix[row, : len(labs)] = labs

        rng = np.random.default_rng(cfg.seed)
        optimizer = Adam(self.lm.parameters(), lr=cfg.lr)
        losses = []
        self.lm.train()
        for epoch in range(cfg.epochs):
            epoch_loss, batches = 0.0, 0
            for batch_idx in iterate_minibatches(len(inputs), cfg.batch_size, rng=rng):
                optimizer.zero_grad()
                logits = self.lm(input_matrix[batch_idx, :-1])
                loss = F.cross_entropy(logits, label_matrix[batch_idx, 1:], ignore_index=IGNORE)
                loss.backward()
                clip_grad_norm(self.lm.parameters(), cfg.clip_norm)
                optimizer.step()
                epoch_loss += loss.item()
                batches += 1
            losses.append(epoch_loss / max(batches, 1))
            if (epoch + 1) % 10 == 0:
                logger.info("P5-CID epoch %d: loss=%.4f", epoch + 1, losses[-1])
        self.lm.eval()
        return losses

    # ------------------------------------------------------------------
    def recommend(self, history: list[int], top_k: int = 10) -> list[int]:
        return self.recommend_many([list(history)], top_k=top_k)[0]

    def recommend_many(self, histories: list[list[int]], top_k: int = 10) -> list[list[int]]:
        """Trie-constrained beam search for a batch of users.

        All prompts run through the serving stack's
        :class:`repro.serving.P5CIDEngine` in one decode (one
        ``model.forward`` per trie level for the whole batch) instead of a
        per-request loop.  Rankings that come up short of ``top_k`` unique
        items — a narrow collaborative-trie level can starve the beam —
        are re-decoded once with the beam widened to the full catalog and
        backfilled deterministically, so callers always get ``top_k`` ids
        (catalog permitting).
        """
        # Lazy import: the serving package depends on repro.llm, not the
        # other way around; baselines must stay importable without it.
        from ..serving import P5CIDEngine

        if self._engine is None:
            self._engine = P5CIDEngine(self)
        return self._engine.recommend_many(histories, top_k=top_k)
