"""Shared interface for the traditional sequential-recommendation baselines.

All ID-based baselines embed items in a table with one extra padding row
(``pad_id == num_items``), produce a user representation from the padded
history, and score items with the tied item-embedding matrix.  They differ
in the sequence encoder and in the training mode:

* ``"causal"`` — next-item loss at every position (SASRec-style);
* ``"pointwise"`` — one (history -> target) pair per training window;
* ``"masked"`` — cloze-style masked-item prediction (BERT4Rec-style).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..data.batching import pad_sequences
from ..tensor import Embedding, Module, Tensor, no_grad

__all__ = ["SequentialRecommender"]


class SequentialRecommender(Module):
    """Base class; subclasses implement :meth:`sequence_output`."""

    name = "base"
    training_mode = "causal"

    def __init__(
        self,
        num_items: int,
        dim: int,
        max_len: int,
        rng: np.random.Generator,
        extra_rows: int = 1,
    ):
        super().__init__()
        if num_items < 1:
            raise ValueError("num_items must be positive")
        self.num_items = num_items
        self.dim = dim
        self.max_len = max_len
        # Row num_items is padding; further rows (e.g. a mask token) follow.
        self.item_embeddings = Embedding(num_items + extra_rows, dim, rng=rng)

    # ------------------------------------------------------------------
    @property
    def pad_id(self) -> int:
        return self.num_items

    def sequence_output(self, padded: np.ndarray) -> Tensor:
        """Per-position representations ``(B, T, dim)``."""
        raise NotImplementedError

    def user_representation(self, padded: np.ndarray, lengths: np.ndarray) -> Tensor:
        """Representation used for scoring: the last real position."""
        output = self.sequence_output(padded)
        rows = np.arange(padded.shape[0])
        return output[rows, lengths - 1]

    def item_logits(self, representation: Tensor) -> Tensor:
        """Tied-weight scores over the real items (padding row excluded)."""
        weights = self.item_embeddings.weight[: self.num_items]
        return representation @ weights.transpose(1, 0)

    # ------------------------------------------------------------------
    def pad_histories(
        self, histories: Sequence[Sequence[int]]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Right-pad histories to ``max_len``; returns (batch, lengths)."""
        clipped = [list(h)[-self.max_len :] for h in histories]
        lengths = np.array([max(len(h), 1) for h in clipped], dtype=np.int64)
        padded = pad_sequences(clipped, pad_value=self.pad_id, max_len=self.max_len, align="right")
        return padded, lengths

    def score_all(self, histories: Sequence[Sequence[int]]) -> np.ndarray:
        """Scores over all items for each history ``(B, num_items)``."""
        self.eval()
        padded, lengths = self.pad_histories(histories)
        with no_grad():
            representation = self.user_representation(padded, lengths)
            logits = self.item_logits(representation)
        return logits.data

    def recommend(self, history: Sequence[int], top_k: int = 10) -> list[int]:
        """Ranked top-``top_k`` items for one user."""
        scores = self.score_all([history])[0]
        k = min(top_k, self.num_items)
        top = np.argpartition(-scores, kth=k - 1)[:k]
        return top[np.argsort(-scores[top], kind="stable")].tolist()
