"""FMLP-Rec (Zhou et al. 2022): all-MLP model with learnable filters.

The original applies a learnable complex filter in the frequency domain:
``y = IFFT(FFT(x) * W)``.  By the convolution theorem this equals a
*circular convolution* with the time-domain kernel ``w = IFFT(W)``; we
parameterise the kernel directly in the time domain, which is numerically
identical and keeps gradients inside the autodiff engine.  The filter
mixes all positions (it is not causal), so the model trains pointwise on
(history window -> next item) pairs, which cannot leak the target.
"""

from __future__ import annotations

import numpy as np

from ..tensor import Dropout, LayerNorm, Module, ModuleList, Parameter, Tensor
from .base import SequentialRecommender
from .layers import PointwiseFeedForward

__all__ = ["FMLP", "FilterLayer"]


class FilterLayer(Module):
    """Per-dimension learnable circular convolution over the time axis."""

    def __init__(self, seq_len: int, dim: int, rng: np.random.Generator):
        super().__init__()
        self.seq_len = seq_len
        # Near-identity init: the kernel starts as a delta at lag 0.
        kernel = rng.standard_normal((seq_len, dim)).astype(np.float32) * 0.02
        kernel[0] += 1.0
        self.kernel = Parameter(kernel)
        # circulant_index[t, s] = (t - s) mod L
        t = np.arange(seq_len)
        self._circulant_index = (t[:, None] - t[None, :]) % seq_len

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[1] != self.seq_len:
            raise ValueError(f"FilterLayer built for length {self.seq_len}, got {x.shape[1]}")
        # (T, S, d) circulant kernel; y[b,t,d] = sum_s x[b,s,d] k[(t-s)%L,d]
        circulant = self.kernel[self._circulant_index]
        mixed = x.reshape(x.shape[0], 1, self.seq_len, x.shape[2]) * circulant
        return mixed.sum(axis=2)


class FMLPBlock(Module):
    """Filter layer + FFN, each with residual connection and LayerNorm."""

    def __init__(self, seq_len: int, dim: int, dropout: float, rng: np.random.Generator):
        super().__init__()
        self.filter_layer = FilterLayer(seq_len, dim, rng)
        self.filter_norm = LayerNorm(dim)
        self.ffn = PointwiseFeedForward(dim, dim * 2, dropout, rng)
        self.ffn_norm = LayerNorm(dim)
        self.dropout = Dropout(dropout, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        x = self.filter_norm(x + self.dropout(self.filter_layer(x)))
        x = self.ffn_norm(x + self.dropout(self.ffn(x)))
        return x


class FMLP(SequentialRecommender):
    """Stack of filter blocks; mean over real positions as user state."""

    name = "FMLP-Rec"
    training_mode = "pointwise"

    def __init__(
        self,
        num_items: int,
        dim: int = 64,
        max_len: int = 20,
        num_layers: int = 2,
        dropout: float = 0.2,
        seed: int = 0,
    ):
        rng = np.random.default_rng(seed)
        super().__init__(num_items, dim, max_len, rng)
        self.blocks = ModuleList([FMLPBlock(max_len, dim, dropout, rng) for _ in range(num_layers)])
        self.input_norm = LayerNorm(dim)
        self.dropout = Dropout(dropout, rng=rng)

    def user_representation(self, padded: np.ndarray, lengths: np.ndarray) -> Tensor:
        x = self.dropout(self.input_norm(self.item_embeddings(padded)))
        real = (padded != self.pad_id).astype(np.float32)[:, :, None]
        x = x * real
        for block in self.blocks:
            x = block(x) * real
        counts = np.maximum(real.sum(axis=1), 1.0)
        return x.sum(axis=1) / counts

    def sequence_output(self, padded: np.ndarray) -> Tensor:
        raise NotImplementedError("FMLP-Rec trains pointwise here")
