"""Baseline recommenders (paper Sec. IV-A2) plus the shared trainer.

Traditional ID-based: Caser, HGN, GRU4Rec, BERT4Rec, SASRec, FMLP-Rec,
FDSA, S3-Rec.  Generative: P5-CID, TIGER.  Retrieval: DSSM (Fig. 3).
"""

from .base import SequentialRecommender
from .bert4rec import BERT4Rec
from .caser import Caser
from .dssm import DSSM, DSSMConfig
from .fdsa import FDSA
from .fmlp import FMLP, FilterLayer
from .generative import (
    IndexTokenSpace,
    build_cooccurrence_matrix,
    collaborative_index_set,
    spectral_cluster,
)
from .gru4rec import GRU4Rec
from .hgn import HGN
from .p5cid import P5CID, P5CIDConfig
from .s3rec import S3Rec, S3RecPretrainConfig
from .sasrec import SASRec
from .tiger import TIGER, TIGERConfig
from .trainer import BaselineTrainer, BaselineTrainerConfig
from .trivial import PopularityRecommender, RandomRecommender

__all__ = [
    "SequentialRecommender",
    "BaselineTrainer",
    "BaselineTrainerConfig",
    "Caser",
    "HGN",
    "GRU4Rec",
    "BERT4Rec",
    "SASRec",
    "FMLP",
    "FilterLayer",
    "FDSA",
    "S3Rec",
    "S3RecPretrainConfig",
    "P5CID",
    "P5CIDConfig",
    "TIGER",
    "TIGERConfig",
    "DSSM",
    "DSSMConfig",
    "IndexTokenSpace",
    "build_cooccurrence_matrix",
    "collaborative_index_set",
    "spectral_cluster",
    "PopularityRecommender",
    "RandomRecommender",
]
