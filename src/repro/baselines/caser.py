"""Caser (Tang & Wang 2018): convolutional sequence embedding.

Horizontal convolutions capture union-level sequential patterns over
windows of 2-4 recent items; the vertical convolution learns a weighted
aggregation over time.  Both are expressed with windowed slicing and
matmuls on the autodiff engine (no dedicated conv kernel needed at this
scale).
"""

from __future__ import annotations

import numpy as np

from ..tensor import Dropout, Linear, Parameter, Tensor, concat, stack
from ..tensor.init import xavier_uniform
from .base import SequentialRecommender

__all__ = ["Caser"]


class Caser(SequentialRecommender):
    """CNN over the embedded history window; pointwise training."""

    name = "Caser"
    training_mode = "pointwise"

    def __init__(
        self,
        num_items: int,
        dim: int = 64,
        max_len: int = 20,
        horizontal_filters: int = 8,
        filter_heights: tuple[int, ...] = (2, 3, 4),
        vertical_filters: int = 4,
        dropout: float = 0.2,
        seed: int = 0,
    ):
        rng = np.random.default_rng(seed)
        super().__init__(num_items, dim, max_len, rng)
        self.filter_heights = tuple(filter_heights)
        self.horizontal_filters = horizontal_filters
        self.vertical_filters = vertical_filters
        # One weight (height * dim, filters) matrix per filter height.
        self._h_weights = []
        for index, height in enumerate(self.filter_heights):
            weight = Parameter(xavier_uniform(rng, (height * dim, horizontal_filters)))
            setattr(self, f"h_weight_{index}", weight)
            self._h_weights.append(weight)
        # Vertical convolution: a (max_len, vertical_filters) mixing matrix.
        self.v_weight = Parameter(xavier_uniform(rng, (max_len, vertical_filters)))
        conv_out = len(self.filter_heights) * horizontal_filters + vertical_filters * dim
        self.fc = Linear(conv_out, dim, rng=rng)
        self.dropout = Dropout(dropout, rng=rng)

    def user_representation(self, padded: np.ndarray, lengths: np.ndarray) -> Tensor:
        del lengths  # Caser always consumes the fixed-size window.
        x = self.item_embeddings(padded)  # (B, L, d)
        batch, seq_len, dim = x.shape

        horizontal_outputs = []
        for height, weight in zip(self.filter_heights, self._h_weights):
            if height > seq_len:
                continue
            windows = stack(
                [
                    x[:, t : t + height, :].reshape(batch, height * dim)
                    for t in range(seq_len - height + 1)
                ],
                axis=1,
            )  # (B, W, height*d)
            activation = (windows @ weight).relu()  # (B, W, F)
            horizontal_outputs.append(activation.max(axis=1))

        # Vertical: mix over the time axis per embedding dimension.
        vertical = x.transpose(0, 2, 1) @ self.v_weight  # (B, d, Fv)
        vertical = vertical.reshape(batch, dim * self.vertical_filters)

        features = concat(horizontal_outputs + [vertical], axis=1)
        return self.fc(self.dropout(features)).relu()

    def sequence_output(self, padded: np.ndarray) -> Tensor:
        raise NotImplementedError("Caser is a pointwise model")
