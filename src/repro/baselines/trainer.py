"""Unified training loop for the ID-based baselines.

Supports the three training modes declared by each model:

* ``causal`` — the padded training sequence is both input (``seq[:-1]``)
  and shifted target (``seq[1:]``); loss at every non-pad position.
* ``pointwise`` — every position ``t >= 1`` of a training sequence yields
  a (window, target) pair; loss on the final representation only.
* ``masked`` — random positions are replaced by the model's mask token and
  predicted (cloze objective); the model must expose ``mask_id``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data import SequentialDataset
from ..data.batching import iterate_minibatches, pad_sequences
from ..tensor import Adam, clip_grad_norm
from ..tensor import functional as F
from ..utils.logging import get_logger
from .base import SequentialRecommender

__all__ = ["BaselineTrainerConfig", "BaselineTrainer"]

logger = get_logger(__name__)

IGNORE = -100


@dataclass
class BaselineTrainerConfig:
    epochs: int = 30
    batch_size: int = 64
    lr: float = 1e-3
    weight_decay: float = 0.0
    clip_norm: float = 5.0
    mask_prob: float = 0.3
    min_history: int = 1
    seed: int = 0
    log_every: int = 10


class BaselineTrainer:
    """Fits any :class:`SequentialRecommender` on a dataset's train split."""

    def __init__(self, config: BaselineTrainerConfig | None = None):
        self.config = config or BaselineTrainerConfig()

    # ------------------------------------------------------------------
    def fit(self, model: SequentialRecommender, dataset: SequentialDataset) -> list[float]:
        mode = model.training_mode
        if mode == "causal":
            return self._fit_causal(model, dataset)
        if mode == "pointwise":
            return self._fit_pointwise(model, dataset)
        if mode == "masked":
            return self._fit_masked(model, dataset)
        raise ValueError(f"unknown training mode {mode!r}")

    # ------------------------------------------------------------------
    def _optimizer(self, model):
        return Adam(model.parameters(), lr=self.config.lr)

    def _epoch_loop(self, model, num_examples, step_fn) -> list[float]:
        rng = np.random.default_rng(self.config.seed)
        optimizer = self._optimizer(model)
        losses = []
        model.train()
        for epoch in range(self.config.epochs):
            epoch_loss, batches = 0.0, 0
            for batch_idx in iterate_minibatches(num_examples, self.config.batch_size, rng=rng):
                optimizer.zero_grad()
                loss = step_fn(batch_idx, rng)
                loss.backward()
                clip_grad_norm(model.parameters(), self.config.clip_norm)
                optimizer.step()
                epoch_loss += loss.item()
                batches += 1
            losses.append(epoch_loss / max(batches, 1))
            if (epoch + 1) % self.config.log_every == 0:
                logger.info("%s epoch %d: loss=%.4f", model.name, epoch + 1, losses[-1])
        model.eval()
        return losses

    # ------------------------------------------------------------------
    def _fit_causal(self, model, dataset) -> list[float]:
        sequences = [s for s in dataset.split.train_sequences if len(s) >= 2]
        if not sequences:
            raise ValueError("no training sequences of length >= 2")
        padded = pad_sequences(
            sequences, pad_value=model.pad_id, max_len=model.max_len + 1, align="right"
        )
        inputs_all, targets_all = padded[:, :-1], padded[:, 1:]
        valid = targets_all != model.pad_id
        targets_all = np.where(valid, targets_all, IGNORE)

        def step(batch_idx, rng):
            inputs = inputs_all[batch_idx]
            targets = targets_all[batch_idx]
            output = model.sequence_output(inputs)
            logits = model.item_logits(output)
            return F.cross_entropy(logits, targets, ignore_index=IGNORE)

        return self._epoch_loop(model, len(sequences), step)

    def _fit_pointwise(self, model, dataset) -> list[float]:
        histories, targets = [], []
        for seq in dataset.split.train_sequences:
            for t in range(self.config.min_history, len(seq)):
                histories.append(seq[max(0, t - model.max_len) : t])
                targets.append(seq[t])
        if not histories:
            raise ValueError("no pointwise training pairs")
        padded = pad_sequences(
            histories, pad_value=model.pad_id, max_len=model.max_len, align="right"
        )
        lengths = np.array([len(h) for h in histories], dtype=np.int64)
        targets = np.array(targets, dtype=np.int64)

        def step(batch_idx, rng):
            representation = model.user_representation(padded[batch_idx], lengths[batch_idx])
            logits = model.item_logits(representation)
            return F.cross_entropy(logits, targets[batch_idx])

        return self._epoch_loop(model, len(histories), step)

    def _fit_masked(self, model, dataset) -> list[float]:
        if not hasattr(model, "mask_id"):
            raise TypeError(f"{model.name} lacks mask_id for masked training")
        sequences = [s for s in dataset.split.train_sequences if len(s) >= 2]
        padded = pad_sequences(
            sequences, pad_value=model.pad_id, max_len=model.max_len, align="right"
        )
        is_real = padded != model.pad_id

        def step(batch_idx, rng):
            batch = padded[batch_idx].copy()
            real = is_real[batch_idx]
            mask = (rng.random(batch.shape) < self.config.mask_prob) & real
            # Guarantee at least one masked position per row.
            for row in range(batch.shape[0]):
                if not mask[row].any():
                    choices = np.flatnonzero(real[row])
                    mask[row, rng.choice(choices)] = True
            targets = np.where(mask, batch, IGNORE)
            batch[mask] = model.mask_id
            output = model.sequence_output(batch)
            logits = model.item_logits(output)
            return F.cross_entropy(logits, targets, ignore_index=IGNORE)

        return self._epoch_loop(model, len(sequences), step)
