"""BERT4Rec (Sun et al. 2019): bidirectional encoder with cloze training."""

from __future__ import annotations


import numpy as np

from ..tensor import Dropout, Embedding, LayerNorm, ModuleList, Tensor
from .base import SequentialRecommender
from .layers import TransformerEncoderLayer

__all__ = ["BERT4Rec"]


class BERT4Rec(SequentialRecommender):
    """Bidirectional transformer trained with masked-item prediction.

    Inference appends the mask token to the history and scores items at
    that position (the standard BERT4Rec protocol).
    """

    name = "BERT4Rec"
    training_mode = "masked"

    def __init__(
        self,
        num_items: int,
        dim: int = 64,
        max_len: int = 20,
        num_layers: int = 2,
        num_heads: int = 2,
        dropout: float = 0.2,
        seed: int = 0,
    ):
        rng = np.random.default_rng(seed)
        # Two extra embedding rows: padding and the mask token.
        super().__init__(num_items, dim, max_len, rng, extra_rows=2)
        self.mask_id = num_items + 1
        self.position_embeddings = Embedding(max_len + 1, dim, rng=rng)
        self.layers = ModuleList(
            [
                TransformerEncoderLayer(dim, num_heads, dim * 2, dropout, rng)
                for _ in range(num_layers)
            ]
        )
        self.final_norm = LayerNorm(dim)
        self.dropout = Dropout(dropout, rng=rng)

    def sequence_output(self, padded: np.ndarray) -> Tensor:
        seq_len = padded.shape[1]
        positions = np.arange(seq_len)
        x = self.item_embeddings(padded) + self.position_embeddings(positions)
        x = self.dropout(x)
        # Bidirectional: only padding keys are masked out.
        pad_mask = (padded == self.pad_id)[:, None, None, :]
        for layer in self.layers:
            x = layer(x, attn_mask=pad_mask)
        return self.final_norm(x)

    def user_representation(self, padded: np.ndarray, lengths: np.ndarray) -> Tensor:
        """Representation of an appended mask token after the history."""
        batch, seq_len = padded.shape
        extended = np.full((batch, min(seq_len + 1, self.max_len + 1)), self.pad_id, dtype=np.int64)
        mask_positions = np.zeros(batch, dtype=np.int64)
        for row in range(batch):
            real = padded[row][padded[row] != self.pad_id]
            real = real[-(extended.shape[1] - 1) :]
            extended[row, : len(real)] = real
            extended[row, len(real)] = self.mask_id
            mask_positions[row] = len(real)
        output = self.sequence_output(extended)
        return output[np.arange(batch), mask_positions]
