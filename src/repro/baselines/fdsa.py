"""FDSA (Zhang et al. 2019): feature-level deeper self-attention.

Two parallel causal self-attention streams — one over item ids, one over
item *features* — whose final states are concatenated and projected.  The
paper's textual features are represented here by the catalog's category
and subcategory ids (the synthetic datasets' ground-truth content signal).
"""

from __future__ import annotations

import numpy as np

from ..tensor import (
    Dropout,
    Embedding,
    LayerNorm,
    Linear,
    ModuleList,
    Tensor,
    causal_mask,
    concat,
)
from .base import SequentialRecommender
from .layers import TransformerEncoderLayer

__all__ = ["FDSA"]


class FDSA(SequentialRecommender):
    """Item-stream + feature-stream self-attention with late fusion."""

    name = "FDSA"
    training_mode = "causal"

    def __init__(
        self,
        num_items: int,
        item_features: np.ndarray,
        num_features: int,
        dim: int = 64,
        max_len: int = 20,
        num_layers: int = 1,
        num_heads: int = 2,
        dropout: float = 0.2,
        seed: int = 0,
    ):
        rng = np.random.default_rng(seed)
        super().__init__(num_items, dim, max_len, rng)
        features = np.asarray(item_features, dtype=np.int64)
        if features.shape != (num_items,):
            raise ValueError("item_features must be one id per item")
        # Feature id num_features acts as the padding feature.
        self._features = np.concatenate([features, [num_features]])
        self.feature_embeddings = Embedding(num_features + 1, dim, rng=rng)
        self.position_embeddings = Embedding(max_len + 1, dim, rng=rng)
        self.item_layers = ModuleList(
            [
                TransformerEncoderLayer(dim, num_heads, dim * 2, dropout, rng)
                for _ in range(num_layers)
            ]
        )
        self.feature_layers = ModuleList(
            [
                TransformerEncoderLayer(dim, num_heads, dim * 2, dropout, rng)
                for _ in range(num_layers)
            ]
        )
        self.fusion = Linear(dim * 2, dim, rng=rng)
        self.final_norm = LayerNorm(dim)
        self.dropout = Dropout(dropout, rng=rng)

    def sequence_output(self, padded: np.ndarray) -> Tensor:
        seq_len = padded.shape[1]
        positions = np.arange(seq_len)
        mask = causal_mask(seq_len, seq_len)
        pos = self.position_embeddings(positions)

        item_stream = self.dropout(self.item_embeddings(padded) + pos)
        for layer in self.item_layers:
            item_stream = layer(item_stream, attn_mask=mask)

        feature_ids = self._features[padded]
        feat_stream = self.dropout(self.feature_embeddings(feature_ids) + pos)
        for layer in self.feature_layers:
            feat_stream = layer(feat_stream, attn_mask=mask)

        fused = self.fusion(concat([item_stream, feat_stream], axis=-1))
        return self.final_norm(fused)
