"""S3-Rec (Zhou et al. 2020): self-supervised pretraining for recommenders.

Two-stage training: a pretraining phase with mutual-information-style
objectives, followed by standard next-item fine-tuning of the same
transformer.  Of the paper's four pretext objectives we implement the two
that our synthetic data supports faithfully — masked item prediction (MIP)
and item-attribute prediction (AAP, with the catalog subcategory as the
attribute) — which is documented as a simplification in DESIGN.md.
During pretraining attention is bidirectional; fine-tuning is causal.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data import SequentialDataset
from ..data.batching import iterate_minibatches, pad_sequences
from ..tensor import (
    Adam,
    Dropout,
    Embedding,
    LayerNorm,
    Linear,
    ModuleList,
    Tensor,
    causal_mask,
    clip_grad_norm,
)
from ..tensor import functional as F
from .base import SequentialRecommender
from .layers import TransformerEncoderLayer

__all__ = ["S3Rec", "S3RecPretrainConfig"]

IGNORE = -100


@dataclass
class S3RecPretrainConfig:
    epochs: int = 10
    batch_size: int = 64
    lr: float = 1e-3
    mask_prob: float = 0.3
    attribute_weight: float = 0.5
    clip_norm: float = 5.0
    seed: int = 0


class S3Rec(SequentialRecommender):
    """SASRec-style backbone with MIP + AAP pretraining."""

    name = "S3-Rec"
    training_mode = "causal"

    def __init__(
        self,
        num_items: int,
        item_attributes: np.ndarray,
        num_attributes: int,
        dim: int = 64,
        max_len: int = 20,
        num_layers: int = 2,
        num_heads: int = 2,
        dropout: float = 0.2,
        seed: int = 0,
    ):
        rng = np.random.default_rng(seed)
        super().__init__(num_items, dim, max_len, rng, extra_rows=2)
        self.mask_id = num_items + 1
        attributes = np.asarray(item_attributes, dtype=np.int64)
        if attributes.shape != (num_items,):
            raise ValueError("item_attributes must be one id per item")
        self._attributes = np.concatenate([attributes, [num_attributes], [num_attributes]])
        self.num_attributes = num_attributes
        self.attribute_head = Linear(dim, num_attributes, rng=rng)
        self.position_embeddings = Embedding(max_len + 1, dim, rng=rng)
        self.layers = ModuleList(
            [
                TransformerEncoderLayer(dim, num_heads, dim * 2, dropout, rng)
                for _ in range(num_layers)
            ]
        )
        self.final_norm = LayerNorm(dim)
        self.dropout = Dropout(dropout, rng=rng)
        self._bidirectional = False

    # ------------------------------------------------------------------
    def sequence_output(self, padded: np.ndarray) -> Tensor:
        seq_len = padded.shape[1]
        positions = np.arange(seq_len)
        x = self.item_embeddings(padded) + self.position_embeddings(positions)
        x = self.dropout(x)
        if self._bidirectional:
            mask = (padded == self.pad_id)[:, None, None, :]
        else:
            mask = causal_mask(seq_len, seq_len)
        for layer in self.layers:
            x = layer(x, attn_mask=mask)
        return self.final_norm(x)

    # ------------------------------------------------------------------
    def pretrain(
        self, dataset: SequentialDataset, config: S3RecPretrainConfig | None = None
    ) -> list[float]:
        """Stage one: MIP + AAP objectives with bidirectional attention."""
        config = config or S3RecPretrainConfig()
        sequences = [s for s in dataset.split.train_sequences if len(s) >= 2]
        padded = pad_sequences(
            sequences, pad_value=self.pad_id, max_len=self.max_len, align="right"
        )
        is_real = padded != self.pad_id
        rng = np.random.default_rng(config.seed)
        optimizer = Adam(self.parameters(), lr=config.lr)
        losses = []
        self.train()
        self._bidirectional = True
        try:
            for _ in range(config.epochs):
                epoch_loss, batches = 0.0, 0
                for batch_idx in iterate_minibatches(len(sequences), config.batch_size, rng=rng):
                    batch = padded[batch_idx].copy()
                    real = is_real[batch_idx]
                    mask = (rng.random(batch.shape) < config.mask_prob) & real
                    for row in range(batch.shape[0]):
                        if not mask[row].any():
                            choices = np.flatnonzero(real[row])
                            mask[row, rng.choice(choices)] = True
                    item_targets = np.where(mask, batch, IGNORE)
                    attr_targets = np.where(mask, self._attributes[batch], IGNORE)
                    batch[mask] = self.mask_id

                    optimizer.zero_grad()
                    hidden = self.sequence_output(batch)
                    mip_loss = F.cross_entropy(
                        self.item_logits(hidden), item_targets, ignore_index=IGNORE
                    )
                    aap_loss = F.cross_entropy(
                        self.attribute_head(hidden), attr_targets, ignore_index=IGNORE
                    )
                    loss = mip_loss + aap_loss * config.attribute_weight
                    loss.backward()
                    clip_grad_norm(self.parameters(), config.clip_norm)
                    optimizer.step()
                    epoch_loss += loss.item()
                    batches += 1
                losses.append(epoch_loss / max(batches, 1))
        finally:
            self._bidirectional = False
        self.eval()
        return losses
