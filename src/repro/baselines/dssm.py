"""DSSM (Huang et al. 2013): two-tower text retrieval baseline (Fig. 3).

The paper uses DSSM with BERT-encoded queries and item titles as the
baseline for intention-based item prediction.  Offline substitution: the
towers are mean-pooled word embeddings followed by an MLP (a compact
sentence encoder), trained with in-batch softmax over cosine similarities.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.intentions import IntentionExample
from ..tensor import Adam, Embedding, MLP, Module, Tensor, clip_grad_norm, no_grad
from ..tensor import functional as F
from ..text import WordTokenizer
from ..utils.logging import get_logger

__all__ = ["DSSM", "DSSMConfig"]

logger = get_logger(__name__)


@dataclass
class DSSMConfig:
    dim: int = 64
    hidden: int = 96
    temperature: float = 0.07
    epochs: int = 30
    batch_size: int = 64
    lr: float = 1e-3
    clip_norm: float = 5.0
    max_tokens: int = 32
    seed: int = 0


class _TextTower(Module):
    """Mean-pooled word embeddings -> MLP -> L2-normalised vector."""

    def __init__(self, vocab_size: int, config: DSSMConfig, rng: np.random.Generator):
        super().__init__()
        self.embeddings = Embedding(vocab_size, config.dim, rng=rng)
        self.mlp = MLP([config.dim, config.hidden, config.dim], rng=rng)

    def forward(self, token_ids: np.ndarray, mask: np.ndarray) -> Tensor:
        vectors = self.embeddings(token_ids)
        pooled = (vectors * mask[:, :, None]).sum(axis=1)
        pooled = pooled * (1.0 / np.maximum(mask.sum(axis=1), 1.0))[:, None]
        projected = self.mlp(pooled)
        norm = (projected * projected).sum(axis=1, keepdims=True).sqrt()
        return projected / (norm + 1e-8)


class DSSM(Module):
    """Query tower + document (item title) tower with in-batch negatives."""

    name = "DSSM"

    def __init__(
        self,
        item_titles: list[str],
        config: DSSMConfig | None = None,
        extra_texts: list[str] | None = None,
    ):
        super().__init__()
        self.config = config or DSSMConfig()
        rng = np.random.default_rng(self.config.seed)
        vocab = WordTokenizer.build_vocab(item_titles + (extra_texts or []))
        self.tokenizer = WordTokenizer(vocab)
        self.item_titles = list(item_titles)
        self.query_tower = _TextTower(len(vocab), self.config, rng)
        self.doc_tower = _TextTower(len(vocab), self.config, rng)
        self._item_vectors: np.ndarray | None = None

    # ------------------------------------------------------------------
    def _encode_batch(self, texts: list[str]) -> tuple[np.ndarray, np.ndarray]:
        ids = [self.tokenizer.encode(t)[: self.config.max_tokens] for t in texts]
        width = max(max((len(i) for i in ids), default=1), 1)
        batch = np.full((len(ids), width), self.tokenizer.vocab.pad_id, dtype=np.int64)
        mask = np.zeros((len(ids), width), dtype=np.float32)
        for row, row_ids in enumerate(ids):
            batch[row, : len(row_ids)] = row_ids
            mask[row, : len(row_ids)] = 1.0
        return batch, mask

    def fit(self, examples: list[IntentionExample]) -> list[float]:
        """Train on (intention text, target item title) pairs."""
        if not examples:
            raise ValueError("no training examples")
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        optimizer = Adam(self.parameters(), lr=cfg.lr)
        losses = []
        self.train()
        queries = [e.text for e in examples]
        titles = [self.item_titles[e.item_id] for e in examples]
        for epoch in range(cfg.epochs):
            order = rng.permutation(len(examples))
            epoch_loss, batches = 0.0, 0
            for start in range(0, len(order), cfg.batch_size):
                chosen = order[start : start + cfg.batch_size]
                if len(chosen) < 2:
                    continue
                q_ids, q_mask = self._encode_batch([queries[i] for i in chosen])
                d_ids, d_mask = self._encode_batch([titles[i] for i in chosen])
                optimizer.zero_grad()
                q_vec = self.query_tower(q_ids, q_mask)
                d_vec = self.doc_tower(d_ids, d_mask)
                logits = (q_vec @ d_vec.transpose(1, 0)) * (1.0 / cfg.temperature)
                labels = np.arange(len(chosen))
                loss = F.cross_entropy(logits, labels)
                loss.backward()
                clip_grad_norm(self.parameters(), cfg.clip_norm)
                optimizer.step()
                epoch_loss += loss.item()
                batches += 1
            losses.append(epoch_loss / max(batches, 1))
            if (epoch + 1) % 10 == 0:
                logger.info("DSSM epoch %d: loss=%.4f", epoch + 1, losses[-1])
        self.eval()
        self._item_vectors = None
        return losses

    # ------------------------------------------------------------------
    def _ensure_item_vectors(self) -> np.ndarray:
        if self._item_vectors is None:
            with no_grad():
                ids, mask = self._encode_batch(self.item_titles)
                self._item_vectors = self.doc_tower(ids, mask).data
        return self._item_vectors

    def retrieve(self, query: str, top_k: int = 10) -> list[int]:
        """Ranked item ids for a query by cosine similarity of the towers."""
        items = self._ensure_item_vectors()
        with no_grad():
            ids, mask = self._encode_batch([query])
            query_vec = self.query_tower(ids, mask).data[0]
        scores = items @ query_vec
        k = min(top_k, len(scores))
        top = np.argpartition(-scores, kth=k - 1)[:k]
        return top[np.argsort(-scores[top], kind="stable")].tolist()
