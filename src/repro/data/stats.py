"""Dataset statistics in the format of the paper's Table II."""

from __future__ import annotations

from dataclasses import dataclass

from .datasets import SequentialDataset

__all__ = ["DatasetStatistics", "dataset_statistics", "format_table2_row"]


@dataclass(frozen=True)
class DatasetStatistics:
    """The five columns of Table II."""

    name: str
    num_users: int
    num_items: int
    num_interactions: int
    sparsity: float
    avg_length: float


def dataset_statistics(dataset: SequentialDataset) -> DatasetStatistics:
    """Compute #Users / #Items / #Interactions / Sparsity / Avg. len."""
    users = dataset.num_users
    items = dataset.num_items
    interactions = dataset.num_interactions
    sparsity = 1.0 - interactions / (users * items)
    avg_length = interactions / users
    return DatasetStatistics(
        name=dataset.name,
        num_users=users,
        num_items=items,
        num_interactions=interactions,
        sparsity=sparsity,
        avg_length=avg_length,
    )


def format_table2_row(stats: DatasetStatistics) -> str:
    """Render one Table II row as text."""
    return (
        f"{stats.name:<12} {stats.num_users:>8,} {stats.num_items:>8,} "
        f"{stats.num_interactions:>13,} {stats.sparsity:>8.2%} "
        f"{stats.avg_length:>8.2f}"
    )
