"""Interaction-log preprocessing: k-core filtering and leave-one-out splits.

Mirrors the paper's protocol (Sec. IV-A1/IV-A3): filter unpopular users and
items with fewer than five interactions, order each user's behaviour
chronologically, cap sequence length at 20, and evaluate leave-one-out
(most recent item = test, second most recent = validation).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass

from .interactions import Interaction

__all__ = [
    "k_core_filter",
    "build_user_sequences",
    "LeaveOneOutSplit",
    "leave_one_out_split",
    "reindex_log",
]


def k_core_filter(
    log: list[Interaction],
    min_user_interactions: int = 5,
    min_item_interactions: int = 5,
    max_rounds: int = 50,
) -> list[Interaction]:
    """Iteratively drop users/items with too few interactions (k-core)."""
    current = list(log)
    for _ in range(max_rounds):
        user_counts = Counter(x.user_id for x in current)
        item_counts = Counter(x.item_id for x in current)
        filtered = [
            x for x in current
            if user_counts[x.user_id] >= min_user_interactions
            and item_counts[x.item_id] >= min_item_interactions
        ]
        if len(filtered) == len(current):
            return filtered
        current = filtered
    return current


def reindex_log(log: list[Interaction]) -> tuple[list[Interaction], list[int], list[int]]:
    """Densely renumber users and items.

    Returns the reindexed log plus ``user_ids`` and ``item_ids`` lists that
    map new -> old ids (so the catalog can be subset to match).
    """
    user_ids = sorted({x.user_id for x in log})
    item_ids = sorted({x.item_id for x in log})
    user_map = {old: new for new, old in enumerate(user_ids)}
    item_map = {old: new for new, old in enumerate(item_ids)}
    reindexed = [
        Interaction(user_map[x.user_id], item_map[x.item_id], x.timestamp)
        for x in log
    ]
    return reindexed, user_ids, item_ids


def build_user_sequences(log: list[Interaction]) -> list[list[int]]:
    """Chronological item sequence per (dense) user id."""
    per_user: dict[int, list[Interaction]] = defaultdict(list)
    for interaction in log:
        per_user[interaction.user_id].append(interaction)
    num_users = max(per_user) + 1 if per_user else 0
    sequences = []
    for user in range(num_users):
        events = sorted(per_user[user], key=lambda x: x.timestamp)
        sequences.append([event.item_id for event in events])
    return sequences


@dataclass
class LeaveOneOutSplit:
    """Leave-one-out train/validation/test views of user sequences.

    Attributes
    ----------
    train_sequences:
        Per user: all interactions except the last two (for model fitting).
    valid_histories / valid_targets:
        History is the sequence up to (not including) the second-most-recent
        item, truncated to ``max_len``; target is that item.
    test_histories / test_targets:
        History excludes only the most recent item; target is that item.
    """

    train_sequences: list[list[int]]
    valid_histories: list[list[int]]
    valid_targets: list[int]
    test_histories: list[list[int]]
    test_targets: list[int]
    max_len: int

    @property
    def num_users(self) -> int:
        return len(self.train_sequences)


def leave_one_out_split(sequences: list[list[int]], max_len: int = 20) -> LeaveOneOutSplit:
    """Apply the paper's leave-one-out protocol to user sequences.

    Sequences shorter than 3 cannot produce train + valid + test entries
    and are rejected (the 5-core filter guarantees length >= 5 in practice).
    """
    train_sequences: list[list[int]] = []
    valid_histories: list[list[int]] = []
    valid_targets: list[int] = []
    test_histories: list[list[int]] = []
    test_targets: list[int] = []
    for seq in sequences:
        if len(seq) < 3:
            raise ValueError("leave-one-out requires sequences of length >= 3")
        train_sequences.append(seq[:-2][-max_len:])
        valid_histories.append(seq[:-2][-max_len:])
        valid_targets.append(seq[-2])
        test_histories.append(seq[:-1][-max_len:])
        test_targets.append(seq[-1])
    return LeaveOneOutSplit(
        train_sequences=train_sequences,
        valid_histories=valid_histories,
        valid_targets=valid_targets,
        test_histories=test_histories,
        test_targets=test_targets,
        max_len=max_len,
    )
