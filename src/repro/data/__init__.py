"""Synthetic datasets, preprocessing and batching."""

from .batching import iterate_minibatches, left_truncate, pad_sequences
from .catalog import CatalogConfig, Item, ItemCatalog, Lexicon, generate_catalog
from .datasets import (
    PRESETS,
    DatasetConfig,
    SequentialDataset,
    build_dataset,
    preset_config,
)
from .intentions import IntentionExample, IntentionGenerator, PreferenceExample
from .io import load_dataset, save_dataset
from .interactions import (
    BehaviorConfig,
    BehaviorModel,
    Interaction,
    simulate_interactions,
)
from .preprocess import (
    LeaveOneOutSplit,
    build_user_sequences,
    k_core_filter,
    leave_one_out_split,
    reindex_log,
)
from .stats import DatasetStatistics, dataset_statistics, format_table2_row

__all__ = [
    "Item",
    "ItemCatalog",
    "Lexicon",
    "CatalogConfig",
    "generate_catalog",
    "Interaction",
    "BehaviorConfig",
    "BehaviorModel",
    "simulate_interactions",
    "k_core_filter",
    "reindex_log",
    "build_user_sequences",
    "leave_one_out_split",
    "LeaveOneOutSplit",
    "DatasetConfig",
    "SequentialDataset",
    "build_dataset",
    "preset_config",
    "PRESETS",
    "IntentionGenerator",
    "IntentionExample",
    "PreferenceExample",
    "DatasetStatistics",
    "dataset_statistics",
    "format_table2_row",
    "pad_sequences",
    "left_truncate",
    "iterate_minibatches",
    "save_dataset",
    "load_dataset",
]
