"""Dataset assembly and the three Amazon-like presets.

``build_dataset`` wires catalog generation, behaviour simulation, 5-core
filtering and the leave-one-out split into one reproducible object.  The
presets ``instruments`` / ``arts`` / ``games`` are scaled-down analogues of
the paper's Table II datasets (roughly 1:50); ``tiny`` exists for tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..utils.rng import SeedSequenceFactory
from .catalog import CatalogConfig, ItemCatalog, generate_catalog
from .interactions import (
    BehaviorConfig,
    BehaviorModel,
    simulate_interactions,
)
from .preprocess import (
    LeaveOneOutSplit,
    build_user_sequences,
    k_core_filter,
    leave_one_out_split,
    reindex_log,
)

__all__ = ["DatasetConfig", "SequentialDataset", "build_dataset", "PRESETS", "preset_config"]


@dataclass
class DatasetConfig:
    """Full specification of one benchmark dataset."""

    name: str
    catalog: CatalogConfig = field(default_factory=CatalogConfig)
    behavior: BehaviorConfig = field(default_factory=BehaviorConfig)
    max_seq_len: int = 20
    min_interactions: int = 5
    seed: int = 2024


@dataclass
class SequentialDataset:
    """A fully preprocessed sequential-recommendation dataset.

    All ids are dense after 5-core filtering.  ``item_id_map`` maps dense
    ids back to the raw generated catalog for debugging.
    """

    name: str
    catalog: ItemCatalog
    sequences: list[list[int]]
    split: LeaveOneOutSplit
    behavior: BehaviorModel
    config: DatasetConfig
    user_id_map: list[int]
    item_id_map: list[int]

    @property
    def num_users(self) -> int:
        return len(self.sequences)

    @property
    def num_items(self) -> int:
        return len(self.catalog)

    @property
    def num_interactions(self) -> int:
        return sum(len(seq) for seq in self.sequences)


def build_dataset(config: DatasetConfig) -> SequentialDataset:
    """Generate, filter, reindex and split one dataset."""
    seeds = SeedSequenceFactory(config.seed)
    catalog = generate_catalog(config.catalog, seeds.rng("catalog"))
    log, behavior = simulate_interactions(catalog, config.behavior, seeds.rng("behavior"))
    filtered = k_core_filter(log, config.min_interactions, config.min_interactions)
    if not filtered:
        raise ValueError(
            f"dataset {config.name!r}: k-core filter removed everything; "
            "increase density or lower min_interactions"
        )
    dense_log, user_ids, item_ids = reindex_log(filtered)
    dense_catalog = catalog.subset(item_ids)
    sequences = build_user_sequences(dense_log)
    split = leave_one_out_split(sequences, max_len=config.max_seq_len)
    # Reindex the latent behaviour state to dense user/item ids so intention
    # generation can keep using it.
    behavior.user_preferences = behavior.user_preferences[user_ids]
    return SequentialDataset(
        name=config.name,
        catalog=dense_catalog,
        sequences=sequences,
        split=split,
        behavior=behavior,
        config=config,
        user_id_map=user_ids,
        item_id_map=item_ids,
    )


def _preset(name: str, **kwargs) -> DatasetConfig:
    catalog_kwargs = kwargs.pop("catalog", {})
    behavior_kwargs = kwargs.pop("behavior", {})
    return DatasetConfig(
        name=name,
        catalog=CatalogConfig(**catalog_kwargs),
        behavior=BehaviorConfig(**behavior_kwargs),
        **kwargs,
    )


PRESETS: dict[str, DatasetConfig] = {
    # Scaled-down analogue of "Musical Instruments".  Item counts are kept
    # close to user counts so per-item interactions stay sparse (~10), the
    # regime in which the paper's comparison is meaningful: pure-ID models
    # starve while semantic indices generalise across similar items.
    "instruments": _preset(
        "instruments",
        catalog=dict(num_items=460, num_categories=6, subcategories_per_category=3),
        behavior=dict(num_users=500, mean_length=8.3, complement_prob=0.10, user_noise=0.5),
        seed=10,
    ),
    # "Arts, Crafts and Sewing": more users/items, slightly longer sequences.
    "arts": _preset(
        "arts",
        catalog=dict(num_items=800, num_categories=8, subcategories_per_category=4),
        behavior=dict(num_users=900, mean_length=8.7, complement_prob=0.12, user_noise=0.5),
        seed=11,
    ),
    # "Video Games": strongest complement structure (console <-> game).
    "games": _preset(
        "games",
        catalog=dict(num_items=850, num_categories=8, subcategories_per_category=4),
        behavior=dict(
            num_users=1000,
            mean_length=9.0,
            complement_prob=0.2,
            stay_subcategory_prob=0.4,
            user_noise=0.5,
        ),
        seed=12,
    ),
    # Minimal dataset for unit tests.
    "tiny": _preset(
        "tiny",
        catalog=dict(
            num_items=40,
            num_categories=4,
            subcategories_per_category=2,
            category_pool_size=8,
            subcategory_pool_size=5,
            num_brands=6,
        ),
        behavior=dict(num_users=80, mean_length=7.0),
        seed=13,
    ),
}


def preset_config(name: str, seed: int | None = None, scale: float = 1.0) -> DatasetConfig:
    """Return a (copied) preset config, optionally reseeded or rescaled.

    ``scale`` multiplies user and item counts, allowing benchmarks to trade
    fidelity for runtime without touching preset definitions.
    """
    if name not in PRESETS:
        raise KeyError(f"unknown preset {name!r}; available: {sorted(PRESETS)}")
    base = PRESETS[name]
    catalog = replace(base.catalog)
    behavior = replace(base.behavior)
    if scale != 1.0:
        catalog.num_items = max(int(catalog.num_items * scale),
                                catalog.num_subcategories)
        behavior.num_users = max(int(behavior.num_users * scale), 20)
    config = DatasetConfig(
        name=base.name,
        catalog=catalog,
        behavior=behavior,
        max_seq_len=base.max_seq_len,
        min_interactions=base.min_interactions,
        seed=base.seed if seed is None else seed,
    )
    return config
