"""Padding and mini-batch helpers shared by every trainer."""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

__all__ = ["pad_sequences", "iterate_minibatches", "left_truncate"]


def pad_sequences(
    sequences: Sequence[Sequence[int]],
    pad_value: int = 0,
    max_len: int | None = None,
    align: str = "left",
) -> np.ndarray:
    """Pad integer sequences into a dense ``(batch, max_len)`` array.

    ``align='left'`` places each sequence at the *end* of the row (padding
    on the left), which keeps the most recent interaction adjacent to the
    prediction position — the convention for sequential recommenders.
    ``align='right'`` pads on the right (language-model convention).
    """
    if align not in ("left", "right"):
        raise ValueError("align must be 'left' or 'right'")
    if max_len is None:
        max_len = max((len(s) for s in sequences), default=0)
    batch = np.full((len(sequences), max_len), pad_value, dtype=np.int64)
    for row, seq in enumerate(sequences):
        trimmed = list(seq)[-max_len:] if align == "left" else list(seq)[:max_len]
        if not trimmed:
            continue
        if align == "left":
            batch[row, -len(trimmed):] = trimmed
        else:
            batch[row, :len(trimmed)] = trimmed
    return batch


def left_truncate(sequence: Sequence[int], max_len: int) -> list[int]:
    """Keep the most recent ``max_len`` entries."""
    return list(sequence)[-max_len:]


def iterate_minibatches(num_examples: int, batch_size: int,
                        rng: np.random.Generator | None = None,
                        shuffle: bool = True) -> Iterator[np.ndarray]:
    """Yield index arrays covering ``range(num_examples)`` in batches."""
    if batch_size < 1:
        raise ValueError("batch_size must be positive")
    order = np.arange(num_examples)
    if shuffle:
        if rng is None:
            raise ValueError("shuffle=True requires an rng")
        rng.shuffle(order)
    for start in range(0, num_examples, batch_size):
        yield order[start:start + batch_size]
