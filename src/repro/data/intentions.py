"""Simulated GPT-3.5 outputs: user intentions and preference summaries.

The paper uses GPT-3.5 to (a) extract a user's *intention* for a specific
interaction from its review text (Sec. III-C3b) and (b) infer a user's
explicit *preferences* from their history (Sec. III-C3c).  Neither reviews
nor GPT-3.5 are available offline, so this module produces the same
artifacts directly from the simulator's latent state:

* an **intention text** paraphrases the target item — it shares category /
  subcategory keywords with the item's description but is not a copy
  (keyword subsampling + noise words), like an LLM summary of a review;
* a **preference text** verbalises the user's dominant categories as seen
  in their actual history.

Both texts use only lexicon words, so the tiny LM's vocabulary covers them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .catalog import Item, ItemCatalog
from .datasets import SequentialDataset

__all__ = [
    "IntentionGenerator", "IntentionExample", "PreferenceExample", "intention_template_texts"
]

_INTENT_OPENERS = [
    "looking for {cat} with",
    "i want a {cat} that has",
    "need {cat} featuring",
    "searching for a {cat} offering",
    "a {cat} with",
]

_PREFERENCE_OPENERS = [
    "the user has recently been interested in {cat} items such as",
    "this user mostly enjoys {cat} products featuring",
    "the user prefers {cat} with",
]


def intention_template_texts() -> list[str]:
    """Opener prose with placeholders stripped (for vocabulary building)."""
    return [t.replace("{cat}", " ")
            for t in _INTENT_OPENERS + _PREFERENCE_OPENERS]


@dataclass(frozen=True)
class IntentionExample:
    """A (user, target item, intention text) triple."""

    user_id: int
    item_id: int
    text: str


@dataclass(frozen=True)
class PreferenceExample:
    """A (user, preference text) pair derived from the user's history."""

    user_id: int
    text: str


class IntentionGenerator:
    """Deterministic stand-in for the GPT-3.5 extraction pipeline."""

    def __init__(
        self,
        catalog: ItemCatalog,
        rng: np.random.Generator,
        keyword_count: tuple[int, int] = (3, 5),
        noise_words: int = 2,
    ):
        self.catalog = catalog
        self.rng = rng
        self.keyword_count = keyword_count
        self.noise_words = noise_words

    # ------------------------------------------------------------------
    def intention_for_item(
        self, item: Item, user_id: int = -1, rng: np.random.Generator | None = None
    ) -> IntentionExample:
        """Paraphrase ``item`` as a user search intention.

        ``rng`` overrides the generator's own stream (callers that need
        per-epoch determinism pass an epoch-seeded generator).
        """
        rng = rng if rng is not None else self.rng
        lexicon = self.catalog.lexicon
        cat_name = lexicon.category_names[item.category]
        sub_pool = lexicon.subcategory_words[item.subcategory]
        cat_pool = lexicon.category_words[item.category]

        low, high = self.keyword_count
        n_kw = int(rng.integers(low, high + 1))
        candidates = list(dict.fromkeys(list(item.keywords) + sub_pool + cat_pool))
        picks = list(rng.choice(candidates, size=min(n_kw, len(candidates)), replace=False))
        common = lexicon.common_words
        noise = [common[int(rng.integers(len(common)))] for _ in range(self.noise_words)]
        opener = _INTENT_OPENERS[int(rng.integers(len(_INTENT_OPENERS)))]
        text = opener.format(cat=cat_name) + " " + " ".join(picks + noise)
        return IntentionExample(user_id=user_id, item_id=item.item_id, text=text)

    def preference_for_history(
        self, user_id: int, history: list[int], rng: np.random.Generator | None = None
    ) -> PreferenceExample:
        """Summarise a user's dominant categories from their history."""
        rng = rng if rng is not None else self.rng
        if not history:
            raise ValueError("history must be non-empty")
        lexicon = self.catalog.lexicon
        categories = [self.catalog[i].category for i in history]
        values, counts = np.unique(categories, return_counts=True)
        dominant = int(values[np.argmax(counts)])
        cat_name = lexicon.category_names[dominant]
        # Keywords actually observed in the history for that category.
        observed: list[str] = []
        for item_id in history:
            item = self.catalog[item_id]
            if item.category == dominant:
                observed.extend(item.keywords)
        observed = list(dict.fromkeys(observed))[:5]
        if not observed:
            observed = list(lexicon.category_words[dominant][:3])
        opener = _PREFERENCE_OPENERS[
            int(rng.integers(len(_PREFERENCE_OPENERS)))
        ]
        text = opener.format(cat=cat_name) + " " + " ".join(observed)
        return PreferenceExample(user_id=user_id, text=text)

    # ------------------------------------------------------------------
    def test_intentions(self, dataset: SequentialDataset) -> list[IntentionExample]:
        """One intention per test user, targeting the held-out test item.

        This is the evaluation workload of Fig. 3 ("user intentions are used
        as the query and are generated ... based on review data" — here,
        based on the simulator's latent state).
        """
        examples = []
        for user_id, target in enumerate(dataset.split.test_targets):
            examples.append(
                self.intention_for_item(self.catalog[target], user_id=user_id)
            )
        return examples

    def training_intentions(self, dataset: SequentialDataset,
                            per_user: int = 1) -> list[IntentionExample]:
        """Intentions for *training* interactions only (never the test item)."""
        examples = []
        for user_id, seq in enumerate(dataset.split.train_sequences):
            if not seq:
                continue
            count = min(per_user, len(seq))
            picks = self.rng.choice(len(seq), size=count, replace=False)
            for position in picks:
                item = self.catalog[seq[int(position)]]
                examples.append(self.intention_for_item(item, user_id=user_id))
        return examples
