"""User-behaviour simulator producing chronological interaction logs.

The simulator generates the *collaborative* semantics of the benchmark:

* Each user has sparse preferences over a few categories.
* Sessions are Markovian: the next interaction usually stays in the same
  subcategory, sometimes moves within the category, and sometimes jumps to
  a fixed **complement subcategory** (think console -> game).  Complement
  transitions are the collaborative signal that is *invisible to text
  similarity* — this is what Table V's "collaborative negatives" probe.
* Item choice within a subcategory mixes Zipf popularity with user noise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .catalog import ItemCatalog

__all__ = ["Interaction", "BehaviorConfig", "BehaviorModel", "simulate_interactions"]


@dataclass(frozen=True)
class Interaction:
    """One user-item event (timestamps are per-user sequence positions)."""

    user_id: int
    item_id: int
    timestamp: int


@dataclass
class BehaviorConfig:
    """Parameters of the behaviour simulator."""

    num_users: int = 500
    min_length: int = 5
    mean_length: float = 9.0
    max_length: int = 40
    preferred_categories: int = 2
    stay_subcategory_prob: float = 0.45
    stay_category_prob: float = 0.30
    complement_prob: float = 0.15
    popularity_exponent: float = 1.0
    user_noise: float = 0.35

    def validate(self) -> None:
        if self.num_users < 1:
            raise ValueError("num_users must be positive")
        if self.min_length < 2:
            raise ValueError("min_length must be at least 2")
        total = self.stay_subcategory_prob + self.stay_category_prob + self.complement_prob
        if total > 1.0:
            raise ValueError("transition probabilities exceed 1")


class BehaviorModel:
    """Holds the latent state of the simulation (used by intention texts).

    Attributes
    ----------
    complements:
        ``complements[s]`` is the complement subcategory of ``s``.
    user_preferences:
        ``(num_users, num_categories)`` preference distribution rows.
    popularity:
        Per-item Zipf weight.
    """

    def __init__(self, catalog: ItemCatalog, config: BehaviorConfig, rng: np.random.Generator):
        config.validate()
        self.catalog = catalog
        self.config = config
        num_items = len(catalog)
        num_subs = catalog.num_subcategories

        # Zipf popularity over a random permutation of items.
        ranks = rng.permutation(num_items) + 1
        self.popularity = (1.0 / ranks) ** config.popularity_exponent

        # Items grouped by subcategory (some may be empty).
        subs = catalog.subcategories()
        self.items_by_sub: list[np.ndarray] = [
            np.flatnonzero(subs == s) for s in range(num_subs)
        ]
        self.nonempty_subs = [s for s in range(num_subs) if len(self.items_by_sub[s]) > 0]

        # Fixed derangement-ish complement map between non-empty subcategories.
        shuffled = list(self.nonempty_subs)
        rng.shuffle(shuffled)
        rotated = shuffled[1:] + shuffled[:1]
        self.complements = {s: t for s, t in zip(shuffled, rotated)}

        # Sparse user preferences over categories.
        num_cats = catalog.num_categories
        self.user_preferences = np.zeros((config.num_users, num_cats))
        for user in range(config.num_users):
            k = min(config.preferred_categories, num_cats)
            chosen = rng.choice(num_cats, size=k, replace=False)
            weights = rng.dirichlet(np.ones(k) * 1.5)
            self.user_preferences[user, chosen] = weights

    # ------------------------------------------------------------------
    def _sample_item(
        self, subcategory: int, rng: np.random.Generator, exclude: int | None = None
    ) -> int:
        candidates = self.items_by_sub[subcategory]
        if exclude is not None and len(candidates) > 1:
            candidates = candidates[candidates != exclude]
        weights = self.popularity[candidates]
        noise = rng.random(len(candidates)) * self.config.user_noise
        weights = weights + noise
        weights = weights / weights.sum()
        return int(rng.choice(candidates, p=weights))

    def _sample_subcategory_for_category(self, category: int, rng: np.random.Generator) -> int:
        per = self.catalog.num_subcategories // self.catalog.num_categories
        options = [category * per + i for i in range(per)]
        options = [s for s in options if len(self.items_by_sub[s]) > 0]
        if not options:
            return int(rng.choice(self.nonempty_subs))
        return int(options[rng.integers(len(options))])

    def _start_subcategory(self, user: int, rng: np.random.Generator) -> int:
        prefs = self.user_preferences[user]
        category = int(rng.choice(len(prefs), p=prefs / prefs.sum()))
        return self._sample_subcategory_for_category(category, rng)

    def _next_subcategory(self, user: int, current_sub: int, rng: np.random.Generator) -> int:
        cfg = self.config
        roll = rng.random()
        if roll < cfg.stay_subcategory_prob:
            return current_sub
        roll -= cfg.stay_subcategory_prob
        if roll < cfg.complement_prob and current_sub in self.complements:
            return self.complements[current_sub]
        roll -= cfg.complement_prob
        if roll < cfg.stay_category_prob:
            per = self.catalog.num_subcategories // self.catalog.num_categories
            return self._sample_subcategory_for_category(current_sub // per, rng)
        return self._start_subcategory(user, rng)

    # ------------------------------------------------------------------
    def simulate_user(self, user: int, rng: np.random.Generator) -> list[int]:
        """One chronological item-id sequence for ``user``."""
        cfg = self.config
        extra = rng.poisson(max(cfg.mean_length - cfg.min_length, 0.1))
        length = int(np.clip(cfg.min_length + extra, cfg.min_length, cfg.max_length))
        sub = self._start_subcategory(user, rng)
        sequence: list[int] = []
        previous = None
        for _ in range(length):
            item = self._sample_item(sub, rng, exclude=previous)
            sequence.append(item)
            previous = item
            sub = self._next_subcategory(user, sub, rng)
        return sequence


def simulate_interactions(
    catalog: ItemCatalog, config: BehaviorConfig, rng: np.random.Generator
) -> tuple[list[Interaction], BehaviorModel]:
    """Simulate the full interaction log; returns it with the latent model."""
    model = BehaviorModel(catalog, config, rng)
    log: list[Interaction] = []
    for user in range(config.num_users):
        for t, item in enumerate(model.simulate_user(user, rng)):
            log.append(Interaction(user_id=user, item_id=item, timestamp=t))
    return log, model
