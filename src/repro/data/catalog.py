"""Synthetic item catalog with category-structured natural-ish text.

Substitutes the Amazon review datasets (paper Sec. IV-A1), which are not
available offline.  The generator controls exactly the two properties the
paper's phenomena rely on:

* **Language semantics** — items in the same (sub)category share title and
  description vocabulary, so text embeddings cluster by category and the
  RQ-VAE can discover category structure.
* **Item identity** — every item also carries enough idiosyncratic text
  (brand, model code, sampled keywords) that exact identification from
  text is possible, which the explicit index-language alignment task needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Item", "Lexicon", "ItemCatalog", "CatalogConfig", "generate_catalog"]

_ONSETS = [
    "b", "br", "c", "cr", "d", "dr", "f", "fl", "g", "gr", "h", "j", "k",
    "l", "m", "n", "p", "pl", "pr", "r", "s", "st", "t", "tr", "v", "w", "z",
]
_VOWELS = ["a", "e", "i", "o", "u", "ai", "ea", "io", "ou"]
_CODAS = ["", "", "", "n", "r", "s", "l", "x", "nd", "rk", "st"]

# Glue words shared across all categories; they make descriptions read like
# product copy and give the language model function-word statistics.
_COMMON_WORDS = (
    "the a an and with for of in to is are this that it from by on new great "
    "best quality premium classic design series edition set features feature "
    "offers perfect ideal includes made high durable original official deluxe "
    "ultimate pro plus standard limited complete collection style size color "
    "easy full comes use designed provides experience performance value top "
    "modern portable compact professional authentic genuine improved advanced"
).split()


def _make_word(rng: np.random.Generator, min_syllables: int = 2, max_syllables: int = 3) -> str:
    """Generate a pronounceable pseudo-word."""
    syllables = rng.integers(min_syllables, max_syllables + 1)
    parts = []
    for _ in range(syllables):
        parts.append(_ONSETS[rng.integers(len(_ONSETS))])
        parts.append(_VOWELS[rng.integers(len(_VOWELS))])
    parts.append(_CODAS[rng.integers(len(_CODAS))])
    return "".join(parts)


def _make_unique_words(rng: np.random.Generator, count: int, taken: set[str]) -> list[str]:
    words: list[str] = []
    while len(words) < count:
        word = _make_word(rng)
        if word not in taken:
            taken.add(word)
            words.append(word)
    return words


@dataclass(frozen=True)
class Item:
    """A catalog item (mirrors one Amazon product entry)."""

    item_id: int
    category: int
    subcategory: int
    brand: str
    title: str
    description: str
    keywords: tuple[str, ...]

    def text(self) -> str:
        """Title and description joined — the RQ-VAE embedding input."""
        return f"{self.title}. {self.description}"


@dataclass
class Lexicon:
    """The word pools the generator draws from."""

    common_words: list[str]
    brand_words: list[str]
    category_names: list[str]
    category_words: list[list[str]]
    subcategory_words: list[list[str]]

    def all_words(self) -> list[str]:
        words = list(self.common_words) + list(self.brand_words)
        words += list(self.category_names)
        for pool in self.category_words:
            words += pool
        for pool in self.subcategory_words:
            words += pool
        return words


@dataclass
class CatalogConfig:
    """Parameters of the synthetic catalog."""

    num_items: int = 200
    num_categories: int = 6
    subcategories_per_category: int = 3
    category_pool_size: int = 12
    subcategory_pool_size: int = 8
    num_brands: int = 18
    title_keywords: tuple[int, int] = (2, 4)
    description_words: tuple[int, int] = (14, 24)

    @property
    def num_subcategories(self) -> int:
        return self.num_categories * self.subcategories_per_category

    def validate(self) -> None:
        if self.num_items < self.num_subcategories:
            raise ValueError("need at least one item per subcategory")
        if self.num_categories < 1 or self.subcategories_per_category < 1:
            raise ValueError("category counts must be positive")


@dataclass
class ItemCatalog:
    """All items plus the lexicon they were generated from."""

    items: list[Item]
    num_categories: int
    num_subcategories: int
    lexicon: Lexicon
    config: CatalogConfig = field(repr=False, default=None)

    def __len__(self) -> int:
        return len(self.items)

    def __getitem__(self, item_id: int) -> Item:
        return self.items[item_id]

    def __iter__(self):
        return iter(self.items)

    def texts(self) -> list[str]:
        """One text per item (title + description), id-ordered."""
        return [item.text() for item in self.items]

    def categories(self) -> np.ndarray:
        return np.array([item.category for item in self.items])

    def subcategories(self) -> np.ndarray:
        return np.array([item.subcategory for item in self.items])

    def subset(self, item_ids: list[int]) -> "ItemCatalog":
        """Reindexed catalog containing only ``item_ids`` (dense new ids)."""
        new_items = []
        for new_id, old_id in enumerate(item_ids):
            old = self.items[old_id]
            new_items.append(Item(
                item_id=new_id,
                category=old.category,
                subcategory=old.subcategory,
                brand=old.brand,
                title=old.title,
                description=old.description,
                keywords=old.keywords,
            ))
        return ItemCatalog(
            items=new_items,
            num_categories=self.num_categories,
            num_subcategories=self.num_subcategories,
            lexicon=self.lexicon,
            config=self.config,
        )


def _build_lexicon(config: CatalogConfig, rng: np.random.Generator) -> Lexicon:
    taken: set[str] = set(_COMMON_WORDS)
    brands = _make_unique_words(rng, config.num_brands, taken)
    category_names = _make_unique_words(rng, config.num_categories, taken)
    category_words = [
        _make_unique_words(rng, config.category_pool_size, taken)
        for _ in range(config.num_categories)
    ]
    subcategory_words = [
        _make_unique_words(rng, config.subcategory_pool_size, taken)
        for _ in range(config.num_subcategories)
    ]
    return Lexicon(
        common_words=list(_COMMON_WORDS),
        brand_words=brands,
        category_names=category_names,
        category_words=category_words,
        subcategory_words=subcategory_words,
    )


def _compose_title(
    item_cat: int,
    item_sub: int,
    brand: str,
    lexicon: Lexicon,
    config: CatalogConfig,
    rng: np.random.Generator,
) -> tuple[str, list[str]]:
    low, high = config.title_keywords
    n_keywords = int(rng.integers(low, high + 1))
    cat_pool = lexicon.category_words[item_cat]
    sub_pool = lexicon.subcategory_words[item_sub]
    keywords = [cat_pool[rng.integers(len(cat_pool))]]
    while len(keywords) < n_keywords:
        pool = sub_pool if rng.random() < 0.6 else cat_pool
        word = pool[rng.integers(len(pool))]
        if word not in keywords:
            keywords.append(word)
    model_code = f"{lexicon.category_names[item_cat]} {rng.integers(100, 999)}"
    title = f"{brand} {' '.join(keywords)} {model_code}"
    return title.strip(), keywords


def _compose_description(
    item_cat: int,
    item_sub: int,
    keywords: list[str],
    lexicon: Lexicon,
    config: CatalogConfig,
    rng: np.random.Generator,
) -> str:
    low, high = config.description_words
    length = int(rng.integers(low, high + 1))
    cat_pool = lexicon.category_words[item_cat]
    sub_pool = lexicon.subcategory_words[item_sub]
    common = lexicon.common_words
    words: list[str] = list(keywords)
    while len(words) < length:
        roll = rng.random()
        if roll < 0.40:
            words.append(common[rng.integers(len(common))])
        elif roll < 0.75:
            words.append(cat_pool[rng.integers(len(cat_pool))])
        else:
            words.append(sub_pool[rng.integers(len(sub_pool))])
    rng.shuffle(words)
    # Insert the category name so coarse semantics are always present.
    words.insert(int(rng.integers(0, 3)), lexicon.category_names[item_cat])
    return " ".join(words)


def generate_catalog(config: CatalogConfig, rng: np.random.Generator) -> ItemCatalog:
    """Generate a seeded synthetic catalog according to ``config``."""
    config.validate()
    lexicon = _build_lexicon(config, rng)
    items: list[Item] = []
    for item_id in range(config.num_items):
        category = int(rng.integers(config.num_categories))
        subcategory = category * config.subcategories_per_category + int(
            rng.integers(config.subcategories_per_category)
        )
        brand = lexicon.brand_words[int(rng.integers(len(lexicon.brand_words)))]
        title, keywords = _compose_title(category, subcategory, brand, lexicon, config, rng)
        description = _compose_description(category, subcategory, keywords, lexicon, config, rng)
        items.append(Item(
            item_id=item_id,
            category=category,
            subcategory=subcategory,
            brand=brand,
            title=title,
            description=description,
            keywords=tuple(keywords),
        ))
    return ItemCatalog(
        items=items,
        num_categories=config.num_categories,
        num_subcategories=config.num_subcategories,
        lexicon=lexicon,
        config=config,
    )
