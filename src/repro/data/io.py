"""Dataset persistence: export/import as JSON.

Lets users snapshot a generated benchmark dataset (catalog + interaction
sequences + split) and reload it later — or hand-edit / substitute their
own data while keeping the library's preprocessing contract.
"""

from __future__ import annotations

import json
import pathlib

from .catalog import CatalogConfig, Item, ItemCatalog, Lexicon
from .datasets import DatasetConfig, SequentialDataset
from .interactions import BehaviorConfig
from .preprocess import leave_one_out_split

__all__ = ["save_dataset", "load_dataset"]

_FORMAT_VERSION = 1


def save_dataset(dataset: SequentialDataset, path: str | pathlib.Path) -> pathlib.Path:
    """Write the dataset (catalog, sequences, lexicon) as JSON."""
    path = pathlib.Path(path)
    payload = {
        "format_version": _FORMAT_VERSION,
        "name": dataset.name,
        "max_seq_len": dataset.split.max_len,
        "num_categories": dataset.catalog.num_categories,
        "num_subcategories": dataset.catalog.num_subcategories,
        "lexicon": {
            "common_words": dataset.catalog.lexicon.common_words,
            "brand_words": dataset.catalog.lexicon.brand_words,
            "category_names": dataset.catalog.lexicon.category_names,
            "category_words": dataset.catalog.lexicon.category_words,
            "subcategory_words": dataset.catalog.lexicon.subcategory_words,
        },
        "items": [
            {
                "item_id": item.item_id,
                "category": item.category,
                "subcategory": item.subcategory,
                "brand": item.brand,
                "title": item.title,
                "description": item.description,
                "keywords": list(item.keywords),
            }
            for item in dataset.catalog
        ],
        "sequences": dataset.sequences,
    }
    path.write_text(json.dumps(payload))
    return path


def load_dataset(path: str | pathlib.Path) -> SequentialDataset:
    """Reload a dataset written by :func:`save_dataset`.

    The behaviour model is not serialised (it exists only for simulation);
    the returned dataset supports everything except re-simulation —
    training, evaluation, indexing and intention generation all work.
    """
    payload = json.loads(pathlib.Path(path).read_text())
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported dataset format version: {version}")
    lexicon = Lexicon(**payload["lexicon"])
    items = [
        Item(
            item_id=entry["item_id"],
            category=entry["category"],
            subcategory=entry["subcategory"],
            brand=entry["brand"],
            title=entry["title"],
            description=entry["description"],
            keywords=tuple(entry["keywords"]),
        )
        for entry in payload["items"]
    ]
    catalog = ItemCatalog(
        items=items,
        num_categories=payload["num_categories"],
        num_subcategories=payload["num_subcategories"],
        lexicon=lexicon,
        config=None,
    )
    sequences = [list(seq) for seq in payload["sequences"]]
    split = leave_one_out_split(sequences, max_len=payload["max_seq_len"])
    config = DatasetConfig(
        name=payload["name"],
        catalog=CatalogConfig(),
        behavior=BehaviorConfig(),
        max_seq_len=payload["max_seq_len"],
    )
    return SequentialDataset(
        name=payload["name"],
        catalog=catalog,
        sequences=sequences,
        split=split,
        behavior=None,
        config=config,
        user_id_map=list(range(len(sequences))),
        item_id_map=[item.item_id for item in items],
    )
