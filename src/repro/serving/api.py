"""The one client API every serving mode speaks.

PRs 1–5 grew four ways to serve a recommendation — synchronous flushes,
the deadline-batched background loop, continuous batching, and now the
multi-worker cluster — and this module pins down the single surface they
all share, so callers are *mode-agnostic*:

* :class:`RecommendationClient` — ``submit(...) -> RecommendationHandle``
  plus the intention/instruction variants, ``recommend_many``,
  ``start``/``stop`` and context-manager lifecycle.  Implemented by
  :class:`repro.serving.RecommendationService` (one engine, one decode
  thread) and :class:`repro.serving.ServingCluster` (N workers behind an
  affinity router); swapping one for the other changes no caller code.
* :class:`RecommendationHandle` — the future-style result protocol
  (``request_id``, ``done``, ``result(timeout)``, ``degraded``).  The
  service's :class:`repro.serving.PendingRecommendation` satisfies it, as
  do :class:`RejectedRecommendation`, the pre-failed handle admission
  control returns instead of raising at the submit site, and
  :class:`DegradedRecommendation`, the pre-served handle the retrieval
  fast lane returns.
* :class:`Overloaded` — the typed rejection.  Under overload a client
  *sheds* work instead of queueing unboundedly: a full bounded queue or a
  missed per-request deadline fails the handle with an ``Overloaded``
  carrying a machine-readable ``reason`` (``"queue_full"`` /
  ``"deadline"``), so callers can tell "the system protected itself" from
  "the decode broke" and fall back accordingly.
* :class:`FallbackRecommender` — the duck type of the retrieval fast
  lane.  A client configured with a fallback *serves* would-be-shed
  requests from it instead of rejecting them: the handle resolves with
  the fallback's ranking and ``degraded`` is True, so callers always
  know when a result is retrieval-quality rather than LLM-quality —
  degradation is typed, never silent.
  :class:`repro.retrieval.RetrievalRecommender` is the shipped
  implementation; the protocol keeps ``repro.serving`` free of any
  import on it.

Thread safety: handles may be shared and awaited from any thread; the
client implementations document their own submit/lifecycle guarantees.
"""

from __future__ import annotations

import abc
from typing import Protocol, Sequence, runtime_checkable

__all__ = [
    "DegradedRecommendation",
    "FallbackRecommender",
    "Overloaded",
    "RecommendationHandle",
    "RejectedRecommendation",
    "RecommendationClient",
]


@runtime_checkable
class FallbackRecommender(Protocol):
    """What the serving layer needs from a retrieval fast lane.

    Any object answering ``recommend(history, top_k) -> list[int]``
    cheaply (no model forward — it runs inline on submit and shed paths)
    and from any thread (concurrent reads, no mutation) qualifies.
    """

    def recommend(self, history: Sequence[int], top_k: int = 10) -> list[int]: ...


class Overloaded(RuntimeError):
    """Typed admission-control rejection: the request was shed, not failed.

    ``reason`` says which protection fired:

    * ``"queue_full"`` — every admissible queue was at its depth bound at
      submit time; nothing was enqueued.
    * ``"deadline"`` — the request's shed deadline passed while it was
      still queued; it was dropped when its decode would have started.

    Shedding is graceful degradation, not an error in the model: the
    caller should retry later, lower its offered load, or serve a cheap
    fallback.  The request was *not* decoded.
    """

    def __init__(self, message: str, reason: str = "queue_full"):
        super().__init__(message)
        self.reason = reason


@runtime_checkable
class RecommendationHandle(Protocol):
    """Future-style result of one submitted request, mode-agnostic.

    ``result`` blocks until the request is served (up to ``timeout``
    seconds, raising ``TimeoutError`` on expiry), returning the ranked
    item ids or raising the request's failure — an :class:`Overloaded`
    if admission control shed it, the decode's exception if its batch
    broke.  Exactly one outcome is ever delivered per handle.

    ``degraded`` is True when the result came from the retrieval
    fallback lane instead of the LLM decode (load shedding or cold
    start); it never flips after the handle resolves.  Degraded results
    are always flagged — a caller can rely on ``degraded`` being False
    to mean "this ranking came out of the constrained decoder".
    """

    @property
    def request_id(self) -> int: ...

    @property
    def done(self) -> bool: ...

    @property
    def degraded(self) -> bool: ...

    def result(self, timeout: float | None = None) -> list[int]: ...


class RejectedRecommendation:
    """A handle born failed: admission control refused the request.

    Returned by ``submit`` when nothing was enqueued (e.g. every
    admissible worker queue was full), so the caller sees the same
    handle surface on the rejection path as on the happy path — no
    exception racing out of ``submit`` while other submits succeed.
    """

    def __init__(self, error: Overloaded, request_id: int = -1):
        self._error = error
        self._request_id = request_id

    @property
    def request_id(self) -> int:
        return self._request_id

    @property
    def done(self) -> bool:
        return True

    @property
    def degraded(self) -> bool:
        """A rejection serves nothing, degraded or otherwise."""
        return False

    def result(self, timeout: float | None = None) -> list[int]:
        raise self._error


class DegradedRecommendation:
    """A handle born served — by the retrieval fast lane, not the LLM.

    Returned when admission control would have shed the request but a
    :class:`FallbackRecommender` is configured: the front door answers
    from retrieval immediately instead of queueing (or rejecting), and
    the handle is already resolved.  ``degraded`` is True and ``reason``
    says why the fast lane fired (``"queue_full"`` — every admissible
    backlog was at its bound; ``"cold_start"`` — the history carries no
    signal the LLM lane could use), so degraded results can never
    masquerade as LLM-quality ones.
    """

    def __init__(self, items: Sequence[int], reason: str, request_id: int = -1):
        self._items = [int(item) for item in items]
        self.reason = reason
        self._request_id = request_id

    @property
    def request_id(self) -> int:
        return self._request_id

    @property
    def done(self) -> bool:
        return True

    @property
    def degraded(self) -> bool:
        return True

    def result(self, timeout: float | None = None) -> list[int]:
        return list(self._items)


class RecommendationClient(abc.ABC):
    """The mode-agnostic serving surface: submit requests, await handles.

    Subclasses provide the three ``submit*`` entry points and the
    lifecycle; everything here is shared convenience built on them.  The
    keyword-only ``session_key`` (routing affinity) and ``deadline_ms``
    (shed budget) are accepted by every implementation — a single-process
    service ignores ``session_key`` and a cluster routes on it, so code
    written against the client protocol runs unchanged on either.
    """

    @abc.abstractmethod
    def submit(
        self,
        history: Sequence[int],
        top_k: int = 10,
        template_id: int = 0,
        *,
        session_key: str | None = None,
        deadline_ms: float | None = None,
    ) -> RecommendationHandle:
        """Queue a next-item recommendation for an interaction history."""

    @abc.abstractmethod
    def submit_intention(
        self,
        intention_text: str,
        top_k: int = 10,
        *,
        session_key: str | None = None,
        deadline_ms: float | None = None,
    ) -> RecommendationHandle:
        """Queue an intention-query retrieval (engines that encode intentions)."""

    @abc.abstractmethod
    def submit_instruction(
        self,
        instruction: str,
        top_k: int = 10,
        *,
        session_key: str | None = None,
        deadline_ms: float | None = None,
    ) -> RecommendationHandle:
        """Queue an already-rendered instruction (engines that encode text)."""

    @abc.abstractmethod
    def flush(self) -> int:
        """Decode everything queued synchronously; returns requests served."""

    def ingest_item(
        self,
        *,
        text: str | None = None,
        embedding=None,
        popularity_count: int = 0,
    ):
        """Add one item to the live catalog behind this client.

        Implemented by clients whose engine serves from a
        :class:`repro.core.LiveCatalog`: the item's semantic indices are
        encoded online, a new catalog version is published atomically,
        and the next submitted request can be recommended the new item —
        in-flight decodes finish against their pinned version.  Returns
        the catalog's :class:`repro.core.IngestedItem`.  Clients without
        a live catalog raise ``NotImplementedError``.
        """
        raise NotImplementedError(
            f"{type(self).__name__} has no live catalog to ingest into"
        )

    @abc.abstractmethod
    def start(self) -> "RecommendationClient":
        """Launch background serving; returns self for chaining."""

    @abc.abstractmethod
    def stop(self, drain: bool = True) -> None:
        """Stop background serving, by default draining in-flight work."""

    @property
    @abc.abstractmethod
    def is_running(self) -> bool:
        """Whether background serving is active."""

    def __enter__(self) -> "RecommendationClient":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    def recommend_many(
        self, histories: Sequence[Sequence[int]], top_k: int = 10, template_id: int = 0
    ) -> list[list[int]]:
        """Submit + await a whole batch of histories, preserving order.

        Works in both lifecycles: without background serving this is
        submit-all + one ``flush()``; with it, the background loops do the
        flushing and ``result()`` blocks until delivery.
        """
        pending = [
            self.submit(history, top_k=top_k, template_id=template_id) for history in histories
        ]
        if not self.is_running:
            self.flush()
        return [handle.result() for handle in pending]
