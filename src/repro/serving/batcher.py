"""Micro-batching: group queued requests for one-forward-per-step decoding.

The engine (:func:`repro.llm.beam_search_items_batched`) left-pads every
batch to its longest prompt, so each pad token costs a full extra model
column for the whole beam fan-out.  The batcher therefore buckets requests
by prompt length before slicing them into batches: within a micro-batch the
length spread is bounded by ``bucket_width``, which bounds wasted padding
while still filling batches.
"""

from __future__ import annotations

from dataclasses import dataclass

from .queue import RecommendRequest

__all__ = ["MicroBatcherConfig", "MicroBatcher", "plan_batches", "padding_fraction"]


@dataclass
class MicroBatcherConfig:
    """Batching policy knobs."""

    max_batch_size: int = 16
    bucket_width: int = 16  # max (longest - shortest) prompt in one batch

    def validate(self) -> None:
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be positive")
        if self.bucket_width < 0:
            raise ValueError("bucket_width must be non-negative")


def plan_batches(
    requests: list[RecommendRequest], config: MicroBatcherConfig
) -> list[list[RecommendRequest]]:
    """Partition ``requests`` into micro-batches.

    Requests are sorted by (beam width, prompt length) — stable, so FIFO
    order breaks ties — then sliced greedily: a batch closes when it
    reaches ``max_batch_size``, when the next request would stretch the
    batch's length spread beyond ``bucket_width``, or when its beam width
    differs (a request's rankings must not depend on who it is co-batched
    with, and beam width changes rankings).  Every request lands in exactly
    one batch — nothing is dropped.
    """
    config.validate()
    if not requests:
        return []
    ordered = sorted(requests, key=lambda r: (r.beam_size, r.prompt_len))
    batches: list[list[RecommendRequest]] = []
    current: list[RecommendRequest] = []
    for request in ordered:
        if current and (
            len(current) >= config.max_batch_size
            or request.beam_size != current[0].beam_size
            or request.prompt_len - current[0].prompt_len > config.bucket_width
        ):
            batches.append(current)
            current = []
        current.append(request)
    batches.append(current)
    return batches


def padding_fraction(batch: list[RecommendRequest]) -> float:
    """Fraction of a padded batch's prompt tokens that would be padding."""
    if not batch:
        return 0.0
    longest = max(r.prompt_len for r in batch)
    total = longest * len(batch)
    real = sum(r.prompt_len for r in batch)
    return (total - real) / total


class MicroBatcher:
    """Stateless planner bound to one configuration."""

    def __init__(self, config: MicroBatcherConfig | None = None):
        self.config = config or MicroBatcherConfig()
        self.config.validate()

    def plan(self, requests: list[RecommendRequest]) -> list[list[RecommendRequest]]:
        return plan_batches(requests, self.config)
