"""Micro-batching: group queued requests for one-forward-per-step decoding.

The engine (:func:`repro.llm.beam_search_items_batched`) left-pads every
batch to its longest prompt, so each pad token costs a full extra model
column for the whole beam fan-out.  The batcher therefore buckets requests
by prompt length before slicing them into batches: within a micro-batch the
length spread is bounded by ``bucket_width``, which bounds wasted padding
while still filling batches.

With the cross-request prefix KV cache in play, batch *composition* also
matters for cache effectiveness: requests rendered from the same template
share a long prompt prefix, so co-batching them turns one cached template
head into hits for the whole batch.  ``prefix_locality`` folds the first
few prompt token ids into the sort key, which clusters same-template
requests without changing the batching invariants (beam widths never mix,
length spread stays bounded).

Thread safety: the planner is stateless — ``plan_batches`` is a pure
function of its inputs and a :class:`MicroBatcher` holds only immutable
configuration, so planning may run from any thread.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from .queue import RecommendRequest

__all__ = ["MicroBatcherConfig", "MicroBatcher", "plan_batches", "padding_fraction"]


@dataclass
class MicroBatcherConfig:
    """Batching policy knobs.

    ``max_batch_size`` doubles as the async flush trigger: the background
    loop flushes as soon as a full batch is waiting, without waiting out
    the deadline.
    """

    max_batch_size: int = 16
    bucket_width: int = 16  # max (longest - shortest) prompt in one batch
    prefix_locality: int = 12  # leading token ids folded into the sort key

    def validate(self) -> None:
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be positive")
        if self.bucket_width < 0:
            raise ValueError("bucket_width must be non-negative")
        if self.prefix_locality < 0:
            raise ValueError("prefix_locality must be non-negative")


def _prompt_len(request: RecommendRequest) -> int:
    return request.prompt_len


def plan_batches(
    requests: list[RecommendRequest],
    config: MicroBatcherConfig,
    effective_len: Callable[[RecommendRequest], int] | None = None,
) -> list[list[RecommendRequest]]:
    """Partition ``requests`` into micro-batches.

    Requests are sorted by (beam width, leading prompt tokens, effective
    length) — stable, so FIFO order breaks ties — then sliced greedily: a
    batch closes when it reaches ``max_batch_size``, when the next request
    would stretch the batch's length spread beyond ``bucket_width``, or
    when its beam width differs (a request's rankings must not depend on
    who it is co-batched with, and beam width changes rankings).  The
    leading-token component clusters requests that share a template prefix,
    which feeds the prefix KV cache whole batches of hits.  Every request
    lands in exactly one batch — nothing is dropped.

    ``effective_len`` (default: the prompt length) is the per-request cost
    model the length bucketing runs on.  The service passes the
    *post-prefix-cache* length — prompt length minus the cached prefix the
    decode will skip — because a padded batch's prompt forward is as wide
    as its longest un-cached suffix: co-batching a near-full cache hit with
    a miss would make the hit pay the miss's columns anyway.
    """
    config.validate()
    if not requests:
        return []
    locality = config.prefix_locality
    if effective_len is None:
        effective_len = _prompt_len

    def sort_key(request: RecommendRequest):
        return (request.beam_size, request.prompt_ids[:locality], effective_len(request))

    ordered = sorted(requests, key=sort_key)
    batches: list[list[RecommendRequest]] = []
    current: list[RecommendRequest] = []
    min_len = max_len = 0
    for request in ordered:
        length = effective_len(request)
        # Prefix-locality sorting means lengths are not globally ascending,
        # so the spread check tracks the open batch's min and max.
        if current and (
            len(current) >= config.max_batch_size
            or request.beam_size != current[0].beam_size
            or max(max_len, length) - min(min_len, length) > config.bucket_width
        ):
            batches.append(current)
            current = []
        if current:
            min_len = min(min_len, length)
            max_len = max(max_len, length)
        else:
            min_len = max_len = length
        current.append(request)
    batches.append(current)
    return batches


def padding_fraction(
    batch: list[RecommendRequest],
    effective_len: Callable[[RecommendRequest], int] | None = None,
) -> float:
    """Fraction of a padded batch's forwarded prompt columns that are padding.

    ``effective_len`` (default: the raw prompt length) is the per-request
    cost model — the service passes the *post-prefix-cache* length, because
    rows whose prefix is served from the cache only forward their unseen
    suffix: a batch of near-full cache hits pads (and costs) far less than
    its raw prompt lengths suggest, and the reported mean must reflect the
    decode cost actually paid.
    """
    if not batch:
        return 0.0
    if effective_len is None:
        effective_len = _prompt_len
    lengths = [effective_len(request) for request in batch]
    total = max(lengths) * len(batch)
    return (total - sum(lengths)) / total if total else 0.0


class MicroBatcher:
    """Stateless planner bound to one configuration."""

    def __init__(self, config: MicroBatcherConfig | None = None):
        self.config = config or MicroBatcherConfig()
        self.config.validate()

    def plan(
        self,
        requests: list[RecommendRequest],
        effective_len: Callable[[RecommendRequest], int] | None = None,
    ) -> list[list[RecommendRequest]]:
        return plan_batches(requests, self.config, effective_len)
