"""Session-affinity routing: which worker should serve this request?

The point of routing by session is the prefix K/V cache: a user's refresh
traffic re-sends a prompt whose long head (template plus the session's
history so far) some worker has already decoded and cached.  Routed to
*that* worker, the request forwards only its unseen suffix; routed
anywhere else it pays the full prompt again — per-worker caches are
deliberately private (no cross-thread locking on the decode hot path), so
placement is what makes them effective.

:class:`AffinityRouter` implements rendezvous (highest-random-weight)
hashing: every (key, worker) pair gets a stable pseudo-random weight, and
a key's affine worker is the argmax.  Two properties matter here:

* **Determinism** — the weight is a keyed BLAKE2b digest, independent of
  ``PYTHONHASHSEED`` and of process restarts, so a session keeps its
  worker across client reconnects and cluster restarts.
* **Stability under resizing** — when a worker is added, a key moves only
  if the *new* worker wins its argmax (an expected ``1/(N+1)`` fraction
  of keys); when a worker is removed, only that worker's keys move.
  Plain ``hash(key) % N`` would reshuffle almost every session on any
  resize, discarding every warm cache in the fleet at once.

:meth:`AffinityRouter.ranked` returns the full preference order (the
argmax first), which gives admission control a deterministic spill
sequence before it falls back to least-loaded placement.

Thread safety: the router is stateless and pure — every method may be
called concurrently from any thread.
"""

from __future__ import annotations

import hashlib

__all__ = ["AffinityRouter", "rendezvous_weight"]


def rendezvous_weight(session_key: str, worker: int) -> int:
    """The stable pseudo-random weight of one (key, worker) pair.

    A keyed 64-bit BLAKE2b digest: uniform enough that argmax placement
    balances keys across workers, deterministic across processes.  The
    NUL separator keeps distinct (key, worker) pairs from colliding via
    string concatenation.
    """
    payload = f"{session_key}\x00{worker}".encode("utf-8")
    return int.from_bytes(hashlib.blake2b(payload, digest_size=8).digest(), "big")


class AffinityRouter:
    """Rendezvous-hash placement of session keys onto ``num_workers`` workers."""

    def __init__(self, num_workers: int):
        if num_workers < 1:
            raise ValueError("num_workers must be positive")
        self.num_workers = num_workers

    def affine_worker(self, session_key: str) -> int:
        """The worker this key's traffic should land on (the HRW argmax)."""
        return max(
            range(self.num_workers), key=lambda worker: rendezvous_weight(session_key, worker)
        )

    def ranked(self, session_key: str) -> list[int]:
        """Every worker, best (affine) first: the deterministic spill order."""
        return sorted(
            range(self.num_workers),
            key=lambda worker: rendezvous_weight(session_key, worker),
            reverse=True,
        )
