"""Continuous batching: admit requests into an in-flight decode.

The deadline-batched loop (see ``docs/serving.md``) decodes in *closed*
batches: a request arriving one tick after a flush waits for the whole
in-flight batch to finish every trie level before its own decode even
starts, which caps throughput and inflates tail latency exactly where
interactive traffic hurts most.  Trie-constrained decoding, however, is
level-synchronous with a tiny fixed depth — the generative-retrieval
serving shape every :class:`repro.serving.GenerativeEngine` exposes — so
*trie-level boundaries* are natural admission points: between two levels
an engine's whole state is one opaque :class:`EngineState`, and

* newly queued requests are prefilled on the side
  (:meth:`GenerativeEngine.prefill`) and joined onto the live state
  (:meth:`GenerativeEngine.join`),
* finished rows are retired and delivered the moment they reach the final
  level (:meth:`GenerativeEngine.retire`), not at batch end.

Rankings are identical to decoding each request alone no matter when it is
admitted — joining must never change a live row's decode inputs, the
correctness invariant the parity suite (``tests/test_serving_continuous.py``)
pins down.  Only engines advertising ``supports_continuous`` may be
scheduled this way.

Thread safety: the scheduler is *not* thread-safe; the service drives it
from a single thread (the background loop, or the caller during drain)
under its decode lock.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..llm import BeamHypothesis
from .engine import EngineState, GenerativeEngine
from .queue import RecommendRequest

__all__ = ["ContinuousScheduler"]


class ContinuousScheduler:
    """Drives one in-flight decode, admitting and retiring at level boundaries.

    Parameters
    ----------
    engine:
        A :class:`repro.serving.GenerativeEngine` with
        ``supports_continuous`` set; the scheduler owns exactly one of its
        decode states at a time.
    max_width:
        Cap on the joined batch width (requests in flight at once); queued
        requests beyond it wait for retirements to free rows.
    """

    def __init__(self, engine: GenerativeEngine, *, max_width: int = 16):
        if max_width < 1:
            raise ValueError("max_width must be positive")
        if not engine.supports_continuous:
            raise ValueError(
                f"engine {engine.name!r} does not support continuous batching "
                "(supports_continuous is False)"
            )
        self.engine = engine
        self.max_width = max_width
        self._state: EngineState | None = None
        self.admissions = 0  # admit() calls that added at least one request
        self.joins = 0  # admissions that joined an already-live decode
        self.steps = 0  # engine.step calls

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def width(self) -> int:
        """Requests currently in flight."""
        return self._state.num_rows if self._state is not None else 0

    @property
    def free_width(self) -> int:
        """Rows the width cap still allows to be admitted."""
        return self.max_width - self.width

    @property
    def idle(self) -> bool:
        return self.width == 0

    @property
    def in_flight(self) -> list[RecommendRequest]:
        """Tags (requests) of every row currently being decoded."""
        return list(self._state.tags) if self._state is not None else []

    def compatible(self, request: RecommendRequest) -> bool:
        """Whether ``request`` may join the current decode.

        Delegates to the engine (:meth:`GenerativeEngine.can_join`), which
        owns the join constraints — e.g. the shared-beam-width rule of the
        trie-decoder engines.  An idle scheduler accepts anything.
        """
        if self._state is None:
            return True
        return self.engine.can_join(self._state, request)

    def admission_predicate(self) -> Callable[[RecommendRequest], bool]:
        """A fresh FIFO pop predicate for one admission round.

        With a live decode this is :meth:`compatible`.  Idle, it latches
        the first candidate's effective beam width and narrow candidate
        set and admits only matching followers: one admission is one
        engine prefill, which requires a uniform effective width and a
        single narrow set — a mixed queue must be split across admission
        rounds (FIFO prefix by prefix), not popped wholesale and failed
        by prefill's validation.
        """
        if self._state is not None:
            return self.compatible
        latched: list[tuple] = []

        def admit(request: RecommendRequest) -> bool:
            key = (self.engine.effective_beams(request.beam_size), request.narrow_items)
            if not latched:
                latched.append(key)
            return key == latched[0]

        return admit

    # ------------------------------------------------------------------
    # Admission and stepping
    # ------------------------------------------------------------------
    def admit(self, requests: Sequence[RecommendRequest]) -> None:
        """Prefill ``requests`` and join them onto the in-flight decode.

        All requests of one admission are prefilled as a single batch (one
        engine prefill) and must be join-compatible with the live decode;
        the caller gates candidates through :meth:`compatible` and
        ``free_width``.
        """
        requests = list(requests)
        if not requests:
            return
        if len(requests) > self.free_width:
            raise ValueError(f"admission of {len(requests)} exceeds free width {self.free_width}")
        incoming = self.engine.prefill(requests)
        self.admissions += 1
        if self._state is None:
            self._state = incoming
        else:
            self.engine.join(self._state, incoming)
            self.joins += 1

    def step(self) -> list[tuple[RecommendRequest, list[BeamHypothesis]]]:
        """Retire finished rows, advance one trie level, retire again.

        Returns ``(request, hypotheses)`` pairs for every request completed
        by this call.  Finished rows are delivered *before* the remaining
        rows' next level runs, so an early request never waits on later
        admissions.
        """
        delivered = self._retire_finished()
        if self._state is not None:
            self.engine.step(self._state)
            self.steps += 1
            delivered.extend(self._retire_finished())
        return delivered

    def _retire_finished(self) -> list[tuple[RecommendRequest, list[BeamHypothesis]]]:
        if self._state is None:
            return []
        rows = self._state.finished_rows()
        if not rows:
            return []
        tags = [self._state.tags[row] for row in rows]
        hypotheses = self.engine.retire(self._state, rows)
        if self._state.num_rows == 0:
            self._state = None
        return list(zip(tags, hypotheses))

    def abort(self) -> list[RecommendRequest]:
        """Drop the in-flight decode, returning its requests (to be failed)."""
        tags = self.in_flight
        self._state = None
        return tags
