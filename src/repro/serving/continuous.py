"""Continuous batching: admit requests into an in-flight decode.

The deadline-batched loop (see ``docs/serving.md``) decodes in *closed*
batches: a request arriving one tick after a flush waits for the whole
in-flight batch to finish every trie level before its own decode even
starts, which caps throughput and inflates tail latency exactly where
interactive traffic hurts most.  The trie-constrained decode, however, is
level-synchronous with a tiny fixed depth — the generative-retrieval
serving shape LC-Rec shares with TIGER — so *trie-level boundaries* are
natural admission points: between two levels the engine's whole state is
per-row beams plus K/V caches (:class:`repro.llm.DecodeState`), and

* newly queued requests are prefilled on the side (prefix-cache-seeded)
  and their rows joined onto the live batch axis
  (:func:`repro.llm.decode_join`),
* finished rows are retired and delivered the moment they reach the final
  level (:func:`repro.llm.decode_retire`), not at batch end.

Rankings are identical to decoding each request alone no matter when it is
admitted: joining only adds masked pad columns and batch-axis rows, never
changing any live row's attention inputs — the correctness invariant the
parity suite (``tests/test_serving_continuous.py``) pins down.

Thread safety: the scheduler is *not* thread-safe; the service drives it
from a single thread (the background loop, or the caller during drain)
under its decode lock.
"""

from __future__ import annotations

from typing import Sequence

from ..llm import (
    BeamHypothesis,
    DecodeState,
    decode_join,
    decode_prefill,
    decode_retire,
    decode_step,
    PrefixKVCache,
)
from ..llm.model import TinyLlama
from ..quantization.trie import IndexTrie
from .queue import RecommendRequest

__all__ = ["ContinuousScheduler"]


class ContinuousScheduler:
    """Drives one in-flight decode, admitting and retiring at level boundaries.

    Parameters
    ----------
    model, trie:
        The language model and index trie to decode against.
    max_width:
        Cap on the joined batch width (requests in flight at once); queued
        requests beyond it wait for retirements to free rows.
    pad_id:
        Pad token id for prefill left-padding.
    prefix_cache:
        Optional :class:`repro.llm.PrefixKVCache` shared with the rest of
        the service; admitted prompts seed from and store into it exactly
        as closed-batch decodes do.
    """

    def __init__(
        self,
        model: TinyLlama,
        trie: IndexTrie,
        *,
        max_width: int = 16,
        pad_id: int = 0,
        prefix_cache: PrefixKVCache | None = None,
    ):
        if max_width < 1:
            raise ValueError("max_width must be positive")
        self.model = model
        self.trie = trie
        self.max_width = max_width
        self.pad_id = pad_id
        self.prefix_cache = prefix_cache
        self._state: DecodeState | None = None
        self.admissions = 0  # admit() calls that added at least one request
        self.joins = 0  # admissions that joined an already-live decode
        self.steps = 0  # decode_step calls

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def width(self) -> int:
        """Requests currently in flight."""
        return self._state.num_rows if self._state is not None else 0

    @property
    def free_width(self) -> int:
        """Rows the width cap still allows to be admitted."""
        return self.max_width - self.width

    @property
    def idle(self) -> bool:
        return self.width == 0

    @property
    def in_flight(self) -> list[RecommendRequest]:
        """Tags (requests) of every row currently being decoded."""
        return list(self._state.tags) if self._state is not None else []

    def effective_beams(self, beam_size: int) -> int:
        """The beam width a request actually decodes with (engine clamp)."""
        return min(beam_size, self.trie.num_items, self.model.vocab_size)

    def compatible(self, request: RecommendRequest) -> bool:
        """Whether ``request`` may join the current decode.

        Joined rows must share one effective beam width — a request's
        rankings must never depend on who it is co-batched with, and beam
        width changes rankings.  Width-1 decodes never fan out (suffix
        tokens share the prompt cache region), so they cannot be joined
        mid-flight: such a request waits for the decode to drain instead.
        An idle scheduler accepts anything.
        """
        if self._state is None:
            return True
        width = self.effective_beams(request.beam_size)
        return width == self._state.num_beams and width > 1

    # ------------------------------------------------------------------
    # Admission and stepping
    # ------------------------------------------------------------------
    def admit(self, requests: Sequence[RecommendRequest]) -> None:
        """Prefill ``requests`` and join them onto the in-flight decode.

        All requests of one admission are prefilled as a single batch
        (shared left-padding, one forward) and must agree on effective
        beam width with each other and with the live decode; the caller
        gates candidates through :meth:`compatible` and ``free_width``.
        """
        requests = list(requests)
        if not requests:
            return
        if len(requests) > self.free_width:
            raise ValueError(f"admission of {len(requests)} exceeds free width {self.free_width}")
        widths = {self.effective_beams(r.beam_size) for r in requests}
        if len(widths) != 1:
            raise ValueError("co-admitted requests must share a beam width")
        incoming = decode_prefill(
            self.model,
            [r.prompt_ids for r in requests],
            self.trie,
            beam_size=requests[0].beam_size,
            pad_id=self.pad_id,
            prefix_cache=self.prefix_cache,
            tags=requests,
        )
        self.admissions += 1
        if self._state is None:
            self._state = incoming
        else:
            decode_join(self._state, incoming)
            self.joins += 1

    def step(self) -> list[tuple[RecommendRequest, list[BeamHypothesis]]]:
        """Retire finished rows, advance one trie level, retire again.

        Returns ``(request, hypotheses)`` pairs for every request completed
        by this call.  Finished rows are delivered *before* the remaining
        rows' next level runs, so an early request never waits on later
        admissions.
        """
        delivered = self._retire_finished()
        if self._state is not None:
            decode_step(self._state)
            self.steps += 1
            delivered.extend(self._retire_finished())
        return delivered

    def _retire_finished(self) -> list[tuple[RecommendRequest, list[BeamHypothesis]]]:
        if self._state is None:
            return []
        rows = self._state.finished_rows()
        if not rows:
            return []
        tags = [self._state.tags[row] for row in rows]
        hypotheses = decode_retire(self._state, rows)
        if self._state.num_rows == 0:
            self._state = None
        return list(zip(tags, hypotheses))

    def abort(self) -> list[RecommendRequest]:
        """Drop the in-flight decode, returning its requests (to be failed)."""
        tags = self.in_flight
        self._state = None
        return tags
