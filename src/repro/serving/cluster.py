"""Multi-worker sharded serving: N engine replicas behind an affinity router.

One :class:`repro.serving.RecommendationService` is one decode thread
driving one engine — a ceiling no amount of micro-batching lifts.  The
:class:`ServingCluster` scales *out*: it owns ``num_workers`` thread-based
workers, each wrapping its own ``RecommendationService`` over a private
engine replica (:meth:`repro.serving.GenerativeEngine.replicate` — shared
model weights, private prefix K/V cache, private gathered-head memo), and
fronts them with three policies:

* **Session-affinity routing** — requests carrying a ``session_key`` are
  placed by rendezvous hashing (:class:`repro.serving.AffinityRouter`),
  so a session's refresh traffic keeps landing on the worker that already
  holds its prompt K/V.  Keyless requests go to the least-loaded worker.
* **Admission control** — each worker's backlog (queued + in-decode) is
  bounded by ``max_backlog``.  A request whose affine worker is saturated
  *spills* to the least-loaded worker with room (trading cache warmth for
  immediate service); when every worker is saturated the request is shed
  at the front door with a typed :class:`repro.serving.Overloaded`
  instead of queueing unboundedly.
* **Graceful degradation** — per-request ``deadline_ms`` budgets flow
  through to the workers, which drop requests whose deadline expired
  while queued (again a typed ``Overloaded``), keeping served-request
  latency bounded past the saturation knee: under overload the cluster
  degrades by shedding a fraction of load, never by an unbounded p95
  cliff.  ``benchmarks/bench_cluster_serving.py`` records the curves.
  With a ``fallback`` (:class:`repro.serving.FallbackRecommender`, e.g.
  :class:`repro.retrieval.RetrievalRecommender`), would-be-shed history
  requests are *served* from the retrieval fast lane instead — handles
  resolve with ``degraded=True`` rather than failing — and empty
  histories short-circuit to the fallback at the front door
  (``reason="cold_start"``) without costing a decode slot.
  ``benchmarks/bench_hybrid_retrieval.py`` measures the fast lane.

The cluster speaks the same :class:`repro.serving.RecommendationClient`
surface as the single-process service — ``submit(...) -> handle`` /
``handle.result(timeout)`` — so callers are mode-agnostic, and a
one-worker cluster returns rankings bit-identical to a plain
``RecommendationService`` over the same engine (scheduling and placement
change cost, never math).

Thread safety: ``submit*`` may race from any number of threads (routing
reads worker backlogs without a global lock, so the backlog bound is
tight-but-approximate under heavy submit concurrency — admission may
transiently overshoot by the number of concurrently admitting threads);
``start``/``stop`` are idempotent and serialized per worker by each
service's lifecycle lock.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field
from typing import Callable, Sequence

from .api import (
    DegradedRecommendation,
    FallbackRecommender,
    Overloaded,
    RecommendationClient,
    RecommendationHandle,
    RejectedRecommendation,
)
from .batcher import MicroBatcherConfig
from .engine import GenerativeEngine
from .router import AffinityRouter
from .service import RecommendationService, ServingStats, refresh_retrieval_tier

__all__ = ["ClusterStats", "ServingCluster"]


@dataclass
class ClusterStats:
    """Routing and admission counters (per-worker decode stats live on the
    workers' own :class:`repro.serving.ServingStats`).

    ``affine`` counts keyed submits that landed on their rendezvous-hash
    worker; ``spilled``, keyed submits diverted to a less-loaded worker
    because the affine one was saturated; ``keyless``, submits with no
    ``session_key`` (placed least-loaded); ``rejected``, submits shed at
    the front door because every worker was at its backlog bound.  The
    affinity hit rate — what the prefix-cache story depends on — is
    ``affine / (affine + spilled)``.

    ``degraded`` counts submits the front door served from the retrieval
    fallback instead of a worker (every-worker saturation with a
    fallback configured, plus the cold-start lane); ``cold_start`` is
    the subset served because the history was empty.  Degraded serves
    count in ``submitted`` but not in ``rejected`` (served is not shed)
    and never touch ``per_worker`` — no worker saw them.  Worker-level
    fallback serves (deadline expiry, per-worker queue overflow) live on
    each worker's :class:`repro.serving.ServingStats` instead.
    """

    submitted: int = 0
    affine: int = 0
    spilled: int = 0
    keyless: int = 0
    rejected: int = 0
    degraded: int = 0
    cold_start: int = 0
    per_worker: dict[int, int] = field(default_factory=dict)

    @property
    def affinity_hit_rate(self) -> float:
        keyed = self.affine + self.spilled
        return self.affine / keyed if keyed else 0.0

    def record(self, worker: int, kind: str) -> None:
        self.submitted += 1
        self.per_worker[worker] = self.per_worker.get(worker, 0) + 1
        setattr(self, kind, getattr(self, kind) + 1)


class _Worker:
    """One cluster slot: an index plus the service owning its engine replica."""

    __slots__ = ("index", "service")

    def __init__(self, index: int, service: RecommendationService):
        self.index = index
        self.service = service

    @property
    def backlog(self) -> int:
        return self.service.backlog


class ServingCluster(RecommendationClient):
    """N recommendation workers behind session-affinity admission control.

    Usage mirrors the single service — the cluster *is* a
    :class:`repro.serving.RecommendationClient`::

        cluster = ServingCluster(LCRecEngine(model), num_workers=4)
        with cluster:  # starts every worker's background loop
            handle = cluster.submit(history, session_key=f"user:{uid}",
                                    deadline_ms=150.0)
            try:
                ranking = handle.result(timeout=5.0)
            except Overloaded as shed:
                ...  # serve a fallback; shed.reason says which guard fired

    Parameters
    ----------
    engine:
        Either a built :class:`repro.serving.GenerativeEngine` — worker 0
        drives it directly and workers 1..N-1 drive
        :meth:`~repro.serving.GenerativeEngine.replicate` copies (shared
        weights, private caches) — or a zero-argument factory callable,
        invoked once per worker, for engines without replication support
        or deployments that want fully independent models.
    num_workers:
        Fleet size (decode threads once started).
    batcher / deadline_ms / mode / prefix_cache-style knobs:
        Forwarded to every worker's ``RecommendationService`` unchanged;
        ``mode="continuous"`` requires an engine with
        ``supports_continuous``, exactly as for a single service.
    max_backlog:
        Per-worker admission bound on undelivered requests (queued plus
        in-decode).  ``None`` disables shedding at the front door (pure
        routing).
    routing:
        ``"affinity"`` (default) routes keyed traffic by rendezvous hash
        with least-loaded spillover; ``"least_loaded"`` ignores keys;
        ``"random"`` places uniformly at random (the baseline the
        affinity benchmark compares against).
    spillover:
        With ``False``, a keyed request whose affine worker is saturated
        is shed instead of diverted — strict cache-locality mode.
    seed:
        Seeds the ``"random"`` routing policy (determinism in benches).
    fallback:
        Optional :class:`repro.serving.FallbackRecommender` — the
        retrieval fast lane, shared by the front door and every worker.
        History submits that would otherwise be shed (fleet-wide
        saturation at the front door, per-worker queue overflow, or
        deadline expiry) are served from it with ``degraded=True``
        handles, and empty histories are answered from it immediately
        (``reason="cold_start"``) without consuming a decode slot.
        Intention/instruction submits keep plain rejections.  The object
        must be thread-safe for concurrent reads —
        :class:`repro.retrieval.RetrievalRecommender` is.
    hybrid:
        Optional :class:`repro.retrieval.HybridRecommender`, forwarded to
        every worker service: history submits decode over a
        retrieval-narrowed candidate subtrie (or are answered from
        retrieval outright on cold start), with rankings identical to
        :meth:`HybridRecommender.recommend`.  One shared object serves
        the whole fleet — workers use only its retrieval tier and
        backfill rule, never its engine — so its candidate sets stay
        consistent across workers (and, with a live catalog, across
        catalog versions).
    """

    def __init__(
        self,
        engine: GenerativeEngine | Callable[[], GenerativeEngine],
        num_workers: int = 4,
        batcher: MicroBatcherConfig | None = None,
        deadline_ms: float = 25.0,
        mode: str = "deadline",
        max_backlog: int | None = 64,
        routing: str = "affinity",
        spillover: bool = True,
        seed: int = 0,
        fallback: FallbackRecommender | None = None,
        hybrid=None,
    ):
        if num_workers < 1:
            raise ValueError("num_workers must be positive")
        if max_backlog is not None and max_backlog < 1:
            raise ValueError("max_backlog must be positive (or None for unbounded)")
        if routing not in ("affinity", "least_loaded", "random"):
            raise ValueError(
                f"routing must be 'affinity', 'least_loaded' or 'random', got {routing!r}"
            )
        engines = self._provision_engines(engine, num_workers)
        self._workers = [
            _Worker(
                index,
                RecommendationService(
                    worker_engine,
                    batcher=batcher,
                    deadline_ms=deadline_ms,
                    mode=mode,
                    fallback=fallback,
                    hybrid=hybrid,
                ),
            )
            for index, worker_engine in enumerate(engines)
        ]
        self.router = AffinityRouter(num_workers)
        self.max_backlog = max_backlog
        self.routing = routing
        self.spillover = spillover
        self.fallback = fallback
        self.hybrid = hybrid
        self.stats = ClusterStats()
        self._stats_lock = threading.Lock()
        self._rng = random.Random(seed)

    @staticmethod
    def _provision_engines(
        engine: GenerativeEngine | Callable[[], GenerativeEngine], num_workers: int
    ) -> list[GenerativeEngine]:
        if isinstance(engine, GenerativeEngine):
            if num_workers > 1 and not engine.supports_replication:
                raise ValueError(
                    f"engine {engine.name!r} does not support replication; pass an "
                    "engine factory callable to provision workers independently"
                )
            return [engine] + [engine.replicate() for _ in range(num_workers - 1)]
        engines = [engine() for _ in range(num_workers)]
        for built in engines:
            if not isinstance(built, GenerativeEngine):
                raise TypeError(
                    f"engine factory returned {type(built).__name__}, not a GenerativeEngine"
                )
        return engines

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_workers(self) -> int:
        return len(self._workers)

    @property
    def workers(self) -> list[RecommendationService]:
        """The per-worker services (read-only introspection: stats, caches)."""
        return [worker.service for worker in self._workers]

    @property
    def backlog(self) -> int:
        """Undelivered requests across the whole fleet."""
        return sum(worker.backlog for worker in self._workers)

    def worker_stats(self) -> list[ServingStats]:
        """Each worker's decode-path counters, in worker order."""
        return [worker.service.stats for worker in self._workers]

    @property
    def shed_requests(self) -> int:
        """Total requests shed anywhere: front door, full queues, deadlines."""
        return self.stats.rejected + sum(
            stats.shed_queue_full + stats.shed_deadline for stats in self.worker_stats()
        )

    @property
    def degraded_requests(self) -> int:
        """Total requests the retrieval fast lane served, fleet-wide.

        Front-door degraded serves (saturation and cold start) plus every
        worker's queue-overflow and deadline fallback serves.  Disjoint
        from :attr:`shed_requests` — degraded requests got a ranking.
        """
        return self.stats.degraded + sum(
            stats.degraded_queue_full + stats.degraded_deadline
            for stats in self.worker_stats()
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def is_running(self) -> bool:
        """Whether the worker background loops are active (all-or-none)."""
        return any(worker.service.is_running for worker in self._workers)

    def start(self) -> "ServingCluster":
        """Start every worker's background loop; returns self for chaining.

        If any worker fails to start, the ones already started are
        stopped again (no half-started fleet).
        """
        started: list[_Worker] = []
        try:
            for worker in self._workers:
                worker.service.start()
                started.append(worker)
        except Exception:
            for worker in started:
                worker.service.stop(drain=False)
            raise
        return self

    def stop(self, drain: bool = True) -> None:
        """Stop every worker, by default draining all in-flight work.

        Workers are stopped in order, each draining its own queue and
        in-flight decodes before its thread joins; after ``stop(drain=True)``
        returns, every handle submitted before the call is resolved
        (delivered, shed, or failed).  Idempotent.
        """
        for worker in self._workers:
            worker.service.stop(drain=drain)

    # ------------------------------------------------------------------
    # Routing and admission
    # ------------------------------------------------------------------
    def _has_room(self, worker: _Worker) -> bool:
        return self.max_backlog is None or worker.backlog < self.max_backlog

    def _least_loaded(self) -> _Worker | None:
        """The admissible worker with the smallest backlog (stable on ties)."""
        candidates = [worker for worker in self._workers if self._has_room(worker)]
        if not candidates:
            return None
        return min(candidates, key=lambda worker: (worker.backlog, worker.index))

    def _admit(self, session_key: str | None) -> tuple[_Worker | None, str]:
        """Pick a worker per the routing policy; ``None`` means shed.

        Returns the worker and the stats bucket the decision belongs to
        (``"affine"`` / ``"spilled"`` / ``"keyless"`` / ``"rejected"``).
        """
        if self.routing == "random":
            with self._stats_lock:
                worker = self._workers[self._rng.randrange(len(self._workers))]
            if self._has_room(worker):
                return worker, "keyless"
            worker = self._least_loaded()
            return (worker, "spilled") if worker is not None else (None, "rejected")
        if session_key is None or self.routing == "least_loaded":
            worker = self._least_loaded()
            return (worker, "keyless") if worker is not None else (None, "rejected")
        affine = self._workers[self.router.affine_worker(session_key)]
        if self._has_room(affine):
            return affine, "affine"
        if not self.spillover:
            return None, "rejected"
        worker = self._least_loaded()
        return (worker, "spilled") if worker is not None else (None, "rejected")

    def _route(
        self,
        submit: Callable[[RecommendationService], RecommendationHandle],
        session_key: str | None,
        history: list[int] | None = None,
        top_k: int = 10,
    ) -> RecommendationHandle:
        if self.fallback is not None and history is not None and not history:
            # Cold-start lane: an empty history gives the constrained
            # decoder nothing to condition on — answer from retrieval
            # immediately rather than spending a decode slot on it.
            with self._stats_lock:
                self.stats.submitted += 1
                self.stats.degraded += 1
                self.stats.cold_start += 1
            return DegradedRecommendation(
                self.fallback.recommend(history, top_k), "cold_start"
            )
        worker, kind = self._admit(session_key)
        if worker is None and self.fallback is not None and history is not None:
            # Fleet-wide saturation with a retrieval fast lane: serve
            # degraded instead of rejecting at the front door.
            with self._stats_lock:
                self.stats.submitted += 1
                self.stats.degraded += 1
            return DegradedRecommendation(
                self.fallback.recommend(history, top_k), "queue_full"
            )
        with self._stats_lock:
            if worker is None:
                self.stats.submitted += 1
                self.stats.rejected += 1
            else:
                self.stats.record(worker.index, kind)
        if worker is None:
            return RejectedRecommendation(
                Overloaded(
                    f"all {self.num_workers} workers at backlog bound {self.max_backlog}",
                    reason="queue_full",
                )
            )
        return submit(worker.service)

    # ------------------------------------------------------------------
    # The client surface
    # ------------------------------------------------------------------
    def submit(
        self,
        history: Sequence[int],
        top_k: int = 10,
        template_id: int = 0,
        *,
        session_key: str | None = None,
        deadline_ms: float | None = None,
    ) -> RecommendationHandle:
        """Route + queue a next-item recommendation for a history.

        ``session_key`` (user or session id) drives affinity placement;
        ``deadline_ms`` is the request's shed budget at its worker.
        """
        history = list(history)
        return self._route(
            lambda service: service.submit(
                history,
                top_k=top_k,
                template_id=template_id,
                session_key=session_key,
                deadline_ms=deadline_ms,
            ),
            session_key,
            history=history,
            top_k=top_k,
        )

    def submit_intention(
        self,
        intention_text: str,
        top_k: int = 10,
        *,
        session_key: str | None = None,
        deadline_ms: float | None = None,
    ) -> RecommendationHandle:
        """Route + queue an intention-query retrieval."""
        return self._route(
            lambda service: service.submit_intention(
                intention_text, top_k=top_k, session_key=session_key, deadline_ms=deadline_ms
            ),
            session_key,
        )

    def submit_instruction(
        self,
        instruction: str,
        top_k: int = 10,
        *,
        session_key: str | None = None,
        deadline_ms: float | None = None,
    ) -> RecommendationHandle:
        """Route + queue an already-rendered instruction."""
        return self._route(
            lambda service: service.submit_instruction(
                instruction, top_k=top_k, session_key=session_key, deadline_ms=deadline_ms
            ),
            session_key,
        )

    def flush(self) -> int:
        """Synchronously decode every worker's queue; returns requests served."""
        return sum(worker.service.flush() for worker in self._workers)

    def ingest_item(
        self,
        *,
        text: str | None = None,
        embedding=None,
        popularity_count: int = 0,
    ):
        """Add one item to the fleet's shared live catalog.

        Replicated engines share their :class:`repro.core.LiveCatalog`
        *reference* (:meth:`TrieDecoderEngine.replicate` copies the
        attribute, not the object), so one ingestion here publishes one
        new catalog version that every worker's next prefill observes —
        there is no per-worker propagation step, and workers mid-decode
        finish against their pinned versions.  Static retrieval tiers —
        the front door's ``fallback`` and every worker's
        ``fallback``/``hybrid`` — are refreshed to the published version
        (:func:`repro.serving.service.refresh_retrieval_tier`), so a
        session whose history already contains the new item sees it in
        its retrieval candidates fleet-wide.  Returns the catalog's
        :class:`repro.core.IngestedItem`.
        """
        catalogs = {
            id(catalog): catalog
            for worker in self._workers
            if (catalog := getattr(worker.service.engine, "catalog", None)) is not None
        }
        if not catalogs:
            raise RuntimeError(
                "no worker engine has a live catalog attached; attach one to the "
                "seed engine before building the cluster"
            )
        if len(catalogs) > 1:
            # Factory-provisioned fleets may attach distinct catalogs;
            # ingesting through the cluster would silently diverge them.
            raise RuntimeError(
                "workers serve from different live catalogs; ingest into the "
                "intended catalog object directly"
            )
        (catalog,) = catalogs.values()
        ingested = catalog.ingest(
            text=text, embedding=embedding, popularity_count=popularity_count
        )
        refresh_retrieval_tier(self, ingested.version)
        for worker in self._workers:
            refresh_retrieval_tier(worker.service, ingested.version)
        return ingested
