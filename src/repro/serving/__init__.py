"""Batched recommendation serving: queue, micro-batcher, service facade."""

from .batcher import (
    MicroBatcher,
    MicroBatcherConfig,
    padding_fraction,
    plan_batches,
)
from .queue import RecommendRequest, RequestQueue
from .service import PendingRecommendation, RecommendationService, ServingStats

__all__ = [
    "RecommendRequest",
    "RequestQueue",
    "MicroBatcher",
    "MicroBatcherConfig",
    "plan_batches",
    "padding_fraction",
    "PendingRecommendation",
    "RecommendationService",
    "ServingStats",
]
