"""Batched recommendation serving: queue, micro-batcher, engine, service.

The package turns any generative recommender into a deployment-shaped
service.  A :class:`GenerativeEngine` adapter translates between the
serving layer and one concrete model — :class:`LCRecEngine` over a built
:class:`repro.core.LCRec`, :class:`TIGEREngine` over a fitted TIGER,
:class:`P5CIDEngine` over a fitted P5-CID, or your own (see
``docs/serving.md``, "Writing an engine adapter").  Producers push
:class:`RecommendRequest`\\ s into a thread-safe :class:`RequestQueue`,
the :class:`MicroBatcher` plans length-bucketed, prefix-clustered
micro-batches, and :class:`RecommendationService` decodes them through
the engine — synchronously via ``flush()``, asynchronously via a
deadline-batched background loop (``start()``/``stop()``), or with
continuous batching (``mode="continuous"``, engines advertising
``supports_continuous``): a :class:`ContinuousScheduler` admits queued
requests into the in-flight decode at trie-level boundaries and retires
finished requests the moment their own rows complete.  A cross-request
:class:`repro.llm.PrefixKVCache` (re-exported here) skips re-running
prompt prefixes shared between requests, for engines advertising
``supports_prefix_cache``.

Scaling past one decode thread, :class:`ServingCluster` runs N workers —
each a ``RecommendationService`` over a private engine replica — behind a
rendezvous-hash :class:`AffinityRouter` (session traffic sticks to the
worker holding its prompt K/V) with bounded per-worker backlogs,
least-loaded spillover and deadline-based load shedding (typed
:class:`Overloaded` rejections).  A configured
:class:`FallbackRecommender` (the retrieval fast lane of
``repro.retrieval``) upgrades shedding to graceful degradation: requests
that would be rejected are served from retrieval instead, on handles
flagged ``degraded``.  Every mode, single-process or cluster, speaks the
one :class:`RecommendationClient` surface:
``submit(...) -> RecommendationHandle`` / ``handle.result(timeout)``.

See ``docs/serving.md`` for the architecture, tuning guidance, and the
prefix-cache invalidation contract, and ``examples/serving_async.py`` for
a runnable walkthrough.
"""

from ..llm import PrefixCacheStats, PrefixKVCache
from .api import (
    DegradedRecommendation,
    FallbackRecommender,
    Overloaded,
    RecommendationClient,
    RecommendationHandle,
    RejectedRecommendation,
)
from .batcher import (
    MicroBatcher,
    MicroBatcherConfig,
    padding_fraction,
    plan_batches,
)
from .cluster import ClusterStats, ServingCluster
from .continuous import ContinuousScheduler
from .engine import (
    EngineState,
    GenerativeEngine,
    LCRecEngine,
    P5CIDEngine,
    TIGEREngine,
    TrieDecoderEngine,
)
from .queue import RecommendRequest, RequestQueue
from .router import AffinityRouter, rendezvous_weight
from .service import (
    PendingRecommendation,
    RecommendationService,
    ServingStats,
    refresh_retrieval_tier,
)

__all__ = [
    "RecommendRequest",
    "RequestQueue",
    "MicroBatcher",
    "MicroBatcherConfig",
    "plan_batches",
    "padding_fraction",
    "ContinuousScheduler",
    "EngineState",
    "GenerativeEngine",
    "TrieDecoderEngine",
    "LCRecEngine",
    "P5CIDEngine",
    "TIGEREngine",
    "Overloaded",
    "RecommendationClient",
    "RecommendationHandle",
    "RejectedRecommendation",
    "DegradedRecommendation",
    "FallbackRecommender",
    "PendingRecommendation",
    "RecommendationService",
    "ServingStats",
    "refresh_retrieval_tier",
    "AffinityRouter",
    "rendezvous_weight",
    "ClusterStats",
    "ServingCluster",
    "PrefixKVCache",
    "PrefixCacheStats",
]
