"""Batched recommendation serving: queue, micro-batcher, service facade.

The package turns a built :class:`repro.core.LCRec` into a
deployment-shaped service: producers push :class:`RecommendRequest`\\ s
into a thread-safe :class:`RequestQueue`, the :class:`MicroBatcher` plans
length-bucketed, prefix-clustered micro-batches, and
:class:`RecommendationService` decodes them through the batched
trie-constrained beam search — synchronously via ``flush()``,
asynchronously via a deadline-batched background loop
(``start()``/``stop()``), or with continuous batching
(``mode="continuous"``): a :class:`ContinuousScheduler` admits queued
requests into the in-flight decode at trie-level boundaries and retires
finished requests the moment their own rows complete.  A cross-request
:class:`repro.llm.PrefixKVCache` (re-exported here) skips re-running
prompt prefixes shared between requests.

See ``docs/serving.md`` for the architecture, tuning guidance, and the
prefix-cache invalidation contract, and ``examples/serving_async.py`` for
a runnable walkthrough.
"""

from ..llm import PrefixCacheStats, PrefixKVCache
from .batcher import (
    MicroBatcher,
    MicroBatcherConfig,
    padding_fraction,
    plan_batches,
)
from .continuous import ContinuousScheduler
from .queue import RecommendRequest, RequestQueue
from .service import PendingRecommendation, RecommendationService, ServingStats

__all__ = [
    "RecommendRequest",
    "RequestQueue",
    "MicroBatcher",
    "MicroBatcherConfig",
    "plan_batches",
    "padding_fraction",
    "ContinuousScheduler",
    "PendingRecommendation",
    "RecommendationService",
    "ServingStats",
    "PrefixKVCache",
    "PrefixCacheStats",
]
