"""The serving facade: queue in front, batched beam search behind.

:class:`RecommendationService` is the deployment-shaped entry point to a
built LC-Rec model: callers ``submit`` recommendation requests (histories,
free-form instructions, or intention queries) and read results from the
returned :class:`PendingRecommendation`; ``flush`` drains the queue through
the micro-batcher and decodes every micro-batch with one batched
trie-constrained beam search.  Results are identical to calling
``LCRec.recommend`` per request — batching changes the cost, not the math.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from ..llm import beam_search_items_batched, ranked_item_ids
from .batcher import MicroBatcher, MicroBatcherConfig, padding_fraction
from .queue import RecommendRequest, RequestQueue

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a cycle at runtime
    from ..core.lcrec import LCRec

__all__ = ["PendingRecommendation", "ServingStats", "RecommendationService"]


class PendingRecommendation:
    """Future-style handle for one submitted request."""

    def __init__(self, service: "RecommendationService", request_id: int):
        self._service = service
        self._request_id = request_id
        self._result: list[int] | None = None

    @property
    def request_id(self) -> int:
        return self._request_id

    @property
    def done(self) -> bool:
        return self._result is not None or self._request_id in self._service._results

    def result(self) -> list[int]:
        """The ranked item ids; flushes the queue if still pending."""
        if self._result is None:
            if self._request_id not in self._service._results:
                self._service.flush()
            # Evict from the service so completed results don't accumulate
            # for the lifetime of a long-running service.
            self._result = self._service._results.pop(self._request_id)
        return self._result


@dataclass
class ServingStats:
    """O(1)-memory counters the throughput benchmark and tests read."""

    requests: int = 0
    batches: int = 0
    padding_fraction_sum: float = 0.0

    @property
    def mean_batch_size(self) -> float:
        return self.requests / self.batches if self.batches else 0.0

    @property
    def mean_padding_fraction(self) -> float:
        return self.padding_fraction_sum / self.batches if self.batches else 0.0


class RecommendationService:
    """Micro-batched recommendation serving over a built :class:`LCRec`.

    >>> service = RecommendationService(model)
    >>> pending = [service.submit(h) for h in histories]
    >>> service.flush()
    >>> rankings = [p.result() for p in pending]
    """

    def __init__(self, model: "LCRec", batcher: MicroBatcherConfig | None = None):
        model._require_built()
        self.model = model
        self.batcher = MicroBatcher(batcher)
        self.queue = RequestQueue()
        self.stats = ServingStats()
        self._results: dict[int, list[int]] = {}

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self, history: Sequence[int], top_k: int = 10, template_id: int = 0
    ) -> PendingRecommendation:
        """Queue a next-item recommendation for an interaction history."""
        instruction = self.model.seq_instruction(list(history), template_id)
        return self.submit_instruction(instruction, top_k=top_k)

    def submit_intention(self, intention_text: str, top_k: int = 10) -> PendingRecommendation:
        """Queue an intention-query retrieval (paper Fig. 3 task)."""
        instruction = self.model.intention_instruction(intention_text)
        return self.submit_instruction(instruction, top_k=top_k)

    def submit_instruction(self, instruction: str, top_k: int = 10) -> PendingRecommendation:
        """Queue an arbitrary already-rendered instruction."""
        request = RecommendRequest(
            prompt_ids=self.model.encode_instruction(instruction),
            top_k=top_k,
            # The effective beam width is fixed per request at submit time
            # (never widened by co-batched requests) so results match the
            # per-request path regardless of batch composition.
            beam_size=max(self.model.config.beam_size, top_k),
        )
        self.queue.push(request)
        return PendingRecommendation(self, request.request_id)

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------
    def flush(self) -> int:
        """Decode everything queued; returns the number of requests served."""
        requests = self.queue.drain()
        for batch in self.batcher.plan(requests):
            self._decode_batch(batch)
        return len(requests)

    def _decode_batch(self, batch: list[RecommendRequest]) -> None:
        all_hypotheses = beam_search_items_batched(
            self.model.lm,
            [request.prompt_ids for request in batch],
            self.model.trie,
            beam_size=batch[0].beam_size,  # the batcher keeps beams uniform
        )
        for request, hypotheses in zip(batch, all_hypotheses):
            self._results[request.request_id] = ranked_item_ids(hypotheses, request.top_k)
        self.stats.requests += len(batch)
        self.stats.batches += 1
        self.stats.padding_fraction_sum += padding_fraction(batch)

    # ------------------------------------------------------------------
    # Synchronous convenience
    # ------------------------------------------------------------------
    def recommend_many(
        self, histories: Sequence[Sequence[int]], top_k: int = 10, template_id: int = 0
    ) -> list[list[int]]:
        """Submit + flush a whole batch of histories, preserving order."""
        pending = [
            self.submit(history, top_k=top_k, template_id=template_id) for history in histories
        ]
        self.flush()
        return [p.result() for p in pending]
